// Ablation: feature-aggregation granularity (Section II-B).
//
// The paper's feature representation sorts the per-owner privacy
// compensations and sums them into n partitions: "its dimension n controls
// the granularity of aggregation", from n = 1 (total compensation only) up
// to the number of owners. Finer features discriminate queries better but
// the engine pays O(n²) per round and needs more exploration (Theorem 1's
// n² log T). This sweep prices the *same* query stream with different
// aggregation granularities and also reports the PCA alternative the paper
// suggests for prohibitively high dimensions.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "features/pca.h"
#include "market/linear_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/interval_engine.h"

int main(int argc, char** argv) {
  int64_t rounds = 10000;
  int64_t num_owners = 2000;
  uint64_t seed = 3;
  pdm::FlagSet flags("bench_ablation_aggregation");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "workload seed");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Ablation: sorted-partition granularity n (Section II-B) ===\n\n");
  pdm::TablePrinter table(
      {"n", "regret ratio", "baseline ratio", "exploratory", "ms/round"});
  for (int dim : {1, 5, 10, 20, 50, 100}) {
    pdm::Rng rng(seed);
    pdm::NoisyLinearMarketConfig market_config;
    market_config.feature_dim = dim;
    market_config.num_owners = static_cast<int>(num_owners);
    pdm::NoisyLinearQueryStream stream(market_config, &rng);
    pdm::SimulationOptions options;
    options.rounds = rounds;
    options.measure_latency = true;
    pdm::SimulationResult result;
    if (dim == 1) {
      pdm::IntervalEngineConfig config;
      config.theta_min = 0.0;
      config.theta_max = 2.0;
      config.horizon = rounds;
      pdm::IntervalPricingEngine engine(config);
      result = pdm::RunMarket(&stream, &engine, options, &rng);
    } else {
      pdm::EllipsoidEngineConfig config;
      config.dim = dim;
      config.horizon = rounds;
      config.initial_radius = stream.RecommendedRadius();
      pdm::EllipsoidPricingEngine engine(config);
      result = pdm::RunMarket(&stream, &engine, options, &rng);
    }
    table.AddRow({std::to_string(dim),
                  pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                  pdm::FormatDouble(100.0 * result.tracker.baseline_regret_ratio(), 2) +
                      "%",
                  std::to_string(result.engine_counters.exploratory_rounds),
                  pdm::FormatDouble(result.engine_millis_per_round, 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape checks: regret and per-round cost grow with the aggregation\n"
      "granularity n (Theorem 1's n^2 terms); n = 1 collapses to the interval\n"
      "engine's bisection. The trade-off is the one Section II-B describes —\n"
      "finer partitions discriminate queries better only if the extra\n"
      "exploration is affordable within the horizon.\n");
  return 0;
}
