// Ablation: the uncertainty buffer δ (Algorithm 2).
//
// The market noise is fixed at the evaluation's level (buffer target
// δ* = 0.01, σ = δ*/(√(2 log 2)·log T)); the engine's configured buffer δ is
// swept across {0, δ*/2, δ*, 2δ*, 4δ*}. Under-buffering (δ < δ*) risks
// cutting θ* out of the knowledge set on unlucky noise; over-buffering keeps
// θ* safe but pays extra regret through shallower cuts and lower conservative
// prices (Section V-A observed +25% regret at matched δ).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  int64_t dim = 20;
  int64_t rounds = 10000;
  int64_t num_owners = 2000;
  double delta_star = 0.01;
  pdm::FlagSet flags("bench_ablation_delta");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddDouble("delta_star", &delta_star, "noise buffer target delta*");
  if (!flags.Parse(argc, argv)) return 1;

  double sigma = pdm::SigmaForBuffer(delta_star, 2.0, rounds);
  std::printf("=== Ablation: buffer delta under fixed market noise "
              "(delta* = %.3g, sigma = %.5f) ===\n\n",
              delta_star, sigma);

  pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
      static_cast<int>(dim), rounds, static_cast<int>(num_owners), 1);

  pdm::TablePrinter table({"engine delta", "regret ratio", "cuts applied",
                           "cuts discarded", "theta still inside"});
  for (double multiplier : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    double delta = multiplier * delta_star;
    pdm::EllipsoidEngineConfig config;
    config.dim = static_cast<int>(dim);
    config.horizon = rounds;
    config.initial_radius = workload.recommended_radius;
    config.use_reserve = true;
    config.delta = delta;
    pdm::EllipsoidPricingEngine engine(config);
    pdm::bench::NoisyReplayStream stream(&workload.rounds, sigma);
    pdm::SimulationOptions options;
    options.rounds = rounds;
    pdm::Rng rng(99);
    pdm::SimulationResult result = pdm::RunMarket(&stream, &engine, options, &rng);
    bool contains = engine.knowledge_set().Contains(workload.theta, 1e-6);
    table.AddRow({pdm::FormatDouble(delta, 4),
                  pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(result.engine_counters.cuts_applied),
                  std::to_string(result.engine_counters.cuts_discarded),
                  contains ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: delta >= delta* keeps theta* inside the knowledge set\n"
      "(Eq. 6's union bound); larger buffers trade that safety for extra\n"
      "regret. delta = 0 under noise may cut theta* out entirely.\n");
  return 0;
}
