// Ablation: the uncertainty buffer δ (Algorithm 2).
//
// The market noise is fixed at the evaluation's level (buffer target
// δ* = 0.01, σ = δ*/(√(2 log 2)·log T)); the engine's configured buffer δ is
// swept across {0, δ*/2, δ*, 2δ*, 4δ*}. Under-buffering (δ < δ*) risks
// cutting θ* out of the knowledge set on unlucky noise; over-buffering keeps
// θ* safe but pays extra regret through shallower cuts and lower conservative
// prices (Section V-A observed +25% regret at matched δ).
//
// The grid is scenario::AblationDeltaScenarios — a Sweep over the spec's
// delta axis — but this bench drives the engines itself (through the same
// StreamFactory/MechanismRegistry the ExperimentDriver uses) because its
// last column inspects the post-run knowledge set for θ*-containment, which
// requires holding the engine after the simulation.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "scenario/scenario_registry.h"
#include "scenario/stream_factory.h"

int main(int argc, char** argv) {
  int64_t dim = 20;
  int64_t rounds = 10000;
  int64_t num_owners = 2000;
  double delta_star = 0.01;
  pdm::FlagSet flags("bench_ablation_delta");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddDouble("delta_star", &delta_star, "noise buffer target delta*");
  if (!flags.Parse(argc, argv)) return 1;
  if (dim < 2) {
    // The theta-containment column below inspects the ellipsoid knowledge
    // set; the 1-d special case routes to the interval engine and has no
    // ellipsoid to inspect.
    std::fprintf(stderr, "bench_ablation_delta: --dim must be >= 2 (got %ld)\n",
                 static_cast<long>(dim));
    return 1;
  }

  std::vector<pdm::scenario::ScenarioSpec> specs = pdm::scenario::AblationDeltaScenarios(
      static_cast<int>(dim), rounds, num_owners, delta_star);
  std::printf("=== Ablation: buffer delta under fixed market noise "
              "(delta* = %.3g, sigma = %.5f) ===\n\n",
              delta_star, specs.front().linear.noise_sigma);

  pdm::scenario::StreamFactory factory;
  pdm::TablePrinter table({"engine delta", "regret ratio", "cuts applied",
                           "cuts discarded", "theta still inside"});
  for (const pdm::scenario::ScenarioSpec& spec : specs) {
    pdm::scenario::WorkloadInfo info = factory.Prepare(spec);
    // The runner's job lifecycle by hand: one Rng drives stream construction
    // and the market loop, so results match an ExperimentDriver run exactly.
    pdm::Rng rng(spec.sim_seed);
    std::unique_ptr<pdm::QueryStream> stream = factory.CreateStream(spec, &rng);
    std::unique_ptr<pdm::PricingEngine> engine =
        pdm::scenario::MechanismRegistry::Builtin().Build(spec, info);
    pdm::SimulationOptions options;
    options.rounds = spec.rounds;
    pdm::SimulationResult result =
        pdm::RunMarket(stream.get(), engine.get(), options, &rng);

    const auto& ellipsoid_engine = dynamic_cast<pdm::EllipsoidPricingEngine&>(*engine);
    bool contains = ellipsoid_engine.knowledge_set().Contains(
        factory.FindLinearWorkload(spec)->theta, 1e-6);
    table.AddRow({pdm::FormatDouble(spec.delta, 4),
                  pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(result.engine_counters.cuts_applied),
                  std::to_string(result.engine_counters.cuts_discarded),
                  contains ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: delta >= delta* keeps theta* inside the knowledge set\n"
      "(Eq. 6's union bound); larger buffers trade that safety for extra\n"
      "regret. delta = 0 under noise may cut theta* out entirely.\n");
  return 0;
}
