// Ablation: the exploration threshold ε (Theorem 1 sets ε = n²/T).
//
// ε controls when the engine bisects (explores) versus posts the safe
// conservative price. Too small: conservative prices under-shoot by more than
// they need to, leaving markup on the table every round. Too large:
// exploration stops while the knowledge set is still coarse. This sweep
// multiplies the Theorem 1 default by {0.1, 0.3, 1, 3, 10, 30} and reports
// final regret ratio and exploratory-round counts.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  int64_t dim = 20;
  int64_t rounds = 10000;
  int64_t num_owners = 2000;
  pdm::FlagSet flags("bench_ablation_epsilon");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  if (!flags.Parse(argc, argv)) return 1;

  double default_epsilon = pdm::DefaultEllipsoidEpsilon(static_cast<int>(dim), rounds, 0.0);
  std::printf("=== Ablation: threshold epsilon (default n^2/T = %.4f) at n = %ld, "
              "T = %ld ===\n\n",
              default_epsilon, static_cast<long>(dim), static_cast<long>(rounds));

  pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
      static_cast<int>(dim), rounds, static_cast<int>(num_owners), 1);

  pdm::TablePrinter table({"epsilon multiplier", "epsilon", "regret ratio",
                           "exploratory rounds", "lemma 6 cap"});
  double n = static_cast<double>(dim);
  for (double multiplier : {0.1, 0.3, 1.0, 3.0, 10.0, 30.0}) {
    double epsilon = multiplier * default_epsilon;
    pdm::EllipsoidEngineConfig config;
    config.dim = static_cast<int>(dim);
    config.horizon = rounds;
    config.initial_radius = workload.recommended_radius;
    config.use_reserve = true;
    config.epsilon = epsilon;
    pdm::EllipsoidPricingEngine engine(config);
    pdm::bench::NoisyReplayStream stream(&workload.rounds, 0.0);
    pdm::SimulationOptions options;
    options.rounds = rounds;
    pdm::Rng rng(99);
    pdm::SimulationResult result = pdm::RunMarket(&stream, &engine, options, &rng);
    double cap = 20.0 * n * n *
                 std::log(20.0 * workload.recommended_radius * (n + 1.0) / epsilon);
    table.AddRow({pdm::FormatDouble(multiplier, 1), pdm::FormatDouble(epsilon, 5),
                  pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(result.engine_counters.exploratory_rounds),
                  pdm::FormatDouble(cap, 0)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: exploratory rounds always respect the Lemma 6 cap and\n"
      "shrink as epsilon grows; the regret ratio is U-shaped around the\n"
      "Theorem 1 choice.\n");
  return 0;
}
