// Ablation: the exploration threshold ε (Theorem 1 sets ε = n²/T).
//
// ε controls when the engine bisects (explores) versus posts the safe
// conservative price. Too small: conservative prices under-shoot by more than
// they need to, leaving markup on the table every round. Too large:
// exploration stops while the knowledge set is still coarse. This sweep
// multiplies the Theorem 1 default by {0.1, 0.3, 1, 3, 10, 30} and reports
// final regret ratio and exploratory-round counts.
//
// Thin spec-driven binary: the grid is scenario::AblationEpsilonScenarios
// (a Sweep over the spec's epsilon axis; also `pdm_run
// --scenarios=ablation/epsilon/*`).

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "pricing/ellipsoid_engine.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t dim = 20;
  int64_t rounds = 10000;
  int64_t num_owners = 2000;
  pdm::FlagSet flags("bench_ablation_epsilon");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  if (!flags.Parse(argc, argv)) return 1;

  double default_epsilon = pdm::DefaultEllipsoidEpsilon(static_cast<int>(dim), rounds, 0.0);
  std::printf("=== Ablation: threshold epsilon (default n^2/T = %.4f) at n = %ld, "
              "T = %ld ===\n\n",
              default_epsilon, static_cast<long>(dim), static_cast<long>(rounds));

  std::vector<pdm::scenario::ScenarioSpec> specs =
      pdm::scenario::AblationEpsilonScenarios(static_cast<int>(dim), rounds, num_owners);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  pdm::TablePrinter table({"epsilon multiplier", "epsilon", "regret ratio",
                           "exploratory rounds", "lemma 6 cap"});
  double n = static_cast<double>(dim);
  for (const auto& outcome : outcomes) {
    double epsilon = outcome.spec.epsilon;
    double radius = driver.factory().FindLinearWorkload(outcome.spec)->recommended_radius;
    double cap = 20.0 * n * n * std::log(20.0 * radius * (n + 1.0) / epsilon);
    table.AddRow({pdm::FormatDouble(epsilon / default_epsilon, 1),
                  pdm::FormatDouble(epsilon, 5),
                  pdm::FormatDouble(100.0 * outcome.result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(outcome.result.engine_counters.exploratory_rounds),
                  pdm::FormatDouble(cap, 0)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: exploratory rounds always respect the Lemma 6 cap and\n"
      "shrink as epsilon grows; the regret ratio is U-shaped around the\n"
      "Theorem 1 choice.\n");
  return 0;
}
