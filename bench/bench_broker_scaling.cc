// Thread-scaling sweep over the Broker serving path (DESIGN.md §9): the
// regression harness behind the contention-free routing redesign. Sweeps
// client thread counts (default 1,2,4,8,16) under two regimes:
//
//   own-product     one product per thread — the embarrassingly parallel
//                   regime; a contention-free broker should scale it
//                   near-linearly (parallel efficiency → 1.0 up to the
//                   core count)
//   shared-product  every thread hammers ONE product — the fully serialized
//                   regime; its aggregate is bounded by one session's rate
//                   and measures lock hand-off overhead
//
// Emits BENCH_broker_scaling.json (schema pdm.bench_broker.v2): one series
// row per (regime, threads, batch) cell — `--batch` is a sweep list, so the
// grid also measures how PostPrices batch size trades against thread-level
// contention (the batched matrix–panel quote path, DESIGN.md §11) — with the
// aggregate rate, the per-thread min/median (the aggregate can hide a starved
// client), and the parallel efficiency relative to the same (regime, batch)
// single-thread cell. The repository commits a baseline at the repo root; CI
// re-runs the sweep in smoke mode and `tools/compare_broker_scaling.py`
// fails the build when any series regresses beyond tolerance or the series
// sets diverge (README "Performance").
//
//   bench_broker_scaling                       # full sweep
//   bench_broker_scaling --smoke               # CI mode (caps rounds at 50000)
//   bench_broker_scaling --threads_list=1,4 --regime=own-product --batch=1,32

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "broker_bench_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/memory.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace {

struct Cell {
  std::string series;
  std::string regime;
  int64_t threads = 0;
  int64_t batch = 0;
  int64_t products = 0;
  int64_t total_rounds = 0;
  double wall_seconds = 0.0;
  double aggregate = 0.0;
  double per_thread_min = 0.0;
  double per_thread_median = 0.0;
  double efficiency = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string threads_csv = "1,2,4,8,16";
  std::string regime_filter = "";
  int64_t rounds = 200000;
  std::string batch_csv = "1,8,64";
  pdm::broker_bench::ProductSetup setup;
  bool smoke = false;
  std::string out_path = "BENCH_broker_scaling.json";
  pdm::FlagSet flags("bench_broker_scaling");
  flags.AddString("threads_list", &threads_csv, "comma-separated thread counts");
  flags.AddString("regime", &regime_filter,
                  "run only one regime ('own-product' or 'shared-product'; "
                  "'' = both)");
  flags.AddInt64("rounds", &rounds, "timed round trips per client");
  flags.AddString("batch", &batch_csv,
                  "comma-separated requests-per-PostPrices batch sizes "
                  "(sweep dimension)");
  flags.AddInt64("dim", &setup.dim, "feature dimension n of every product");
  flags.AddInt64("workload_rounds", &setup.workload_rounds,
                 "distinct precomputed queries per product");
  flags.AddInt64("owners", &setup.num_owners, "data owners behind each workload");
  flags.AddDouble("delta", &setup.delta,
                  "uncertainty buffer for the *+uncertainty variants");
  flags.AddUint64("seed", &setup.seed, "base workload seed");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 50000)");
  flags.AddString("out", &out_path, "machine-readable JSON output path ('' disables)");
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;
  if (smoke && rounds > 50000) rounds = 50000;
  std::vector<int64_t> thread_counts;
  if (!pdm::broker_bench::ParseCsvInt64s(threads_csv, &thread_counts)) {
    std::fprintf(stderr, "bad --threads_list '%s'\n", threads_csv.c_str());
    return 1;
  }
  std::vector<int64_t> batches;
  if (!pdm::broker_bench::ParseCsvInt64s(batch_csv, &batches)) {
    std::fprintf(stderr, "bad --batch '%s'\n", batch_csv.c_str());
    return 1;
  }
  if (rounds < 1 || setup.dim < 1 || setup.workload_rounds < 1) {
    std::fprintf(stderr, "rounds/dim/workload_rounds must be positive\n");
    return 1;
  }
  setup.rounds = rounds;

  struct Regime {
    const char* name;
    bool shared_product;
  };
  const Regime kRegimes[] = {{"own-product", false}, {"shared-product", true}};

  std::printf("=== broker scaling sweep: threads {%s} x batch {%s} x regimes, "
              "%ld rounds/client, n=%ld ===\n\n",
              threads_csv.c_str(), batch_csv.c_str(), static_cast<long>(rounds),
              static_cast<long>(setup.dim));

  std::vector<Cell> cells;
  for (const Regime& regime : kRegimes) {
    if (!regime_filter.empty() && regime_filter != regime.name) continue;
    for (int64_t batch : batches) {
      size_t group_first_cell = cells.size();
      for (int64_t threads : thread_counts) {
        // Fresh broker + fresh engines per cell: cells must not inherit each
        // other's knowledge-set refinement (cut cadence changes the rate).
        pdm::scenario::StreamFactory factory;
        pdm::broker::Broker broker;
        int64_t products = regime.shared_product ? 1 : threads;
        std::vector<pdm::broker_bench::ProductWorkload> workloads =
            pdm::broker_bench::OpenProducts(&factory, &broker, products, setup,
                                            std::string(regime.name) + "/client");
        pdm::broker_bench::RegionResult region =
            pdm::broker_bench::RunClients(&broker, workloads, threads, rounds,
                                          batch);
        pdm::broker_bench::ThreadRateStats rates =
            pdm::broker_bench::RateStats(region.clients);

        Cell cell;
        cell.regime = regime.name;
        cell.series = std::string(regime.name) + "/t=" + std::to_string(threads) +
                      "/b=" + std::to_string(batch);
        cell.threads = threads;
        cell.batch = batch;
        cell.products = products;
        cell.total_rounds = region.total_rounds;
        cell.wall_seconds = region.region_seconds;
        cell.aggregate = region.aggregate_rounds_per_sec();
        cell.per_thread_min = rates.min;
        cell.per_thread_median = rates.median;
        cells.push_back(cell);
      }
      // Efficiency is relative to this (regime, batch) group's t=1 cell
      // wherever it appears in --threads_list; without one there is no
      // reference, and the field is NaN (JSON null) rather than silently
      // wrong.
      double single_thread_aggregate = 0.0;
      for (size_t i = group_first_cell; i < cells.size(); ++i) {
        if (cells[i].threads == 1) single_thread_aggregate = cells[i].aggregate;
      }
      for (size_t i = group_first_cell; i < cells.size(); ++i) {
        cells[i].efficiency =
            single_thread_aggregate > 0.0
                ? cells[i].aggregate / (static_cast<double>(cells[i].threads) *
                                        single_thread_aggregate)
                : std::numeric_limits<double>::quiet_NaN();
      }
    }
  }

  int64_t rss_bytes = pdm::CurrentRssBytes();
  pdm::TablePrinter table(
      {"series", "threads", "batch", "aggregate/s", "thread-min/s",
       "thread-median/s", "efficiency"});
  for (const Cell& cell : cells) {
    table.AddRow({cell.series, std::to_string(cell.threads),
                  std::to_string(cell.batch),
                  pdm::FormatDouble(cell.aggregate, 0),
                  pdm::FormatDouble(cell.per_thread_min, 0),
                  pdm::FormatDouble(cell.per_thread_median, 0),
                  pdm::FormatDouble(cell.efficiency, 3)});
  }
  table.Print(std::cout);
  std::printf("\n(efficiency = aggregate / (threads x same-(regime,batch) t=1 "
              "aggregate); hardware concurrency %u, rss %.1f MiB)\n",
              std::thread::hardware_concurrency(),
              static_cast<double>(rss_bytes) / (1024.0 * 1024.0));

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    pdm::JsonWriter json(&out);
    json.BeginObject();
    json.Field("schema", "pdm.bench_broker.v2");
    json.Field("rounds_per_thread", rounds);
    json.Field("batch_list", batch_csv);
    json.Field("dim", setup.dim);
    json.Field("workload_rounds", setup.workload_rounds);
    json.Field("delta", setup.delta);
    json.Field("hardware_concurrency",
               static_cast<int64_t>(std::thread::hardware_concurrency()));
    json.Field("rss_bytes", rss_bytes);
    json.Key("series");
    json.BeginArray();
    for (const Cell& cell : cells) {
      json.BeginObject();
      json.Field("series", cell.series);
      json.Field("regime", cell.regime);
      json.Field("threads", cell.threads);
      json.Field("batch", cell.batch);
      json.Field("products", cell.products);
      json.Field("rounds", cell.total_rounds);
      json.Field("wall_seconds", cell.wall_seconds);
      json.Field("aggregate_rounds_per_sec", cell.aggregate);
      json.Field("per_thread_min_rounds_per_sec", cell.per_thread_min);
      json.Field("per_thread_median_rounds_per_sec", cell.per_thread_median);
      json.Field("parallel_efficiency", cell.efficiency);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::printf("wrote %s (%zu series, schema pdm.bench_broker.v2)\n",
                out_path.c_str(), cells.size());
  }
  return 0;
}
