// Serving-path throughput: multi-threaded clients driving ticketed pricing
// round trips (batched PostPrices + per-ticket Observe) through the Broker
// front end, one data product per client thread (DESIGN.md §9).
//
// Where bench_throughput measures the bare engine loop, this bench measures
// the *serving overhead on top of it*: product lookup under the shared
// directory lock, striped shard locking, the span→Vector feature bridge,
// ticket issue + pending-cut detach, and feedback routing. Emits a
// machine-readable BENCH_broker.json (schema pdm.bench_broker.v1) so the
// aggregate round-trip rate can be compared across commits.
//
//   bench_broker_throughput                    # 8 client threads, n=20
//   bench_broker_throughput --threads=16 --batch=128
//   bench_broker_throughput --smoke            # short CI mode

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/memory.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "market/round.h"
#include "rng/rng.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"

namespace {

struct ClientResult {
  std::string product;
  std::string variant;
  int64_t rounds = 0;
  double wall_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t threads = 8;
  int64_t rounds = 200000;
  int64_t batch = 64;
  int64_t dim = 20;
  int64_t workload_rounds = 2048;
  int64_t num_owners = 512;
  int64_t shards = 16;
  double delta = 0.01;
  uint64_t seed = 1;
  bool smoke = false;
  std::string out_path = "BENCH_broker.json";
  pdm::FlagSet flags("bench_broker_throughput");
  flags.AddInt64("threads", &threads, "client threads (one product each)");
  flags.AddInt64("rounds", &rounds, "timed round trips per client");
  flags.AddInt64("batch", &batch, "requests per PostPrices batch");
  flags.AddInt64("dim", &dim, "feature dimension n of every product");
  flags.AddInt64("workload_rounds", &workload_rounds,
                 "distinct precomputed queries per product");
  flags.AddInt64("owners", &num_owners, "data owners behind each workload");
  flags.AddInt64("shards", &shards, "broker lock stripes");
  flags.AddDouble("delta", &delta, "uncertainty buffer for the *+uncertainty variants");
  flags.AddUint64("seed", &seed, "base workload seed");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 20000)");
  flags.AddString("out", &out_path, "machine-readable JSON output path ('' disables)");
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;
  if (smoke && rounds > 20000) rounds = 20000;
  if (threads < 1 || rounds < 1 || batch < 1 || dim < 1) {
    std::fprintf(stderr, "threads/rounds/batch/dim must be positive\n");
    return 1;
  }

  const char* kVariants[] = {"pure", "uncertainty", "reserve", "reserve+uncertainty"};

  // Serial setup: one product per client, each with its own precomputed
  // linear workload and registry-built engine; query sequences are recorded
  // up front so the timed region measures broker round trips only.
  pdm::scenario::StreamFactory factory;
  pdm::broker::BrokerConfig config;
  config.num_shards = static_cast<int>(shards);
  pdm::broker::Broker broker(config);

  std::vector<std::string> products(static_cast<size_t>(threads));
  std::vector<std::string> variants(static_cast<size_t>(threads));
  std::vector<std::vector<pdm::MarketRound>> recorded(static_cast<size_t>(threads));
  for (int64_t i = 0; i < threads; ++i) {
    pdm::scenario::ScenarioSpec spec;
    variants[i] = kVariants[i % 4];
    spec.name = "client" + std::to_string(i) + "/" + variants[i] +
                "/n=" + std::to_string(dim);
    spec.family = "broker-bench";
    spec.stream = pdm::scenario::StreamKind::kLinear;
    spec.mechanism = variants[i];
    spec.n = static_cast<int>(dim);
    spec.rounds = rounds;
    spec.delta = delta;
    spec.linear.num_owners = static_cast<int>(num_owners);
    spec.linear.workload_rounds = workload_rounds;
    spec.workload_seed = seed + static_cast<uint64_t>(i);
    spec.sim_seed = 99 + static_cast<uint64_t>(i);
    products[i] = spec.name;

    pdm::scenario::WorkloadInfo info = factory.Prepare(spec);
    pdm::Status opened = broker.OpenSession(spec.name, spec, info);
    if (!opened.ok()) {
      std::fprintf(stderr, "OpenSession: %s\n", opened.ToString().c_str());
      return 1;
    }
    pdm::Rng rng(spec.sim_seed);
    std::unique_ptr<pdm::QueryStream> stream = factory.CreateStream(spec, &rng);
    recorded[i].resize(static_cast<size_t>(workload_rounds));
    for (pdm::MarketRound& round : recorded[i]) stream->Next(&rng, &round);
  }

  std::printf("=== broker round-trip sweep: %ld clients x %ld rounds, batch %ld, n=%ld ===\n\n",
              static_cast<long>(threads), static_cast<long>(rounds),
              static_cast<long>(batch), static_cast<long>(dim));

  // Timed region: all clients start together; the aggregate rate uses the
  // region wall time (first start to last finish), the honest serving view.
  std::atomic<int64_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<ClientResult> results(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  for (int64_t i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      const std::vector<pdm::MarketRound>& ring = recorded[i];
      const std::string& product = products[i];
      std::vector<pdm::broker::PriceRequest> requests(static_cast<size_t>(batch));
      std::vector<pdm::broker::Quote> quotes(static_cast<size_t>(batch));
      std::vector<const pdm::MarketRound*> batch_rounds(static_cast<size_t>(batch));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      pdm::WallTimer timer;
      size_t cursor = 0;
      int64_t done = 0;
      while (done < rounds) {
        int64_t this_batch = std::min<int64_t>(batch, rounds - done);
        for (int64_t k = 0; k < this_batch; ++k) {
          const pdm::MarketRound& round = ring[cursor];
          cursor = cursor + 1 == ring.size() ? 0 : cursor + 1;
          batch_rounds[k] = &round;
          requests[k] = {product, round.features, round.reserve};
        }
        pdm::Status status =
            broker.PostPrices({requests.data(), static_cast<size_t>(this_batch)},
                              {quotes.data(), static_cast<size_t>(this_batch)});
        if (!status.ok()) {
          std::fprintf(stderr, "PostPrices: %s\n", status.ToString().c_str());
          std::abort();
        }
        for (int64_t k = 0; k < this_batch; ++k) {
          bool accepted = !quotes[k].certain_no_sale &&
                          quotes[k].price <= batch_rounds[k]->value;
          status = broker.Observe(quotes[k].ticket, accepted);
          if (!status.ok()) {
            std::fprintf(stderr, "Observe: %s\n", status.ToString().c_str());
            std::abort();
          }
        }
        done += this_batch;
      }
      results[i].product = product;
      results[i].variant = variants[i];
      results[i].rounds = rounds;
      results[i].wall_seconds = timer.ElapsedSeconds();
    });
  }
  while (ready.load() < threads) {
  }
  pdm::WallTimer region_timer;
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  double region_seconds = region_timer.ElapsedSeconds();

  int64_t total_rounds = threads * rounds;
  double aggregate_per_sec =
      region_seconds > 0.0 ? static_cast<double>(total_rounds) / region_seconds : 0.0;
  int64_t rss_bytes = pdm::CurrentRssBytes();

  pdm::TablePrinter table({"client", "rounds/s", "ns/round"});
  for (const ClientResult& result : results) {
    double per_sec = result.wall_seconds > 0.0
                         ? static_cast<double>(result.rounds) / result.wall_seconds
                         : 0.0;
    table.AddRow({result.product, pdm::FormatDouble(per_sec, 0),
                  pdm::FormatDouble(result.wall_seconds * 1e9 /
                                        static_cast<double>(result.rounds),
                                    1)});
  }
  table.AddRow({"aggregate", pdm::FormatDouble(aggregate_per_sec, 0),
                pdm::FormatDouble(region_seconds * 1e9 /
                                      static_cast<double>(total_rounds),
                                  1)});
  table.Print(std::cout);
  std::printf("\naggregate: %.2fM priced round trips/s over %ld clients (rss %.1f MiB)\n",
              aggregate_per_sec / 1e6, static_cast<long>(threads),
              static_cast<double>(rss_bytes) / (1024.0 * 1024.0));

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    pdm::JsonWriter json(&out);
    json.BeginObject();
    json.Field("schema", "pdm.bench_broker.v1");
    json.Field("threads", threads);
    json.Field("rounds_per_thread", rounds);
    json.Field("batch", batch);
    json.Field("dim", dim);
    json.Field("shards", shards);
    json.Field("workload_rounds", workload_rounds);
    json.Field("delta", delta);
    json.Key("aggregate");
    json.BeginObject();
    json.Field("rounds", total_rounds);
    json.Field("wall_seconds", region_seconds);
    json.Field("rounds_per_sec", aggregate_per_sec);
    json.Field("ns_per_round",
               region_seconds * 1e9 / static_cast<double>(total_rounds));
    json.Field("rss_bytes", rss_bytes);
    json.EndObject();
    json.Key("results");
    json.BeginArray();
    for (const ClientResult& result : results) {
      double wall = result.wall_seconds;
      json.BeginObject();
      json.Field("scenario", result.product);
      json.Field("variant", result.variant);
      json.Field("dim", dim);
      json.Field("rounds", result.rounds);
      json.Field("wall_seconds", wall);
      json.Field("rounds_per_sec",
                 wall > 0.0 ? static_cast<double>(result.rounds) / wall : 0.0);
      json.Field("ns_per_round", wall * 1e9 / static_cast<double>(result.rounds));
      json.Field("rss_bytes", rss_bytes);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::printf("wrote %s (%zu clients, schema pdm.bench_broker.v1)\n", out_path.c_str(),
                results.size());
  }
  return 0;
}
