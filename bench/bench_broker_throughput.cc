// Serving-path throughput: multi-threaded clients driving ticketed pricing
// round trips (batched handle-keyed PostPrices + batched Observes) through
// the Broker front end (DESIGN.md §9).
//
// Where bench_throughput measures the bare engine loop, this bench measures
// the *serving overhead on top of it*: snapshot-directory routing, the
// per-session lock, the span→Vector feature bridge, ticket issue +
// pending-cut detach, and feedback routing. `--products` decouples the
// client count from the product count, so both regimes are measurable:
//
//   bench_broker_throughput                        # 8 clients, one product each
//   bench_broker_throughput --threads=8 --products=1   # all clients contend
//   bench_broker_throughput --threads=16 --batch=128
//   bench_broker_throughput --smoke                # short CI mode
//
// Emits a machine-readable BENCH_broker.json (schema pdm.bench_broker.v1,
// plus the products / per-thread-distribution fields added in PR 5) so the
// aggregate — and the per-thread min/median, which the aggregate can hide —
// can be compared across commits. The thread-count scaling *curve* lives in
// bench_broker_scaling (schema pdm.bench_broker.v2).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "broker_bench_util.h"
#include "common/fault.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/memory.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  int64_t threads = 8;
  int64_t products = 0;
  int64_t rounds = 200000;
  int64_t batch = 64;
  pdm::broker_bench::ProductSetup setup;
  bool smoke = false;
  std::string out_path = "BENCH_broker.json";
  std::string metrics_mode = "none";
  pdm::FlagSet flags("bench_broker_throughput");
  flags.AddString("metrics", &metrics_mode,
                  "metric gateway on the hot path: none (sink cells) or live "
                  "(a wired MetricRegistry) — the <3%% regression gate "
                  "compares the two");
  flags.AddInt64("threads", &threads, "client threads");
  flags.AddInt64("products", &products,
                 "distinct products; clients map round-robin (0 = one per "
                 "thread, 1 = fully contended)");
  flags.AddInt64("rounds", &rounds, "timed round trips per client");
  flags.AddInt64("batch", &batch, "requests per PostPrices batch");
  flags.AddInt64("dim", &setup.dim, "feature dimension n of every product");
  flags.AddInt64("workload_rounds", &setup.workload_rounds,
                 "distinct precomputed queries per product");
  flags.AddInt64("owners", &setup.num_owners, "data owners behind each workload");
  flags.AddDouble("delta", &setup.delta,
                  "uncertainty buffer for the *+uncertainty variants");
  flags.AddUint64("seed", &setup.seed, "base workload seed");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 20000)");
  flags.AddString("out", &out_path, "machine-readable JSON output path ('' disables)");
  std::string faults_mode = "none";
  flags.AddString("faults", &faults_mode,
                  "fault injector on the hot path: none (disarmed) or "
                  "armed-but-idle (armed, zero sites) — the <3%% §14 gate "
                  "compares the two");
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;
  if (smoke && rounds > 20000) rounds = 20000;
  if (products == 0) products = threads;
  if (threads < 1 || rounds < 1 || batch < 1 || setup.dim < 1 || products < 1 ||
      setup.workload_rounds < 1) {
    std::fprintf(stderr,
                 "threads/rounds/batch/dim/products/workload_rounds must be "
                 "positive\n");
    return 1;
  }
  if (metrics_mode != "none" && metrics_mode != "live") {
    std::fprintf(stderr, "--metrics must be 'none' or 'live'\n");
    return 1;
  }
  if (faults_mode != "none" && faults_mode != "armed-but-idle") {
    std::fprintf(stderr, "--faults must be 'none' or 'armed-but-idle'\n");
    return 1;
  }
  // armed-but-idle: the injector is armed with no sites configured, so every
  // ShouldFail() pays the full armed-path lookup and always misses — the
  // worst case for the disabled-fault hot path the <3% gate bounds.
  if (faults_mode == "armed-but-idle") pdm::fault::FaultInjector::Global().Arm();
  setup.rounds = rounds;

  // Serial setup: products with precomputed workloads and registry-built
  // engines; query sequences are recorded up front so the timed region
  // measures broker round trips only.
  pdm::scenario::StreamFactory factory;
  pdm::metrics::MetricRegistry registry;
  pdm::broker::BrokerConfig broker_config;
  if (metrics_mode == "live") broker_config.metrics = &registry;
  pdm::broker::Broker broker(broker_config);
  std::vector<pdm::broker_bench::ProductWorkload> workloads =
      pdm::broker_bench::OpenProducts(&factory, &broker, products, setup, "client");

  std::printf(
      "=== broker round-trip sweep: %ld clients x %ld rounds over %ld products, "
      "batch %ld, n=%ld, metrics=%s, faults=%s ===\n\n",
      static_cast<long>(threads), static_cast<long>(rounds),
      static_cast<long>(products), static_cast<long>(batch),
      static_cast<long>(setup.dim), metrics_mode.c_str(), faults_mode.c_str());

  pdm::broker_bench::RegionResult region =
      pdm::broker_bench::RunClients(&broker, workloads, threads, rounds, batch);
  pdm::broker_bench::ThreadRateStats rates =
      pdm::broker_bench::RateStats(region.clients);
  double aggregate_per_sec = region.aggregate_rounds_per_sec();
  int64_t rss_bytes = pdm::CurrentRssBytes();

  pdm::TablePrinter table({"client", "rounds/s", "ns/round"});
  for (const pdm::broker_bench::ClientResult& result : region.clients) {
    table.AddRow({result.product, pdm::FormatDouble(result.rounds_per_sec(), 0),
                  pdm::FormatDouble(result.wall_seconds * 1e9 /
                                        static_cast<double>(result.rounds),
                                    1)});
  }
  table.AddRow({"aggregate", pdm::FormatDouble(aggregate_per_sec, 0),
                pdm::FormatDouble(region.region_seconds * 1e9 /
                                      static_cast<double>(region.total_rounds),
                                  1)});
  table.Print(std::cout);
  std::printf(
      "\naggregate: %.2fM priced round trips/s over %ld clients "
      "(per-thread min %.2fM / median %.2fM, rss %.1f MiB)\n",
      aggregate_per_sec / 1e6, static_cast<long>(threads), rates.min / 1e6,
      rates.median / 1e6, static_cast<double>(rss_bytes) / (1024.0 * 1024.0));

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    pdm::JsonWriter json(&out);
    json.BeginObject();
    json.Field("schema", "pdm.bench_broker.v1");
    json.Field("threads", threads);
    json.Field("products", products);
    json.Field("rounds_per_thread", rounds);
    json.Field("batch", batch);
    json.Field("dim", setup.dim);
    json.Field("workload_rounds", setup.workload_rounds);
    json.Field("delta", setup.delta);
    json.Field("metrics", metrics_mode);
    json.Field("faults", faults_mode);
    json.Key("aggregate");
    json.BeginObject();
    json.Field("rounds", region.total_rounds);
    json.Field("wall_seconds", region.region_seconds);
    json.Field("rounds_per_sec", aggregate_per_sec);
    json.Field("ns_per_round", region.region_seconds * 1e9 /
                                   static_cast<double>(region.total_rounds));
    json.Field("per_thread_min_rounds_per_sec", rates.min);
    json.Field("per_thread_median_rounds_per_sec", rates.median);
    json.Field("rss_bytes", rss_bytes);
    json.EndObject();
    json.Key("results");
    json.BeginArray();
    for (const pdm::broker_bench::ClientResult& result : region.clients) {
      double wall = result.wall_seconds;
      json.BeginObject();
      json.Field("scenario", result.product);
      json.Field("variant", result.variant);
      json.Field("dim", setup.dim);
      json.Field("rounds", result.rounds);
      json.Field("wall_seconds", wall);
      json.Field("rounds_per_sec", result.rounds_per_sec());
      json.Field("ns_per_round", wall * 1e9 / static_cast<double>(result.rounds));
      json.Field("rss_bytes", rss_bytes);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    out << "\n";
    std::printf("wrote %s (%zu clients, schema pdm.bench_broker.v1)\n",
                out_path.c_str(), region.clients.size());
  }
  return 0;
}
