// Cold-start study (Sections I and V-A): the reserve price mitigates the
// cold-start problem of a posted-price mechanism and reduces cumulative
// regret. Paper numbers at n = 20, t = 1e4: the reserve variant cuts 13.16%
// of the pure variant's cumulative regret (10.92% under uncertainty), and the
// early-round regret-ratio gap is much larger than the final gap.
//
// Thin spec-driven binary: scenario::ColdstartScenarios expands the
// (seed × variant) grid — the registry's `coldstart/*` family — and this
// main only averages the outcomes over the seeds.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t dim = 20;
  int64_t rounds = 10000;
  int64_t num_owners = 2000;
  int64_t seeds = 5;
  double delta = 0.01;
  pdm::FlagSet flags("bench_coldstart_reserve");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddInt64("seeds", &seeds, "number of workload seeds to average");
  flags.AddDouble("delta", &delta, "uncertainty buffer");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Cold start: reserve on/off at n = %ld, T = %ld (%ld seeds) ===\n\n",
              static_cast<long>(dim), static_cast<long>(rounds),
              static_cast<long>(seeds));

  std::vector<pdm::scenario::ScenarioSpec> specs = pdm::scenario::ColdstartScenarios(
      static_cast<int>(dim), rounds, num_owners, delta, seeds);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  // Outcomes are seed-major, four variants per seed (the builder's order).
  constexpr size_t kVariants = 4;
  std::vector<std::string> labels(kVariants);
  std::vector<double> total_regret(kVariants, 0.0);
  std::vector<double> early_ratio(kVariants, 0.0);  // at t = rounds/100
  for (size_t i = 0; i < outcomes.size(); ++i) {
    size_t variant = i % kVariants;
    labels[variant] = outcomes[i].spec.mechanism;
    total_regret[variant] += outcomes[i].result.tracker.cumulative_regret();
    if (!outcomes[i].result.tracker.series().empty()) {
      early_ratio[variant] += outcomes[i].result.tracker.series().front().regret_ratio;
    }
  }

  pdm::TablePrinter table({"variant", "cumulative regret", "early regret ratio"});
  for (size_t i = 0; i < kVariants; ++i) {
    table.AddRow({labels[i],
                  pdm::FormatDouble(total_regret[i] / static_cast<double>(seeds), 1),
                  pdm::FormatDouble(100.0 * early_ratio[i] / static_cast<double>(seeds), 2) +
                      "%"});
  }
  table.Print(std::cout);

  double reduction_exact = 100.0 * (1.0 - total_regret[2] / total_regret[0]);
  double reduction_uncertain = 100.0 * (1.0 - total_regret[3] / total_regret[1]);
  std::printf(
      "\nreserve reduces cumulative regret by %.2f%% (paper: 13.16%%)\n"
      "under uncertainty by %.2f%% (paper: 10.92%%)\n"
      "early-round ratio gap (pure vs reserve): %.2f%% -> %.2f%%\n",
      reduction_exact, reduction_uncertain,
      100.0 * early_ratio[0] / static_cast<double>(seeds),
      100.0 * early_ratio[2] / static_cast<double>(seeds));
  return 0;
}
