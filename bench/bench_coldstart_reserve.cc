// Cold-start study (Sections I and V-A): the reserve price mitigates the
// cold-start problem of a posted-price mechanism and reduces cumulative
// regret. Paper numbers at n = 20, t = 1e4: the reserve variant cuts 13.16%
// of the pure variant's cumulative regret (10.92% under uncertainty), and the
// early-round regret-ratio gap is much larger than the final gap.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  int64_t dim = 20;
  int64_t rounds = 10000;
  int64_t num_owners = 2000;
  int64_t seeds = 5;
  double delta = 0.01;
  pdm::FlagSet flags("bench_coldstart_reserve");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddInt64("seeds", &seeds, "number of workload seeds to average");
  flags.AddDouble("delta", &delta, "uncertainty buffer");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Cold start: reserve on/off at n = %ld, T = %ld (%ld seeds) ===\n\n",
              static_cast<long>(dim), static_cast<long>(rounds),
              static_cast<long>(seeds));

  auto variants = pdm::bench::PaperVariants();  // pure, unc, reserve, reserve+unc
  std::vector<double> total_regret(variants.size(), 0.0);
  std::vector<double> early_ratio(variants.size(), 0.0);  // at t = rounds/100

  int64_t stride = std::max<int64_t>(1, rounds / 100);
  for (int64_t seed = 0; seed < seeds; ++seed) {
    pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
        static_cast<int>(dim), rounds, static_cast<int>(num_owners),
        1000 + static_cast<uint64_t>(seed));
    for (size_t i = 0; i < variants.size(); ++i) {
      pdm::SimulationResult result = pdm::bench::RunLinearVariant(
          workload, variants[i], static_cast<int>(dim), rounds, delta, stride,
          /*sim_seed=*/99 + static_cast<uint64_t>(seed));
      total_regret[i] += result.tracker.cumulative_regret();
      if (!result.tracker.series().empty()) {
        early_ratio[i] += result.tracker.series().front().regret_ratio;
      }
    }
  }

  pdm::TablePrinter table({"variant", "cumulative regret", "early regret ratio"});
  for (size_t i = 0; i < variants.size(); ++i) {
    table.AddRow({variants[i].label,
                  pdm::FormatDouble(total_regret[i] / static_cast<double>(seeds), 1),
                  pdm::FormatDouble(100.0 * early_ratio[i] / static_cast<double>(seeds), 2) +
                      "%"});
  }
  table.Print(std::cout);

  double reduction_exact = 100.0 * (1.0 - total_regret[2] / total_regret[0]);
  double reduction_uncertain = 100.0 * (1.0 - total_regret[3] / total_regret[1]);
  std::printf(
      "\nreserve reduces cumulative regret by %.2f%% (paper: 13.16%%)\n"
      "under uncertainty by %.2f%% (paper: 10.92%%)\n"
      "early-round ratio gap (pure vs reserve): %.2f%% -> %.2f%%\n",
      reduction_exact, reduction_uncertain,
      100.0 * early_ratio[0] / static_cast<double>(seeds),
      100.0 * early_ratio[2] / static_cast<double>(seeds));
  return 0;
}
