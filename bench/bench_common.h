#ifndef PDM_BENCH_BENCH_COMMON_H_
#define PDM_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "market/linear_market.h"
#include "market/regret_tracker.h"
#include "market/round.h"
#include "market/runner.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/interval_engine.h"
#include "rng/subgaussian.h"

/// \file
/// Shared machinery for the bench binaries that reproduce the paper's
/// evaluation (Section V). Each bench prints the same rows/series the paper
/// reports, with the paper's numbers printed inline for comparison.

namespace pdm::bench {

/// The four mechanism variants of the evaluation, in the paper's order.
struct Variant {
  std::string label;
  bool use_reserve;
  bool uncertainty;
};

inline std::vector<Variant> PaperVariants() {
  return {
      {"pure", false, false},
      {"uncertainty", false, true},
      {"reserve", true, false},
      {"reserve+uncertainty", true, true},
  };
}

/// Precomputes a noisy-linear-query workload (Application 1) so all variants
/// price the identical query sequence. `rounds[t].value` is the *clean*
/// market value x_tᵀθ*; per-variant market noise is added at replay time.
struct LinearWorkload {
  std::vector<MarketRound> rounds;
  Vector theta;
  double recommended_radius = 0.0;
};

inline LinearWorkload MakeLinearWorkload(int dim, int64_t rounds, int num_owners,
                                         uint64_t seed) {
  NoisyLinearMarketConfig config;
  config.feature_dim = dim;
  config.num_owners = num_owners;
  config.value_noise_sigma = 0.0;
  Rng rng(seed);
  NoisyLinearQueryStream stream(config, &rng);
  LinearWorkload workload;
  workload.theta = stream.theta();
  workload.recommended_radius = stream.RecommendedRadius();
  workload.rounds.reserve(static_cast<size_t>(rounds));
  for (int64_t t = 0; t < rounds; ++t) {
    workload.rounds.push_back(stream.Next(&rng));
  }
  return workload;
}

/// Replays a precomputed workload, adding fresh Gaussian market noise with
/// standard deviation `noise_sigma` to each round's clean value.
class NoisyReplayStream : public QueryStream {
 public:
  NoisyReplayStream(const std::vector<MarketRound>* rounds, double noise_sigma)
      : rounds_(rounds), noise_sigma_(noise_sigma) {}

  using QueryStream::Next;
  void Next(Rng* rng, MarketRound* round) override {
    *round = (*rounds_)[cursor_];  // copy-assign reuses the feature buffer
    cursor_ = (cursor_ + 1) % rounds_->size();
    if (noise_sigma_ > 0.0) {
      round->value += rng->NextGaussian(0.0, noise_sigma_);
    }
  }

 private:
  const std::vector<MarketRound>* rounds_;
  double noise_sigma_;
  size_t cursor_ = 0;
};

/// Builds the engine for one paper variant. For dim ≥ 2 this is the ellipsoid
/// engine; dim == 1 routes to the interval engine with the evaluation's
/// K₁ = [0, 2]. The uncertainty variants use the δ = `delta` buffer.
inline std::unique_ptr<PricingEngine> MakeLinearVariantEngine(
    const LinearWorkload& workload, const Variant& variant, int dim,
    int64_t rounds, double delta) {
  double engine_delta = variant.uncertainty ? delta : 0.0;
  if (dim == 1) {
    IntervalEngineConfig config;
    config.theta_min = 0.0;
    config.theta_max = 2.0;
    config.horizon = rounds;
    config.delta = engine_delta;
    config.use_reserve = variant.use_reserve;
    return std::make_unique<IntervalPricingEngine>(config);
  }
  EllipsoidEngineConfig config;
  config.dim = dim;
  config.horizon = rounds;
  config.initial_radius = workload.recommended_radius;
  config.delta = engine_delta;
  config.use_reserve = variant.use_reserve;
  return std::make_unique<EllipsoidPricingEngine>(config);
}

/// One paper variant as a `SimulationRunner` scenario over a precomputed
/// workload. The workload is shared read-only across scenarios; the
/// uncertainty variants add market noise σ = δ/(√(2·log 2)·log T) at replay
/// time from the scenario's own seeded stream.
inline ScenarioSpec LinearVariantScenario(const LinearWorkload* workload,
                                          const Variant& variant, int dim,
                                          int64_t rounds, double delta,
                                          int64_t series_stride,
                                          uint64_t sim_seed) {
  double noise_sigma =
      variant.uncertainty ? SigmaForBuffer(delta, 2.0, rounds) : 0.0;
  ScenarioSpec spec;
  spec.name = variant.label;
  spec.seed = sim_seed;
  spec.options.rounds = rounds;
  spec.options.series_stride = series_stride;
  spec.make_stream = [workload, noise_sigma](Rng*) {
    return std::make_unique<NoisyReplayStream>(&workload->rounds, noise_sigma);
  };
  spec.make_engine = [workload, variant, dim, rounds, delta]() {
    return MakeLinearVariantEngine(*workload, variant, dim, rounds, delta);
  };
  return spec;
}

/// Runs one paper variant serially over a precomputed workload.
inline SimulationResult RunLinearVariant(const LinearWorkload& workload,
                                         const Variant& variant, int dim, int64_t rounds,
                                         double delta, int64_t series_stride,
                                         uint64_t sim_seed) {
  ScenarioSpec spec = LinearVariantScenario(&workload, variant, dim, rounds,
                                            delta, series_stride, sim_seed);
  return SimulationRunner::RunScenario(spec).result;
}

/// Runs all `variants` concurrently on the `SimulationRunner` thread pool.
/// Results are index-aligned with `variants` and bit-identical to serial
/// `RunLinearVariant` calls with the same `sim_seed`.
inline std::vector<SimulationResult> RunLinearVariantsParallel(
    const LinearWorkload& workload, const std::vector<Variant>& variants,
    int dim, int64_t rounds, double delta, int64_t series_stride,
    uint64_t sim_seed) {
  std::vector<ScenarioSpec> specs;
  specs.reserve(variants.size());
  for (const Variant& variant : variants) {
    specs.push_back(LinearVariantScenario(&workload, variant, dim, rounds,
                                          delta, series_stride, sim_seed));
  }
  std::vector<ScenarioResult> scenario_results = SimulationRunner().RunAll(specs);
  std::vector<SimulationResult> results;
  results.reserve(scenario_results.size());
  for (ScenarioResult& r : scenario_results) results.push_back(std::move(r.result));
  return results;
}

/// Checkpoint rounds for figure-style series: `per_decade` log-spaced points
/// per decade up to `max_round`, always including `max_round`.
inline std::vector<int64_t> LogCheckpoints(int64_t max_round, int per_decade = 4) {
  std::vector<int64_t> points;
  double factor = std::pow(10.0, 1.0 / per_decade);
  double current = 10.0;
  while (static_cast<int64_t>(current) < max_round) {
    int64_t value = static_cast<int64_t>(current);
    if (points.empty() || value > points.back()) points.push_back(value);
    current *= factor;
  }
  points.push_back(max_round);
  return points;
}

}  // namespace pdm::bench

#endif  // PDM_BENCH_BENCH_COMMON_H_
