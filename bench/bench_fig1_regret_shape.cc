// Fig. 1: the single-round regret of a posted-price mechanism with a reserve
// price, as a function of the posted price. Underestimating the market value
// loses only the markup; overestimating kills the sale and forfeits the whole
// value — the piecewise, highly asymmetric shape that motivates the design.
//
// Prints R(p) per Eq. (1) for a sweep of posted prices, for both orderings of
// reserve vs market value.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/regret_tracker.h"

int main(int argc, char** argv) {
  double value = 1.0;
  double reserve = 0.6;
  int64_t steps = 14;
  pdm::FlagSet flags("bench_fig1_regret_shape");
  flags.AddDouble("value", &value, "market value v of the query");
  flags.AddDouble("reserve", &reserve, "reserve price q of the query");
  flags.AddInt64("steps", &steps, "number of sweep points");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Fig. 1: single-round regret R(p), v = %.2f ===\n\n", value);
  pdm::TablePrinter table({"posted price p", "R(p) | q=" + pdm::FormatDouble(reserve, 2),
                           "R(p) | q=" + pdm::FormatDouble(1.2 * value, 2) + " (q>v)"});
  for (int64_t i = 0; i <= steps; ++i) {
    double p = 1.3 * value * static_cast<double>(i) / static_cast<double>(steps);
    // With the reserve constraint the broker actually posts max(q, p).
    double p_low = std::max(reserve, p);
    double r_low =
        pdm::RegretTracker::SingleRoundRegret(value, reserve, p_low, p_low <= value);
    double q_high = 1.2 * value;
    double p_high = std::max(q_high, p);
    double r_high =
        pdm::RegretTracker::SingleRoundRegret(value, q_high, p_high, p_high <= value);
    table.AddRow({pdm::FormatDouble(p, 3), pdm::FormatDouble(r_low, 3),
                  pdm::FormatDouble(r_high, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper's Fig. 1): for q <= v, regret falls linearly to 0\n"
      "at p = v, then jumps to v (no sale) for p > v; for q > v it is 0\n"
      "everywhere.\n");
  return 0;
}
