// Fig. 4(a)-(f): cumulative regret of the four mechanism variants in the
// pricing of noisy linear queries, for n ∈ {1, 20, 40, 60, 80, 100} with
// T ∈ {1e2, 1e4, 1e4, 1e5, 1e5, 1e5} and δ = 0.01 (Section V-A).
//
// One block per subfigure; within a block, one series column per variant at
// log-spaced checkpoints. Pass --full=false for a faster smoke run.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace {

struct SubFigure {
  const char* panel;
  int dim;
  int64_t rounds;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t num_owners = 2000;
  double delta = 0.01;
  uint64_t seed = 1;
  bool full = true;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig4_cumulative_regret");
  flags.AddInt64("owners", &num_owners, "number of data owners behind the broker");
  flags.AddDouble("delta", &delta, "uncertainty buffer for the *+uncertainty variants");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "workload seed");
  flags.AddBool("full", &full, "run the paper's full scale (false: 10x fewer rounds)");
  flags.AddString("csv", &csv_path, "optional CSV dump of all series");
  if (!flags.Parse(argc, argv)) return 1;

  const std::vector<SubFigure> subfigures = {
      {"a", 1, 100},    {"b", 20, 10000},  {"c", 40, 10000},
      {"d", 60, 100000}, {"e", 80, 100000}, {"f", 100, 100000},
  };
  auto variants = pdm::bench::PaperVariants();
  pdm::CsvWriter csv(csv_path, {"panel", "n", "variant", "round", "cumulative_regret"});

  for (const SubFigure& sub : subfigures) {
    int64_t rounds = full ? sub.rounds : std::max<int64_t>(100, sub.rounds / 10);
    std::printf("=== Fig. 4(%s): n = %d, T = %ld, delta = %.3g ===\n", sub.panel, sub.dim,
                static_cast<long>(rounds), delta);
    pdm::WallTimer timer;
    pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
        sub.dim, rounds, static_cast<int>(num_owners), seed + static_cast<uint64_t>(sub.dim));

    std::vector<int64_t> checkpoints = pdm::bench::LogCheckpoints(rounds);
    int64_t stride = std::max<int64_t>(1, rounds / 200);

    std::vector<std::string> headers = {"round"};
    for (const auto& v : variants) headers.push_back(v.label);
    pdm::TablePrinter table(headers);

    std::vector<pdm::SimulationResult> results = pdm::bench::RunLinearVariantsParallel(
        workload, variants, sub.dim, rounds, delta, stride, /*sim_seed=*/99);

    std::vector<std::vector<pdm::RegretSeriesPoint>> series;
    for (size_t i = 0; i < variants.size(); ++i) {
      const pdm::SimulationResult& result = results[i];
      series.push_back(result.tracker.series());
      for (const auto& point : result.tracker.series()) {
        csv.WriteRow({sub.panel, std::to_string(sub.dim), variants[i].label,
                      std::to_string(point.round),
                      pdm::FormatDouble(point.cumulative_regret, 4)});
      }
    }

    for (int64_t checkpoint : checkpoints) {
      std::vector<std::string> row = {std::to_string(checkpoint)};
      for (const auto& s : series) {
        // Last recorded point at or before the checkpoint.
        double regret = 0.0;
        for (const auto& point : s) {
          if (point.round <= checkpoint) regret = point.cumulative_regret;
        }
        row.push_back(pdm::FormatDouble(regret, 1));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::printf("[%.1fs]\n\n", timer.ElapsedSeconds());
  }
  std::printf(
      "Shape checks (paper): regret grows with n; the reserve variants sit\n"
      "below their no-reserve counterparts; uncertainty adds regret, most\n"
      "visibly at large t; the n = 1 panel shows reserve making no difference\n"
      "after the first round.\n");
  return 0;
}
