// Fig. 4(a)-(f): cumulative regret of the four mechanism variants in the
// pricing of noisy linear queries, for n ∈ {1, 20, 40, 60, 80, 100} with
// T ∈ {1e2, 1e4, 1e4, 1e5, 1e5, 1e5} and δ = 0.01 (Section V-A).
//
// Thin spec-driven binary: the whole figure is the declarative grid
// scenario::Fig4Scenarios (also runnable as `pdm_run --scenarios=fig4/*`);
// this main only renders the per-panel checkpoint tables. One block per
// subfigure; within a block, one series column per variant at log-spaced
// checkpoints. Pass --full=false for a faster smoke run.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t num_owners = 2000;
  double delta = 0.01;
  uint64_t seed = 1;
  bool full = true;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig4_cumulative_regret");
  flags.AddInt64("owners", &num_owners, "number of data owners behind the broker");
  flags.AddDouble("delta", &delta, "uncertainty buffer for the *+uncertainty variants");
  flags.AddUint64("seed", &seed, "workload seed");
  flags.AddBool("full", &full, "run the paper's full scale (false: 10x fewer rounds)");
  flags.AddString("csv", &csv_path, "optional CSV dump of all series");
  if (!flags.Parse(argc, argv)) return 1;

  std::vector<pdm::scenario::ScenarioSpec> specs =
      pdm::scenario::Fig4Scenarios(num_owners, delta, seed, full);
  pdm::CsvWriter csv(csv_path, {"panel", "n", "variant", "round", "cumulative_regret"});

  // All 24 (panel, variant) scenarios run concurrently; each is a pure
  // function of its spec, so the grouping below is presentation only.
  pdm::WallTimer timer;
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  constexpr size_t kVariantsPerPanel = 4;
  const char* const panels[] = {"a", "b", "c", "d", "e", "f"};
  for (size_t panel = 0; panel * kVariantsPerPanel < outcomes.size(); ++panel) {
    const auto* block = &outcomes[panel * kVariantsPerPanel];
    int64_t rounds = block[0].spec.rounds;
    std::printf("=== Fig. 4(%s): n = %d, T = %ld, delta = %.3g ===\n", panels[panel],
                block[0].spec.n, static_cast<long>(rounds), delta);

    std::vector<std::string> headers = {"round"};
    for (size_t i = 0; i < kVariantsPerPanel; ++i) {
      headers.push_back(block[i].spec.mechanism);
    }
    pdm::TablePrinter table(headers);

    for (size_t i = 0; i < kVariantsPerPanel; ++i) {
      for (const auto& point : block[i].result.tracker.series()) {
        csv.WriteRow({panels[panel], std::to_string(block[i].spec.n),
                      block[i].spec.mechanism, std::to_string(point.round),
                      pdm::FormatDouble(point.cumulative_regret, 4)});
      }
    }

    for (int64_t checkpoint : pdm::scenario::LogCheckpoints(rounds)) {
      std::vector<std::string> row = {std::to_string(checkpoint)};
      for (size_t i = 0; i < kVariantsPerPanel; ++i) {
        // Last recorded point at or before the checkpoint.
        double regret = 0.0;
        for (const auto& point : block[i].result.tracker.series()) {
          if (point.round <= checkpoint) regret = point.cumulative_regret;
        }
        row.push_back(pdm::FormatDouble(regret, 1));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf("[total %.1fs]\n\n", timer.ElapsedSeconds());
  std::printf(
      "Shape checks (paper): regret grows with n; the reserve variants sit\n"
      "below their no-reserve counterparts; uncertainty adds regret, most\n"
      "visibly at large t; the n = 1 panel shows reserve making no difference\n"
      "after the first round.\n");
  return 0;
}
