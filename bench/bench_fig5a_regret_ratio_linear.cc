// Fig. 5(a): regret ratio (cumulative regret / cumulative market value) in
// the pricing of noisy linear queries at n = 100, for the four mechanism
// variants plus the risk-averse baseline that posts the reserve each round.
//
// Paper end-of-run ratios (T = 1e5): pure 8.48%, uncertainty 11.19%, reserve
// 7.77%, reserve+uncertainty 9.87%, risk-averse baseline 18.16%. Early rounds
// show the reserve variants far below the pure ones — the cold-start
// mitigation the paper highlights.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  int64_t dim = 100;
  int64_t rounds = 100000;
  int64_t num_owners = 2000;
  double delta = 0.01;
  uint64_t seed = 1;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig5a_regret_ratio_linear");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddDouble("delta", &delta, "uncertainty buffer");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "workload seed");
  flags.AddString("csv", &csv_path, "optional CSV dump");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Fig. 5(a): regret ratios, noisy linear query, n = %ld, T = %ld ===\n\n",
              static_cast<long>(dim), static_cast<long>(rounds));

  pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
      static_cast<int>(dim), rounds, static_cast<int>(num_owners), seed);
  auto variants = pdm::bench::PaperVariants();
  int64_t stride = std::max<int64_t>(1, rounds / 400);
  pdm::CsvWriter csv(csv_path, {"variant", "round", "regret_ratio"});

  std::vector<std::string> headers = {"round"};
  for (const auto& v : variants) headers.push_back(v.label);
  headers.push_back("risk-averse");
  pdm::TablePrinter table(headers);

  std::vector<pdm::SimulationResult> results = pdm::bench::RunLinearVariantsParallel(
      workload, variants, static_cast<int>(dim), rounds, delta, stride, 99);

  std::vector<std::vector<pdm::RegretSeriesPoint>> series;
  std::vector<double> final_ratio;
  double baseline_final = 0.0;
  for (size_t i = 0; i < variants.size(); ++i) {
    const pdm::SimulationResult& result = results[i];
    series.push_back(result.tracker.series());
    final_ratio.push_back(result.tracker.regret_ratio());
    baseline_final = result.tracker.baseline_regret_ratio();
    for (const auto& point : result.tracker.series()) {
      csv.WriteRow({variants[i].label, std::to_string(point.round),
                    pdm::FormatDouble(point.regret_ratio, 6)});
    }
  }

  for (int64_t checkpoint : pdm::bench::LogCheckpoints(rounds)) {
    std::vector<std::string> row = {std::to_string(checkpoint)};
    double baseline_at = 0.0;
    for (const auto& s : series) {
      double ratio = 0.0;
      for (const auto& point : s) {
        if (point.round <= checkpoint) {
          ratio = point.regret_ratio;
          baseline_at = point.baseline_regret_ratio;
        }
      }
      row.push_back(pdm::FormatDouble(100.0 * ratio, 2) + "%");
    }
    row.push_back(pdm::FormatDouble(100.0 * baseline_at, 2) + "%");
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf("\nfinal ratios (paper: pure 8.48%%, uncertainty 11.19%%, reserve 7.77%%, "
              "reserve+uncertainty 9.87%%, baseline 18.16%%):\n");
  for (size_t i = 0; i < variants.size(); ++i) {
    std::printf("  %-22s %6.2f%%\n", variants[i].label.c_str(), 100.0 * final_ratio[i]);
  }
  std::printf("  %-22s %6.2f%%\n", "risk-averse baseline", 100.0 * baseline_final);
  if (baseline_final > 0.0) {
    std::printf("\nreduction vs baseline: reserve %.2f%%, reserve+uncertainty %.2f%% "
                "(paper: 57.19%%, 45.64%%)\n",
                100.0 * (1.0 - final_ratio[2] / baseline_final),
                100.0 * (1.0 - final_ratio[3] / baseline_final));
  }
  return 0;
}
