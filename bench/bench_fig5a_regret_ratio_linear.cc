// Fig. 5(a): regret ratio (cumulative regret / cumulative market value) in
// the pricing of noisy linear queries at n = 100, for the four mechanism
// variants plus the risk-averse baseline that posts the reserve each round.
//
// Thin spec-driven binary over scenario::Fig5aScenarios (also runnable as
// `pdm_run --scenarios=fig5a/*`). Paper end-of-run ratios (T = 1e5): pure
// 8.48%, uncertainty 11.19%, reserve 7.77%, reserve+uncertainty 9.87%,
// risk-averse baseline 18.16%. Early rounds show the reserve variants far
// below the pure ones — the cold-start mitigation the paper highlights.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t dim = 100;
  int64_t rounds = 100000;
  int64_t num_owners = 2000;
  double delta = 0.01;
  uint64_t seed = 1;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig5a_regret_ratio_linear");
  flags.AddInt64("dim", &dim, "feature dimension n");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddDouble("delta", &delta, "uncertainty buffer");
  flags.AddUint64("seed", &seed, "workload seed");
  flags.AddString("csv", &csv_path, "optional CSV dump");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Fig. 5(a): regret ratios, noisy linear query, n = %ld, T = %ld ===\n\n",
              static_cast<long>(dim), static_cast<long>(rounds));

  std::vector<pdm::scenario::ScenarioSpec> specs = pdm::scenario::Fig5aScenarios(
      static_cast<int>(dim), rounds, num_owners, delta, seed);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  pdm::CsvWriter csv(csv_path, {"variant", "round", "regret_ratio"});
  std::vector<std::string> headers = {"round"};
  for (const auto& outcome : outcomes) headers.push_back(outcome.spec.mechanism);
  headers.push_back("risk-averse");
  pdm::TablePrinter table(headers);

  double baseline_final = 0.0;
  for (const auto& outcome : outcomes) {
    baseline_final = outcome.result.tracker.baseline_regret_ratio();
    for (const auto& point : outcome.result.tracker.series()) {
      csv.WriteRow({outcome.spec.mechanism, std::to_string(point.round),
                    pdm::FormatDouble(point.regret_ratio, 6)});
    }
  }

  for (int64_t checkpoint : pdm::scenario::LogCheckpoints(rounds)) {
    std::vector<std::string> row = {std::to_string(checkpoint)};
    double baseline_at = 0.0;
    for (const auto& outcome : outcomes) {
      double ratio = 0.0;
      for (const auto& point : outcome.result.tracker.series()) {
        if (point.round <= checkpoint) {
          ratio = point.regret_ratio;
          baseline_at = point.baseline_regret_ratio;
        }
      }
      row.push_back(pdm::FormatDouble(100.0 * ratio, 2) + "%");
    }
    row.push_back(pdm::FormatDouble(100.0 * baseline_at, 2) + "%");
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf("\nfinal ratios (paper: pure 8.48%%, uncertainty 11.19%%, reserve 7.77%%, "
              "reserve+uncertainty 9.87%%, baseline 18.16%%):\n");
  for (const auto& outcome : outcomes) {
    std::printf("  %-22s %6.2f%%\n", outcome.spec.mechanism.c_str(),
                100.0 * outcome.result.tracker.regret_ratio());
  }
  std::printf("  %-22s %6.2f%%\n", "risk-averse baseline", 100.0 * baseline_final);
  if (baseline_final > 0.0) {
    double reserve_ratio = outcomes[2].result.tracker.regret_ratio();
    double reserve_unc_ratio = outcomes[3].result.tracker.regret_ratio();
    std::printf("\nreduction vs baseline: reserve %.2f%%, reserve+uncertainty %.2f%% "
                "(paper: 57.19%%, 45.64%%)\n",
                100.0 * (1.0 - reserve_ratio / baseline_final),
                100.0 * (1.0 - reserve_unc_ratio / baseline_final));
  }
  return 0;
}
