// Fig. 5(b): regret ratios in the pricing of accommodation rentals under the
// log-linear market value model (n = 55, T = 74,111), for the pure version
// and the reserve versions with log-ratio log(q)/log(v) ∈ {0.4, 0.6, 0.8},
// each against the risk-averse baseline that posts the reserve every round.
//
// Thin spec-driven binary over scenario::Fig5bScenarios (also runnable as
// `pdm_run --scenarios=fig5b/*`). Paper end-of-run ratios: pure 4.57%,
// ratio 0.4 4.01%, 0.6 3.83%, 0.8 3.79%; baselines 23.40%, 17.00%, 9.33%;
// reductions 82.88%, 77.46%, 59.39%.
//
// Reconciliation note (see DESIGN.md §3): with the honest ball prior
// R = √2·‖θ* − c₁‖, n = 55 needs ≈n(n+1)·ln(width/ε) ≈ 25k bisection rounds
// before the ε-floor, and each bisection round rejects ~half the time at the
// cost of the full market value, so the *cumulative* ratio at 74k rounds
// stays well above the paper's finals while the *tail* ratio (last 20% of
// rounds) matches them. The paper's finals sit exactly at the ε = n²/T
// floor, which implies an effectively tight prior around the offline fit;
// pass --oracle_prior_radius=0.005 to see that regime.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "features/airbnb_features.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t listings = 74111;
  uint64_t seed = 21;
  double oracle_prior_radius = 0.0;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig5b_accommodation");
  flags.AddInt64("listings", &listings, "number of booking requests T");
  flags.AddUint64("seed", &seed, "dataset seed");
  flags.AddDouble("oracle_prior_radius", &oracle_prior_radius,
                  "if > 0, center the initial knowledge set on the offline fit with this "
                  "radius (0.005 reproduces the tight-prior regime the paper's finals "
                  "imply); 0 uses the honest market-level prior");
  flags.AddString("csv", &csv_path, "optional CSV dump");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Fig. 5(b): accommodation rental, log-linear model, n = %d, T = %ld ===\n\n",
              pdm::AirbnbFeatureSpace::kDim, static_cast<long>(listings));
  pdm::CsvWriter csv(csv_path, {"config", "round", "regret_ratio"});

  std::vector<pdm::scenario::ScenarioSpec> specs =
      pdm::scenario::Fig5bScenarios(listings, seed, oracle_prior_radius);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  auto label_of = [](const pdm::scenario::ScenarioSpec& spec) {
    // "fig5b/pure" -> "pure", "fig5b/ratio=0.4" -> "ratio=0.4".
    return spec.name.substr(spec.name.find('/') + 1);
  };

  std::vector<std::string> headers = {"round"};
  for (const auto& outcome : outcomes) headers.push_back(label_of(outcome.spec));
  pdm::TablePrinter table(headers);

  std::vector<double> tail_ratio;
  for (const auto& outcome : outcomes) {
    const auto& s = outcome.result.tracker.series();
    tail_ratio.push_back(
        s.size() >= 5 ? pdm::TailRegretRatio(s[s.size() - 1 - s.size() / 5], s.back())
                      : outcome.result.tracker.regret_ratio());
    for (const auto& point : s) {
      csv.WriteRow({label_of(outcome.spec), std::to_string(point.round),
                    pdm::FormatDouble(point.regret_ratio, 6)});
    }
  }

  for (int64_t checkpoint : pdm::scenario::LogCheckpoints(listings)) {
    std::vector<std::string> row = {std::to_string(checkpoint)};
    for (const auto& outcome : outcomes) {
      double ratio = 0.0;
      for (const auto& point : outcome.result.tracker.series()) {
        if (point.round <= checkpoint) ratio = point.regret_ratio;
      }
      row.push_back(pdm::FormatDouble(100.0 * ratio, 2) + "%");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  double test_mse =
      driver.factory().FindAirbnbMarket(driver.Capped(specs.front()))->test_mse;
  std::printf("\noffline OLS test MSE: %.3f (paper: 0.226)\n\n", test_mse);
  std::printf("final ratios (paper: pure 4.57%%, 0.4 4.01%%, 0.6 3.83%%, 0.8 3.79%%):\n");
  for (size_t i = 0; i < outcomes.size(); ++i) {
    std::printf("  %-10s cumulative %6.2f%%  tail(last 20%%) %6.2f%%",
                label_of(outcomes[i].spec).c_str(),
                100.0 * outcomes[i].result.tracker.regret_ratio(), 100.0 * tail_ratio[i]);
    if (outcomes[i].spec.airbnb.log_reserve_ratio > 0.0) {
      std::printf("   risk-averse baseline %6.2f%%",
                  100.0 * outcomes[i].result.tracker.baseline_regret_ratio());
    }
    std::printf("\n");
  }
  std::printf(
      "(paper baselines: 23.40%%, 17.00%%, 9.33%%. The tail ratio is the\n"
      "post-convergence level and is the number comparable to the paper's\n"
      "finals under an honest ball prior; see the header comment.)\n");
  return 0;
}
