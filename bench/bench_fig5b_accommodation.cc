// Fig. 5(b): regret ratios in the pricing of accommodation rentals under the
// log-linear market value model (n = 55, T = 74,111), for the pure version
// and the reserve versions with log-ratio log(q)/log(v) ∈ {0.4, 0.6, 0.8},
// each against the risk-averse baseline that posts the reserve every round.
//
// Paper end-of-run ratios: pure 4.57%, ratio 0.4 4.01%, 0.6 3.83%, 0.8
// 3.79%; baselines 23.40%, 17.00%, 9.33%; reductions 82.88%, 77.46%, 59.39%.
//
// Reconciliation note (see DESIGN.md §3): with the honest ball prior
// R = √2·‖θ* − c₁‖, n = 55 needs ≈n(n+1)·ln(width/ε) ≈ 25k bisection rounds
// before the ε-floor, and each bisection round rejects ~half the time at the
// cost of the full market value, so the *cumulative* ratio at 74k rounds
// stays well above the paper's finals while the *tail* ratio (last 20% of
// rounds) matches them. The paper's finals sit exactly at the ε = n²/T
// floor, which implies an effectively tight prior around the offline fit;
// pass --oracle_prior_radius=0.005 to see that regime.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/airbnb_market.h"
#include "pricing/generalized_engine.h"

namespace {

pdm::SimulationResult RunRatio(const pdm::AirbnbMarket& market, bool use_reserve,
                               int64_t rounds, int64_t stride,
                               double oracle_prior_radius) {
  pdm::EllipsoidEngineConfig base_config;
  base_config.dim = pdm::AirbnbFeatureSpace::kDim;
  base_config.horizon = rounds;
  if (oracle_prior_radius > 0.0) {
    base_config.initial_center = market.theta;
    base_config.initial_radius = oracle_prior_radius;
  } else {
    base_config.initial_radius = market.recommended_radius;
    base_config.initial_center = market.recommended_center;
  }
  base_config.use_reserve = use_reserve;
  pdm::GeneralizedPricingEngine engine(
      std::make_unique<pdm::EllipsoidPricingEngine>(base_config),
      std::make_shared<pdm::ExpLink>(), std::make_shared<pdm::IdentityFeatureMap>());
  pdm::ReplayQueryStream stream(&market.rounds);
  pdm::SimulationOptions options;
  options.rounds = rounds;
  options.series_stride = stride;
  pdm::Rng rng(5);
  return pdm::RunMarket(&stream, &engine, options, &rng);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t listings = 74111;
  uint64_t seed = 21;
  double oracle_prior_radius = 0.0;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig5b_accommodation");
  flags.AddInt64("listings", &listings, "number of booking requests T");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "dataset seed");
  flags.AddDouble("oracle_prior_radius", &oracle_prior_radius,
                  "if > 0, center the initial knowledge set on the offline fit with this "
                  "radius (0.005 reproduces the tight-prior regime the paper's finals "
                  "imply); 0 uses the honest market-level prior");
  flags.AddString("csv", &csv_path, "optional CSV dump");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Fig. 5(b): accommodation rental, log-linear model, n = %d, T = %ld ===\n\n",
              pdm::AirbnbFeatureSpace::kDim, static_cast<long>(listings));
  int64_t stride = std::max<int64_t>(1, listings / 400);
  pdm::CsvWriter csv(csv_path, {"config", "round", "regret_ratio"});

  struct Run {
    std::string label;
    double ratio;  // 0 = pure (no reserve)
  };
  const std::vector<Run> runs = {
      {"pure", 0.0}, {"ratio=0.4", 0.4}, {"ratio=0.6", 0.6}, {"ratio=0.8", 0.8}};

  std::vector<std::string> headers = {"round"};
  for (const auto& run : runs) headers.push_back(run.label);
  pdm::TablePrinter table(headers);

  std::vector<std::vector<pdm::RegretSeriesPoint>> series;
  std::vector<double> final_ratio, baseline_ratio, tail_ratio;
  double test_mse = 0.0;
  for (const Run& run : runs) {
    pdm::AirbnbMarketConfig config;
    config.num_listings = listings;
    config.log_reserve_ratio = run.ratio;
    pdm::Rng rng(seed);  // identical listings across configurations
    pdm::AirbnbMarket market = pdm::BuildAirbnbMarket(config, &rng);
    test_mse = market.test_mse;
    pdm::SimulationResult result = RunRatio(market, /*use_reserve=*/run.ratio > 0.0,
                                            listings, stride, oracle_prior_radius);
    series.push_back(result.tracker.series());
    final_ratio.push_back(result.tracker.regret_ratio());
    baseline_ratio.push_back(result.tracker.baseline_regret_ratio());
    const auto& s = result.tracker.series();
    tail_ratio.push_back(
        s.size() >= 5 ? pdm::TailRegretRatio(s[s.size() - 1 - s.size() / 5], s.back())
                      : result.tracker.regret_ratio());
    for (const auto& point : result.tracker.series()) {
      csv.WriteRow({run.label, std::to_string(point.round),
                    pdm::FormatDouble(point.regret_ratio, 6)});
    }
  }

  for (int64_t checkpoint : pdm::bench::LogCheckpoints(listings)) {
    std::vector<std::string> row = {std::to_string(checkpoint)};
    for (const auto& s : series) {
      double ratio = 0.0;
      for (const auto& point : s) {
        if (point.round <= checkpoint) ratio = point.regret_ratio;
      }
      row.push_back(pdm::FormatDouble(100.0 * ratio, 2) + "%");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf("\noffline OLS test MSE: %.3f (paper: 0.226)\n\n", test_mse);
  std::printf("final ratios (paper: pure 4.57%%, 0.4 4.01%%, 0.6 3.83%%, 0.8 3.79%%):\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::printf("  %-10s cumulative %6.2f%%  tail(last 20%%) %6.2f%%",
                runs[i].label.c_str(), 100.0 * final_ratio[i], 100.0 * tail_ratio[i]);
    if (runs[i].ratio > 0.0) {
      std::printf("   risk-averse baseline %6.2f%%", 100.0 * baseline_ratio[i]);
    }
    std::printf("\n");
  }
  std::printf(
      "(paper baselines: 23.40%%, 17.00%%, 9.33%%. The tail ratio is the\n"
      "post-convergence level and is the number comparable to the paper's\n"
      "finals under an honest ball prior; see the header comment.)\n");
  return 0;
}
