// Fig. 5(c): regret ratios in the pricing of ad impressions under the
// logistic market value model (pure version), for hashed dimensions
// n ∈ {128, 1024} in both the sparse encoding (all hashed coordinates) and
// the dense encoding (only non-zero-weight coordinates).
//
// Paper end-of-run ratios (T = 1e5): n=128 sparse 2.02%, dense 0.41%;
// n=1024 sparse 8.04%, dense 0.89%. The sparse curves fall more slowly —
// early rounds are spent eliminating zero-weight coordinates.
//
// Default rounds for the n=1024 sparse case are reduced (O(n²) per round);
// pass --rounds_sparse_1024=100000 for the paper's full scale.
//
// Reconciliation note (see DESIGN.md §3): under the honest ball prior
// R = 2‖θ*‖ the sparse encodings need ≈n(n+1)·ln(width/ε) bisection rounds —
// more than the whole horizon at n ≥ 128 — so their cumulative ratios stay
// near the cold-start level. The paper's sparse finals (2.02%/8.04%) are only
// reachable with an effectively tight prior around the offline FTRL fit; the
// bench therefore also reports an oracle-prior sparse run (center = θ̂,
// R = 0.005). Dense encodings converge honestly and their tail ratios match
// the paper's finals.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "market/avazu_market.h"
#include "pricing/generalized_engine.h"

int main(int argc, char** argv) {
  int64_t rounds = 100000;
  int64_t rounds_sparse_1024 = 20000;
  int64_t train_samples = 200000;
  uint64_t seed = 31;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig5c_impressions");
  flags.AddInt64("rounds", &rounds, "horizon T for all but the n=1024 sparse case");
  flags.AddInt64("rounds_sparse_1024", &rounds_sparse_1024,
                 "horizon for the n=1024 sparse case (paper: 100000)");
  flags.AddInt64("train_samples", &train_samples, "offline FTRL training examples");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "dataset seed");
  flags.AddString("csv", &csv_path, "optional CSV dump");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Fig. 5(c): impression pricing, logistic model, pure version ===\n\n");
  pdm::CsvWriter csv(csv_path, {"config", "round", "regret_ratio"});

  for (int hashed_dim : {128, 1024}) {
    pdm::Rng rng(seed);
    pdm::AvazuLikeConfig data_config;
    pdm::AvazuLikeClickLog click_log(data_config, &rng);
    pdm::AvazuMarketConfig market_config;
    market_config.hashed_dim = hashed_dim;
    market_config.train_samples = train_samples;
    market_config.eval_samples = 20000;
    pdm::AvazuMarket market = pdm::BuildAvazuMarket(market_config, click_log, &rng);
    std::printf("n = %d: offline FTRL log-loss %.3f, non-zero weights %d "
                "(paper: %.3f / %d)\n",
                hashed_dim, market.logloss, market.nonzero_weights,
                hashed_dim == 128 ? 0.420 : 0.406, hashed_dim == 128 ? 21 : 23);

    for (int mode = 0; mode < 3; ++mode) {
      // mode 0: sparse honest prior; 1: sparse oracle prior; 2: dense.
      bool dense = mode == 2;
      bool oracle_prior = mode == 1;
      int64_t run_rounds =
          (!dense && hashed_dim == 1024) ? rounds_sparse_1024 : rounds;
      pdm::WallTimer timer;
      pdm::AvazuQueryStream stream(&click_log, &market, hashed_dim, dense);
      pdm::EllipsoidEngineConfig base_config;
      base_config.dim = stream.feature_dim();
      base_config.horizon = run_rounds;
      if (oracle_prior) {
        base_config.initial_center = market.theta;
        base_config.initial_radius = 0.005;
      } else {
        base_config.initial_radius = market.recommended_radius;
      }
      base_config.use_reserve = false;  // pure version
      pdm::GeneralizedPricingEngine engine(
          std::make_unique<pdm::EllipsoidPricingEngine>(base_config),
          std::make_shared<pdm::LogisticLink>(market.bias),
          std::make_shared<pdm::IdentityFeatureMap>());
      pdm::SimulationOptions options;
      options.rounds = run_rounds;
      options.series_stride = std::max<int64_t>(1, run_rounds / 200);
      pdm::Rng sim_rng(77);
      pdm::SimulationResult result = pdm::RunMarket(&stream, &engine, options, &sim_rng);

      std::string label =
          "n=" + std::to_string(hashed_dim) +
          (dense ? " dense(d=" + std::to_string(stream.feature_dim()) + ")"
                 : (oracle_prior ? " sparse, oracle prior" : " sparse, honest prior"));
      pdm::TablePrinter table({"round", "regret ratio"});
      for (int64_t checkpoint : pdm::bench::LogCheckpoints(run_rounds)) {
        double ratio = 0.0;
        for (const auto& point : result.tracker.series()) {
          if (point.round <= checkpoint) ratio = point.regret_ratio;
        }
        table.AddRow({std::to_string(checkpoint),
                      pdm::FormatDouble(100.0 * ratio, 2) + "%"});
      }
      std::printf("\n--- %s (T = %ld) ---\n", label.c_str(),
                  static_cast<long>(run_rounds));
      table.Print(std::cout);
      const auto& s = result.tracker.series();
      double tail = s.size() >= 5
                        ? pdm::TailRegretRatio(s[s.size() - 1 - s.size() / 5], s.back())
                        : result.tracker.regret_ratio();
      std::printf("final regret ratio: %.2f%% (tail over last 20%%: %.2f%%)  [%.1fs]\n",
                  100.0 * result.tracker.regret_ratio(), 100.0 * tail,
                  timer.ElapsedSeconds());
      for (const auto& point : result.tracker.series()) {
        csv.WriteRow({label, std::to_string(point.round),
                      pdm::FormatDouble(point.regret_ratio, 6)});
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Shape checks (paper): dense ratios far below sparse at equal rounds;\n"
      "sparse n=1024 falls more slowly than sparse n=128 (zero-weight\n"
      "elimination dominates early rounds). Paper finals: 2.02%%/0.41%%\n"
      "(n=128 sparse/dense), 8.04%%/0.89%% (n=1024).\n");
  return 0;
}
