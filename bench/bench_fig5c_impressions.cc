// Fig. 5(c): regret ratios in the pricing of ad impressions under the
// logistic market value model (pure version), for hashed dimensions
// n ∈ {128, 1024} in both the sparse encoding (all hashed coordinates) and
// the dense encoding (only non-zero-weight coordinates).
//
// Thin spec-driven binary over scenario::Fig5cScenarios (also runnable as
// `pdm_run --scenarios=fig5c/*`). Paper end-of-run ratios (T = 1e5): n=128
// sparse 2.02%, dense 0.41%; n=1024 sparse 8.04%, dense 0.89%. The sparse
// curves fall more slowly — early rounds are spent eliminating zero-weight
// coordinates.
//
// Default rounds for the n=1024 sparse case are reduced (O(n²) per round);
// pass --rounds_sparse_1024=100000 for the paper's full scale.
//
// Reconciliation note (see DESIGN.md §3): under the honest ball prior
// R = 2‖θ*‖ the sparse encodings need ≈n(n+1)·ln(width/ε) bisection rounds —
// more than the whole horizon at n ≥ 128 — so their cumulative ratios stay
// near the cold-start level. The paper's sparse finals (2.02%/8.04%) are only
// reachable with an effectively tight prior around the offline FTRL fit; the
// grid therefore also includes an oracle-prior sparse run (center = θ̂,
// R = 0.005). Dense encodings converge honestly and their tail ratios match
// the paper's finals.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t rounds = 100000;
  int64_t rounds_sparse_1024 = 20000;
  int64_t train_samples = 200000;
  uint64_t seed = 31;
  std::string csv_path;
  pdm::FlagSet flags("bench_fig5c_impressions");
  flags.AddInt64("rounds", &rounds, "horizon T for all but the n=1024 sparse case");
  flags.AddInt64("rounds_sparse_1024", &rounds_sparse_1024,
                 "horizon for the n=1024 sparse case (paper: 100000)");
  flags.AddInt64("train_samples", &train_samples, "offline FTRL training examples");
  flags.AddUint64("seed", &seed, "dataset seed");
  flags.AddString("csv", &csv_path, "optional CSV dump");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Fig. 5(c): impression pricing, logistic model, pure version ===\n\n");
  pdm::CsvWriter csv(csv_path, {"config", "round", "regret_ratio"});

  std::vector<pdm::scenario::ScenarioSpec> specs = pdm::scenario::Fig5cScenarios(
      rounds, rounds_sparse_1024, train_samples, seed);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  int last_dim = 0;
  for (const auto& outcome : outcomes) {
    const pdm::scenario::ScenarioSpec& spec = outcome.spec;
    const pdm::AvazuMarket* market = driver.factory().FindAvazuMarket(spec);
    if (spec.n != last_dim) {
      last_dim = spec.n;
      std::printf("n = %d: offline FTRL log-loss %.3f, non-zero weights %d "
                  "(paper: %.3f / %d)\n",
                  spec.n, market->logloss, market->nonzero_weights,
                  spec.n == 128 ? 0.420 : 0.406, spec.n == 128 ? 21 : 23);
    }

    std::string label =
        "n=" + std::to_string(spec.n) +
        (spec.avazu.dense
             ? " dense(d=" + std::to_string(market->support.size()) + ")"
             : (spec.avazu.oracle_prior_radius > 0.0 ? " sparse, oracle prior"
                                                     : " sparse, honest prior"));
    pdm::TablePrinter table({"round", "regret ratio"});
    for (int64_t checkpoint : pdm::scenario::LogCheckpoints(spec.rounds)) {
      double ratio = 0.0;
      for (const auto& point : outcome.result.tracker.series()) {
        if (point.round <= checkpoint) ratio = point.regret_ratio;
      }
      table.AddRow({std::to_string(checkpoint),
                    pdm::FormatDouble(100.0 * ratio, 2) + "%"});
    }
    std::printf("\n--- %s (T = %ld) ---\n", label.c_str(),
                static_cast<long>(spec.rounds));
    table.Print(std::cout);
    const auto& s = outcome.result.tracker.series();
    double tail = s.size() >= 5
                      ? pdm::TailRegretRatio(s[s.size() - 1 - s.size() / 5], s.back())
                      : outcome.result.tracker.regret_ratio();
    std::printf("final regret ratio: %.2f%% (tail over last 20%%: %.2f%%)  [%.1fs]\n",
                100.0 * outcome.result.tracker.regret_ratio(), 100.0 * tail,
                outcome.result.wall_seconds);
    for (const auto& point : s) {
      csv.WriteRow({label, std::to_string(point.round),
                    pdm::FormatDouble(point.regret_ratio, 6)});
    }
  }
  std::printf(
      "\nShape checks (paper): dense ratios far below sparse at equal rounds;\n"
      "sparse n=1024 falls more slowly than sparse n=128 (zero-weight\n"
      "elimination dominates early rounds). Paper finals: 2.02%%/0.41%%\n"
      "(n=128 sparse/dense), 8.04%%/0.89%% (n=1024).\n");
  return 0;
}
