// Kernelized market value model (the fourth non-linear model of
// Section IV-A): v = Σ_j θ*_j·K(x, l_j) with a public RBF kernel and
// landmarks. The paper lists the model (via Amin et al.'s repeated contextual
// auctions) but does not evaluate it; this bench fills that gap and doubles
// as a misspecification study:
//
//   kernelized engine  — prices over φ(x) = (K(x, l_j))_j  (correct model)
//   linear engine      — prices over raw x                 (misspecified)
//
// The correct model converges to the ε-floor; the misspecified one plateaus
// at its approximation error. A landmark-budget sweep shows the fixed-budget
// substitution's knob. Thin spec-driven binary over
// scenario::KernelScenarios (also `pdm_run --scenarios=kernel/*`).

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t rounds = 20000;
  uint64_t seed = 9;
  pdm::FlagSet flags("bench_kernel_pricing");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddUint64("seed", &seed, "workload seed");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Kernelized model (Section IV-A): correct vs misspecified ===\n\n");
  std::vector<pdm::scenario::ScenarioSpec> specs =
      pdm::scenario::KernelScenarios(rounds, seed);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  auto find = [&](const std::string& name) -> const pdm::scenario::ScenarioOutcome& {
    for (const auto& outcome : outcomes) {
      if (outcome.spec.name == name) return outcome;
    }
    std::fprintf(stderr, "missing scenario %s\n", name.c_str());
    std::abort();
  };

  pdm::TablePrinter table({"engine", "regret ratio", "sold", "exploratory"});
  for (const auto* outcome : {&find("kernel/m=10"), &find("kernel/misspecified-linear")}) {
    const char* label = outcome->spec.kernel.misspecified_linear
                            ? "linear on raw x (misspecified)"
                            : "kernelized (m=10)";
    table.AddRow({label,
                  pdm::FormatDouble(100.0 * outcome->result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(outcome->result.tracker.sales()),
                  std::to_string(outcome->result.engine_counters.exploratory_rounds)});
  }
  table.Print(std::cout);

  std::printf("\n--- landmark budget sweep (fixed-budget substitution knob) ---\n");
  pdm::TablePrinter sweep({"landmarks m", "regret ratio", "exploratory"});
  for (const auto& outcome : outcomes) {
    if (outcome.spec.kernel.misspecified_linear) continue;
    sweep.AddRow({std::to_string(outcome.spec.n),
                  pdm::FormatDouble(100.0 * outcome.result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(outcome.result.engine_counters.exploratory_rounds)});
  }
  sweep.Print(std::cout);
  std::printf(
      "\nShape checks: the kernelized engine beats the misspecified linear\n"
      "one decisively; more landmarks cost more exploration (Theorem 2's m in\n"
      "place of n) for the same converged floor.\n");
  return 0;
}
