// Kernelized market value model (the fourth non-linear model of
// Section IV-A): v = Σ_j θ*_j·K(x, l_j) with a public RBF kernel and
// landmarks. The paper lists the model (via Amin et al.'s repeated contextual
// auctions) but does not evaluate it; this bench fills that gap and doubles
// as a misspecification study:
//
//   kernelized engine  — prices over φ(x) = (K(x, l_j))_j  (correct model)
//   linear engine      — prices over raw x                 (misspecified)
//
// The correct model converges to the ε-floor; the misspecified one plateaus
// at its approximation error. A landmark-budget sweep shows the fixed-budget
// substitution's knob.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/kernel_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"

namespace {

pdm::SimulationResult RunKernelEngine(const pdm::KernelMarketConfig& config,
                                      int64_t rounds, uint64_t seed) {
  pdm::Rng rng(seed);
  pdm::KernelQueryStream stream(config, &rng);
  pdm::EllipsoidEngineConfig base_config;
  base_config.dim = config.num_landmarks;
  base_config.horizon = rounds;
  base_config.initial_radius = stream.RecommendedRadius();
  base_config.use_reserve = config.reserve_fraction > 0.0;
  pdm::GeneralizedPricingEngine engine(
      std::make_unique<pdm::EllipsoidPricingEngine>(base_config),
      std::make_shared<pdm::IdentityLink>(),
      std::make_shared<pdm::KernelFeatureMap>(stream.feature_map()));
  pdm::SimulationOptions options;
  options.rounds = rounds;
  return pdm::RunMarket(&stream, &engine, options, &rng);
}

pdm::SimulationResult RunMisspecifiedLinear(const pdm::KernelMarketConfig& config,
                                            int64_t rounds, uint64_t seed) {
  pdm::Rng rng(seed);
  pdm::KernelQueryStream stream(config, &rng);
  pdm::EllipsoidEngineConfig engine_config;
  engine_config.dim = config.input_dim;
  engine_config.horizon = rounds;
  engine_config.initial_radius = 4.0 * stream.RecommendedRadius();
  engine_config.use_reserve = config.reserve_fraction > 0.0;
  pdm::EllipsoidPricingEngine engine(engine_config);
  pdm::SimulationOptions options;
  options.rounds = rounds;
  return pdm::RunMarket(&stream, &engine, options, &rng);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t rounds = 20000;
  uint64_t seed = 9;
  pdm::FlagSet flags("bench_kernel_pricing");
  flags.AddInt64("rounds", &rounds, "horizon T");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "workload seed");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Kernelized model (Section IV-A): correct vs misspecified ===\n\n");
  pdm::KernelMarketConfig config;

  pdm::TablePrinter table({"engine", "regret ratio", "sold", "exploratory"});
  pdm::SimulationResult kernel_result = RunKernelEngine(config, rounds, seed);
  pdm::SimulationResult linear_result = RunMisspecifiedLinear(config, rounds, seed);
  table.AddRow({"kernelized (m=10)",
                pdm::FormatDouble(100.0 * kernel_result.tracker.regret_ratio(), 2) + "%",
                std::to_string(kernel_result.tracker.sales()),
                std::to_string(kernel_result.engine_counters.exploratory_rounds)});
  table.AddRow({"linear on raw x (misspecified)",
                pdm::FormatDouble(100.0 * linear_result.tracker.regret_ratio(), 2) + "%",
                std::to_string(linear_result.tracker.sales()),
                std::to_string(linear_result.engine_counters.exploratory_rounds)});
  table.Print(std::cout);

  std::printf("\n--- landmark budget sweep (fixed-budget substitution knob) ---\n");
  pdm::TablePrinter sweep({"landmarks m", "regret ratio", "exploratory"});
  for (int m : {5, 10, 20, 40}) {
    pdm::KernelMarketConfig c = config;
    c.num_landmarks = m;
    pdm::SimulationResult result = RunKernelEngine(c, rounds, seed);
    sweep.AddRow({std::to_string(m),
                  pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(result.engine_counters.exploratory_rounds)});
  }
  sweep.Print(std::cout);
  std::printf(
      "\nShape checks: the kernelized engine beats the misspecified linear\n"
      "one decisively; more landmarks cost more exploration (Theorem 2's m in\n"
      "place of n) for the same converged floor.\n");
  return 0;
}
