// Lemma 8 / Fig. 6 (Appendix): if the broker is allowed to refine the
// knowledge set on conservative-price feedback, an adversary forces Ω(T)
// regret; the safe engine (which never cuts on conservative prices) stays
// polylogarithmic on the same sequence.
//
// The adversary pins the reserve to the engine's mid-price along e₁ for the
// first half (each unsafe cut halves the e₁ width and *expands* every other
// axis by n/√(n²−1)), then switches to e₂ with no reserve.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/adversarial.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"

namespace {

double RunAdversary(int64_t horizon, bool allow_conservative_cuts, double* e2_width) {
  pdm::AdversarialStreamConfig stream_config;
  stream_config.dim = 2;
  stream_config.horizon = horizon;
  pdm::AdversarialQueryStream stream(stream_config);

  pdm::EllipsoidEngineConfig config;
  config.dim = 2;
  config.horizon = horizon;
  config.initial_radius = 1.0;  // Lemma 8's R = 1, S = 1
  config.use_reserve = true;
  config.allow_conservative_cuts = allow_conservative_cuts;
  pdm::EllipsoidPricingEngine engine(config);

  pdm::SimulationOptions options;
  options.rounds = horizon;
  pdm::Rng rng(4);
  pdm::SimulationResult result = pdm::RunMarket(&stream, &engine, options, &rng);
  if (e2_width != nullptr) {
    *e2_width = engine.EstimateValueInterval(pdm::Vector{0.0, 1.0}).width();
  }
  return result.tracker.cumulative_regret();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t max_horizon = 3200;
  pdm::FlagSet flags("bench_lemma8_adversarial");
  flags.AddInt64("max_horizon", &max_horizon, "largest adversarial horizon T");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Lemma 8: conservative cuts admit an O(T)-regret adversary ===\n\n");
  pdm::TablePrinter table({"T", "safe regret", "unsafe regret", "unsafe/T",
                           "unsafe e2 width after run"});
  for (int64_t horizon = 50; horizon <= max_horizon; horizon *= 2) {
    double unsafe_width = 0.0;
    double safe = RunAdversary(horizon, false, nullptr);
    double unsafe = RunAdversary(horizon, true, &unsafe_width);
    table.AddRow({std::to_string(horizon), pdm::FormatDouble(safe, 2),
                  pdm::FormatDouble(unsafe, 2),
                  pdm::FormatDouble(unsafe / static_cast<double>(horizon), 4),
                  pdm::FormatDouble(unsafe_width, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape checks (Lemma 8): the unsafe engine's regret grows linearly in\n"
      "T (unsafe/T roughly constant over 50..200) while the safe engine's\n"
      "stays flat; this is exactly why Algorithm 1 Line 24 forbids\n"
      "conservative-price cuts. Beyond T ≈ 200 the idealized real-arithmetic\n"
      "blow-up saturates in double precision (the e1 shape entry underflows\n"
      "after ~95 unsafe cuts), so the unsafe regret plateaus instead of\n"
      "growing without bound — the separation from the safe engine remains.\n");
  return 0;
}
