// Section V-D memory overheads: the paper reports VmRSS for the three
// applications (noisy linear query n=100: 151 MB; accommodation rental:
// 105 MB; impressions n=1024 sparse/dense: 106/75 MB — Python runtime
// included). This binary builds each application's full broker state and
// reports VmRSS deltas; the O(n²) shape matrix dominates the engine itself.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/flags.h"
#include "common/memory.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/airbnb_market.h"
#include "market/avazu_market.h"
#include "market/linear_market.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"

namespace {

double MiB(int64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

}  // namespace

int main(int argc, char** argv) {
  int64_t owners = 2000;
  pdm::FlagSet flags("bench_memory_report");
  flags.AddInt64("owners", &owners, "data owners for application 1");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Section V-D: memory overhead (VmRSS) ===\n\n");
  pdm::TablePrinter table(
      {"application", "state built", "engine state", "VmRSS now", "delta"});
  auto engine_state = [](int n) {
    // One n×n shape matrix + center vector of doubles.
    return pdm::FormatDouble(
               static_cast<double>(n) * (n + 1) * 8.0 / (1024.0 * 1024.0), 2) +
           " MiB";
  };
  int64_t base = pdm::CurrentRssBytes();

  // Application 1: noisy linear query, n = 100.
  {
    pdm::Rng rng(1);
    pdm::NoisyLinearMarketConfig config;
    config.feature_dim = 100;
    config.num_owners = static_cast<int>(owners);
    auto stream = std::make_unique<pdm::NoisyLinearQueryStream>(config, &rng);
    pdm::EllipsoidEngineConfig engine_config;
    engine_config.dim = 100;
    engine_config.horizon = 100000;
    engine_config.initial_radius = stream->RecommendedRadius();
    auto engine = std::make_unique<pdm::EllipsoidPricingEngine>(engine_config);
    int64_t now = pdm::CurrentRssBytes();
    table.AddRow({"noisy linear query (n=100)", "ledger+stream+engine",
                  engine_state(100), pdm::FormatDouble(MiB(now), 1) + " MiB",
                  pdm::FormatDouble(MiB(now - base), 1) + " MiB"});
    base = now;
  }

  // Application 2: accommodation rental, n = 55 (reduced listing count; the
  // paper's 74,111-round replay buffer scales linearly).
  {
    pdm::Rng rng(2);
    pdm::AirbnbMarketConfig config;
    config.num_listings = 20000;
    auto market = std::make_unique<pdm::AirbnbMarket>(pdm::BuildAirbnbMarket(config, &rng));
    pdm::EllipsoidEngineConfig engine_config;
    engine_config.dim = pdm::AirbnbFeatureSpace::kDim;
    engine_config.horizon = config.num_listings;
    engine_config.initial_radius = market->recommended_radius;
    auto engine = std::make_unique<pdm::EllipsoidPricingEngine>(engine_config);
    int64_t now = pdm::CurrentRssBytes();
    table.AddRow({"accommodation rental (n=55)", "model+rounds+engine",
                  engine_state(55), pdm::FormatDouble(MiB(now), 1) + " MiB",
                  pdm::FormatDouble(MiB(now - base), 1) + " MiB"});
    base = now;
  }

  // Application 3: impressions, n = 1024 sparse.
  {
    pdm::Rng rng(3);
    pdm::AvazuLikeConfig data_config;
    pdm::AvazuLikeClickLog log(data_config, &rng);
    pdm::AvazuMarketConfig config;
    config.hashed_dim = 1024;
    config.train_samples = 50000;
    config.eval_samples = 5000;
    auto market =
        std::make_unique<pdm::AvazuMarket>(pdm::BuildAvazuMarket(config, log, &rng));
    pdm::EllipsoidEngineConfig engine_config;
    engine_config.dim = 1024;
    engine_config.horizon = 100000;
    engine_config.initial_radius = market->recommended_radius;
    auto engine = std::make_unique<pdm::EllipsoidPricingEngine>(engine_config);
    int64_t now = pdm::CurrentRssBytes();
    table.AddRow({"impressions (n=1024 sparse)", "ctr model+engine",
                  engine_state(1024), pdm::FormatDouble(MiB(now), 1) + " MiB",
                  pdm::FormatDouble(MiB(now - base), 1) + " MiB"});
  }

  table.Print(std::cout);
  std::printf(
      "\nThe engine's own state is one n x n shape matrix plus one n-vector\n"
      "(n=1024: 8 MiB). The paper's 75-160 MB figures include the Python\n"
      "runtime; the C++ totals here are far smaller, with the same O(n^2)\n"
      "scaling.\n");
  return 0;
}
