// Million-product memory soak (DESIGN.md §12): opens a large product fleet
// through the broker's batched control plane and drives a Zipf-distributed
// touch pattern over resolved handles, measuring what serving at scale
// actually costs — steady-state RSS per product, open/resolve latency, and
// the fault-in tail when the LRU cold tier spills idle sessions to disk.
//
// Two series per run:
//
//   packed-cold     packed symmetric shapes + spill_dir + residency cap:
//                   the §12 memory engine. Runs FIRST so its RSS delta is
//                   measured against a clean heap (the dense series then
//                   reuses whatever the teardown could not return to the
//                   OS, which only *understates* the dense footprint — the
//                   conservative direction for the savings gate).
//   dense-resident  dense shapes, every session resident: the pre-§12
//                   layout, and the savings-gate denominator.
//
// Emits BENCH_memory.json (schema pdm.bench_memory.v1). The repository
// commits a baseline at the repo root; CI re-runs in smoke mode and
// `tools/compare_memory.py` fails the build when bytes/product or the
// packed-vs-dense savings regress (README "Memory & scale").
//
//   bench_memory_soak                       # full run (100k products)
//   bench_memory_soak --smoke               # CI mode (100k products, short touch phase)
//   bench_memory_soak --products=1000000 --resident_pct=10

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "broker/broker.h"
#include "common/flags.h"
#include "common/histogram.h"
#include "common/json_writer.h"
#include "common/memory.h"
#include "common/timer.h"
#include "market/round.h"
#include "rng/rng.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"

namespace {

using pdm::LatencyHistogram;

struct SoakConfig {
  int64_t products = 100000;
  int64_t dim = 32;
  int64_t touches = 150000;
  int64_t resident_pct = 25;  ///< cold-tier residency cap, % of products
  int64_t open_batch = 65536;
  double zipf_s = 1.05;
  uint64_t seed = 1;
};

struct SeriesResult {
  std::string name;
  bool packed = false;
  size_t resident_cap = 0;  ///< 0 = no cold tier
  int64_t rss_base = 0;
  int64_t rss_after_open = 0;
  int64_t rss_steady = 0;
  double open_seconds = 0.0;
  int64_t touch_errors = 0;
  LatencyHistogram resolve_ns;
  LatencyHistogram touch_ns;     ///< warm touches (no fault-in)
  LatencyHistogram fault_in_ns;  ///< touches that faulted a session back in
  pdm::broker::BrokerStats stats;

  double bytes_per_product(int64_t products) const {
    return static_cast<double>(rss_steady - rss_base) /
           static_cast<double>(products);
  }
};

/// Best-effort: hand freed heap back to the OS so CurrentRssBytes reflects
/// live state rather than allocator high-water marks.
void TrimHeap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

int64_t TrimmedRss() {
  TrimHeap();
  return pdm::CurrentRssBytes();
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One shared workload spec for the whole fleet: every product prices the
/// same query distribution, so the fleet's memory is session state, not
/// duplicated workloads.
pdm::scenario::ScenarioSpec FleetSpec(const SoakConfig& config, bool packed) {
  pdm::scenario::ScenarioSpec spec;
  spec.name = "soak/base";
  spec.family = "memory-soak";
  spec.stream = pdm::scenario::StreamKind::kLinear;
  spec.mechanism = "reserve+uncertainty";
  spec.n = static_cast<int>(config.dim);
  spec.rounds = 200000;
  spec.delta = 0.01;
  spec.linear.num_owners = 256;
  spec.linear.workload_rounds = 1024;
  spec.workload_seed = config.seed;
  spec.sim_seed = config.seed + 7;
  spec.packed_shape = packed;
  return spec;
}

/// Zipf(s) sampler over [0, n): rank r is drawn with weight 1/(r+1)^s via a
/// precomputed CDF + binary search. Rank maps to product index directly, so
/// low-index products are the hot set.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double sum = 0.0;
    for (size_t i = 0; i < cdf_.size(); ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    total_ = sum;
  }

  size_t Next(pdm::Rng* rng) const {
    double u = rng->NextDouble() * total_;
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

SeriesResult RunSeries(const SoakConfig& config, const std::string& name,
                       bool packed, size_t resident_cap,
                       const std::string& spill_dir,
                       const std::vector<pdm::MarketRound>& ring,
                       const ZipfSampler& zipf) {
  SeriesResult result;
  result.name = name;
  result.packed = packed;
  result.resident_cap = resident_cap;

  pdm::scenario::StreamFactory factory;
  pdm::scenario::ScenarioSpec spec = FleetSpec(config, packed);
  pdm::scenario::WorkloadInfo info = factory.Prepare(spec);

  pdm::broker::BrokerConfig broker_config;
  if (resident_cap > 0) {
    broker_config.spill_dir = spill_dir;
    broker_config.max_resident_sessions = resident_cap;
    std::filesystem::remove_all(spill_dir);
  }
  pdm::broker::Broker broker(broker_config);

  result.rss_base = TrimmedRss();

  // Batched opens: one directory republication per batch, not per product
  // (the directory retains every published map for the broker's lifetime,
  // so per-product publishes would cost O(N²) retained entries). With a
  // cold tier, each batch is swept down to the cap right away so peak
  // residency stays near cap + open_batch.
  pdm::WallTimer open_timer;
  std::vector<std::string> names;
  for (int64_t base = 0; base < config.products; base += config.open_batch) {
    int64_t count = std::min(config.open_batch, config.products - base);
    names.clear();
    names.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      names.push_back("soak/p" + std::to_string(base + i));
    }
    pdm::Status opened = broker.OpenSessions(names, spec, info);
    if (!opened.ok()) {
      std::fprintf(stderr, "OpenSessions: %s\n", opened.ToString().c_str());
      std::exit(1);
    }
    if (resident_cap > 0) broker.EvictIdleSessions(resident_cap);
  }
  result.open_seconds = open_timer.ElapsedSeconds();
  result.rss_after_open = TrimmedRss();

  // Resolve every product once (timed): the name → handle control-plane hop
  // clients pay before entering the fast path.
  std::vector<pdm::broker::ProductHandle> handles(
      static_cast<size_t>(config.products));
  for (int64_t i = 0; i < config.products; ++i) {
    std::string product = "soak/p" + std::to_string(i);
    uint64_t t0 = NowNanos();
    pdm::Status resolved = broker.Resolve(product, &handles[static_cast<size_t>(i)]);
    result.resolve_ns.Record(NowNanos() - t0);
    if (!resolved.ok()) {
      std::fprintf(stderr, "Resolve: %s\n", resolved.ToString().c_str());
      std::exit(1);
    }
  }

  // Zipf touch phase: PostPrice + Observe round trips against the resolved
  // handles. A touch that moves the broker's fault-in counter paid a cold
  // read (snapshot decode + engine rebuild) and lands in the fault-in
  // histogram; everything else is a warm touch.
  pdm::Rng rng(config.seed + 11);
  for (int64_t t = 0; t < config.touches; ++t) {
    size_t idx = zipf.Next(&rng);
    const pdm::MarketRound& round = ring[static_cast<size_t>(t) % ring.size()];
    pdm::broker::Quote quote;
    uint64_t faults_before = broker.fault_in_count();
    uint64_t t0 = NowNanos();
    pdm::Status status =
        broker.PostPrice(handles[idx], round.features, round.reserve, &quote);
    if (status.ok()) {
      status = broker.Observe(
          quote.ticket, !quote.certain_no_sale && quote.price <= round.value);
    }
    uint64_t elapsed = NowNanos() - t0;
    if (!status.ok()) {
      ++result.touch_errors;
      continue;
    }
    if (broker.fault_in_count() != faults_before) {
      result.fault_in_ns.Record(elapsed);
    } else {
      result.touch_ns.Record(elapsed);
    }
  }

  result.rss_steady = TrimmedRss();
  result.stats = broker.Stats();
  return result;
}

void PrintSeries(const SoakConfig& config, const SeriesResult& series) {
  std::printf("--- %s ---\n", series.name.c_str());
  std::printf("open    %lld products in %.2fs (%.1f us/product, batch %lld)\n",
              static_cast<long long>(config.products), series.open_seconds,
              1e6 * series.open_seconds / static_cast<double>(config.products),
              static_cast<long long>(config.open_batch));
  std::printf("rss     base %.1f MiB -> open %.1f MiB -> steady %.1f MiB "
              "(%.0f bytes/product)\n",
              static_cast<double>(series.rss_base) / (1 << 20),
              static_cast<double>(series.rss_after_open) / (1 << 20),
              static_cast<double>(series.rss_steady) / (1 << 20),
              series.bytes_per_product(config.products));
  std::printf("resolve p50 %.0fns  p99 %.0fns\n",
              static_cast<double>(series.resolve_ns.Quantile(0.50)),
              static_cast<double>(series.resolve_ns.Quantile(0.99)));
  std::printf("touch   p50 %.1fus  p99 %.1fus  (%lld warm)\n",
              static_cast<double>(series.touch_ns.Quantile(0.50)) / 1e3,
              static_cast<double>(series.touch_ns.Quantile(0.99)) / 1e3,
              static_cast<long long>(series.touch_ns.count()));
  if (series.fault_in_ns.count() > 0) {
    std::printf("fault   p50 %.1fus  p99 %.1fus  (%lld fault-ins, "
                "%lld evictions, %.1f MiB spilled)\n",
                static_cast<double>(series.fault_in_ns.Quantile(0.50)) / 1e3,
                static_cast<double>(series.fault_in_ns.Quantile(0.99)) / 1e3,
                static_cast<long long>(series.fault_in_ns.count()),
                static_cast<long long>(series.stats.evictions),
                static_cast<double>(series.stats.spill_bytes) / (1 << 20));
  }
  std::printf("slots   %zu live, %zu resident, %zu evicted\n\n",
              series.stats.slab_live_slots, series.stats.resident_sessions,
              series.stats.evicted_sessions);
}

void WriteSeriesJson(pdm::JsonWriter* json, const SoakConfig& config,
                     const SeriesResult& series) {
  json->BeginObject();
  json->Field("series", series.name);
  json->Field("packed", series.packed);
  json->Field("resident_cap", static_cast<int64_t>(series.resident_cap));
  json->Field("open_seconds", series.open_seconds);
  json->Field("touch_errors", series.touch_errors);
  json->Key("rss_bytes");
  json->BeginObject();
  json->Field("base", series.rss_base);
  json->Field("after_open", series.rss_after_open);
  json->Field("steady", series.rss_steady);
  json->EndObject();
  json->Field("bytes_per_product", series.bytes_per_product(config.products));
  json->Key("resolve_ns");
  json->BeginObject();
  json->Field("p50", series.resolve_ns.Quantile(0.50));
  json->Field("p99", series.resolve_ns.Quantile(0.99));
  json->EndObject();
  json->Key("touch_ns");
  json->BeginObject();
  json->Field("p50", series.touch_ns.Quantile(0.50));
  json->Field("p99", series.touch_ns.Quantile(0.99));
  json->Field("count", series.touch_ns.count());
  json->EndObject();
  json->Key("fault_in_ns");
  json->BeginObject();
  json->Field("p50", series.fault_in_ns.Quantile(0.50));
  json->Field("p99", series.fault_in_ns.Quantile(0.99));
  json->Field("count", series.fault_in_ns.count());
  json->EndObject();
  json->Field("evictions", static_cast<int64_t>(series.stats.evictions));
  json->Field("fault_ins", static_cast<int64_t>(series.stats.fault_ins));
  json->Field("spill_bytes", static_cast<int64_t>(series.stats.spill_bytes));
  json->Field("resident_sessions",
              static_cast<int64_t>(series.stats.resident_sessions));
  json->Field("evicted_sessions",
              static_cast<int64_t>(series.stats.evicted_sessions));
  json->EndObject();
}

bool WriteSoakJson(const std::string& path, const SoakConfig& config, bool smoke,
                   const std::vector<SeriesResult>& series) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  pdm::JsonWriter json(&out);
  json.BeginObject();
  json.Field("schema", "pdm.bench_memory.v1");
  json.Field("hardware_concurrency",
             static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Field("products", config.products);
  json.Field("dim", config.dim);
  json.Field("touches", config.touches);
  json.Field("resident_pct", config.resident_pct);
  json.Field("open_batch", config.open_batch);
  json.Field("zipf_s", config.zipf_s);
  json.Field("smoke", smoke);
  json.Key("series");
  json.BeginArray();
  for (const SeriesResult& s : series) WriteSeriesJson(&json, config, s);
  json.EndArray();
  json.EndObject();
  out << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig config;
  bool smoke = false;
  std::string out_path = "BENCH_memory.json";
  std::string spill_dir =
      (std::filesystem::temp_directory_path() / "pdm_soak_spill").string();
  pdm::FlagSet flags("bench_memory_soak");
  flags.AddInt64("products", &config.products, "products to open per series");
  flags.AddInt64("dim", &config.dim, "feature dimension n of every product");
  flags.AddInt64("touches", &config.touches, "Zipf touches per series");
  flags.AddInt64("resident_pct", &config.resident_pct,
                 "cold-tier residency cap as a percentage of products");
  flags.AddInt64("open_batch", &config.open_batch, "products per OpenSessions call");
  flags.AddDouble("zipf_s", &config.zipf_s, "Zipf exponent of the touch pattern");
  flags.AddUint64("seed", &config.seed, "workload seed");
  flags.AddBool("smoke", &smoke,
                "short CI mode (caps products at 100k, touches at 30k)");
  flags.AddString("out", &out_path, "machine-readable JSON output path ('' disables)");
  flags.AddString("spill_dir", &spill_dir, "cold-tier spill directory");
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;
  if (config.products < 1 || config.dim < 2 || config.touches < 0 ||
      config.resident_pct < 1 || config.resident_pct > 100 ||
      config.open_batch < 1 || config.zipf_s <= 0.0) {
    std::fprintf(stderr,
                 "products/dim/open_batch must be positive, touches >= 0, "
                 "resident_pct in [1,100], zipf_s > 0\n");
    return 1;
  }
  if (smoke) {
    // Keep the full product count: bytes/product is only comparable between
    // documents opened at the same scale (fixed overheads amortize
    // differently), and the committed baseline is recorded at the default
    // 100k. The touch phase is what smoke trims — RSS at matched scale is
    // insensitive to it (within 1% between 30k and 150k touches).
    config.products = std::min<int64_t>(config.products, 100000);
    config.touches = std::min<int64_t>(config.touches, 30000);
  }
  size_t resident_cap = static_cast<size_t>(
      std::max<int64_t>(1, config.products * config.resident_pct / 100));

  std::printf("=== memory soak: %lld products, n=%lld, %lld Zipf(%.2f) touches, "
              "cold-tier cap %zu ===\n\n",
              static_cast<long long>(config.products),
              static_cast<long long>(config.dim),
              static_cast<long long>(config.touches), config.zipf_s,
              resident_cap);

  // Shared query ring + Zipf CDF, built before any RSS base is taken so
  // neither pollutes a series' delta.
  std::vector<pdm::MarketRound> ring;
  {
    pdm::scenario::StreamFactory factory;
    pdm::scenario::ScenarioSpec spec = FleetSpec(config, /*packed=*/false);
    (void)factory.Prepare(spec);
    pdm::Rng rng(spec.sim_seed);
    std::unique_ptr<pdm::QueryStream> stream = factory.CreateStream(spec, &rng);
    ring.resize(1024);
    for (pdm::MarketRound& round : ring) stream->Next(&rng, &round);
  }
  ZipfSampler zipf(config.products, config.zipf_s);

  std::vector<SeriesResult> series;
  series.push_back(RunSeries(config, "packed-cold", /*packed=*/true,
                             resident_cap, spill_dir, ring, zipf));
  PrintSeries(config, series.back());
  series.push_back(RunSeries(config, "dense-resident", /*packed=*/false,
                             /*resident_cap=*/0, spill_dir, ring, zipf));
  PrintSeries(config, series.back());
  std::filesystem::remove_all(spill_dir);

  double dense = series[1].bytes_per_product(config.products);
  double packed = series[0].bytes_per_product(config.products);
  if (dense > 0.0) {
    std::printf("steady-state bytes/product: dense %.0f -> packed+cold %.0f "
                "(%.1f%% lower)\n",
                dense, packed, 100.0 * (1.0 - packed / dense));
  }

  for (const SeriesResult& s : series) {
    if (s.touch_errors > 0) {
      std::fprintf(stderr, "bench_memory_soak: %lld touch errors in %s\n",
                   static_cast<long long>(s.touch_errors), s.name.c_str());
      return 1;
    }
  }
  if (!out_path.empty()) {
    if (!WriteSoakJson(out_path, config, smoke, series)) return 1;
    std::printf("wrote %s (schema pdm.bench_memory.v1)\n", out_path.c_str());
  }
  return 0;
}
