// Section V-D online latency: per-round engine cost (PostPrice + Observe)
// for the three applications, via google-benchmark. The paper's Python
// prototype measured 0.115 ms/query (n=100 linear), 0.019 ms (n=55
// log-linear), 3.509/0.024 ms (n=1024 sparse / dense logistic); the shape to
// verify is millisecond-or-below latency with O(n²) growth.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "market/avazu_market.h"
#include "market/linear_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"
#include "pricing/interval_engine.h"

namespace {

/// One pricing round on a noisy-linear-query market of dimension n.
void BM_LinearQueryRound(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  pdm::Rng rng(1);
  pdm::NoisyLinearMarketConfig market_config;
  market_config.feature_dim = dim;
  market_config.num_owners = 400;
  pdm::NoisyLinearQueryStream stream(market_config, &rng);
  // Pre-generate rounds so the loop times only the engine.
  std::vector<pdm::MarketRound> rounds;
  for (int i = 0; i < 512; ++i) rounds.push_back(stream.Next(&rng));

  pdm::EllipsoidEngineConfig config;
  config.dim = dim;
  config.horizon = 100000;
  config.initial_radius = stream.RecommendedRadius();
  pdm::EllipsoidPricingEngine engine(config);

  size_t cursor = 0;
  for (auto _ : state) {
    const pdm::MarketRound& round = rounds[cursor];
    cursor = (cursor + 1) % rounds.size();
    pdm::PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    engine.Observe(!posted.certain_no_sale && posted.price <= round.value);
    benchmark::DoNotOptimize(posted.price);
  }
  state.SetLabel("paper: 0.115 ms/round at n=100 (Python)");
}
BENCHMARK(BM_LinearQueryRound)->Arg(20)->Arg(55)->Arg(100)->Unit(benchmark::kMicrosecond);

/// One pricing round on the hashed logistic impression market.
void BM_ImpressionRound(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  bool dense = state.range(1) != 0;
  pdm::Rng rng(2);
  pdm::AvazuLikeConfig data_config;
  pdm::AvazuLikeClickLog log(data_config, &rng);
  pdm::AvazuMarketConfig market_config;
  market_config.hashed_dim = dim;
  market_config.train_samples = 20000;
  market_config.eval_samples = 1000;
  pdm::AvazuMarket market = pdm::BuildAvazuMarket(market_config, log, &rng);
  pdm::AvazuQueryStream stream(&log, &market, dim, dense);
  std::vector<pdm::MarketRound> rounds;
  for (int i = 0; i < 256; ++i) rounds.push_back(stream.Next(&rng));

  pdm::EllipsoidEngineConfig base_config;
  base_config.dim = stream.feature_dim();
  base_config.horizon = 100000;
  base_config.initial_radius = market.recommended_radius;
  base_config.use_reserve = false;
  pdm::GeneralizedPricingEngine engine(
      std::make_unique<pdm::EllipsoidPricingEngine>(base_config),
      std::make_shared<pdm::LogisticLink>(market.bias), std::make_shared<pdm::IdentityFeatureMap>());

  size_t cursor = 0;
  for (auto _ : state) {
    const pdm::MarketRound& round = rounds[cursor];
    cursor = (cursor + 1) % rounds.size();
    pdm::PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    engine.Observe(!posted.certain_no_sale && posted.price <= round.value);
    benchmark::DoNotOptimize(posted.price);
  }
  state.SetLabel(dense ? "dense encoding" : "sparse encoding; paper: 3.509 ms (Python)");
}
BENCHMARK(BM_ImpressionRound)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMicrosecond);

/// One-dimensional interval engine round (Theorem 3 regime).
void BM_OneDimensionalRound(benchmark::State& state) {
  pdm::IntervalEngineConfig config;
  config.theta_min = 0.0;
  config.theta_max = 2.0;
  config.horizon = 100000;
  pdm::IntervalPricingEngine engine(config);
  pdm::Vector x{1.0};
  for (auto _ : state) {
    pdm::PostedPrice posted = engine.PostPrice(x, 1.0);
    engine.Observe(posted.price <= std::sqrt(2.0));
    benchmark::DoNotOptimize(posted.price);
  }
}
BENCHMARK(BM_OneDimensionalRound)->Unit(benchmark::kNanosecond);

/// Raw ellipsoid cut update (the O(n²) kernel inside Observe).
void BM_EllipsoidCut(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  pdm::Rng rng(3);
  pdm::Ellipsoid ellipsoid = pdm::Ellipsoid::Ball(dim, 2.0);
  pdm::Vector x = rng.GaussianVector(dim);
  pdm::RescaleToNorm(&x, 1.0);
  for (auto _ : state) {
    // Alternate keep-below/keep-above central cuts so the ellipsoid neither
    // collapses nor diverges over the benchmark's many iterations.
    ellipsoid.CutKeepBelow(x, 0.0);
    ellipsoid.CutKeepAbove(x, 0.0);
    benchmark::DoNotOptimize(ellipsoid.shape().data());
  }
}
BENCHMARK(BM_EllipsoidCut)->Arg(20)->Arg(100)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
