// Serving-latency bench (DESIGN.md §10): starts a Broker + TcpServer on
// loopback in-process, drives the open-loop loadgen core against it, and
// reports round-trip latency quantiles (p50/p99/p999, nanoseconds, measured
// from each request's *scheduled* send time — a slow server inflates the
// recorded tail instead of silently slowing the load).
//
// Emits BENCH_serving.json (schema pdm.bench_serving.v1). The repository
// commits a baseline at the repo root; CI re-runs in smoke mode and
// `tools/compare_serving.py` fails the build when latency or throughput
// regresses beyond tolerance — the gate only arms when the baseline's
// hardware_concurrency matches the runner's (README "Performance").
//
//   bench_serving                      # full run
//   bench_serving --smoke              # CI mode (caps rounds at 2000/conn)
//   bench_serving --connections=4 --rate=8000 --batch=16

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "server/server.h"
#include "serving_bench_util.h"

int main(int argc, char** argv) {
  pdm::serving_bench::LoadConfig load_config;
  int64_t products = 2;
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  pdm::broker_bench::ProductSetup setup;
  pdm::FlagSet flags("bench_serving");
  flags.AddInt64("connections", &load_config.connections, "client connections");
  flags.AddDouble("rate", &load_config.rate,
                  "target PostPrice rate per connection (req/s, open loop)");
  flags.AddInt64("rounds", &load_config.rounds,
                 "PostPrice round trips per connection");
  flags.AddInt64("batch", &load_config.batch,
                 "pipelined requests per tick (>= 2 exercises coalescing)");
  flags.AddInt64("products", &products, "bench products to open");
  flags.AddInt64("dim", &setup.dim, "feature dimension n of every product");
  flags.AddInt64("workload_rounds", &setup.workload_rounds,
                 "distinct precomputed queries per product");
  flags.AddInt64("owners", &setup.num_owners, "data owners behind each workload");
  flags.AddUint64("seed", &setup.seed, "base workload seed");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 2000/connection)");
  flags.AddString("out", &out_path, "machine-readable JSON output path ('' disables)");
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;
  if (load_config.connections < 1 || load_config.rounds < 1 ||
      load_config.batch < 1 || load_config.rate <= 0.0 || products < 1) {
    std::fprintf(stderr, "connections/rounds/batch/rate/products must be positive\n");
    return 1;
  }
  if (smoke && load_config.rounds > 2000) load_config.rounds = 2000;

  // Server side: broker + product fleet + TCP front end on an ephemeral
  // loopback port. Same (setup, prefix) as the loadgen below, so the rings
  // and product names line up by construction.
  pdm::scenario::StreamFactory factory;
  pdm::broker::Broker broker;
  std::vector<pdm::broker_bench::ProductWorkload> workloads =
      pdm::broker_bench::OpenProducts(&factory, &broker, products, setup, "serve/");
  pdm::server::TcpServer server(&broker);
  pdm::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "Start: %s\n", started.ToString().c_str());
    return 1;
  }
  load_config.host = "127.0.0.1";
  load_config.port = server.port();

  std::printf("=== serving latency: %lld connections x %lld rounds @ %.0f/s, "
              "batch %lld, %lld products, n=%lld (port %u) ===\n",
              static_cast<long long>(load_config.connections),
              static_cast<long long>(load_config.rounds), load_config.rate,
              static_cast<long long>(load_config.batch),
              static_cast<long long>(products),
              static_cast<long long>(setup.dim), server.port());

  pdm::serving_bench::LoadResult load =
      pdm::serving_bench::RunLoad(load_config, workloads);
  server.Stop();
  pdm::server::ServerStats stats = server.stats();

  pdm::serving_bench::PrintLoadSummary(load);
  std::printf("server: %lld frames served, %lld coalesced in %lld runs\n",
              static_cast<long long>(stats.frames_served),
              static_cast<long long>(stats.frames_coalesced),
              static_cast<long long>(stats.coalesced_runs));

  if (!load.ok || load.errors > 0) {
    std::fprintf(stderr, "bench_serving: %lld request errors, ok=%d\n",
                 static_cast<long long>(load.errors), load.ok ? 1 : 0);
    return 1;
  }
  if (!out_path.empty()) {
    if (!pdm::serving_bench::WriteServingJson(out_path, load_config, setup,
                                              products, smoke, load)) {
      return 1;
    }
    std::printf("wrote %s (schema pdm.bench_serving.v1)\n", out_path.c_str());
  }
  return 0;
}
