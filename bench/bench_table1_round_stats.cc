// Table I: per-round statistics of the pricing of noisy linear queries under
// the version with reserve price — mean (standard deviation) of the market
// value, reserve price, posted price, and regret, for each (n, T).
//
// Paper reference values (means): n=20: value 3.874, reserve 3.388, posted
// 3.685, regret 0.166; n=100: value 8.824, reserve 7.221, posted 8.820,
// regret 0.686. Exact values depend on the (proprietary) dataset; the shape
// to check is value ≳ posted > reserve and regret ≪ value.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace {

std::string MeanStd(const pdm::RunningStats& stats) {
  return pdm::FormatDouble(stats.mean(), 3) + " (" + pdm::FormatDouble(stats.stddev(), 3) +
         ")";
}

}  // namespace

int main(int argc, char** argv) {
  int64_t num_owners = 2000;
  bool full = true;
  uint64_t seed = 1;
  pdm::FlagSet flags("bench_table1_round_stats");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddBool("full", &full, "run the paper's full scale (false: 10x fewer rounds)");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "workload seed");
  if (!flags.Parse(argc, argv)) return 1;

  struct Config {
    int dim;
    int64_t rounds;
  };
  const std::vector<Config> configs = {{1, 100},     {20, 10000},  {40, 10000},
                                       {60, 100000}, {80, 100000}, {100, 100000}};

  std::printf("=== Table I: per-round statistics, version with reserve price ===\n\n");
  pdm::TablePrinter table(
      {"n", "T", "market value", "reserve price", "posted price", "regret"});
  pdm::bench::Variant reserve_variant{"reserve", true, false};

  for (const Config& config : configs) {
    int64_t rounds = full ? config.rounds : std::max<int64_t>(100, config.rounds / 10);
    pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
        config.dim, rounds, static_cast<int>(num_owners),
        seed + static_cast<uint64_t>(config.dim));
    pdm::SimulationResult result = pdm::bench::RunLinearVariant(
        workload, reserve_variant, config.dim, rounds, /*delta=*/0.0,
        /*series_stride=*/0, /*sim_seed=*/99);
    const pdm::RegretTracker& tracker = result.tracker;
    table.AddRow({std::to_string(config.dim), std::to_string(rounds),
                  MeanStd(tracker.value_stats()), MeanStd(tracker.reserve_stats()),
                  MeanStd(tracker.price_stats()), MeanStd(tracker.regret_stats())});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape checks (paper's Table I): mean value ≥ mean posted > mean\n"
      "reserve; per-round regret is a small fraction of the market value and\n"
      "grows with n.\n");
  return 0;
}
