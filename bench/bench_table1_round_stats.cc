// Table I: per-round statistics of the pricing of noisy linear queries under
// the version with reserve price — mean (standard deviation) of the market
// value, reserve price, posted price, and regret, for each (n, T).
//
// Thin spec-driven binary over scenario::Table1Scenarios (also runnable as
// `pdm_run --scenarios=table1/*`). Paper reference values (means): n=20:
// value 3.874, reserve 3.388, posted 3.685, regret 0.166; n=100: value
// 8.824, reserve 7.221, posted 8.820, regret 0.686. Exact values depend on
// the (proprietary) dataset; the shape to check is value ≳ posted > reserve
// and regret ≪ value.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

namespace {

std::string MeanStd(const pdm::RunningStats& stats) {
  return pdm::FormatDouble(stats.mean(), 3) + " (" + pdm::FormatDouble(stats.stddev(), 3) +
         ")";
}

}  // namespace

int main(int argc, char** argv) {
  int64_t num_owners = 2000;
  bool full = true;
  uint64_t seed = 1;
  pdm::FlagSet flags("bench_table1_round_stats");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  flags.AddBool("full", &full, "run the paper's full scale (false: 10x fewer rounds)");
  flags.AddUint64("seed", &seed, "workload seed");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Table I: per-round statistics, version with reserve price ===\n\n");
  std::vector<pdm::scenario::ScenarioSpec> specs =
      pdm::scenario::Table1Scenarios(num_owners, full, seed);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  pdm::TablePrinter table(
      {"n", "T", "market value", "reserve price", "posted price", "regret"});
  for (const auto& outcome : outcomes) {
    const pdm::RegretTracker& tracker = outcome.result.tracker;
    table.AddRow({std::to_string(outcome.spec.n), std::to_string(outcome.spec.rounds),
                  MeanStd(tracker.value_stats()), MeanStd(tracker.reserve_stats()),
                  MeanStd(tracker.price_stats()), MeanStd(tracker.regret_stats())});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape checks (paper's Table I): mean value ≥ mean posted > mean\n"
      "reserve; per-round regret is a small fraction of the market value and\n"
      "grows with n.\n");
  return 0;
}
