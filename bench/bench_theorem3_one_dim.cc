// Theorem 3: the one-dimensional pure mechanism has O(log T) worst-case
// regret with ε = log₂(T)/T. We sweep T over four decades and report the
// cumulative regret alongside regret/log₂(T), which should stay bounded
// (roughly constant) if the logarithmic growth holds.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  int64_t max_rounds = 1000000;
  int64_t num_owners = 100;
  pdm::FlagSet flags("bench_theorem3_one_dim");
  flags.AddInt64("max_rounds", &max_rounds, "largest horizon T in the sweep");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Theorem 3: one-dimensional pure version, regret ~ O(log T) ===\n\n");
  pdm::TablePrinter table(
      {"T", "epsilon", "cumulative regret", "regret / log2(T)", "exploratory rounds"});

  pdm::bench::Variant pure{"pure", false, false};
  for (int64_t rounds = 100; rounds <= max_rounds; rounds *= 10) {
    pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
        1, std::min<int64_t>(rounds, 4096), static_cast<int>(num_owners), 7);
    // n = 1 rounds are identical (x = 1, v = √2); replay wraps the workload.
    pdm::SimulationResult result = pdm::bench::RunLinearVariant(
        workload, pure, 1, rounds, /*delta=*/0.0, /*series_stride=*/0, 99);
    double log2t = std::log2(static_cast<double>(rounds));
    table.AddRow({std::to_string(rounds),
                  pdm::FormatDouble(pdm::DefaultIntervalEpsilon(rounds, 0.0), 6),
                  pdm::FormatDouble(result.tracker.cumulative_regret(), 3),
                  pdm::FormatDouble(result.tracker.cumulative_regret() / log2t, 4),
                  std::to_string(result.engine_counters.exploratory_rounds)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: cumulative regret grows ~logarithmically in T —\n"
      "regret/log2(T) stays bounded while T spans four decades, and the\n"
      "number of exploratory (bisection) rounds grows only logarithmically.\n");
  return 0;
}
