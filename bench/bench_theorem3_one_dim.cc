// Theorem 3: the one-dimensional pure mechanism has O(log T) worst-case
// regret with ε = log₂(T)/T. We sweep T over four decades and report the
// cumulative regret alongside regret/log₂(T), which should stay bounded
// (roughly constant) if the logarithmic growth holds.
//
// Thin spec-driven binary over scenario::Theorem3Scenarios (also runnable as
// `pdm_run --scenarios=theorem3/*`).

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "pricing/interval_engine.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  int64_t max_rounds = 1000000;
  int64_t num_owners = 100;
  pdm::FlagSet flags("bench_theorem3_one_dim");
  flags.AddInt64("max_rounds", &max_rounds, "largest horizon T in the sweep");
  flags.AddInt64("owners", &num_owners, "number of data owners");
  if (!flags.Parse(argc, argv)) return 1;

  std::printf("=== Theorem 3: one-dimensional pure version, regret ~ O(log T) ===\n\n");
  std::vector<pdm::scenario::ScenarioSpec> specs =
      pdm::scenario::Theorem3Scenarios(max_rounds, num_owners);
  pdm::scenario::ExperimentDriver driver;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  pdm::TablePrinter table(
      {"T", "epsilon", "cumulative regret", "regret / log2(T)", "exploratory rounds"});
  for (const auto& outcome : outcomes) {
    int64_t rounds = outcome.spec.rounds;
    double log2t = std::log2(static_cast<double>(rounds));
    table.AddRow({std::to_string(rounds),
                  pdm::FormatDouble(pdm::DefaultIntervalEpsilon(rounds, 0.0), 6),
                  pdm::FormatDouble(outcome.result.tracker.cumulative_regret(), 3),
                  pdm::FormatDouble(outcome.result.tracker.cumulative_regret() / log2t, 4),
                  std::to_string(outcome.result.engine_counters.exploratory_rounds)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: cumulative regret grows ~logarithmically in T —\n"
      "regret/log2(T) stays bounded while T spans four decades, and the\n"
      "number of exploratory (bisection) rounds grows only logarithmically.\n");
  return 0;
}
