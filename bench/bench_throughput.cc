// Throughput sweep: steady-state pricing rounds per second over dimension
// n ∈ {2, 5, 10, 20, 50} × the four mechanism variants, on the precomputed
// noisy-linear-query workload (Application 1). This is the perf trajectory
// bench: besides the human-readable table it emits a machine-readable
// BENCH_throughput.json (schema pdm.bench_throughput.v1) so successive
// commits can be compared mechanically. The sweep itself is declarative —
// scenario::ThroughputScenarios — and runs through the same ExperimentDriver
// as pdm_run (which also covers this grid, as `throughput/*`, in the richer
// pdm.run.v1 schema).
//
// Each scenario replays the same recorded query sequence through RunMarket;
// the reported wall time covers only the market loop (stream fill + PostPrice
// + Observe + regret accounting), not workload construction.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

namespace {

/// Writes the sweep as pdm.bench_throughput.v1 JSON (the scenario key stays
/// "variant/n=dim" so the rounds/sec trajectory remains comparable across
/// commits). `rss_bytes` is process VmRSS after the sweep.
void WriteJson(const std::string& path, int64_t rounds_per_scenario,
               int64_t workload_rounds, double delta,
               const std::vector<pdm::scenario::ScenarioOutcome>& outcomes) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  pdm::JsonWriter json(&out);
  json.BeginObject();
  json.Field("schema", "pdm.bench_throughput.v1");
  json.Field("rounds_per_scenario", rounds_per_scenario);
  json.Field("workload_rounds", workload_rounds);
  json.Field("delta", delta);
  json.Key("results");
  json.BeginArray();
  for (const pdm::scenario::ScenarioOutcome& outcome : outcomes) {
    const pdm::scenario::ScenarioSpec& spec = outcome.spec;
    double wall = outcome.result.wall_seconds;
    double rounds = static_cast<double>(spec.rounds);
    json.BeginObject();
    json.Field("scenario", spec.mechanism + "/n=" + std::to_string(spec.n));
    json.Field("variant", spec.mechanism);
    json.Field("dim", spec.n);
    json.Field("rounds", spec.rounds);
    json.Field("wall_seconds", wall);
    json.Field("rounds_per_sec", wall > 0.0 ? rounds / wall : 0.0);
    json.Field("ns_per_round", wall * 1e9 / rounds);
    json.Field("rss_bytes", outcome.rss_bytes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  int64_t rounds = 200000;
  int64_t workload_rounds = 2048;
  int64_t num_owners = 512;
  double delta = 0.01;
  uint64_t seed = 1;
  bool smoke = false;
  std::string out_path = "BENCH_throughput.json";
  pdm::FlagSet flags("bench_throughput");
  flags.AddInt64("rounds", &rounds, "timed rounds per scenario");
  flags.AddInt64("workload_rounds", &workload_rounds,
                 "distinct precomputed queries per dimension");
  flags.AddInt64("owners", &num_owners, "data owners behind the workload");
  flags.AddDouble("delta", &delta, "uncertainty buffer for the *+uncertainty variants");
  flags.AddUint64("seed", &seed, "workload seed");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 20000)");
  flags.AddString("out", &out_path, "machine-readable JSON output path");
  if (!flags.Parse(argc, argv)) return 1;
  if (smoke && rounds > 20000) rounds = 20000;

  std::vector<pdm::scenario::ScenarioSpec> specs = pdm::scenario::ThroughputScenarios(
      rounds, workload_rounds, num_owners, delta, seed);
  std::printf("=== throughput sweep: %ld rounds/scenario, %zu scenarios ===\n\n",
              static_cast<long>(rounds), specs.size());

  // Scenarios run serially on purpose: concurrent scenarios would contend
  // for cores and distort per-scenario wall times.
  pdm::scenario::RunOptions options;
  options.num_threads = 1;
  pdm::scenario::ExperimentDriver driver(options);
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  pdm::TablePrinter table({"scenario", "rounds/s", "ns/round", "rss_mib"});
  for (const pdm::scenario::ScenarioOutcome& outcome : outcomes) {
    double wall = outcome.result.wall_seconds;
    double per_sec = wall > 0.0 ? static_cast<double>(outcome.spec.rounds) / wall : 0.0;
    table.AddRow({outcome.spec.mechanism + "/n=" + std::to_string(outcome.spec.n),
                  pdm::FormatDouble(per_sec, 0),
                  pdm::FormatDouble(wall * 1e9 / static_cast<double>(outcome.spec.rounds), 1),
                  pdm::FormatDouble(static_cast<double>(outcome.rss_bytes) /
                                        (1024.0 * 1024.0),
                                    1)});
  }
  table.Print(std::cout);

  WriteJson(out_path, rounds, workload_rounds, delta, outcomes);
  std::printf("\nwrote %s (%zu scenarios)\n", out_path.c_str(), outcomes.size());
  return 0;
}
