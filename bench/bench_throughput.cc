// Throughput sweep: steady-state pricing rounds per second over dimension
// n ∈ {2, 5, 10, 20, 50} × the four mechanism variants, on the precomputed
// noisy-linear-query workload (Application 1). This is the perf trajectory
// bench: besides the human-readable table it emits a machine-readable
// BENCH_throughput.json (schema pdm.bench_throughput.v1) so successive
// commits can be compared mechanically.
//
// Each scenario replays the same recorded query sequence through RunMarket;
// the reported wall time covers only the market loop (stream fill + PostPrice
// + Observe + regret accounting), not workload construction.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/flags.h"
#include "common/memory.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace {

struct ThroughputRow {
  std::string scenario;
  std::string variant;
  int dim = 0;
  int64_t rounds = 0;
  double wall_seconds = 0.0;
  double rounds_per_sec = 0.0;
  double ns_per_round = 0.0;
  int64_t rss_bytes = 0;
};

/// Writes the sweep as pdm.bench_throughput.v1 JSON. Hand-rolled: the schema
/// is flat and the repo deliberately has no third-party JSON dependency.
void WriteJson(const std::string& path, int64_t rounds_per_scenario,
               int64_t workload_rounds, double delta,
               const std::vector<ThroughputRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"pdm.bench_throughput.v1\",\n";
  out << "  \"rounds_per_scenario\": " << rounds_per_scenario << ",\n";
  out << "  \"workload_rounds\": " << workload_rounds << ",\n";
  out << "  \"delta\": " << pdm::FormatDouble(delta, 6) << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", "
        << "\"variant\": \"" << r.variant << "\", "
        << "\"dim\": " << r.dim << ", "
        << "\"rounds\": " << r.rounds << ", "
        << "\"wall_seconds\": " << pdm::FormatDouble(r.wall_seconds, 6) << ", "
        << "\"rounds_per_sec\": " << pdm::FormatDouble(r.rounds_per_sec, 1) << ", "
        << "\"ns_per_round\": " << pdm::FormatDouble(r.ns_per_round, 1) << ", "
        << "\"rss_bytes\": " << r.rss_bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int64_t rounds = 200000;
  int64_t workload_rounds = 2048;
  int64_t num_owners = 512;
  double delta = 0.01;
  uint64_t seed = 1;
  bool smoke = false;
  std::string out_path = "BENCH_throughput.json";
  pdm::FlagSet flags("bench_throughput");
  flags.AddInt64("rounds", &rounds, "timed rounds per scenario");
  flags.AddInt64("workload_rounds", &workload_rounds,
                 "distinct precomputed queries per dimension");
  flags.AddInt64("owners", &num_owners, "data owners behind the workload");
  flags.AddDouble("delta", &delta, "uncertainty buffer for the *+uncertainty variants");
  flags.AddInt64("seed", reinterpret_cast<int64_t*>(&seed), "workload seed");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 20000)");
  flags.AddString("out", &out_path, "machine-readable JSON output path");
  if (!flags.Parse(argc, argv)) return 1;
  if (smoke && rounds > 20000) rounds = 20000;

  const std::vector<int> dims = {2, 5, 10, 20, 50};
  const std::vector<pdm::bench::Variant> variants = pdm::bench::PaperVariants();

  std::printf("=== throughput sweep: %ld rounds/scenario, %zu dims x %zu variants ===\n\n",
              static_cast<long>(rounds), dims.size(), variants.size());

  std::vector<ThroughputRow> rows;
  pdm::TablePrinter table({"scenario", "rounds/s", "ns/round", "rss_mib"});
  for (int dim : dims) {
    pdm::bench::LinearWorkload workload = pdm::bench::MakeLinearWorkload(
        dim, workload_rounds, static_cast<int>(num_owners), seed);
    for (const pdm::bench::Variant& variant : variants) {
      pdm::ScenarioSpec spec = pdm::bench::LinearVariantScenario(
          &workload, variant, dim, rounds, delta, /*series_stride=*/0,
          /*sim_seed=*/seed + static_cast<uint64_t>(dim));
      spec.name = variant.label + "/n=" + std::to_string(dim);
      // Scenarios run serially on purpose: concurrent scenarios would contend
      // for cores and distort per-scenario wall times.
      pdm::ScenarioResult result = pdm::SimulationRunner::RunScenario(spec);

      ThroughputRow row;
      row.scenario = spec.name;
      row.variant = variant.label;
      row.dim = dim;
      row.rounds = rounds;
      row.wall_seconds = result.result.wall_seconds;
      row.rounds_per_sec =
          row.wall_seconds > 0.0 ? static_cast<double>(rounds) / row.wall_seconds : 0.0;
      row.ns_per_round =
          row.wall_seconds * 1e9 / static_cast<double>(rounds);
      row.rss_bytes = pdm::CurrentRssBytes();
      rows.push_back(row);

      table.AddRow({row.scenario, pdm::FormatDouble(row.rounds_per_sec, 0),
                    pdm::FormatDouble(row.ns_per_round, 1),
                    pdm::FormatDouble(static_cast<double>(row.rss_bytes) / (1024.0 * 1024.0),
                                      1)});
    }
  }
  table.Print(std::cout);

  WriteJson(out_path, rounds, workload_rounds, delta, rows);
  std::printf("\nwrote %s (%zu scenarios)\n", out_path.c_str(), rows.size());
  return 0;
}
