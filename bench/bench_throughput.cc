// Throughput sweep: steady-state pricing rounds per second over dimension
// n ∈ {2, 5, 10, 20, 50} × the four mechanism variants, on the precomputed
// noisy-linear-query workload (Application 1). This is the perf trajectory
// bench: besides the human-readable table it emits a machine-readable
// BENCH_throughput.json (schema pdm.bench_throughput.v2) so successive
// commits can be compared mechanically. The classic sweep is declarative —
// scenario::ThroughputScenarios — and runs through the same ExperimentDriver
// as pdm_run (which also covers this grid, as `throughput/*`, in the richer
// pdm.run.v1 schema).
//
// Each scenario replays the same recorded query sequence through RunMarket;
// the reported wall time covers only the market loop (stream fill + PostPrice
// + Observe + regret accounting), not workload construction.
//
// The `--batch` flag adds the batched same-product sweep (DESIGN.md §11):
// for each dimension, a single "reserve" product served through the Broker
// handle path with K-quote PostPrices + K-ticket Observes per round trip,
// K sweeping the batch list. K = 1 goes through the identical call path
// (degenerating to the scalar engine quote), so the b=K / b=1 ratio isolates
// what the matrix–panel kernel and the amortized session crossing buy.
// Batched rows carry scenario keys "batched/reserve/n=<dim>/b=<K>" and a
// `batch` field; classic rows carry batch = 1.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "broker_bench_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/memory.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

namespace {

/// One cell of the batched same-product sweep.
struct BatchedCell {
  std::string scenario;
  int64_t dim = 0;
  int64_t batch = 0;
  int64_t rounds = 0;
  double wall_seconds = 0.0;
  int64_t rss_bytes = 0;

  double rounds_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(rounds) / wall_seconds : 0.0;
  }
};

/// Runs the batched same-product sweep: dims × batch sizes, one fresh broker
/// and "reserve" product per cell so no cell inherits another's knowledge-set
/// refinement (cut cadence changes the rate).
std::vector<BatchedCell> RunBatchedSweep(const std::vector<int64_t>& batches,
                                         int64_t rounds, int64_t workload_rounds,
                                         int64_t num_owners, double delta,
                                         uint64_t seed) {
  // kVariants[2] == "reserve": the mechanism the acceptance bar is measured
  // on, and the one with the richest decision ladder (skip/explore/refine).
  constexpr int64_t kReserveProduct = 2;
  std::vector<BatchedCell> cells;
  for (int64_t dim : {2, 5, 10, 20, 50}) {
    for (int64_t batch : batches) {
      pdm::broker_bench::ProductSetup setup;
      setup.dim = dim;
      setup.workload_rounds = workload_rounds;
      setup.num_owners = num_owners;
      setup.rounds = rounds;
      setup.delta = delta;
      setup.seed = seed;
      pdm::scenario::StreamFactory factory;
      pdm::broker::Broker broker;
      pdm::scenario::ScenarioSpec spec =
          pdm::broker_bench::ProductSpec(kReserveProduct, setup, "batched/");
      pdm::scenario::WorkloadInfo info = factory.Prepare(spec);
      pdm::Status opened = broker.OpenSession(spec.name, spec, info);
      if (!opened.ok()) {
        std::fprintf(stderr, "OpenSession: %s\n", opened.ToString().c_str());
        std::exit(1);
      }
      pdm::broker_bench::ProductWorkload product =
          pdm::broker_bench::RecordWorkload(&factory, kReserveProduct, setup,
                                            "batched/");
      pdm::broker_bench::ClientResult result = pdm::broker_bench::RunClient(
          &broker, product, rounds, batch, /*cursor=*/0);

      BatchedCell cell;
      cell.scenario = "batched/reserve/n=" + std::to_string(dim) +
                      "/b=" + std::to_string(batch);
      cell.dim = dim;
      cell.batch = batch;
      cell.rounds = result.rounds;
      cell.wall_seconds = result.wall_seconds;
      cell.rss_bytes = pdm::CurrentRssBytes();
      cells.push_back(cell);
    }
  }
  return cells;
}

/// Writes the sweep as pdm.bench_throughput.v2 JSON. Classic scenario keys
/// stay "variant/n=dim" (with batch = 1) so the rounds/sec trajectory remains
/// joinable across commits, including against old v1 documents; batched rows
/// add the "batched/..." key space. `rss_bytes` is process VmRSS after the
/// sweep.
void WriteJson(const std::string& path, int64_t rounds_per_scenario,
               int64_t workload_rounds, double delta,
               const std::vector<pdm::scenario::ScenarioOutcome>& outcomes,
               const std::vector<BatchedCell>& batched) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  pdm::JsonWriter json(&out);
  json.BeginObject();
  json.Field("schema", "pdm.bench_throughput.v2");
  json.Field("rounds_per_scenario", rounds_per_scenario);
  json.Field("workload_rounds", workload_rounds);
  json.Field("delta", delta);
  json.Key("results");
  json.BeginArray();
  for (const pdm::scenario::ScenarioOutcome& outcome : outcomes) {
    const pdm::scenario::ScenarioSpec& spec = outcome.spec;
    double wall = outcome.result.wall_seconds;
    double rounds = static_cast<double>(spec.rounds);
    json.BeginObject();
    json.Field("scenario", spec.mechanism + "/n=" + std::to_string(spec.n));
    json.Field("variant", spec.mechanism);
    json.Field("dim", spec.n);
    json.Field("batch", static_cast<int64_t>(1));
    json.Field("rounds", spec.rounds);
    json.Field("wall_seconds", wall);
    json.Field("rounds_per_sec", wall > 0.0 ? rounds / wall : 0.0);
    json.Field("ns_per_round", wall * 1e9 / rounds);
    json.Field("rss_bytes", outcome.rss_bytes);
    json.EndObject();
  }
  for (const BatchedCell& cell : batched) {
    json.BeginObject();
    json.Field("scenario", cell.scenario);
    json.Field("variant", "reserve");
    json.Field("dim", cell.dim);
    json.Field("batch", cell.batch);
    json.Field("rounds", cell.rounds);
    json.Field("wall_seconds", cell.wall_seconds);
    json.Field("rounds_per_sec", cell.rounds_per_sec());
    json.Field("ns_per_round", cell.rounds > 0
                                   ? cell.wall_seconds * 1e9 /
                                         static_cast<double>(cell.rounds)
                                   : 0.0);
    json.Field("rss_bytes", cell.rss_bytes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  int64_t rounds = 200000;
  int64_t workload_rounds = 2048;
  int64_t num_owners = 512;
  double delta = 0.01;
  uint64_t seed = 1;
  bool smoke = false;
  std::string batch_csv = "1,4,8,16,32";
  std::string out_path = "BENCH_throughput.json";
  pdm::FlagSet flags("bench_throughput");
  flags.AddInt64("rounds", &rounds, "timed rounds per scenario");
  flags.AddInt64("workload_rounds", &workload_rounds,
                 "distinct precomputed queries per dimension");
  flags.AddInt64("owners", &num_owners, "data owners behind the workload");
  flags.AddDouble("delta", &delta, "uncertainty buffer for the *+uncertainty variants");
  flags.AddUint64("seed", &seed, "workload seed");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 20000)");
  flags.AddString("batch", &batch_csv,
                  "comma-separated batch sizes for the batched same-product "
                  "sweep ('' disables it)");
  flags.AddString("out", &out_path, "machine-readable JSON output path");
  if (!flags.Parse(argc, argv)) return 1;
  if (smoke && rounds > 20000) rounds = 20000;
  std::vector<int64_t> batches;
  if (!batch_csv.empty() &&
      !pdm::broker_bench::ParseCsvInt64s(batch_csv, &batches)) {
    std::fprintf(stderr, "bad --batch '%s'\n", batch_csv.c_str());
    return 1;
  }

  std::vector<pdm::scenario::ScenarioSpec> specs = pdm::scenario::ThroughputScenarios(
      rounds, workload_rounds, num_owners, delta, seed);
  std::printf("=== throughput sweep: %ld rounds/scenario, %zu scenarios ===\n\n",
              static_cast<long>(rounds), specs.size());

  // Scenarios run serially on purpose: concurrent scenarios would contend
  // for cores and distort per-scenario wall times.
  pdm::scenario::RunOptions options;
  options.num_threads = 1;
  pdm::scenario::ExperimentDriver driver(options);
  std::vector<pdm::scenario::ScenarioOutcome> outcomes = driver.Run(specs);

  pdm::TablePrinter table({"scenario", "rounds/s", "ns/round", "rss_mib"});
  for (const pdm::scenario::ScenarioOutcome& outcome : outcomes) {
    double wall = outcome.result.wall_seconds;
    double per_sec = wall > 0.0 ? static_cast<double>(outcome.spec.rounds) / wall : 0.0;
    table.AddRow({outcome.spec.mechanism + "/n=" + std::to_string(outcome.spec.n),
                  pdm::FormatDouble(per_sec, 0),
                  pdm::FormatDouble(wall * 1e9 / static_cast<double>(outcome.spec.rounds), 1),
                  pdm::FormatDouble(static_cast<double>(outcome.rss_bytes) /
                                        (1024.0 * 1024.0),
                                    1)});
  }
  table.Print(std::cout);

  std::vector<BatchedCell> batched;
  if (!batches.empty()) {
    std::printf("\n=== batched same-product sweep (broker handle path): "
                "batch {%s} ===\n\n",
                batch_csv.c_str());
    batched =
        RunBatchedSweep(batches, rounds, workload_rounds, num_owners, delta, seed);
    pdm::TablePrinter batched_table({"scenario", "quotes/s", "ns/quote", "rss_mib"});
    for (const BatchedCell& cell : batched) {
      batched_table.AddRow(
          {cell.scenario, pdm::FormatDouble(cell.rounds_per_sec(), 0),
           pdm::FormatDouble(cell.wall_seconds * 1e9 /
                                 static_cast<double>(cell.rounds),
                             1),
           pdm::FormatDouble(static_cast<double>(cell.rss_bytes) /
                                 (1024.0 * 1024.0),
                             1)});
    }
    batched_table.Print(std::cout);
  }

  WriteJson(out_path, rounds, workload_rounds, delta, outcomes, batched);
  std::printf("\nwrote %s (%zu rows)\n", out_path.c_str(),
              outcomes.size() + batched.size());
  return 0;
}
