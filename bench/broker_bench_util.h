#ifndef PDM_BENCH_BROKER_BENCH_UTIL_H_
#define PDM_BENCH_BROKER_BENCH_UTIL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "market/round.h"
#include "rng/rng.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"

/// \file
/// Shared client harness for the broker serving benches
/// (`bench_broker_throughput`, `bench_broker_scaling`): product setup over
/// precomputed linear workloads, and the timed client loop — batched
/// handle-keyed `PostPrices` + batched ticketed `Observes`, the steady-state
/// fast path real clients should use (DESIGN.md §9).

namespace pdm::broker_bench {

/// The four published mechanism variants, assigned to products round-robin.
inline const char* const kVariants[] = {"pure", "uncertainty", "reserve",
                                        "reserve+uncertainty"};

/// Parses a comma-separated list of positive integers (the shape of the
/// `--batch` / `--threads_list` sweep flags). Returns false on any malformed
/// or non-positive entry, or an empty list.
inline bool ParseCsvInt64s(const std::string& csv, std::vector<int64_t>* out) {
  out->clear();
  for (const std::string& part : Split(csv, ',')) {
    std::optional<int64_t> value = ParseInt64(Trim(part));
    if (!value.has_value() || *value < 1) return false;
    out->push_back(*value);
  }
  return !out->empty();
}

struct ProductSetup {
  int64_t dim = 20;
  int64_t workload_rounds = 2048;
  int64_t num_owners = 512;
  int64_t rounds = 200000;  ///< spec horizon (engine ε schedule input)
  double delta = 0.01;
  uint64_t seed = 1;
};

struct ProductWorkload {
  std::string name;
  std::string variant;
  /// Precomputed query ring; the timed region replays it so it measures
  /// broker round trips only.
  std::vector<MarketRound> recorded;
};

/// The spec of the i-th bench product — the single source of truth for the
/// product name, seeds, and engine variant. The TCP server binary and the
/// load generator both build products from this, which is what lets a
/// loadgen reconstruct the server's product names and query rings from the
/// shared (setup, prefix) parameters without any control-plane wire API.
inline scenario::ScenarioSpec ProductSpec(int64_t i, const ProductSetup& setup,
                                          const std::string& name_prefix) {
  scenario::ScenarioSpec spec;
  spec.mechanism = kVariants[i % 4];
  spec.name = name_prefix + std::to_string(i) + "/" + spec.mechanism +
              "/n=" + std::to_string(setup.dim);
  spec.family = "broker-bench";
  spec.stream = scenario::StreamKind::kLinear;
  spec.n = static_cast<int>(setup.dim);
  spec.rounds = setup.rounds;
  spec.delta = setup.delta;
  spec.linear.num_owners = static_cast<int>(setup.num_owners);
  spec.linear.workload_rounds = setup.workload_rounds;
  spec.workload_seed = setup.seed + static_cast<uint64_t>(i);
  spec.sim_seed = 99 + static_cast<uint64_t>(i);
  return spec;
}

/// Records the i-th product's precomputed query ring (no broker involved).
inline ProductWorkload RecordWorkload(scenario::StreamFactory* factory, int64_t i,
                                      const ProductSetup& setup,
                                      const std::string& name_prefix) {
  scenario::ScenarioSpec spec = ProductSpec(i, setup, name_prefix);
  ProductWorkload product;
  product.name = spec.name;
  product.variant = spec.mechanism;
  (void)factory->Prepare(spec);  // ensure the shared workload exists (cached)
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory->CreateStream(spec, &rng);
  product.recorded.resize(static_cast<size_t>(setup.workload_rounds));
  for (MarketRound& round : product.recorded) stream->Next(&rng, &round);
  return product;
}

/// Client-side view: the query rings alone, for a loadgen talking to a
/// remote broker that opened the same (setup, prefix) products.
inline std::vector<ProductWorkload> BuildWorkloads(scenario::StreamFactory* factory,
                                                   int64_t count,
                                                   const ProductSetup& setup,
                                                   const std::string& name_prefix) {
  std::vector<ProductWorkload> products;
  products.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    products.push_back(RecordWorkload(factory, i, setup, name_prefix));
  }
  return products;
}

/// Opens `count` products on `broker` (each with its own precomputed linear
/// workload and registry-built engine) and records their query sequences.
/// Exits the process on setup failure — this is bench scaffolding.
inline std::vector<ProductWorkload> OpenProducts(scenario::StreamFactory* factory,
                                                 broker::Broker* broker,
                                                 int64_t count,
                                                 const ProductSetup& setup,
                                                 const std::string& name_prefix) {
  std::vector<ProductWorkload> products(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    scenario::ScenarioSpec spec = ProductSpec(i, setup, name_prefix);
    scenario::WorkloadInfo info = factory->Prepare(spec);
    Status opened = broker->OpenSession(spec.name, spec, info);
    if (!opened.ok()) {
      std::fprintf(stderr, "OpenSession: %s\n", opened.ToString().c_str());
      std::exit(1);
    }
    products[static_cast<size_t>(i)] =
        RecordWorkload(factory, i, setup, name_prefix);
  }
  return products;
}

struct ClientResult {
  std::string product;
  std::string variant;
  int64_t rounds = 0;
  double wall_seconds = 0.0;

  double rounds_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(rounds) / wall_seconds : 0.0;
  }
};

/// One client thread's timed loop: resolve the handle once, then batched
/// handle-keyed PostPrices + batched Observes until `rounds` round trips
/// complete. `cursor` staggers clients that share a product ring.
inline ClientResult RunClient(broker::Broker* broker, const ProductWorkload& product,
                              int64_t rounds, int64_t batch, size_t cursor) {
  broker::ProductHandle handle;
  Status resolved = broker->Resolve(product.name, &handle);
  if (!resolved.ok()) {
    std::fprintf(stderr, "Resolve: %s\n", resolved.ToString().c_str());
    std::abort();
  }
  const std::vector<MarketRound>& ring = product.recorded;
  std::vector<broker::HandleRequest> requests(static_cast<size_t>(batch));
  std::vector<broker::Quote> quotes(static_cast<size_t>(batch));
  std::vector<broker::FeedbackRequest> feedback(static_cast<size_t>(batch));
  std::vector<const MarketRound*> batch_rounds(static_cast<size_t>(batch));
  cursor %= ring.size();

  WallTimer timer;
  int64_t done = 0;
  while (done < rounds) {
    int64_t this_batch = std::min<int64_t>(batch, rounds - done);
    for (int64_t k = 0; k < this_batch; ++k) {
      const MarketRound& round = ring[cursor];
      cursor = cursor + 1 == ring.size() ? 0 : cursor + 1;
      batch_rounds[k] = &round;
      requests[k] = {handle, round.features, round.reserve};
    }
    Status status =
        broker->PostPrices({requests.data(), static_cast<size_t>(this_batch)},
                           {quotes.data(), static_cast<size_t>(this_batch)});
    if (!status.ok()) {
      std::fprintf(stderr, "PostPrices: %s\n", status.ToString().c_str());
      std::abort();
    }
    for (int64_t k = 0; k < this_batch; ++k) {
      feedback[k].ticket = quotes[k].ticket;
      feedback[k].accepted =
          !quotes[k].certain_no_sale && quotes[k].price <= batch_rounds[k]->value;
    }
    status = broker->Observes({feedback.data(), static_cast<size_t>(this_batch)});
    if (!status.ok()) {
      std::fprintf(stderr, "Observes: %s\n", status.ToString().c_str());
      std::abort();
    }
    done += this_batch;
  }
  ClientResult result;
  result.product = product.name;
  result.variant = product.variant;
  result.rounds = rounds;
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

struct RegionResult {
  std::vector<ClientResult> clients;
  double region_seconds = 0.0;
  int64_t total_rounds = 0;

  double aggregate_rounds_per_sec() const {
    return region_seconds > 0.0 ? static_cast<double>(total_rounds) / region_seconds
                                : 0.0;
  }
};

/// Launches `threads` clients (thread i drives `products[i % products.size()]`,
/// with cursors staggered so ring-sharing clients do not march in lockstep),
/// releases them together, and times the whole region (first start to last
/// finish — the honest serving view for the aggregate rate).
inline RegionResult RunClients(broker::Broker* broker,
                               const std::vector<ProductWorkload>& products,
                               int64_t threads, int64_t rounds, int64_t batch) {
  std::atomic<int64_t> ready{0};
  std::atomic<bool> go{false};
  RegionResult region;
  region.clients.resize(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int64_t i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      const ProductWorkload& product = products[i % products.size()];
      size_t cursor = static_cast<size_t>(i) * 97;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      region.clients[static_cast<size_t>(i)] =
          RunClient(broker, product, rounds, batch, cursor);
    });
  }
  while (ready.load() < threads) {
  }
  WallTimer region_timer;
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  region.region_seconds = region_timer.ElapsedSeconds();
  region.total_rounds = threads * rounds;
  return region;
}

/// Per-thread distribution of client rates: the aggregate alone hides
/// stragglers (a contended client can collapse while the sum looks fine).
struct ThreadRateStats {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

inline ThreadRateStats RateStats(const std::vector<ClientResult>& clients) {
  ThreadRateStats stats;
  if (clients.empty()) return stats;
  std::vector<double> rates;
  rates.reserve(clients.size());
  for (const ClientResult& client : clients) rates.push_back(client.rounds_per_sec());
  std::sort(rates.begin(), rates.end());
  stats.min = rates.front();
  stats.max = rates.back();
  size_t mid = rates.size() / 2;
  stats.median = rates.size() % 2 == 1 ? rates[mid]
                                       : 0.5 * (rates[mid - 1] + rates[mid]);
  return stats;
}

}  // namespace pdm::broker_bench

#endif  // PDM_BENCH_BROKER_BENCH_UTIL_H_
