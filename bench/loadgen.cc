// Open-loop load generator for a running `pdm_serve` (DESIGN.md §10):
// reconstructs the server's deterministic product fleet from the shared
// (setup, prefix) flags, drives pipelined PostPrice/Observe traffic at a
// scheduled rate over N connections, and reports round-trip latency
// quantiles measured from the *scheduled* send time (coordinated-omission
// corrected). Emits the same `pdm.bench_serving.v1` document as
// `bench_serving`, so one compare script gates both.
//
//   pdm_serve --port=7411 &            # must use the same product flags
//   loadgen --port=7411 --connections=4 --rate=2000 --rounds=20000
//
// Exit status: non-zero when any connection failed or any request was
// answered with an error — CI treats loadgen as a smoke assertion, not just
// a meter.

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "serving_bench_util.h"

int main(int argc, char** argv) {
  pdm::serving_bench::LoadConfig load_config;
  int64_t port = 0;
  int64_t products = 2;
  bool smoke = false;
  std::string out_path = "";
  pdm::broker_bench::ProductSetup setup;
  pdm::FlagSet flags("loadgen");
  flags.AddString("host", &load_config.host, "server IPv4 literal");
  flags.AddInt64("port", &port, "server TCP port (required)");
  flags.AddInt64("connections", &load_config.connections, "client connections");
  flags.AddDouble("rate", &load_config.rate,
                  "target PostPrice rate per connection (req/s, open loop)");
  flags.AddInt64("rounds", &load_config.rounds,
                 "PostPrice round trips per connection");
  flags.AddInt64("batch", &load_config.batch,
                 "pipelined requests per tick (>= 2 exercises coalescing)");
  flags.AddInt64("products", &products, "product fleet size (match the server)");
  flags.AddInt64("dim", &setup.dim, "feature dimension n (match the server)");
  flags.AddInt64("workload_rounds", &setup.workload_rounds,
                 "precomputed queries per product (match the server)");
  flags.AddInt64("owners", &setup.num_owners, "data owners (match the server)");
  flags.AddUint64("seed", &setup.seed, "base workload seed (match the server)");
  flags.AddBool("smoke", &smoke, "short CI mode (caps rounds at 2000/connection)");
  flags.AddString("out", &out_path, "pdm.bench_serving.v1 JSON path ('' disables)");
  int64_t deadline_ms = 0;
  int64_t retries = 0;
  flags.AddInt64("deadline_ms", &deadline_ms,
                 "per-response deadline (0 waits forever)");
  flags.AddInt64("retries", &retries,
                 "reconnect+resume attempts after a transient transport "
                 "failure (0: any transport failure is fatal)");
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "--port is required (1..65535)\n");
    return 1;
  }
  if (load_config.connections < 1 || load_config.rounds < 1 ||
      load_config.batch < 1 || load_config.rate <= 0.0 || products < 1) {
    std::fprintf(stderr, "connections/rounds/batch/rate/products must be positive\n");
    return 1;
  }
  if (smoke && load_config.rounds > 2000) load_config.rounds = 2000;
  load_config.port = static_cast<uint16_t>(port);
  load_config.deadline_ms = static_cast<int>(deadline_ms);
  load_config.max_retries = static_cast<int>(retries);

  pdm::scenario::StreamFactory factory;
  std::vector<pdm::broker_bench::ProductWorkload> workloads =
      pdm::broker_bench::BuildWorkloads(&factory, products, setup, "serve/");

  pdm::serving_bench::LoadResult load =
      pdm::serving_bench::RunLoad(load_config, workloads);
  pdm::serving_bench::PrintLoadSummary(load);

  if (!out_path.empty() &&
      !pdm::serving_bench::WriteServingJson(out_path, load_config, setup, products,
                                            smoke, load)) {
    return 1;
  }
  // Retried/shed requests (load.errors_retried) are expected under chaos
  // drills and do not fail the run; only fatal-class failures do.
  if (!load.ok || load.errors > 0) {
    std::fprintf(stderr, "loadgen: %lld request errors, ok=%d\n",
                 static_cast<long long>(load.errors), load.ok ? 1 : 0);
    return 1;
  }
  return 0;
}
