// Unified experiment driver: selects declarative scenarios from the paper-
// exhibit registry by name/glob, executes them on the thread-pooled
// SimulationRunner, and emits one machine-readable pdm.run.v1 JSON document
// (DESIGN.md §8). Every exhibit the dedicated bench binaries reproduce is
// runnable from here — `--list` prints the full catalogue — and new grids
// are added by declaring specs (scenario/scenario_registry.h), not by
// writing another main().
//
//   pdm_run --list
//   pdm_run --scenarios='fig4/*'                 # one whole figure
//   pdm_run --scenarios='fig5a,table1'           # families compose
//   pdm_run --scenarios='throughput/*/n=2?'      # glob on any name part
//   pdm_run --scenarios='fig4,table1' --max_rounds=2000   # CI smoke grid

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "broker/driver.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "scenario/experiment.h"
#include "scenario/scenario_registry.h"

int main(int argc, char** argv) {
  std::string scenarios = "fig4,fig5a,table1,throughput";
  std::string out_path = "RUN_pdm.json";
  int64_t max_rounds = 0;
  int64_t threads = 0;
  bool list = false;
  bool series = false;
  bool table = true;
  bool through_broker = false;
  pdm::FlagSet flags("pdm_run");
  flags.AddString("scenarios", &scenarios,
                  "comma-separated glob patterns over scenario names/families");
  flags.AddString("out", &out_path, "pdm.run.v1 JSON output path ('' disables)");
  flags.AddInt64("max_rounds", &max_rounds,
                 "cap every scenario's horizon (0 = the registered scale)");
  flags.AddInt64("threads", &threads,
                 "worker threads (0 = hardware default, 1 = serial)");
  flags.AddBool("list", &list, "list the registered scenarios and exit");
  flags.AddBool("series", &series, "include regret series in the JSON");
  flags.AddBool("table", &table, "print the comparison table");
  flags.AddBool("through_broker", &through_broker,
                "execute through the Broker serving surface (handle fast "
                "path; bit-identical to the direct path)");
  // --help exits cleanly: asking for the flag list is not an error.
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;

  const pdm::scenario::ScenarioRegistry& registry =
      pdm::scenario::ScenarioRegistry::PaperExhibits();
  if (list) {
    std::vector<pdm::scenario::ScenarioSpec> sorted = registry.specs();
    std::sort(sorted.begin(), sorted.end(),
              [](const pdm::scenario::ScenarioSpec& a,
                 const pdm::scenario::ScenarioSpec& b) { return a.name < b.name; });
    pdm::TablePrinter table({"scenario", "stream", "mechanism", "n", "T"});
    for (const auto& spec : sorted) {
      table.AddRow({spec.name, pdm::scenario::StreamKindName(spec.stream),
                    spec.mechanism, std::to_string(spec.n),
                    std::to_string(spec.rounds)});
    }
    table.Print(std::cout);
    std::printf("\n%zu scenarios registered\n", registry.size());
    return 0;
  }

  std::vector<pdm::scenario::ScenarioSpec> selected = registry.Match(scenarios);
  if (selected.empty()) {
    std::fprintf(stderr,
                 "pdm_run: no scenario matches '%s'\n"
                 "run with --list to see the registered names\n",
                 scenarios.c_str());
    return 1;
  }
  std::printf("=== pdm_run: %zu scenarios matching '%s'%s ===\n\n", selected.size(),
              scenarios.c_str(), max_rounds > 0 ? " (capped)" : "");

  pdm::scenario::RunOptions options;
  options.num_threads = static_cast<int>(threads);
  options.max_rounds = max_rounds;
  std::vector<pdm::scenario::ScenarioOutcome> outcomes =
      through_broker
          ? pdm::broker::RunScenariosThroughBroker(selected, options)
          : pdm::scenario::ExperimentDriver(options).Run(selected);

  if (table) pdm::scenario::PrintOutcomeTable(outcomes, std::cout);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    pdm::scenario::RunMetadata meta;
    meta.generator = through_broker ? "pdm_run --through_broker" : "pdm_run";
    meta.selection = scenarios;
    meta.max_rounds = max_rounds;
    meta.num_threads = options.num_threads;
    meta.include_series = series;
    pdm::scenario::WriteRunJson(out, meta, outcomes);
    std::printf("\nwrote %s (%zu results, schema pdm.run.v1)\n", out_path.c_str(),
                outcomes.size());
  }
  return 0;
}
