// Standalone `pdm.wire.v1` TCP server: opens a fleet of bench products on a
// Broker and serves them until SIGINT/SIGTERM (or --max_seconds). The
// products are the deterministic (setup, prefix) fleet from
// broker_bench_util, so a `loadgen` started with the same --products/--dim/
// --seed flags reconstructs the product names and query rings on its own —
// no control-plane protocol needed (DESIGN.md §10).
//
//   pdm_serve                          # ephemeral port, printed on stdout
//   pdm_serve --port=7411 --products=4
//   pdm_serve --max_seconds=60         # CI smoke: self-terminating
//
// Prints exactly one "LISTENING <port>" line to stdout once ready, followed
// by one "METRICS <port>" line when the Prometheus scrape endpoint is
// enabled (scripts scrape both to find the ephemeral ports).
//
// One MetricRegistry backs the broker and server instruments, the scrape
// endpoint, the GetMetrics opcode, and the shutdown stats printed below —
// a single vocabulary, no duplicated counters (DESIGN.md §13).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "broker_bench_util.h"
#include "common/fault.h"
#include "common/flags.h"
#include "metrics/metrics.h"
#include "server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t metrics_port = 0;
  int64_t products = 2;
  int64_t max_seconds = 0;
  pdm::broker_bench::ProductSetup setup;
  pdm::FlagSet flags("pdm_serve");
  flags.AddString("host", &host, "IPv4 literal to bind");
  flags.AddInt64("port", &port, "TCP port (0 = ephemeral)");
  flags.AddInt64("metrics_port", &metrics_port,
                 "Prometheus scrape port (0 = ephemeral, -1 = disabled)");
  flags.AddInt64("products", &products, "bench products to open");
  flags.AddInt64("dim", &setup.dim, "feature dimension n of every product");
  flags.AddInt64("workload_rounds", &setup.workload_rounds,
                 "distinct precomputed queries per product");
  flags.AddInt64("owners", &setup.num_owners, "data owners behind each workload");
  flags.AddInt64("rounds", &setup.rounds, "spec horizon (engine schedule input)");
  flags.AddDouble("delta", &setup.delta,
                  "uncertainty buffer for the *+uncertainty variants");
  flags.AddUint64("seed", &setup.seed, "base workload seed");
  flags.AddInt64("max_seconds", &max_seconds,
                 "self-terminate after this many seconds (0 = run until signal)");
  std::string spill_dir;
  int64_t max_resident = 0;
  std::string faults;
  int64_t idle_timeout_ms = 0;
  flags.AddString("spill_dir", &spill_dir,
                  "cold-tier spill directory ('' disables eviction); restarting "
                  "on the same directory recovers pre-crash spills (§14)");
  flags.AddInt64("max_resident", &max_resident,
                 "soft cap on resident sessions (0 = unlimited)");
  flags.AddString("faults", &faults,
                  "fault-injection spec, e.g. 'seed=7,spill.write=0.01,"
                  "server.recv_reset@40' ('' keeps the injector disarmed)");
  flags.AddInt64("idle_timeout_ms", &idle_timeout_ms,
                 "reap wire connections idle this long (0 = never)");
  if (!flags.Parse(argc, argv)) return flags.help_requested() ? 0 : 1;
  if (port < 0 || port > 65535 || metrics_port < -1 || metrics_port > 65535 ||
      products < 1) {
    std::fprintf(stderr, "bad --port/--metrics_port/--products\n");
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  if (!faults.empty()) {
    pdm::Status configured =
        pdm::fault::FaultInjector::Global().Configure(faults);
    if (!configured.ok()) {
      std::fprintf(stderr, "--faults: %s\n", configured.ToString().c_str());
      return 1;
    }
    pdm::fault::FaultInjector::Global().Arm();
  }

  pdm::metrics::MetricRegistry registry;
  pdm::scenario::StreamFactory factory;
  pdm::broker::BrokerConfig broker_config;
  broker_config.metrics = &registry;
  broker_config.spill_dir = spill_dir;
  broker_config.max_resident_sessions =
      max_resident > 0 ? static_cast<size_t>(max_resident) : 0;
  pdm::broker::Broker broker(broker_config);
  pdm::broker_bench::OpenProducts(&factory, &broker, products, setup, "serve/");
  // Everything the fleet didn't adopt is a leaked spill from some other
  // (or renamed) fleet — reclaim it now so the directory can't grow across
  // unclean restarts.
  broker.SweepUnclaimedSpills();

  pdm::server::ServerConfig config;
  config.host = host;
  config.port = static_cast<uint16_t>(port);
  config.metrics_port = static_cast<int>(metrics_port);
  config.metrics = &registry;
  config.idle_timeout_ms = static_cast<int>(idle_timeout_ms);
  pdm::server::TcpServer server(&broker, config);
  pdm::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "Start: %s\n", started.ToString().c_str());
    return 1;
  }
  // The RECOVERY handshake line precedes LISTENING so drill scripts can
  // awk-parse what the restart salvaged before any traffic lands.
  pdm::broker::RecoveryReport recovery = broker.recovery_report();
  std::printf("RECOVERY adopted=%zu tmp=%zu corrupt=%zu orphans=%zu\n",
              recovery.adopted, recovery.tmp_reclaimed,
              recovery.corrupt_quarantined, recovery.orphans_reclaimed);
  std::printf("LISTENING %u\n", server.port());
  if (metrics_port >= 0) std::printf("METRICS %u\n", server.metrics_port());
  std::fflush(stdout);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(max_seconds > 0 ? max_seconds : 0);
  while (!g_stop.load(std::memory_order_acquire)) {
    if (max_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Stop();
  // Shutdown stats read the registry — the idempotent (name, labels) lookup
  // returns handles on the same cells the serving path wrote.
  pdm::server::ServerStats stats = server.stats();
  std::printf("served %lld frames (%lld coalesced in %lld runs) over %lld "
              "connections; %lld protocol errors\n",
              static_cast<long long>(stats.frames_served),
              static_cast<long long>(stats.frames_coalesced),
              static_cast<long long>(stats.coalesced_runs),
              static_cast<long long>(stats.connections_accepted),
              static_cast<long long>(stats.protocol_errors));
  std::printf("quotes: %llu posted (%llu accepted, %llu rejected); regret "
              "proxy %.3f\n",
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_quotes_total", "").value()),
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_accepts_total", "").value()),
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_rejects_total", "").value()),
              registry.GetGauge("pdm_broker_regret_proxy", "").value());
  pdm::broker::BrokerStats slab = broker.Stats();
  std::printf("memory: %.0f sessions (%.0f resident, %.0f evicted); slab slots "
              "%zu live / %zu tombstoned / %zu free; %llu evictions, %llu "
              "fault-ins, %.0f spill bytes, %llu retired ticket slots\n",
              registry.GetGauge("pdm_broker_open_products", "").value(),
              registry.GetGauge("pdm_broker_resident_sessions", "").value(),
              registry.GetGauge("pdm_broker_evicted_sessions", "").value(),
              slab.slab_live_slots, slab.slab_tombstoned_slots,
              slab.slab_free_capacity,
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_evictions_total", "").value()),
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_fault_ins_total", "").value()),
              registry.GetGauge("pdm_broker_spill_bytes", "").value(),
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_ticket_retirements_total", "")
                      .value()));
  std::printf("faults: %llu spill corruptions, %llu spill write errors, %lld "
              "shed frames, %lld idle reaped\n",
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_spill_corruptions_total", "")
                      .value()),
              static_cast<unsigned long long>(
                  registry.GetCounter("pdm_broker_spill_write_errors_total", "")
                      .value()),
              static_cast<long long>(stats.shed_frames),
              static_cast<long long>(stats.idle_reaped));
  return 0;
}
