#ifndef PDM_BENCH_SERVING_BENCH_UTIL_H_
#define PDM_BENCH_SERVING_BENCH_UTIL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "broker_bench_util.h"
#include "common/histogram.h"
#include "common/json_writer.h"
#include "common/status.h"
#include "server/client.h"

/// \file
/// Shared open-loop load-generation core for the TCP serving benches
/// (`bench_serving`, `loadgen`) — DESIGN.md §10.
///
/// Each connection thread replays its product's precomputed query ring
/// against a `pdm.wire.v1` server: per tick it pipelines `batch` PostPrice
/// frames in one flush (a coalescable run server-side), reads the
/// responses, then pipelines the matching Observe feedback. Ticks are
/// scheduled on an open-loop clock — tick i is *due* at `start + i·batch/rate`
/// — and every response's latency is measured from its tick's scheduled
/// time, not from when the thread actually got around to sending. A slow
/// server therefore inflates the recorded tail instead of silently slowing
/// the load (the coordinated-omission correction).

namespace pdm::serving_bench {

struct LoadConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int64_t connections = 2;
  /// Target PostPrice rate per connection (requests/second, open loop).
  double rate = 4000.0;
  /// PostPrice round trips per connection.
  int64_t rounds = 20000;
  /// Pipelined requests per tick (>= 2 exercises server-side coalescing).
  int64_t batch = 8;
  /// Connect retries (the server may still be starting in CI).
  int connect_attempts = 100;
  /// Per-response deadline forwarded to the client (0: wait forever).
  int deadline_ms = 0;
  /// Transport-failure recovery attempts per tick (reconnect + re-resolve).
  /// 0 keeps the pre-§14 behavior: any transport failure is fatal.
  int max_retries = 0;
};

struct ConnectionResult {
  LatencyHistogram latency;
  int64_t rounds = 0;
  /// Requests answered with a non-OK op status (these never enter the
  /// latency histogram — an error response is not a served quote).
  int64_t errors = 0;
  /// Client-side tally mirroring the server's metric registry: OK PostPrice
  /// responses, and OK Observe responses split by the accept decision. The
  /// CI smoke reconciles these against the scraped pdm_broker_* counters
  /// (tools/check_metrics.py) — they must match exactly when this load is
  /// the server's only traffic.
  int64_t quotes = 0;
  int64_t accepts = 0;
  int64_t rejects = 0;
  /// Requests lost to *retryable* conditions and absorbed by the load loop:
  /// Unavailable / ResourceExhausted op responses (server shedding, fault
  /// injection) and ticks dropped across a successful reconnect. These are
  /// expected under chaos drills; `errors` stays the fatal-class tally.
  int64_t errors_retried = 0;
  double wall_seconds = 0.0;
  /// Transport/protocol failure that aborted the connection (OK = clean).
  Status fatal;
};

struct LoadResult {
  LatencyHistogram latency;
  int64_t rounds = 0;
  int64_t errors = 0;
  int64_t quotes = 0;
  int64_t accepts = 0;
  int64_t rejects = 0;
  int64_t errors_retried = 0;
  double wall_seconds = 0.0;
  bool ok = true;

  double achieved_rounds_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(rounds) / wall_seconds : 0.0;
  }
};

inline Status ConnectWithRetry(server::Client* client, const std::string& host,
                               uint16_t port, int attempts) {
  Status s;
  for (int i = 0; i < attempts; ++i) {
    s = client->Connect(host, port);
    if (s.ok()) return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return s;
}

/// One connection's open-loop tick loop over an already-connected client;
/// `start` is the shared load epoch (connect/resolve happen before it so
/// TCP setup is never charged to tick 0).
inline ConnectionResult RunConnection(server::Client* client_ptr,
                                      broker::ProductHandle handle,
                                      const LoadConfig& config,
                                      const broker_bench::ProductWorkload& product,
                                      size_t cursor,
                                      std::chrono::steady_clock::time_point start) {
  using Clock = std::chrono::steady_clock;
  ConnectionResult result;
  server::Client& client = *client_ptr;

  const std::vector<MarketRound>& ring = product.recorded;
  cursor %= ring.size();
  const double nanos_per_tick =
      1e9 * static_cast<double>(config.batch) / config.rate;
  std::vector<const MarketRound*> tick_rounds(static_cast<size_t>(config.batch));
  std::vector<uint64_t> tickets(static_cast<size_t>(config.batch));
  std::vector<bool> accepted(static_cast<size_t>(config.batch));
  std::vector<bool> queued_accepted(static_cast<size_t>(config.batch));

  // Retryable op statuses: the server answered, but with a transient
  // condition (overload shedding, an injected fault surfacing as
  // Unavailable). These are absorbed into `errors_retried`; anything else
  // non-OK is a real error.
  auto retryable_status = [](StatusCode code) {
    return code == StatusCode::kUnavailable ||
           code == StatusCode::kResourceExhausted;
  };
  // Transport-failure recovery (§14): reconnect, re-resolve the product
  // (handles survive restarts only by name), and resume the open-loop
  // schedule. Only transient classes qualify — a protocol/corruption
  // failure (FailedPrecondition, DataLoss) stays fatal.
  auto recover = [&](const Status& failure) {
    if (config.max_retries <= 0) return false;
    StatusCode code = failure.code();
    if (code != StatusCode::kUnavailable && code != StatusCode::kDeadlineExceeded &&
        code != StatusCode::kResourceExhausted) {
      return false;
    }
    for (int attempt = 0; attempt < config.max_retries; ++attempt) {
      if (client.Reconnect().ok() &&
          client.Resolve(product.name, &handle).ok()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  };

  WallTimer timer;
  int64_t done = 0;
  for (int64_t tick = 0; done < config.rounds; ++tick) {
    const int64_t this_batch = std::min<int64_t>(config.batch, config.rounds - done);
    const Clock::time_point due =
        start + std::chrono::nanoseconds(static_cast<int64_t>(
                    nanos_per_tick * static_cast<double>(tick)));
    std::this_thread::sleep_until(due);

    bool tick_lost = false;
    int64_t pricing_tallied = 0;
    for (int64_t k = 0; k < this_batch; ++k) {
      const MarketRound& round = ring[cursor];
      cursor = cursor + 1 == ring.size() ? 0 : cursor + 1;
      tick_rounds[static_cast<size_t>(k)] = &round;
      client.QueuePostPrice(handle, round.features, round.reserve);
    }
    result.fatal = client.Flush();
    if (!result.fatal.ok()) tick_lost = true;

    for (int64_t k = 0; !tick_lost && k < this_batch; ++k) {
      server::Response resp;
      result.fatal = client.ReadResponse(&resp);
      if (!result.fatal.ok()) {
        tick_lost = true;
        break;
      }
      // Latency from the tick's *scheduled* time: the open-loop view.
      const uint64_t nanos = static_cast<uint64_t>(std::max<int64_t>(
          1, std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - due)
                 .count()));
      if (resp.status.ok()) {
        result.latency.Record(nanos);
        ++result.quotes;
        tickets[static_cast<size_t>(k)] = resp.quote.ticket;
        accepted[static_cast<size_t>(k)] =
            !resp.quote.certain_no_sale &&
            resp.quote.price <= tick_rounds[static_cast<size_t>(k)]->value;
      } else {
        if (retryable_status(resp.status.code())) {
          ++result.errors_retried;
        } else {
          ++result.errors;
        }
        tickets[static_cast<size_t>(k)] = 0;
      }
      ++pricing_tallied;
    }

    // Responses arrive in request order, so the decision queued at position
    // i is the one resolved by feedback response i.
    int64_t queued = 0;
    for (int64_t k = 0; !tick_lost && k < this_batch; ++k) {
      if (tickets[static_cast<size_t>(k)] == 0) continue;
      client.QueueObserve(tickets[static_cast<size_t>(k)],
                          accepted[static_cast<size_t>(k)]);
      queued_accepted[static_cast<size_t>(queued)] = accepted[static_cast<size_t>(k)];
      ++queued;
    }
    if (!tick_lost && queued > 0) {
      result.fatal = client.Flush();
      if (!result.fatal.ok()) tick_lost = true;
      for (int64_t k = 0; !tick_lost && k < queued; ++k) {
        server::Response resp;
        result.fatal = client.ReadResponse(&resp);
        if (!result.fatal.ok()) {
          tick_lost = true;
          break;
        }
        if (!resp.status.ok()) {
          if (retryable_status(resp.status.code())) {
            ++result.errors_retried;
          } else {
            ++result.errors;
          }
        } else if (queued_accepted[static_cast<size_t>(k)]) {
          ++result.accepts;
        } else {
          ++result.rejects;
        }
      }
    }

    if (tick_lost) {
      if (!recover(result.fatal)) return result;
      // The tick's still-unaccounted rounds (those whose pricing response
      // never arrived before the connection died) are charged as retried and
      // abandoned — at-most-once means they are never replayed. Rounds whose
      // responses were already tallied this tick are not re-charged.
      result.fatal = Status::Ok();
      result.errors_retried += this_batch - pricing_tallied;
    }
    done += this_batch;
  }
  result.rounds = done;
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

/// Launches `config.connections` client threads against the server (thread i
/// drives `products[i % products.size()]` with a staggered ring cursor),
/// releases them on one shared epoch, and merges their histograms.
inline LoadResult RunLoad(const LoadConfig& config,
                          const std::vector<broker_bench::ProductWorkload>& products) {
  std::vector<ConnectionResult> results(static_cast<size_t>(config.connections));
  std::atomic<int64_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config.connections));

  // The epoch is stamped by the main thread right before `go` flips, so
  // every connection schedules tick 0 at the same instant (the store is
  // ordered before the release store to `go`).
  std::chrono::steady_clock::time_point epoch{};
  for (int64_t i = 0; i < config.connections; ++i) {
    workers.emplace_back([&, i] {
      const broker_bench::ProductWorkload& product =
          products[static_cast<size_t>(i) % products.size()];
      server::ClientConfig client_config;
      client_config.deadline_ms = config.deadline_ms;
      client_config.max_retries = config.max_retries;
      client_config.jitter_seed = 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(i);
      server::Client client(client_config);
      broker::ProductHandle handle;
      Status setup = ConnectWithRetry(&client, config.host, config.port,
                                      config.connect_attempts);
      if (setup.ok()) setup = client.Resolve(product.name, &handle);
      // The barrier must be reached even on failure or RunLoad deadlocks.
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      if (!setup.ok()) {
        results[static_cast<size_t>(i)].fatal = setup;
        return;
      }
      results[static_cast<size_t>(i)] =
          RunConnection(&client, handle, config, product,
                        static_cast<size_t>(i) * 97, epoch);
    });
  }
  while (ready.load() < config.connections) {
  }
  epoch = std::chrono::steady_clock::now();
  WallTimer region_timer;
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();

  LoadResult load;
  load.wall_seconds = region_timer.ElapsedSeconds();
  for (const ConnectionResult& r : results) {
    if (!r.fatal.ok()) {
      std::fprintf(stderr, "loadgen connection failed: %s\n",
                   r.fatal.ToString().c_str());
      load.ok = false;
    }
    load.latency.Merge(r.latency);
    load.rounds += r.rounds;
    load.errors += r.errors;
    load.quotes += r.quotes;
    load.accepts += r.accepts;
    load.rejects += r.rejects;
    load.errors_retried += r.errors_retried;
  }
  return load;
}

/// Emits the `pdm.bench_serving.v1` document: run configuration plus one
/// latency series (quantiles in nanoseconds). `tools/compare_serving.py`
/// gates CI on this schema against the committed BENCH_serving.json.
inline bool WriteServingJson(const std::string& path, const LoadConfig& config,
                             const broker_bench::ProductSetup& setup,
                             int64_t products, bool smoke, const LoadResult& load) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  JsonWriter json(&out);
  json.BeginObject();
  json.Field("schema", "pdm.bench_serving.v1");
  json.Field("hardware_concurrency",
             static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Field("connections", config.connections);
  json.Field("rate_per_connection", config.rate);
  json.Field("rounds_per_connection", config.rounds);
  json.Field("batch", config.batch);
  json.Field("products", products);
  json.Field("dim", setup.dim);
  json.Field("workload_rounds", setup.workload_rounds);
  json.Field("smoke", smoke);
  json.Key("series");
  json.BeginArray();
  json.BeginObject();
  json.Field("series", "round-trip");
  json.Field("rounds", load.rounds);
  json.Field("errors", load.errors);
  json.Field("errors_retried", load.errors_retried);
  json.Field("quotes", load.quotes);
  json.Field("accepts", load.accepts);
  json.Field("rejects", load.rejects);
  json.Field("wall_seconds", load.wall_seconds);
  json.Field("achieved_rounds_per_sec", load.achieved_rounds_per_sec());
  json.Key("latency_ns");
  json.BeginObject();
  json.Field("p50", static_cast<uint64_t>(load.latency.Quantile(0.50)));
  json.Field("p90", static_cast<uint64_t>(load.latency.Quantile(0.90)));
  json.Field("p99", static_cast<uint64_t>(load.latency.Quantile(0.99)));
  json.Field("p999", static_cast<uint64_t>(load.latency.Quantile(0.999)));
  json.Field("min", static_cast<uint64_t>(load.latency.min()));
  json.Field("max", static_cast<uint64_t>(load.latency.max()));
  json.Field("mean", load.latency.mean());
  json.EndObject();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  out << "\n";
  return true;
}

/// Console summary of one load run.
inline void PrintLoadSummary(const LoadResult& load) {
  std::printf("rounds %lld  errors %lld  retried %lld  wall %.3fs  achieved %.0f/s\n",
              static_cast<long long>(load.rounds),
              static_cast<long long>(load.errors),
              static_cast<long long>(load.errors_retried), load.wall_seconds,
              load.achieved_rounds_per_sec());
  std::printf("latency  p50 %.1fus  p90 %.1fus  p99 %.1fus  p999 %.1fus  "
              "max %.1fus  (open-loop, from scheduled send)\n",
              static_cast<double>(load.latency.Quantile(0.50)) / 1e3,
              static_cast<double>(load.latency.Quantile(0.90)) / 1e3,
              static_cast<double>(load.latency.Quantile(0.99)) / 1e3,
              static_cast<double>(load.latency.Quantile(0.999)) / 1e3,
              static_cast<double>(load.latency.max()) / 1e3);
}

}  // namespace pdm::serving_bench

#endif  // PDM_BENCH_SERVING_BENCH_UTIL_H_
