// Accommodation rental (Section IV-B / V-B): a booking platform posts
// nightly prices for differentiated listings under a log-linear market value
// model, with each host's minimum price acting as the reserve.
//
// The platform first fits an offline hedonic regression on historical
// bookings (the learned coefficients play the role of θ*), then prices the
// incoming booking requests online with the ellipsoid engine lifted through
// the exp link.
//
// Build & run:  ./build/examples/accommodation_rental

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/airbnb_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"

int main() {
  pdm::AirbnbMarketConfig market_config;
  market_config.num_listings = 20000;  // scaled-down stream for the example
  market_config.log_reserve_ratio = 0.6;

  pdm::Rng rng(21);
  pdm::AirbnbMarket market = pdm::BuildAirbnbMarket(market_config, &rng);
  std::printf("offline hedonic model: train MSE %.3f, test MSE %.3f (paper: 0.226)\n\n",
              market.train_mse, market.test_mse);

  pdm::TablePrinter table({"log-ratio", "regret ratio", "risk-averse baseline", "sold"});
  for (double ratio : {0.4, 0.6, 0.8}) {
    pdm::AirbnbMarketConfig config = market_config;
    config.log_reserve_ratio = ratio;
    pdm::Rng build_rng(21);  // same listings for every ratio
    pdm::AirbnbMarket m = pdm::BuildAirbnbMarket(config, &build_rng);

    pdm::EllipsoidEngineConfig base_config;
    base_config.dim = pdm::AirbnbFeatureSpace::kDim;
    base_config.horizon = config.num_listings;
    // Production stance: the platform just fit the hedonic model itself, so
    // its prior is the fit plus a small uncertainty ball; the online engine
    // hedges residual error and drift. (bench_fig5b explores the cold-start
    // regime where the prior is only coarse market knowledge.)
    base_config.initial_center = m.theta;
    base_config.initial_radius = 0.01;
    base_config.epsilon = 0.04;
    base_config.use_reserve = true;
    pdm::GeneralizedPricingEngine engine(
        std::make_unique<pdm::EllipsoidPricingEngine>(base_config),
        std::make_shared<pdm::ExpLink>(), std::make_shared<pdm::IdentityFeatureMap>());

    pdm::ReplayQueryStream stream(&m.rounds);
    pdm::SimulationOptions options;
    options.rounds = config.num_listings;
    pdm::Rng sim_rng(5);
    pdm::SimulationResult result = pdm::RunMarket(&stream, &engine, options, &sim_rng);

    table.AddRow({pdm::FormatDouble(ratio, 1),
                  pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                  pdm::FormatDouble(100.0 * result.tracker.baseline_regret_ratio(), 2) + "%",
                  std::to_string(result.tracker.sales())});
  }
  table.Print(std::cout);
  std::printf(
      "\nWith the fitted prior the engine runs at the epsilon-floor and beats\n"
      "posting the host minimum outright at every reserve level; the closer\n"
      "the reserve is to the market value, the less there is to gain.\n");
  return 0;
}
