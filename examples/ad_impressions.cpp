// Online advertising (Section IV-B / V-C): a web publisher posts prices for
// impressions instead of running an auction. The market value of an
// impression is its click-through rate under a sparse logistic model over
// hashed categorical features; FTRL-Proximal learns that model offline.
//
// Build & run:  ./build/examples/ad_impressions

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "market/avazu_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/generalized_engine.h"

int main() {
  const int kHashedDim = 128;
  const int64_t kRounds = 20000;

  pdm::Rng rng(31);
  pdm::AvazuLikeConfig data_config;
  pdm::AvazuLikeClickLog click_log(data_config, &rng);

  pdm::AvazuMarketConfig market_config;
  market_config.hashed_dim = kHashedDim;
  market_config.train_samples = 100000;
  market_config.eval_samples = 10000;
  pdm::AvazuMarket market = pdm::BuildAvazuMarket(market_config, click_log, &rng);
  std::printf("offline CTR model: log-loss %.3f, %d non-zero weights of %d slots\n\n",
              market.logloss, market.nonzero_weights, kHashedDim);

  pdm::TablePrinter table({"encoding", "dim", "regret ratio", "sold", "ms/round"});
  for (bool dense : {false, true}) {
    pdm::AvazuQueryStream stream(&click_log, &market, kHashedDim, dense);

    pdm::EllipsoidEngineConfig base_config;
    base_config.dim = stream.feature_dim();
    base_config.horizon = kRounds;
    base_config.initial_radius = market.recommended_radius;
    base_config.use_reserve = false;  // impressions carry no reserve
    pdm::GeneralizedPricingEngine engine(
        std::make_unique<pdm::EllipsoidPricingEngine>(base_config),
        std::make_shared<pdm::LogisticLink>(market.bias),
        std::make_shared<pdm::IdentityFeatureMap>());

    pdm::SimulationOptions options;
    options.rounds = kRounds;
    options.measure_latency = true;
    pdm::Rng sim_rng(77);  // identical impressions for both encodings
    pdm::SimulationResult result = pdm::RunMarket(&stream, &engine, options, &sim_rng);

    table.AddRow({dense ? "dense" : "sparse", std::to_string(stream.feature_dim()),
                  pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                  std::to_string(result.tracker.sales()),
                  pdm::FormatDouble(result.engine_millis_per_round, 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe dense encoding prices over only the model's non-zero weights and\n"
      "converges much faster; the sparse encoding must first rule out every\n"
      "zero-weight coordinate (Fig. 5(c)'s sparse-vs-dense gap).\n");
  return 0;
}
