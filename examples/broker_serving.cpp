// Serving quickstart: a Broker pricing several data products concurrently
// through the ticketed request/feedback API (DESIGN.md §9).
//
// Four things the simulation loop (examples/quickstart.cpp) cannot do:
//   1. multiple named products behind one front end, with batched pricing;
//   2. a resolve-once ProductHandle fast path that skips name hashing on
//      every steady-state request;
//   3. feedback delayed and interleaved across products via tickets;
//   4. checkpointing a live session and resuming it bit-identically.

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "pdm.h"

int main() {
  std::printf("=== pdm broker serving quickstart ===\n\n");

  // Two data products: a 20-d linear market and a 1-d query market, both
  // built by name through the scenario registry's mechanism catalogue.
  pdm::scenario::StreamFactory factory;
  pdm::broker::Broker broker;

  pdm::scenario::ScenarioSpec wearables;
  wearables.name = "wearables/heart-rate";
  wearables.stream = pdm::scenario::StreamKind::kLinear;
  wearables.mechanism = "reserve+uncertainty";
  wearables.n = 20;
  wearables.rounds = 4000;
  wearables.delta = 0.01;
  wearables.workload_seed = 7;

  pdm::scenario::ScenarioSpec mobility;
  mobility.name = "mobility/trips";
  mobility.stream = pdm::scenario::StreamKind::kLinear;
  mobility.mechanism = "reserve";
  mobility.n = 1;
  mobility.rounds = 4000;
  mobility.workload_seed = 8;

  for (const pdm::scenario::ScenarioSpec& spec : {wearables, mobility}) {
    pdm::Status status = broker.OpenSession(spec.name, spec, factory.Prepare(spec));
    if (!status.ok()) {
      std::fprintf(stderr, "OpenSession: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Steady-state clients resolve each product once; every request after
  // that routes by handle — no string hashing, no directory contention.
  pdm::broker::ProductHandle wearables_handle, mobility_handle;
  broker.Resolve(wearables.name, &wearables_handle);
  broker.Resolve(mobility.name, &mobility_handle);

  // Client loop: batch-price both products, then answer tickets — the
  // feedback for one product may arrive while the other already has new
  // quotes outstanding; the broker buffers each ticket's cut context.
  pdm::Rng rng_a(wearables.sim_seed), rng_b(mobility.sim_seed);
  auto stream_a = factory.CreateStream(wearables, &rng_a);
  auto stream_b = factory.CreateStream(mobility, &rng_b);

  pdm::MarketRound round_a, round_b;
  std::vector<pdm::broker::HandleRequest> requests(2);
  std::vector<pdm::broker::Quote> quotes(2);
  int sales = 0;
  for (int t = 0; t < 500; ++t) {
    stream_a->Next(&rng_a, &round_a);
    stream_b->Next(&rng_b, &round_b);
    requests[0] = {wearables_handle, round_a.features, round_a.reserve};
    requests[1] = {mobility_handle, round_b.features, round_b.reserve};
    pdm::Status status = broker.PostPrices(
        std::span<const pdm::broker::HandleRequest>(requests), quotes);
    if (!status.ok()) {
      std::fprintf(stderr, "PostPrices: %s\n", status.ToString().c_str());
      return 1;
    }
    // Consumers answer in their own time; tickets route the feedback.
    bool buy_a = !quotes[0].certain_no_sale && quotes[0].price <= round_a.value;
    bool buy_b = !quotes[1].certain_no_sale && quotes[1].price <= round_b.value;
    broker.Observe(quotes[1].ticket, buy_b);  // out of order across products
    broker.Observe(quotes[0].ticket, buy_a);
    sales += static_cast<int>(buy_a) + static_cast<int>(buy_b);
  }

  // Misuse is a Status, not a crash.
  pdm::broker::Quote bad;
  pdm::Status oops = broker.PostPrice({"no/such/product", round_a.features, 0.0}, &bad);
  std::printf("unknown product   -> %s\n", oops.ToString().c_str());
  oops = broker.Observe(quotes[0].ticket, true);
  std::printf("duplicate ticket  -> %s\n\n", oops.ToString().c_str());

  // Checkpoint the wearables session, keep trading, then roll back: the
  // restored session re-quotes the same prices the checkpoint would have.
  pdm::broker::SessionSnapshot snapshot;
  broker.Snapshot(wearables.name, &snapshot);
  std::string bytes = pdm::broker::EncodeSessionSnapshot(snapshot);

  stream_a->Next(&rng_a, &round_a);
  pdm::broker::Quote before, after;
  broker.PostPrice({wearables.name, round_a.features, round_a.reserve}, &before);
  broker.Observe(before.ticket, false);

  pdm::broker::SessionSnapshot restored;
  pdm::broker::DecodeSessionSnapshot(bytes, &restored);
  broker.Restore(wearables.name, restored);
  broker.PostPrice({wearables.name, round_a.features, round_a.reserve}, &after);
  broker.Observe(after.ticket, false);
  std::printf("snapshot round-trip (%zu bytes): price %.6f == %.6f -> %s\n\n",
              bytes.size(), before.price, after.price,
              before.price == after.price ? "resumed bit-identically" : "MISMATCH");

  for (const std::string& product : broker.Products()) {
    pdm::broker::SessionInfo info;
    broker.GetSessionInfo(product, &info);
    std::printf("%-22s engine=%-22s quotes=%lld feedback=%lld cuts=%lld\n",
                product.c_str(), info.engine_name.c_str(),
                static_cast<long long>(info.quotes_issued),
                static_cast<long long>(info.feedback_received),
                static_cast<long long>(info.counters.cuts_applied));
  }
  std::printf("\n%d sales across both products\n", sales);
  return 0;
}
