// Exports the synthetic datasets to CSV so they can be inspected, plotted, or
// swapped for real MovieLens/Airbnb/Avazu exports (the CSV reader accepts the
// same files back). Demonstrates the data substrate end-to-end: generators →
// columnar Table → CSV writer → CSV reader round trip.
//
// Build & run:  ./build/examples/generate_datasets [output_dir]

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "common/string_util.h"
#include "data/airbnb_like.h"
#include "data/avazu_like.h"
#include "data/csv_reader.h"
#include "data/movielens_like.h"
#include "features/hashing.h"
#include "rng/rng.h"

namespace {

std::string CellToString(const pdm::Column& column, int64_t row) {
  switch (column.type()) {
    case pdm::ColumnType::kDouble:
      return pdm::FormatDouble(column.DoubleAt(row), 6);
    case pdm::ColumnType::kInt64:
      return std::to_string(column.Int64At(row));
    case pdm::ColumnType::kString:
      return column.StringAt(row);
  }
  return "";
}

void WriteTableCsv(const pdm::Table& table, const std::string& path) {
  pdm::CsvWriter writer(path, table.ColumnNames());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(static_cast<size_t>(table.num_cols()));
    for (int c = 0; c < table.num_cols(); ++c) {
      cells.push_back(CellToString(table.column(c), r));
    }
    writer.WriteRow(cells);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";
  pdm::Rng rng(2024);

  // MovieLens-like ratings sample.
  pdm::MovieLensLikeConfig ml_config;
  ml_config.num_owners = 500;
  auto ratings_data = pdm::MovieLensLikeRatings::Generate(ml_config, &rng);
  pdm::Table ratings = ratings_data.RatingsTable(/*max_rows=*/5000, &rng);
  std::string ratings_path = out_dir + "/movielens_like_ratings.csv";
  WriteTableCsv(ratings, ratings_path);
  std::printf("wrote %ld ratings rows -> %s\n", static_cast<long>(ratings.num_rows()),
              ratings_path.c_str());

  // Airbnb-like listings.
  pdm::AirbnbLikeConfig airbnb_config;
  airbnb_config.num_listings = 2000;
  pdm::Table listings = pdm::GenerateAirbnbLikeListings(airbnb_config, &rng);
  std::string listings_path = out_dir + "/airbnb_like_listings.csv";
  WriteTableCsv(listings, listings_path);
  std::printf("wrote %ld listing rows  -> %s\n", static_cast<long>(listings.num_rows()),
              listings_path.c_str());

  // Avazu-like click log (hashed slot ids plus the label).
  pdm::AvazuLikeConfig avazu_config;
  pdm::AvazuLikeClickLog click_log(avazu_config, &rng);
  pdm::HashingFeaturizer featurizer(128);
  std::string clicks_path = out_dir + "/avazu_like_clicks.csv";
  {
    std::vector<std::string> header = {"clicked", "true_ctr"};
    for (const auto& field : pdm::AvazuLikeFields()) header.push_back(field.name);
    pdm::CsvWriter writer(clicks_path, header);
    for (int i = 0; i < 5000; ++i) {
      pdm::AdImpression sample = click_log.Next(&rng);
      std::vector<std::string> cells = {sample.clicked ? "1" : "0",
                                        pdm::FormatDouble(sample.ctr, 6)};
      for (const auto& [field, value] : sample.fields) {
        cells.push_back(std::to_string(value));
      }
      writer.WriteRow(cells);
    }
  }
  std::printf("wrote 5000 click rows   -> %s\n", clicks_path.c_str());

  // Round-trip check: the CSV reader must parse everything back with the
  // same shape (this is the path real dataset exports would take).
  for (const std::string& path : {ratings_path, listings_path, clicks_path}) {
    std::string error;
    auto parsed = pdm::ReadCsv(path, &error);
    if (!parsed) {
      std::printf("round-trip FAILED for %s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    std::printf("round-trip ok: %s (%ld rows, %d cols)\n", path.c_str(),
                static_cast<long>(parsed->num_rows()), parsed->num_cols());
  }
  return 0;
}
