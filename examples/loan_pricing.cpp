// Loan application (Section IV-B): a financial institution offers a loan at
// an interest rate based on the borrower's situation (credit score,
// employment, property). The borrower accepts iff the offered rate is at most
// what they are willing to pay (their private market value); the funding cost
// sets a floor (reserve) under the offered rate.
//
// The interest rate follows a linear model in the borrower features
// (the paper points at linear/log-log models for loan pricing).
//
// Build & run:  ./build/examples/loan_pricing

#include <cmath>
#include <cstdio>

#include "linalg/vector_ops.h"
#include "market/regret_tracker.h"
#include "pricing/ellipsoid_engine.h"
#include "rng/rng.h"

namespace {

// Borrower features: [credit score, income stability, debt ratio,
// collateral quality, loan-term risk] — all normalized to [0, 1].
pdm::Vector DrawBorrower(pdm::Rng* rng) {
  pdm::Vector x(5);
  x[0] = rng->NextUniform(0.3, 1.0);   // credit score
  x[1] = rng->NextUniform(0.0, 1.0);   // employment stability
  x[2] = rng->NextUniform(0.0, 0.8);   // debt-to-income
  x[3] = rng->NextUniform(0.2, 1.0);   // collateral
  x[4] = rng->NextUniform(0.0, 1.0);   // term risk
  return x;
}

}  // namespace

int main() {
  const int64_t kApplications = 30000;
  pdm::Rng rng(13);

  // The population's true willingness-to-pay model (percentage points):
  // riskier borrowers tolerate higher rates; the bank must learn this from
  // accept/decline feedback only.
  const pdm::Vector kTheta = {-3.0, -1.5, 4.0, -2.0, 3.5};
  const double kBaseRate = 8.0;

  pdm::EllipsoidEngineConfig config;
  config.dim = 5;
  config.horizon = kApplications;
  config.initial_radius = 8.0;
  config.use_reserve = true;
  config.delta = 0.05;  // tolerate idiosyncratic borrower noise
  pdm::EllipsoidPricingEngine engine(config);

  pdm::RegretTracker tracker;
  int64_t funded = 0;
  for (int64_t t = 0; t < kApplications; ++t) {
    pdm::MarketRound round;
    round.features = DrawBorrower(&rng);
    // Willingness to pay in percentage points, with borrower idiosyncrasy.
    round.value = kBaseRate + pdm::Dot(round.features, kTheta) +
                  rng.NextGaussian(0.0, 0.02);
    // Funding cost floor: the bank's marginal cost of capital for this risk.
    round.reserve = 0.6 * round.value + rng.NextGaussian(0.0, 0.01);

    // The engine prices the *offset from the base rate*; shift accordingly.
    pdm::PostedPrice posted =
        engine.PostPrice(round.features, round.reserve - kBaseRate);
    double offered_rate = posted.price + kBaseRate;
    bool accepted = !posted.certain_no_sale && offered_rate <= round.value;
    engine.Observe(accepted);
    if (accepted) ++funded;

    pdm::PostedPrice shifted = posted;
    shifted.price = offered_rate;
    pdm::MarketRound shifted_round = round;
    tracker.Observe(shifted_round, shifted, accepted);
  }

  std::printf("loan applications: %ld, funded: %ld (%.1f%%)\n",
              static_cast<long>(kApplications), static_cast<long>(funded),
              100.0 * static_cast<double>(funded) / static_cast<double>(kApplications));
  std::printf("interest income:   %.0f rate-points\n", tracker.cumulative_revenue());
  std::printf("regret ratio:      %.2f%% (risk-averse floor pricing: %.2f%%)\n",
              100.0 * tracker.regret_ratio(), 100.0 * tracker.baseline_regret_ratio());
  std::printf("exploratory offers: %ld\n",
              static_cast<long>(engine.counters().exploratory_rounds));
  return 0;
}
