// Personal data market (the paper's core scenario, Fig. 2): data owners
// contribute private data; data consumers issue noisy linear queries; the
// broker quantifies privacy leakage, compensates the owners, and posts a
// price per query that must cover the total compensation (the reserve).
//
// This example runs the full pipeline — MovieLens-like owners, differential
// privacy accounting, tanh compensation contracts, sorted-partition feature
// aggregation, and the ellipsoid pricing engine — and compares all four
// mechanism variants of the paper on the same query sequence.
//
// Build & run:  ./build/examples/personal_data_market

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/movielens_like.h"
#include "market/linear_market.h"
#include "market/simulator.h"
#include "pricing/ellipsoid_engine.h"
#include "rng/subgaussian.h"

int main() {
  const int kDim = 20;
  const int64_t kRounds = 10000;
  const double kDelta = 0.01;

  // Data owners: a MovieLens-like population (used here to show the data
  // actually being queried; the pricing pipeline needs only the contracts).
  pdm::Rng data_rng(11);
  pdm::MovieLensLikeConfig owners_config;
  owners_config.num_owners = 1000;
  auto owners = pdm::MovieLensLikeRatings::Generate(owners_config, &data_rng);
  std::printf("owners: %d, most active rated %ld movies\n\n", owners.num_owners(),
              static_cast<long>([&] {
                int64_t best = 0;
                for (const auto& o : owners.owners()) best = std::max(best, o.num_ratings);
                return best;
              }()));

  pdm::TablePrinter table(
      {"variant", "regret ratio", "sold", "exploratory", "skipped", "revenue"});

  for (bool use_reserve : {false, true}) {
    for (double delta : {0.0, kDelta}) {
      pdm::Rng rng(42);  // identical workload for every variant
      pdm::NoisyLinearMarketConfig market_config;
      market_config.feature_dim = kDim;
      market_config.num_owners = owners_config.num_owners;
      market_config.value_noise_sigma =
          delta > 0.0 ? pdm::SigmaForBuffer(delta, 2.0, kRounds) : 0.0;
      pdm::NoisyLinearQueryStream stream(market_config, &rng);

      pdm::EllipsoidEngineConfig engine_config;
      engine_config.dim = kDim;
      engine_config.horizon = kRounds;
      engine_config.initial_radius = stream.RecommendedRadius();
      engine_config.use_reserve = use_reserve;
      engine_config.delta = delta;
      pdm::EllipsoidPricingEngine engine(engine_config);

      pdm::SimulationOptions options;
      options.rounds = kRounds;
      pdm::SimulationResult result = pdm::RunMarket(&stream, &engine, options, &rng);

      table.AddRow({engine.name(),
                    pdm::FormatDouble(100.0 * result.tracker.regret_ratio(), 2) + "%",
                    std::to_string(result.tracker.sales()),
                    std::to_string(result.engine_counters.exploratory_rounds),
                    std::to_string(result.engine_counters.skipped_rounds),
                    pdm::FormatDouble(result.tracker.cumulative_revenue(), 0)});
    }
  }
  table.Print(std::cout);
  return 0;
}
