// Quickstart: price a stream of differentiated products with the ellipsoid
// posted-price mechanism and watch the regret ratio fall.
//
// The market value of each product is v = xᵀθ* for an unknown weight vector
// θ*; the broker only observes accept/reject feedback on each posted price
// and must still respect a per-product reserve price.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "linalg/vector_ops.h"
#include "market/regret_tracker.h"
#include "pricing/ellipsoid_engine.h"
#include "rng/rng.h"

int main() {
  const int kDim = 8;          // features per product
  const int64_t kRounds = 20000;  // products offered sequentially

  pdm::Rng rng(7);

  // The hidden market-value model (the broker never sees this).
  pdm::Vector theta = rng.GaussianVector(kDim);
  pdm::RescaleToNorm(&theta, std::sqrt(2.0 * kDim));

  // The broker's engine: reserve-aware, no uncertainty buffer (Algorithm 1).
  pdm::EllipsoidEngineConfig config;
  config.dim = kDim;
  config.horizon = kRounds;
  config.initial_radius = 2.0 * std::sqrt(static_cast<double>(kDim));
  config.use_reserve = true;
  pdm::EllipsoidPricingEngine engine(config);

  pdm::RegretTracker tracker;
  for (int64_t t = 1; t <= kRounds; ++t) {
    // A differentiated product arrives with features x (‖x‖ = 1) and a
    // reserve price (e.g. its production cost).
    pdm::MarketRound round;
    round.features = rng.GaussianVector(kDim);
    for (double& f : round.features) f = std::fabs(f);
    pdm::RescaleToNorm(&round.features, 1.0);
    round.value = pdm::Dot(round.features, theta);
    round.reserve = 0.7 * round.value;

    // The broker posts a price; the buyer accepts iff it is at most the
    // product's market value; the broker only learns that one bit.
    pdm::PostedPrice posted = engine.PostPrice(round.features, round.reserve);
    bool accepted = !posted.certain_no_sale && posted.price <= round.value;
    engine.Observe(accepted);
    tracker.Observe(round, posted, accepted);

    if ((t & (t - 1)) == 0) {  // powers of two
      std::printf("round %7ld  regret ratio %6.2f%%  revenue %10.1f\n",
                  static_cast<long>(t), 100.0 * tracker.regret_ratio(),
                  tracker.cumulative_revenue());
    }
  }
  std::printf(
      "\nfinal: regret ratio %.2f%% vs risk-averse baseline %.2f%% "
      "(exploratory rounds: %ld of %ld)\n",
      100.0 * tracker.regret_ratio(), 100.0 * tracker.baseline_regret_ratio(),
      static_cast<long>(engine.counters().exploratory_rounds),
      static_cast<long>(kRounds));
  return 0;
}
