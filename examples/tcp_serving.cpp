// Wire-serving quickstart: the broker behind a TCP server speaking
// pdm.wire.v1, exercised end to end on loopback (DESIGN.md §10).
//
// Three things examples/broker_serving.cpp cannot show:
//   1. the framed binary protocol round-tripping quotes bit-exactly over
//      a real socket (doubles travel as raw IEEE-754 bits);
//   2. pipelined requests coalescing server-side into the batched broker
//      paths — observable in the server stats;
//   3. graceful drain: Stop() answers everything already buffered before
//      closing the connections.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "pdm.h"

int main() {
  std::printf("=== pdm TCP serving quickstart ===\n\n");

  // A product behind a broker, exactly as in the in-process example.
  pdm::scenario::StreamFactory factory;
  pdm::broker::Broker broker;

  pdm::scenario::ScenarioSpec spec;
  spec.name = "wearables/heart-rate";
  spec.stream = pdm::scenario::StreamKind::kLinear;
  spec.mechanism = "reserve+uncertainty";
  spec.n = 20;
  spec.rounds = 4000;
  spec.delta = 0.01;
  spec.workload_seed = 7;
  pdm::Status status = broker.OpenSession(spec.name, spec, factory.Prepare(spec));
  if (!status.ok()) {
    std::fprintf(stderr, "OpenSession: %s\n", status.ToString().c_str());
    return 1;
  }

  // Put it on the wire: port 0 asks the kernel for an ephemeral port.
  pdm::server::TcpServer server(&broker);
  status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "Start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  pdm::server::Client client;
  status = client.Connect("127.0.0.1", server.port());
  if (!status.ok()) {
    std::fprintf(stderr, "Connect: %s\n", status.ToString().c_str());
    return 1;
  }

  // Resolve once, then price by handle — the same steady-state contract
  // as the in-process API, now one frame per call.
  pdm::broker::ProductHandle handle;
  client.Resolve(spec.name, &handle);

  pdm::Rng rng(spec.sim_seed);
  std::unique_ptr<pdm::QueryStream> stream = factory.CreateStream(spec, &rng);
  stream->BindEngine(broker.FindEngine(spec.name));

  // Pipelined batches: queue 8 PostPrice frames, flush once, read 8
  // responses. The server sees the whole run in one read and coalesces it
  // into a single batched PostPrices call on the broker.
  constexpr int kBatches = 50;
  constexpr int kBatch = 8;
  pdm::MarketRound round;
  std::vector<pdm::MarketRound> rounds(kBatch);
  std::vector<pdm::broker::Quote> quotes(kBatch);
  int sales = 0;
  for (int b = 0; b < kBatches; ++b) {
    for (int k = 0; k < kBatch; ++k) {
      stream->Next(&rng, &rounds[k]);
      client.QueuePostPrice(handle, rounds[k].features, rounds[k].reserve);
    }
    client.Flush();
    for (int k = 0; k < kBatch; ++k) {
      pdm::server::Response resp;
      if (!client.ReadResponse(&resp).ok() || !resp.status.ok()) {
        std::fprintf(stderr, "PostPrice failed\n");
        return 1;
      }
      quotes[k] = resp.quote;
    }
    // Answer the tickets the same way (an Observe run coalesces too).
    for (int k = 0; k < kBatch; ++k) {
      bool accepted = !quotes[k].certain_no_sale && quotes[k].price <= rounds[k].value;
      sales += accepted ? 1 : 0;
      client.QueueObserve(quotes[k].ticket, accepted);
    }
    client.Flush();
    for (int k = 0; k < kBatch; ++k) {
      pdm::server::Response resp;
      if (!client.ReadResponse(&resp).ok() || !resp.status.ok()) {
        std::fprintf(stderr, "Observe failed\n");
        return 1;
      }
    }
  }
  std::printf("priced %d rounds over the wire, %d sales\n", kBatches * kBatch, sales);

  // The coalescing is visible in the server's stats: nearly every frame
  // was answered through a batched broker call.
  pdm::server::ServerStats stats = server.stats();
  std::printf("server: %lld frames served, %lld coalesced in %lld runs\n",
              static_cast<long long>(stats.frames_served),
              static_cast<long long>(stats.frames_coalesced),
              static_cast<long long>(stats.coalesced_runs));

  // Graceful drain: everything buffered is answered before sockets close.
  server.Stop();
  std::printf("server drained and stopped\n");
  return 0;
}
