#include "broker/broker.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/fault.h"

namespace pdm::broker {
namespace {

/// Ticket-base space is 24 bits (PricingSession's layout), so a broker can
/// open at most 2^24 - 2 sessions over its lifetime (slots are tombstoned
/// on close, never reused).
constexpr size_t kMaxSessions = (size_t{1} << 24) - 2;

Status StaleHandleError() {
  return Status::NotFound("stale, closed, or foreign product handle");
}

/// Per-thread scratch for the batched entry points. Reaching into a
/// thread_local keeps the batch paths allocation-free in steady state (the
/// vectors retain their high-water capacity) without putting scratch in the
/// shared Broker object, where it would need locking.
struct BatchScratch {
  /// Bitmask over the batch: 1 = already processed by an earlier group.
  std::vector<uint64_t> done;
  /// Name-keyed batches lowered onto the handle path.
  std::vector<HandleRequest> handle_requests;
  /// One session's share of a mixed batch, gathered for the session-level
  /// batched entry point: the contiguous request/quote views handed to
  /// PricingSession::PostPrices plus each item's original batch position
  /// for the scatter back.
  std::vector<SessionRequest> session_requests;
  std::vector<Quote> session_quotes;
  std::vector<size_t> positions;

  void ResetDone(size_t batch_size) {
    done.assign((batch_size + 63) / 64, 0);
  }
  bool Done(size_t i) const { return (done[i >> 6] >> (i & 63)) & 1; }
  void MarkDone(size_t i) { done[i >> 6] |= uint64_t{1} << (i & 63); }
};

BatchScratch& Scratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

/// Crash-consistent spill write (DESIGN.md §14): the bytes land in
/// `path + ".tmp"`, are fsync'd, and only then atomically renamed over
/// `path` — a crash at any instant leaves either the old spill, the new
/// spill, or a sweepable `.tmp` orphan, never a torn file under the real
/// name. Fault-injection sites mirror the syscalls: spill.open, spill.write
/// (EIO before any byte), spill.short_write (ENOSPC after a partial write),
/// spill.fsync, spill.rename.
bool WriteSpillAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  int fd = -1;
  if (!fault::ShouldFail("spill.open")) {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  }
  if (fd < 0) return false;
  bool ok = true;
  if (fault::ShouldFail("spill.short_write")) {
    // Simulated ENOSPC: a prefix lands in the tmp file, then the device
    // fills. The torn bytes never reach `path` — that is the whole point.
    ssize_t ignored = ::write(fd, bytes.data(), bytes.size() / 2);
    (void)ignored;
    ok = false;
  } else if (fault::ShouldFail("spill.write")) {
    ok = false;  // simulated EIO before any byte lands
  }
  size_t written = 0;
  while (ok && written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (ok && (fault::ShouldFail("spill.fsync") || ::fsync(fd) != 0)) ok = false;
  ::close(fd);
  if (ok && fault::ShouldFail("spill.rename")) ok = false;
  if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

enum class SpillRead { kOk, kMissing, kError };

/// Whole-file read with the spill.open / spill.read fault sites. kMissing
/// (the file does not exist) is the caller's data-loss signal; kError is a
/// transient I/O failure — the bytes are presumably still on disk.
SpillRead ReadSpillFile(const std::string& path, std::string* bytes) {
  if (fault::ShouldFail("spill.open")) return SpillRead::kError;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno == ENOENT ? SpillRead::kMissing : SpillRead::kError;
  bytes->clear();
  char buf[64 << 10];
  for (;;) {
    if (fault::ShouldFail("spill.read")) {
      ::close(fd);
      return SpillRead::kError;
    }
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return SpillRead::kError;
    }
    if (n == 0) break;
    bytes->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return SpillRead::kOk;
}

}  // namespace

uint64_t TicketBaseForIndex(size_t session_index) {
  return (static_cast<uint64_t>(session_index) + 1) << 40;
}

void Broker::PoolDeleter::operator()(PricingSession* session) const {
  std::lock_guard lock(broker->arena_mu_);
  broker->session_pool_.Destroy(session);
}

Broker::Broker(const BrokerConfig& config) : config_(config) {
  if (!config_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.spill_dir, ec);
    // A failed create surfaces on the first eviction attempt; the broker
    // itself stays usable as a pure hot-tier broker.
  }
  if (config_.metrics != nullptr) {
    metrics::MetricGateway& recovery_gw = *config_.metrics;
    metrics_.spill_corruptions = recovery_gw.GetCounter(
        "pdm_broker_spill_corruptions_total",
        "Spills that failed checksum/decode/restore and were quarantined.");
    metrics_.spill_write_errors = recovery_gw.GetCounter(
        "pdm_broker_spill_write_errors_total",
        "Eviction spill writes that failed (session stayed resident).");
    metrics_.spill_adopted = recovery_gw.GetCounter(
        "pdm_broker_spill_adopted_total",
        "Pre-crash spills adopted by OpenSession(s) after a restart.");
    metrics_.spill_orphans_reclaimed = recovery_gw.GetCounter(
        "pdm_broker_spill_orphans_reclaimed_total",
        "Leftover tmp files and unclaimed spills deleted by the sweeps.");
  }
  SweepSpillDirOnStartup();
  if (config_.metrics != nullptr) {
    // Resolved exactly once; after this the gateway is never consulted again
    // (DESIGN.md §13). Without a gateway the default handles write to sink
    // cells, so every instrument site stays branch-free.
    metrics::MetricGateway& gw = *config_.metrics;
    metrics_.quotes =
        gw.GetCounter("pdm_broker_quotes_total", "Quotes issued (tickets created).");
    metrics_.accepts =
        gw.GetCounter("pdm_broker_accepts_total", "Quotes accepted by consumers.");
    metrics_.rejects =
        gw.GetCounter("pdm_broker_rejects_total", "Quotes rejected by consumers.");
    metrics_.retirements = gw.GetCounter(
        "pdm_broker_ticket_retirements_total",
        "Ticket slots permanently retired at the generation bound.");
    metrics_.evictions = gw.GetCounter("pdm_broker_evictions_total",
                                       "Sessions evicted to the cold tier.");
    metrics_.fault_ins = gw.GetCounter(
        "pdm_broker_fault_ins_total",
        "Sessions faulted back in from the cold tier.");
    metrics_.regret = gw.GetGauge(
        "pdm_broker_regret_proxy",
        "Cumulative posted-vs-accepted surplus: total value-space price of "
        "rejected quotes.");
    metrics_.resident = gw.GetGauge(
        "pdm_broker_resident_sessions",
        "Open sessions holding a live in-memory engine.");
    metrics_.evicted = gw.GetGauge(
        "pdm_broker_evicted_sessions",
        "Open sessions currently spilled to the cold tier.");
    metrics_.open_products =
        gw.GetGauge("pdm_broker_open_products", "Products currently open.");
    metrics_.spill = gw.GetGauge(
        "pdm_broker_spill_bytes", "Bytes currently held in cold-tier spill files.");
    metrics_.batch_size = gw.GetHistogram(
        "pdm_broker_batch_size", "Requests per batched PostPrices/Observes call.");
    metrics_.fault_in_ns = gw.GetHistogram(
        "pdm_broker_fault_in_ns",
        "Cold-tier fault-in latency: spill read, decode, engine rebuild, "
        "restore (nanoseconds).");
  }
  directory_.Publish(std::make_unique<const Directory>());
}

Broker::~Broker() {
  // Slots live in the arena, so ~Broker runs their destructors explicitly
  // (sessions return to the pool through PoolDeleter — both the pool and
  // the arena outlive this loop because the member destructors have not run
  // yet). Evicted slots leave no trace: their spill files are removed.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]->evicted) {
      std::error_code ec;
      std::filesystem::remove(SpillPath(i), ec);
    }
    slots_[i]->~SessionSlot();
  }
}

Broker::SessionSlot* Broker::NewSlot() {
  void* storage = arena_.Allocate(sizeof(SessionSlot), alignof(SessionSlot));
  SessionSlot* slot = ::new (storage) SessionSlot();
  slots_.push_back(slot);
  return slot;
}

Broker::SessionPtr Broker::MakePooledSession(std::string product,
                                             std::unique_ptr<PricingEngine> engine,
                                             uint64_t ticket_base) {
  std::lock_guard lock(arena_mu_);
  PricingSession* raw =
      session_pool_.Create(std::move(product), std::move(engine), ticket_base);
  return SessionPtr(raw, PoolDeleter(this));
}

std::string Broker::SpillPath(size_t index) const {
  return config_.spill_dir + "/slot-" + std::to_string(index) + ".snap";
}

void Broker::SweepSpillDirOnStartup() {
  if (config_.spill_dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  // `recovered-<n>.snap` is the inventory namespace: disjoint from the live
  // `slot-<i>.snap` namespace, so an unclaimed pre-crash spill can never be
  // renamed over by a live slot's eviction, and adoption can never rename an
  // inventory file over another slot's still-unclaimed bytes (the restart
  // open order need not match the pre-crash slot layout).
  auto recovered_path = [this](uint64_t n) {
    return config_.spill_dir + "/recovered-" + std::to_string(n) + ".snap";
  };
  auto parse_recovered = [](const std::string& name, uint64_t* n) {
    if (!name.starts_with("recovered-") || !name.ends_with(".snap")) return false;
    const size_t begin = std::string_view("recovered-").size();
    const size_t end = name.size() - std::string_view(".snap").size();
    if (end <= begin) return false;
    uint64_t value = 0;
    for (size_t i = begin; i < end; ++i) {
      if (name[i] < '0' || name[i] > '9') return false;
      value = value * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    *n = value;
    return true;
  };
  // Collect first: the loop below renames files inside this directory, which
  // must not perturb an in-flight directory_iterator. The same pass finds the
  // first recovered-<n> index free of collisions with survivors of a crash
  // between a previous sweep and its adoptions.
  std::vector<fs::path> candidates;
  uint64_t next_recovered = 0;
  for (const auto& entry : fs::directory_iterator(config_.spill_dir, ec)) {
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec)) continue;
    candidates.push_back(entry.path());
    uint64_t index = 0;
    if (parse_recovered(entry.path().filename().string(), &index) &&
        index >= next_recovered) {
      next_recovered = index + 1;
    }
  }
  for (const fs::path& path : candidates) {
    std::error_code file_ec;
    const std::string name = path.filename().string();
    if (name.size() > 4 && name.ends_with(".tmp")) {
      // A torn write from a crashed predecessor: the atomic-rename protocol
      // guarantees nothing under the real spill name references it.
      size_t size = static_cast<size_t>(fs::file_size(path, file_ec));
      if (fs::remove(path, file_ec)) {
        ++recovery_report_.tmp_reclaimed;
        recovery_report_.bytes_reclaimed += size;
        metrics_.spill_orphans_reclaimed.Increment();
      }
      continue;
    }
    const bool from_slot = name.starts_with("slot-") && name.ends_with(".snap");
    uint64_t parsed_index = 0;
    const bool from_recovered = parse_recovered(name, &parsed_index);
    if (!from_slot && !from_recovered) continue;
    std::string bytes;
    SessionSnapshot snapshot;
    bool valid = ReadSpillFile(path.string(), &bytes) == SpillRead::kOk &&
                 DecodeSessionSnapshot(bytes, &snapshot).ok();
    if (!valid) {
      // Checksum or structure damage from the previous run: keep the bytes
      // for forensics under `*.quarantined`, never as an adoption candidate.
      fs::rename(path, fs::path(path.string() + ".quarantined"), file_ec);
      ++recovery_report_.corrupt_quarantined;
      metrics_.spill_corruptions.Increment();
      continue;
    }
    std::string inventory_path = path.string();
    if (from_slot) {
      inventory_path = recovered_path(next_recovered);
      fs::rename(path, inventory_path, file_ec);
      if (file_ec) {
        // Can't move it to safety; reclaiming beats leaving a collision
        // hazard sitting in the live slot namespace.
        if (fs::remove(path, file_ec)) {
          ++recovery_report_.orphans_reclaimed;
          recovery_report_.bytes_reclaimed += bytes.size();
          metrics_.spill_orphans_reclaimed.Increment();
        }
        continue;
      }
      ++next_recovered;
    }
    auto [it, inserted] = recovered_spills_.emplace(
        snapshot.product, RecoveredSpill{inventory_path, bytes.size()});
    if (inserted) {
      ++recovery_report_.spills_found;
    } else {
      // Two spills claiming one product cannot both be right; keep the
      // first, reclaim the duplicate.
      if (fs::remove(inventory_path, file_ec)) {
        ++recovery_report_.orphans_reclaimed;
        recovery_report_.bytes_reclaimed += bytes.size();
        metrics_.spill_orphans_reclaimed.Increment();
      }
    }
  }
}

size_t Broker::SweepUnclaimedSpills() {
  std::lock_guard control(control_mu_);
  size_t reclaimed = 0;
  for (const auto& [product, spill] : recovered_spills_) {
    std::error_code ec;
    if (std::filesystem::remove(spill.path, ec)) {
      ++reclaimed;
      recovery_report_.bytes_reclaimed += spill.size;
    }
  }
  recovered_spills_.clear();
  recovery_report_.orphans_reclaimed += reclaimed;
  metrics_.spill_orphans_reclaimed.Add(reclaimed);
  return reclaimed;
}

RecoveryReport Broker::recovery_report() const {
  std::lock_guard control(control_mu_);
  return recovery_report_;
}

Status Broker::OpenSession(std::string product, std::unique_ptr<PricingEngine> engine) {
  EnforceResidencyLimit();
  if (product.empty()) return Status::InvalidArgument("empty product name");
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine for product '" + product + "'");
  }
  std::lock_guard control(control_mu_);
  const Directory* current = directory_.Load();
  if (current->by_name.find(product) != current->by_name.end()) {
    return Status::FailedPrecondition("product '" + product + "' is already open");
  }
  size_t index = slots_.size();
  if (index >= kMaxSessions) {
    return Status::FailedPrecondition("session-slot space exhausted");
  }
  SessionSlot* slot = NewSlot();
  slot->session = MakePooledSession(product, std::move(engine), TicketBaseForIndex(index));
  slot->last_touch_epoch.store(sweep_epoch_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  // Open-generation stamp: odd = open. Relaxed is enough — the slot becomes
  // reachable only through the release-published directory snapshot below.
  slot->state.store(1, std::memory_order_relaxed);
  resident_sessions_.fetch_add(1, std::memory_order_relaxed);
  metrics_.resident.Add(1.0);
  metrics_.open_products.Add(1.0);

  auto next = std::make_unique<Directory>(*current);
  next->slots.push_back(slot);
  next->by_name.emplace(std::move(product),
                        ProductHandle{static_cast<uint32_t>(index), 1});
  directory_.Publish(std::move(next));
  return Status::Ok();
}

Status Broker::OpenSession(std::string product, const scenario::ScenarioSpec& spec,
                           const scenario::WorkloadInfo& info) {
  std::span<const std::string> one(&product, 1);
  return OpenSessions(one, spec, info);
}

Status Broker::OpenSessions(std::span<const std::string> products,
                            const scenario::ScenarioSpec& spec,
                            const scenario::WorkloadInfo& info) {
  EnforceResidencyLimit();
  if (products.empty()) return Status::Ok();
  if (!scenario::MechanismRegistry::Builtin().Contains(spec.mechanism)) {
    return Status::InvalidArgument("unknown mechanism '" + spec.mechanism + "'");
  }
  if (info.engine_dim < 1) {
    return Status::InvalidArgument("workload reports engine_dim " +
                                   std::to_string(info.engine_dim));
  }
  std::lock_guard control(control_mu_);
  const Directory* current = directory_.Load();
  if (slots_.size() + products.size() > kMaxSessions) {
    return Status::FailedPrecondition("session-slot space exhausted");
  }
  // All-or-nothing validation against the current directory AND the batch
  // itself, before any slot is allocated.
  for (size_t i = 0; i < products.size(); ++i) {
    if (products[i].empty()) return Status::InvalidArgument("empty product name");
    if (current->by_name.find(products[i]) != current->by_name.end()) {
      return Status::FailedPrecondition("product '" + products[i] +
                                        "' is already open");
    }
    for (size_t j = i + 1; j < products.size(); ++j) {
      if (products[i] == products[j]) {
        return Status::FailedPrecondition("product '" + products[i] +
                                          "' appears twice in the batch");
      }
    }
  }

  // One shared recipe and ONE directory copy + publish for the whole batch:
  // this is what keeps a million-product open O(N) instead of O(N²)
  // (DESIGN.md §12).
  auto recipe = std::make_shared<const RebuildRecipe>(RebuildRecipe{spec, info});
  auto next = std::make_unique<Directory>(*current);
  uint64_t epoch = sweep_epoch_.load(std::memory_order_relaxed);
  size_t fresh = 0;
  for (const std::string& product : products) {
    size_t index = slots_.size();
    SessionSlot* slot = NewSlot();
    slot->recipe = recipe;
    // Crash recovery (DESIGN.md §14): a product whose spill survived a
    // previous broker adopts it — the slot starts evicted with the pre-crash
    // bytes under its own spill name, and the first touch faults the session
    // back in bit-identically. Only registry opens adopt: fault-in needs the
    // rebuild recipe.
    bool adopted = false;
    if (config_.recover_spills && !config_.spill_dir.empty()) {
      auto rec = recovered_spills_.find(product);
      if (rec != recovered_spills_.end()) {
        // The inventory lives in the `recovered-*.snap` namespace (startup
        // sweep), so SpillPath(index) — a fresh slot's name — can never hold
        // another product's unclaimed bytes; this rename clobbers nothing.
        std::error_code ec;
        std::filesystem::rename(rec->second.path, SpillPath(index), ec);
        if (!ec) {
          slot->evicted = true;
          slot->spill_size = rec->second.size;
          spill_bytes_.fetch_add(rec->second.size, std::memory_order_relaxed);
          metrics_.spill.Add(static_cast<double>(rec->second.size));
          metrics_.evicted.Add(1.0);
          metrics_.spill_adopted.Increment();
          ++recovery_report_.adopted;
          adopted = true;
        } else {
          // Rename failure falls through to a fresh build; reclaim the
          // recovered file so the directory can't grow across restarts.
          std::error_code rm_ec;
          if (std::filesystem::remove(rec->second.path, rm_ec)) {
            ++recovery_report_.orphans_reclaimed;
            recovery_report_.bytes_reclaimed += rec->second.size;
            metrics_.spill_orphans_reclaimed.Increment();
          }
        }
        // Either way the inventory entry is spent.
        recovered_spills_.erase(rec);
      }
    }
    if (!adopted) {
      slot->session = MakePooledSession(
          product, scenario::MechanismRegistry::Builtin().Build(spec, info),
          TicketBaseForIndex(index));
      ++fresh;
    }
    slot->last_touch_epoch.store(epoch, std::memory_order_relaxed);
    slot->state.store(1, std::memory_order_relaxed);
    next->slots.push_back(slot);
    next->by_name.emplace(product, ProductHandle{static_cast<uint32_t>(index), 1});
  }
  resident_sessions_.fetch_add(fresh, std::memory_order_relaxed);
  metrics_.resident.Add(static_cast<double>(fresh));
  metrics_.open_products.Add(static_cast<double>(products.size()));
  directory_.Publish(std::move(next));
  return Status::Ok();
}

Status Broker::CloseSession(std::string_view product) {
  std::lock_guard control(control_mu_);
  const Directory* current = directory_.Load();
  auto it = current->by_name.find(product);
  if (it == current->by_name.end()) {
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  SessionSlot* slot = current->slots[it->second.index];
  {
    // Taking the session lock fences out in-flight traffic; the state bump
    // (odd → even) makes every request that arrives afterwards — or that was
    // blocked on the lock — fail its re-check and return NotFound without
    // touching the (now destroyed) session.
    std::lock_guard session_lock(slot->mu);
    slot->state.store(it->second.generation + 1, std::memory_order_release);
    if (slot->evicted) {
      // Close-while-cold: drop the spill file, nothing to fault back in.
      // A quarantined slot already surrendered its bytes (the file lives on
      // under `*.quarantined` and its accounting is zero), so these are
      // no-ops for it beyond clearing the occupancy gauge.
      std::error_code ec;
      std::filesystem::remove(SpillPath(it->second.index), ec);
      spill_bytes_.fetch_sub(slot->spill_size, std::memory_order_relaxed);
      metrics_.spill.Sub(static_cast<double>(slot->spill_size));
      metrics_.evicted.Sub(1.0);
      slot->spill_size = 0;
      slot->evicted = false;
      slot->quarantined = false;
    } else {
      slot->session.reset();
      resident_sessions_.fetch_sub(1, std::memory_order_relaxed);
      metrics_.resident.Sub(1.0);
    }
  }
  metrics_.open_products.Sub(1.0);
  ++slots_tombstoned_;
  auto next = std::make_unique<Directory>(*current);
  next->by_name.erase(std::string(product));
  directory_.Publish(std::move(next));
  return Status::Ok();
}

Status Broker::Resolve(std::string_view product, ProductHandle* handle) const {
  if (handle == nullptr) return Status::InvalidArgument("null handle output");
  const Directory* dir = directory_.Load();
  auto it = dir->by_name.find(product);
  if (it == dir->by_name.end()) {
    *handle = ProductHandle{};
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  *handle = it->second;
  return Status::Ok();
}

Broker::SessionSlot* Broker::ProbeHandle(ProductHandle handle) const {
  if (!handle.valid() || (handle.generation & 1) == 0) return nullptr;
  const Directory* dir = directory_.Load();
  if (handle.index >= dir->slots.size()) return nullptr;
  SessionSlot* slot = dir->slots[handle.index];
  if (slot->state.load(std::memory_order_acquire) != handle.generation) {
    return nullptr;
  }
  return slot;
}

Broker::SessionSlot* Broker::ProbeTicket(uint64_t ticket, uint32_t* state_out) const {
  uint64_t base = ticket >> 40;
  if (base == 0) return nullptr;
  size_t index = static_cast<size_t>(base - 1);
  const Directory* dir = directory_.Load();
  if (index >= dir->slots.size()) return nullptr;
  SessionSlot* slot = dir->slots[index];
  uint32_t state = slot->state.load(std::memory_order_acquire);
  if ((state & 1) == 0) return nullptr;
  *state_out = state;
  return slot;
}

void Broker::QuarantineLocked(SessionSlot* slot, size_t index) {
  // Keep the damaged bytes for forensics under `*.quarantined`; the slot
  // flag (not the file) is what short-circuits every later touch to
  // DataLoss. A missing file simply has nothing to rename.
  std::string path = SpillPath(index);
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  spill_bytes_.fetch_sub(slot->spill_size, std::memory_order_relaxed);
  metrics_.spill.Sub(static_cast<double>(slot->spill_size));
  slot->spill_size = 0;
  slot->quarantined = true;
  metrics_.spill_corruptions.Increment();
}

Status Broker::FaultInLocked(SessionSlot* slot, size_t index) {
  if (slot->quarantined) {
    return Status::DataLoss(
        "session state lost: spill quarantined after corruption");
  }
  // Timed end to end — spill read, decode, engine rebuild, restore — into
  // the fault-in histogram; this is the latency a request pays when it lands
  // on a cold session (DESIGN.md §12/§13).
  const auto fault_start = std::chrono::steady_clock::now();
  std::string path = SpillPath(index);
  std::string bytes;
  switch (ReadSpillFile(path, &bytes)) {
    case SpillRead::kOk:
      break;
    case SpillRead::kMissing:
      // An evicted slot whose spill vanished has no state left to restore.
      QuarantineLocked(slot, index);
      return Status::DataLoss("spill file missing for evicted session");
    case SpillRead::kError:
      // The bytes are presumably still on disk — a retry may succeed, so
      // this is NOT a quarantine.
      return Status::Unavailable("spill read failed (transient I/O error)");
  }
  SessionSnapshot snapshot;
  Status decoded = DecodeSessionSnapshot(bytes, &snapshot);
  if (!decoded.ok()) {
    QuarantineLocked(slot, index);
    return Status::DataLoss("corrupt spill quarantined: " + decoded.message());
  }
  PDM_CHECK(slot->recipe != nullptr);  // only recipe sessions are evicted
  SessionPtr session = MakePooledSession(
      snapshot.product,
      scenario::MechanismRegistry::Builtin().Build(slot->recipe->spec,
                                                   slot->recipe->info),
      TicketBaseForIndex(index));
  // Restore is bit-exact: the snapshot carries raw IEEE-754 bit patterns,
  // and the rebuilt engine restores the knowledge set, counters,
  // symmetrization phase, and every outstanding ticket (same ticket base —
  // the slot never moved), so the resumed session is indistinguishable from
  // one that was never evicted (pinned in tests/broker_test.cc).
  Status restored = session->Restore(snapshot);
  if (!restored.ok()) {
    // The checksum was intact but the state does not apply (e.g. a foreign
    // ticket base after an out-of-order recovery): the accumulated knowledge
    // set is unusable — data loss, not a retry.
    QuarantineLocked(slot, index);
    return Status::DataLoss("spill decoded but did not restore: " +
                            restored.message());
  }
  slot->session = std::move(session);
  slot->evicted = false;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  spill_bytes_.fetch_sub(slot->spill_size, std::memory_order_relaxed);
  metrics_.spill.Sub(static_cast<double>(slot->spill_size));
  slot->spill_size = 0;
  resident_sessions_.fetch_add(1, std::memory_order_relaxed);
  fault_ins_.fetch_add(1, std::memory_order_relaxed);
  metrics_.resident.Add(1.0);
  metrics_.evicted.Sub(1.0);
  metrics_.fault_ins.Increment();
  metrics_.fault_in_ns.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - fault_start)
          .count()));
  return Status::Ok();
}

Broker::LockedSlot Broker::AcquireHandle(ProductHandle handle) {
  LockedSlot acquired;
  SessionSlot* slot = ProbeHandle(handle);
  if (slot == nullptr) {
    acquired.error = StaleHandleError();
    return acquired;
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  // Re-check under the lock: a close may have won the race after the probe.
  // `state` is only written under `mu`, so relaxed is sufficient here.
  if (slot->state.load(std::memory_order_relaxed) != handle.generation) {
    acquired.error = StaleHandleError();
    return acquired;
  }
  if (slot->evicted) {
    Status faulted = FaultInLocked(slot, handle.index);
    if (!faulted.ok()) {
      acquired.error = std::move(faulted);
      return acquired;
    }
  }
  // LRU touch: a plain relaxed store — never a shared RMW on the hot path.
  slot->last_touch_epoch.store(sweep_epoch_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  acquired.slot = slot;
  acquired.lock = std::move(lock);
  return acquired;
}

Broker::LockedSlot Broker::AcquireTicket(uint64_t ticket) {
  LockedSlot acquired;
  uint32_t state = 0;
  SessionSlot* slot = ProbeTicket(ticket, &state);
  if (slot == nullptr) {
    acquired.error = Status::NotFound("ticket " + std::to_string(ticket) +
                                      " references no open session");
    return acquired;
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  if (slot->state.load(std::memory_order_relaxed) != state) {
    acquired.error = Status::NotFound("ticket " + std::to_string(ticket) +
                                      " references no open session");
    return acquired;
  }
  if (slot->evicted) {
    Status faulted =
        FaultInLocked(slot, static_cast<size_t>((ticket >> 40) - 1));
    if (!faulted.ok()) {
      acquired.error = std::move(faulted);
      return acquired;
    }
  }
  slot->last_touch_epoch.store(sweep_epoch_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  acquired.slot = slot;
  acquired.lock = std::move(lock);
  return acquired;
}

void Broker::EnforceResidencyLimit() {
  size_t limit = config_.max_resident_sessions;
  if (limit == 0 || config_.spill_dir.empty()) return;
  if (resident_sessions_.load(std::memory_order_relaxed) <= limit) return;
  // Try-lock: if another thread is already sweeping (or the control plane
  // is mutating the directory), this request proceeds un-throttled rather
  // than convoying — the cap is a soft target.
  std::unique_lock control(control_mu_, std::try_to_lock);
  if (!control.owns_lock()) return;
  EvictLocked(limit);
}

size_t Broker::EvictIdleSessions(size_t max_resident) {
  if (config_.spill_dir.empty()) return 0;
  std::lock_guard control(control_mu_);
  return EvictLocked(max_resident);
}

size_t Broker::EvictLocked(size_t max_resident) {
  if (resident_sessions_.load(std::memory_order_relaxed) <= max_resident) return 0;
  // Advance the sweep epoch first: sessions touched after this point stamp
  // the new epoch and read as recently-used in this sweep — a CLOCK-style
  // LRU approximation that costs the hot path nothing.
  uint64_t sweep = sweep_epoch_.fetch_add(1, std::memory_order_relaxed);
  const Directory* dir = directory_.Load();
  const size_t n = dir->slots.size();
  if (n == 0) return 0;
  size_t evicted = 0;
  // Incremental CLOCK hand: resume scanning where the previous sweep stopped
  // instead of rebuilding and sorting an O(N) candidate vector per over-cap
  // fault (the PR8 bottleneck — at 100k products the sort dominated fault-in
  // latency). Pass 0 takes only slots untouched since before the previous
  // sweep (touched < sweep); if the cap is still exceeded after a full
  // revolution, pass 1 relaxes to everything touched at or before this
  // sweep's start (touched == sweep) — the same candidate set the old sorted
  // sweep considered, minus the exact-staleness ordering, which no caller
  // depends on.
  for (int pass = 0; pass < 2; ++pass) {
    const uint64_t threshold = sweep - 1 + static_cast<uint64_t>(pass);
    for (size_t scanned = 0; scanned < n; ++scanned) {
      if (resident_sessions_.load(std::memory_order_relaxed) <= max_resident) {
        return evicted;
      }
      const size_t index = clock_hand_ % n;  // directory can grow between sweeps
      clock_hand_ = (clock_hand_ + 1) % n;
      SessionSlot* slot = dir->slots[index];
      if ((slot->state.load(std::memory_order_acquire) & 1) == 0) continue;
      if (slot->recipe == nullptr) continue;  // caller-built: not evictable
      // Touches racing with this sweep stamp the post-bump epoch (sweep + 1)
      // and are skipped; the per-victim re-check happens under the slot lock.
      if (slot->last_touch_epoch.load(std::memory_order_relaxed) > threshold) {
        continue;
      }
      std::lock_guard slot_lock(slot->mu);
      if ((slot->state.load(std::memory_order_relaxed) & 1) == 0) continue;
      if (slot->evicted || slot->session == nullptr) continue;
      if (slot->last_touch_epoch.load(std::memory_order_relaxed) > threshold) {
        continue;
      }
      if (EvictSlotLocked(slot, index)) ++evicted;
    }
  }
  return evicted;
}

bool Broker::EvictSlotLocked(SessionSlot* slot, size_t index) {
  SessionSnapshot snapshot;
  // Engines without snapshot support (or holding an attached pending round)
  // are skipped — they simply stay resident.
  if (!slot->session->Snapshot(&snapshot).ok()) return false;
  // Spills carry the checksummed pdm.snap.v2 envelope and land through
  // tmp + fsync + atomic rename (DESIGN.md §14): at no instant does the
  // spill name reference torn bytes, and once the rename returns the spill
  // survives kill -9. A failed write keeps the session resident — losing
  // residency headroom beats losing state.
  std::string bytes = EncodeSessionSnapshotV2(snapshot);
  std::string path = SpillPath(index);
  if (!WriteSpillAtomic(path, bytes)) {
    metrics_.spill_write_errors.Increment();
    return false;
  }
  slot->session.reset();
  slot->evicted = true;
  slot->spill_size = bytes.size();
  spill_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  resident_sessions_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  metrics_.spill.Add(static_cast<double>(bytes.size()));
  metrics_.resident.Sub(1.0);
  metrics_.evicted.Add(1.0);
  metrics_.evictions.Increment();
  return true;
}

BrokerStats Broker::Stats() const {
  BrokerStats stats;
  std::lock_guard control(control_mu_);
  const Directory* dir = directory_.Load();
  stats.open_sessions = dir->by_name.size();
  stats.slab_total_slots = slots_.size();
  stats.slab_tombstoned_slots = slots_tombstoned_;
  stats.slab_live_slots = slots_.size() - slots_tombstoned_;
  stats.slab_free_capacity = kMaxSessions - slots_.size();
  stats.resident_sessions = resident_sessions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.fault_ins = fault_ins_.load(std::memory_order_relaxed);
  stats.spill_bytes = spill_bytes_.load(std::memory_order_relaxed);
  for (SessionSlot* slot : dir->slots) {
    if ((slot->state.load(std::memory_order_acquire) & 1) == 0) continue;
    std::lock_guard slot_lock(slot->mu);
    if ((slot->state.load(std::memory_order_relaxed) & 1) == 0) continue;
    if (slot->quarantined) {
      ++stats.quarantined_sessions;
    } else if (slot->evicted) {
      ++stats.evicted_sessions;
    } else if (slot->session != nullptr) {
      stats.retired_ticket_slots += slot->session->retired_ticket_slots();
    }
  }
  {
    std::lock_guard arena_lock(const_cast<Broker*>(this)->arena_mu_);
    stats.arena_bytes_reserved = arena_.bytes_reserved();
    stats.arena_bytes_used = arena_.bytes_used();
  }
  return stats;
}

Status Broker::PostPrice(ProductHandle handle, std::span<const double> features,
                         double reserve, Quote* quote) {
  if (quote == nullptr) return Status::InvalidArgument("null quote output");
  EnforceResidencyLimit();
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) {
    quote->ticket = 0;
    quote->status = acquired.error.code();
    return std::move(acquired.error);
  }
  Status status = acquired.session()->PostPrice(features, reserve, quote);
  if (status.ok()) metrics_.quotes.Increment();
  return status;
}

Status Broker::PostPrice(const PriceRequest& request, Quote* quote) {
  if (quote == nullptr) return Status::InvalidArgument("null quote output");
  ProductHandle handle;
  Status resolved = Resolve(request.product, &handle);
  if (!resolved.ok()) {
    quote->ticket = 0;
    quote->status = resolved.code();
    return resolved;
  }
  return PostPrice(handle, request.features, request.reserve, quote);
}

Status Broker::PostPricesGrouped(std::span<const HandleRequest> requests,
                                 std::span<Quote> quotes, size_t* error_index) {
  Status first_error;
  *error_index = requests.size();
  BatchScratch& scratch = Scratch();
  scratch.ResetDone(requests.size());
  // Group by session: the first unprocessed request opens its session's
  // group, takes that session's lock exactly once, and drains every later
  // request for the same session in batch order. O(batch × groups) scans,
  // zero allocations, and — crucially — one lock acquisition per session
  // per batch instead of one per request. Groups execute in leader order,
  // not batch order, so "first failure" is tracked by batch position.
  auto record = [&](size_t j, Status status) {
    if (!status.ok() && j < *error_index) {
      *error_index = j;
      first_error = std::move(status);
    }
  };
  for (size_t i = 0; i < requests.size(); ++i) {
    if (scratch.Done(i)) continue;
    const ProductHandle handle = requests[i].handle;
    LockedSlot acquired = AcquireHandle(handle);
    scratch.positions.clear();
    for (size_t j = i; j < requests.size(); ++j) {
      if (scratch.Done(j) || requests[j].handle != handle) continue;
      scratch.MarkDone(j);
      if (!acquired) {
        quotes[j].ticket = 0;
        quotes[j].status = acquired.error.code();
        record(j, acquired.error);
        continue;
      }
      scratch.positions.push_back(j);
    }
    if (scratch.positions.empty()) continue;
    if (scratch.positions.size() == 1) {
      const size_t j = scratch.positions[0];
      record(j, acquired.session()->PostPrice(requests[j].features,
                                              requests[j].reserve, &quotes[j]));
      continue;
    }
    // Gather the group into the session's batched entry point: batched
    // engines then spend one matrix–panel pass per kQuoteTile-sized run
    // (DESIGN.md §11) instead of one mat-vec per request, still under the
    // single lock acquisition. Quotes are scattered back to their original
    // batch positions; per-request failures already sit in each quote's
    // status, and the group's first failure maps back through `positions`
    // (which is increasing, so lowest group position = lowest batch
    // position).
    scratch.session_requests.clear();
    for (size_t j : scratch.positions) {
      scratch.session_requests.push_back({requests[j].features, requests[j].reserve});
    }
    scratch.session_quotes.resize(scratch.positions.size());
    size_t group_error = scratch.positions.size();
    Status group_status = acquired.session()->PostPrices(
        std::span<const SessionRequest>(scratch.session_requests),
        std::span<Quote>(scratch.session_quotes), &group_error);
    for (size_t g = 0; g < scratch.positions.size(); ++g) {
      quotes[scratch.positions[g]] = scratch.session_quotes[g];
    }
    if (!group_status.ok() && group_error < scratch.positions.size()) {
      record(scratch.positions[group_error], std::move(group_status));
    }
  }
  // One shared-cell RMW per counter per batch: tally locally, flush once.
  uint64_t issued = 0;
  for (const Quote& quote : quotes) {
    if (quote.status == StatusCode::kOk) ++issued;
  }
  metrics_.quotes.Add(issued);
  metrics_.batch_size.Record(requests.size());
  return first_error;
}

Status Broker::PostPrices(std::span<const HandleRequest> requests,
                          std::span<Quote> quotes) {
  if (requests.size() != quotes.size()) {
    return Status::InvalidArgument(
        "request/quote span size mismatch: " + std::to_string(requests.size()) +
        " vs " + std::to_string(quotes.size()));
  }
  EnforceResidencyLimit();
  size_t error_index = 0;
  return PostPricesGrouped(requests, quotes, &error_index);
}

Status Broker::PostPrices(std::span<const PriceRequest> requests,
                          std::span<Quote> quotes) {
  if (requests.size() != quotes.size()) {
    return Status::InvalidArgument(
        "request/quote span size mismatch: " + std::to_string(requests.size()) +
        " vs " + std::to_string(quotes.size()));
  }
  EnforceResidencyLimit();
  // Lower names onto the handle path once per batch. Runs of the same
  // product (the common client pattern) resolve once; the grouped handle
  // batch then takes each session lock once. The returned Status is the
  // failure at the *lowest batch position*, whether it came from name
  // resolution here or from the session level inside the grouped batch —
  // resolution failures keep their "unknown product" message.
  Status resolve_error;
  size_t resolve_error_index = requests.size();
  BatchScratch& scratch = Scratch();
  scratch.handle_requests.resize(requests.size());
  std::string_view cached_product;
  ProductHandle cached_handle;
  Status cached_status;
  bool have_cached = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!have_cached || requests[i].product != cached_product) {
      cached_status = Resolve(requests[i].product, &cached_handle);
      cached_product = requests[i].product;
      have_cached = true;
    }
    if (!cached_status.ok() && i < resolve_error_index) {
      resolve_error = cached_status;
      resolve_error_index = i;
    }
    scratch.handle_requests[i] = {cached_handle, requests[i].features,
                                  requests[i].reserve};
  }
  size_t batch_error_index = requests.size();
  Status batch_error = PostPricesGrouped(
      std::span<const HandleRequest>(scratch.handle_requests), quotes,
      &batch_error_index);
  // At equal positions the resolution error wins: it names the product.
  if (resolve_error_index <= batch_error_index && !resolve_error.ok()) {
    return resolve_error;
  }
  return batch_error;
}

Status Broker::Observe(uint64_t ticket, bool accepted) {
  EnforceResidencyLimit();
  LockedSlot acquired = AcquireTicket(ticket);
  if (!acquired) return std::move(acquired.error);
  ObserveResult result;
  Status status = acquired.session()->Observe(ticket, accepted, &result);
  if (status.ok()) {
    if (result.accepted) {
      metrics_.accepts.Increment();
    } else {
      metrics_.rejects.Increment();
      metrics_.regret.Add(result.price);
    }
    if (result.slot_retired) metrics_.retirements.Increment();
  }
  return status;
}

Status Broker::Observes(std::span<const FeedbackRequest> feedback,
                        std::span<StatusCode> codes) {
  if (!codes.empty() && codes.size() != feedback.size()) {
    return Status::InvalidArgument(
        "feedback/code span size mismatch: " + std::to_string(feedback.size()) +
        " vs " + std::to_string(codes.size()));
  }
  EnforceResidencyLimit();
  Status first_error;
  size_t error_index = feedback.size();
  BatchScratch& scratch = Scratch();
  scratch.ResetDone(feedback.size());
  // Groups execute in leader order, so "first failure" is by batch position.
  auto record = [&](size_t i, const Status& status) {
    if (!codes.empty()) codes[i] = status.code();
    if (!status.ok() && i < error_index) {
      error_index = i;
      first_error = status;
    }
  };
  // Same grouping discipline as the batched PostPrices: one session lock
  // acquisition per distinct ticket base per batch, items in batch order.
  // Outcomes are tallied locally and flushed once per batch — one shared
  // metric-cell RMW per counter, not one per item.
  uint64_t accepts = 0;
  uint64_t rejects = 0;
  uint64_t retired = 0;
  double regret = 0.0;
  for (size_t i = 0; i < feedback.size(); ++i) {
    if (scratch.Done(i)) continue;
    const uint64_t base = feedback[i].ticket >> 40;
    LockedSlot acquired = AcquireTicket(feedback[i].ticket);
    for (size_t j = i; j < feedback.size(); ++j) {
      if (scratch.Done(j) || (feedback[j].ticket >> 40) != base) continue;
      scratch.MarkDone(j);
      if (!acquired) {
        record(j, acquired.error);
        continue;
      }
      ObserveResult result;
      Status status =
          acquired.session()->Observe(feedback[j].ticket, feedback[j].accepted, &result);
      if (status.ok()) {
        if (result.accepted) {
          ++accepts;
        } else {
          ++rejects;
          regret += result.price;
        }
        if (result.slot_retired) ++retired;
      }
      record(j, status);
    }
  }
  metrics_.accepts.Add(accepts);
  metrics_.rejects.Add(rejects);
  metrics_.retirements.Add(retired);
  if (rejects != 0) metrics_.regret.Add(regret);
  metrics_.batch_size.Record(feedback.size());
  return first_error;
}

Status Broker::EstimateValue(ProductHandle handle, std::span<const double> features,
                             ValueInterval* out) const {
  // Acquire* may fault an evicted session back in: physically mutating,
  // logically const (the observable pricing state is unchanged).
  LockedSlot acquired = const_cast<Broker*>(this)->AcquireHandle(handle);
  if (!acquired) return std::move(acquired.error);
  return acquired.session()->EstimateValue(features, out);
}

Status Broker::EstimateValue(std::string_view product, std::span<const double> features,
                             ValueInterval* out) const {
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  return EstimateValue(handle, features, out);
}

Status Broker::Snapshot(std::string_view product, SessionSnapshot* out) const {
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  LockedSlot acquired = const_cast<Broker*>(this)->AcquireHandle(handle);
  if (!acquired) return std::move(acquired.error);
  return acquired.session()->Snapshot(out);
}

Status Broker::Restore(std::string_view product, const SessionSnapshot& snapshot) {
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) return std::move(acquired.error);
  return acquired.session()->Restore(snapshot);
}

Status Broker::GetSessionInfo(std::string_view product, SessionInfo* out) const {
  if (out == nullptr) return Status::InvalidArgument("null info output");
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  LockedSlot acquired = const_cast<Broker*>(this)->AcquireHandle(handle);
  if (!acquired) return std::move(acquired.error);
  const PricingSession& session = *acquired.session();
  out->product = session.product();
  out->engine_name = session.engine().name();
  out->pending = session.pending_count();
  out->quotes_issued = session.quotes_issued();
  out->feedback_received = session.feedback_received();
  out->posted_value = session.posted_value();
  out->accepted_value = session.accepted_value();
  out->counters = session.engine().counters();
  return Status::Ok();
}

std::vector<std::string> Broker::Products() const {
  const Directory* dir = directory_.Load();
  std::vector<std::string> names;
  names.reserve(dir->by_name.size());
  for (const auto& [name, handle] : dir->by_name) names.push_back(name);
  // The snapshot map is unordered; keep the public listing deterministic.
  std::sort(names.begin(), names.end());
  return names;
}

size_t Broker::session_count() const {
  return directory_.Load()->by_name.size();
}

const PricingEngine* Broker::FindEngine(std::string_view product) const {
  ProductHandle handle;
  if (!Resolve(product, &handle).ok()) return nullptr;
  LockedSlot acquired = const_cast<Broker*>(this)->AcquireHandle(handle);
  if (!acquired) return nullptr;
  return &acquired.session()->engine();
}

}  // namespace pdm::broker
