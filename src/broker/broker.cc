#include "broker/broker.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pdm::broker {
namespace {

/// Ticket-base space is 24 bits (PricingSession's layout), so a broker can
/// open at most 2^24 - 2 sessions over its lifetime (slots are tombstoned
/// on close, never reused).
constexpr size_t kMaxSessions = (size_t{1} << 24) - 2;

Status StaleHandleError() {
  return Status::NotFound("stale, closed, or foreign product handle");
}

/// Per-thread scratch for the batched entry points. Reaching into a
/// thread_local keeps the batch paths allocation-free in steady state (the
/// vectors retain their high-water capacity) without putting scratch in the
/// shared Broker object, where it would need locking.
struct BatchScratch {
  /// Bitmask over the batch: 1 = already processed by an earlier group.
  std::vector<uint64_t> done;
  /// Name-keyed batches lowered onto the handle path.
  std::vector<HandleRequest> handle_requests;
  /// One session's share of a mixed batch, gathered for the session-level
  /// batched entry point: the contiguous request/quote views handed to
  /// PricingSession::PostPrices plus each item's original batch position
  /// for the scatter back.
  std::vector<SessionRequest> session_requests;
  std::vector<Quote> session_quotes;
  std::vector<size_t> positions;

  void ResetDone(size_t batch_size) {
    done.assign((batch_size + 63) / 64, 0);
  }
  bool Done(size_t i) const { return (done[i >> 6] >> (i & 63)) & 1; }
  void MarkDone(size_t i) { done[i >> 6] |= uint64_t{1} << (i & 63); }
};

BatchScratch& Scratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

}  // namespace

uint64_t TicketBaseForIndex(size_t session_index) {
  return (static_cast<uint64_t>(session_index) + 1) << 40;
}

Broker::Broker(const BrokerConfig& config) {
  // BrokerConfig::num_shards is retired (DESIGN.md §9); accept any value so
  // PR 4-era callers keep working, but nothing is striped anymore.
  (void)config;
  directory_.Publish(std::make_unique<const Directory>());
}

Broker::~Broker() = default;

Status Broker::OpenSession(std::string product, std::unique_ptr<PricingEngine> engine) {
  if (product.empty()) return Status::InvalidArgument("empty product name");
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine for product '" + product + "'");
  }
  std::lock_guard control(control_mu_);
  const Directory* current = directory_.Load();
  if (current->by_name.find(product) != current->by_name.end()) {
    return Status::FailedPrecondition("product '" + product + "' is already open");
  }
  size_t index = slot_storage_.size();
  if (index >= kMaxSessions) {
    return Status::FailedPrecondition("session-slot space exhausted");
  }
  auto slot = std::make_unique<SessionSlot>();
  slot->session = std::make_unique<PricingSession>(product, std::move(engine),
                                                   TicketBaseForIndex(index));
  // Open-generation stamp: odd = open. Relaxed is enough — the slot becomes
  // reachable only through the release-published directory snapshot below.
  slot->state.store(1, std::memory_order_relaxed);

  auto next = std::make_unique<Directory>(*current);
  next->slots.push_back(slot.get());
  next->by_name.emplace(std::move(product),
                        ProductHandle{static_cast<uint32_t>(index), 1});
  slot_storage_.push_back(std::move(slot));
  directory_.Publish(std::move(next));
  return Status::Ok();
}

Status Broker::OpenSession(std::string product, const scenario::ScenarioSpec& spec,
                           const scenario::WorkloadInfo& info) {
  if (!scenario::MechanismRegistry::Builtin().Contains(spec.mechanism)) {
    return Status::InvalidArgument("unknown mechanism '" + spec.mechanism +
                                   "' for product '" + product + "'");
  }
  if (info.engine_dim < 1) {
    return Status::InvalidArgument("workload reports engine_dim " +
                                   std::to_string(info.engine_dim));
  }
  return OpenSession(std::move(product),
                     scenario::MechanismRegistry::Builtin().Build(spec, info));
}

Status Broker::CloseSession(std::string_view product) {
  std::lock_guard control(control_mu_);
  const Directory* current = directory_.Load();
  auto it = current->by_name.find(product);
  if (it == current->by_name.end()) {
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  SessionSlot* slot = current->slots[it->second.index];
  {
    // Taking the session lock fences out in-flight traffic; the state bump
    // (odd → even) makes every request that arrives afterwards — or that was
    // blocked on the lock — fail its re-check and return NotFound without
    // touching the (now destroyed) session.
    std::lock_guard session_lock(slot->mu);
    slot->state.store(it->second.generation + 1, std::memory_order_release);
    slot->session.reset();
  }
  auto next = std::make_unique<Directory>(*current);
  next->by_name.erase(std::string(product));
  directory_.Publish(std::move(next));
  return Status::Ok();
}

Status Broker::Resolve(std::string_view product, ProductHandle* handle) const {
  if (handle == nullptr) return Status::InvalidArgument("null handle output");
  const Directory* dir = directory_.Load();
  auto it = dir->by_name.find(product);
  if (it == dir->by_name.end()) {
    *handle = ProductHandle{};
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  *handle = it->second;
  return Status::Ok();
}

Broker::SessionSlot* Broker::ProbeHandle(ProductHandle handle) const {
  if (!handle.valid() || (handle.generation & 1) == 0) return nullptr;
  const Directory* dir = directory_.Load();
  if (handle.index >= dir->slots.size()) return nullptr;
  SessionSlot* slot = dir->slots[handle.index];
  if (slot->state.load(std::memory_order_acquire) != handle.generation) {
    return nullptr;
  }
  return slot;
}

Broker::SessionSlot* Broker::ProbeTicket(uint64_t ticket, uint32_t* state_out) const {
  uint64_t base = ticket >> 40;
  if (base == 0) return nullptr;
  size_t index = static_cast<size_t>(base - 1);
  const Directory* dir = directory_.Load();
  if (index >= dir->slots.size()) return nullptr;
  SessionSlot* slot = dir->slots[index];
  uint32_t state = slot->state.load(std::memory_order_acquire);
  if ((state & 1) == 0) return nullptr;
  *state_out = state;
  return slot;
}

Broker::LockedSlot Broker::AcquireHandle(ProductHandle handle) const {
  LockedSlot acquired;
  SessionSlot* slot = ProbeHandle(handle);
  if (slot == nullptr) return acquired;
  std::unique_lock<std::mutex> lock(slot->mu);
  // Re-check under the lock: a close may have won the race after the probe.
  // `state` is only written under `mu`, so relaxed is sufficient here.
  if (slot->state.load(std::memory_order_relaxed) != handle.generation) {
    return acquired;
  }
  acquired.slot = slot;
  acquired.lock = std::move(lock);
  return acquired;
}

Broker::LockedSlot Broker::AcquireTicket(uint64_t ticket) const {
  LockedSlot acquired;
  uint32_t state = 0;
  SessionSlot* slot = ProbeTicket(ticket, &state);
  if (slot == nullptr) return acquired;
  std::unique_lock<std::mutex> lock(slot->mu);
  if (slot->state.load(std::memory_order_relaxed) != state) {
    return acquired;
  }
  acquired.slot = slot;
  acquired.lock = std::move(lock);
  return acquired;
}

Status Broker::PostPrice(ProductHandle handle, std::span<const double> features,
                         double reserve, Quote* quote) {
  if (quote == nullptr) return Status::InvalidArgument("null quote output");
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) {
    quote->ticket = 0;
    quote->status = StatusCode::kNotFound;
    return StaleHandleError();
  }
  return acquired.session()->PostPrice(features, reserve, quote);
}

Status Broker::PostPrice(const PriceRequest& request, Quote* quote) {
  if (quote == nullptr) return Status::InvalidArgument("null quote output");
  ProductHandle handle;
  Status resolved = Resolve(request.product, &handle);
  if (!resolved.ok()) {
    quote->ticket = 0;
    quote->status = resolved.code();
    return resolved;
  }
  return PostPrice(handle, request.features, request.reserve, quote);
}

Status Broker::PostPricesGrouped(std::span<const HandleRequest> requests,
                                 std::span<Quote> quotes, size_t* error_index) {
  Status first_error;
  *error_index = requests.size();
  BatchScratch& scratch = Scratch();
  scratch.ResetDone(requests.size());
  // Group by session: the first unprocessed request opens its session's
  // group, takes that session's lock exactly once, and drains every later
  // request for the same session in batch order. O(batch × groups) scans,
  // zero allocations, and — crucially — one lock acquisition per session
  // per batch instead of one per request. Groups execute in leader order,
  // not batch order, so "first failure" is tracked by batch position.
  auto record = [&](size_t j, Status status) {
    if (!status.ok() && j < *error_index) {
      *error_index = j;
      first_error = std::move(status);
    }
  };
  for (size_t i = 0; i < requests.size(); ++i) {
    if (scratch.Done(i)) continue;
    const ProductHandle handle = requests[i].handle;
    LockedSlot acquired = AcquireHandle(handle);
    scratch.positions.clear();
    for (size_t j = i; j < requests.size(); ++j) {
      if (scratch.Done(j) || requests[j].handle != handle) continue;
      scratch.MarkDone(j);
      if (!acquired) {
        quotes[j].ticket = 0;
        quotes[j].status = StatusCode::kNotFound;
        record(j, StaleHandleError());
        continue;
      }
      scratch.positions.push_back(j);
    }
    if (scratch.positions.empty()) continue;
    if (scratch.positions.size() == 1) {
      const size_t j = scratch.positions[0];
      record(j, acquired.session()->PostPrice(requests[j].features,
                                              requests[j].reserve, &quotes[j]));
      continue;
    }
    // Gather the group into the session's batched entry point: batched
    // engines then spend one matrix–panel pass per kQuoteTile-sized run
    // (DESIGN.md §11) instead of one mat-vec per request, still under the
    // single lock acquisition. Quotes are scattered back to their original
    // batch positions; per-request failures already sit in each quote's
    // status, and the group's first failure maps back through `positions`
    // (which is increasing, so lowest group position = lowest batch
    // position).
    scratch.session_requests.clear();
    for (size_t j : scratch.positions) {
      scratch.session_requests.push_back({requests[j].features, requests[j].reserve});
    }
    scratch.session_quotes.resize(scratch.positions.size());
    size_t group_error = scratch.positions.size();
    Status group_status = acquired.session()->PostPrices(
        std::span<const SessionRequest>(scratch.session_requests),
        std::span<Quote>(scratch.session_quotes), &group_error);
    for (size_t g = 0; g < scratch.positions.size(); ++g) {
      quotes[scratch.positions[g]] = scratch.session_quotes[g];
    }
    if (!group_status.ok() && group_error < scratch.positions.size()) {
      record(scratch.positions[group_error], std::move(group_status));
    }
  }
  return first_error;
}

Status Broker::PostPrices(std::span<const HandleRequest> requests,
                          std::span<Quote> quotes) {
  if (requests.size() != quotes.size()) {
    return Status::InvalidArgument(
        "request/quote span size mismatch: " + std::to_string(requests.size()) +
        " vs " + std::to_string(quotes.size()));
  }
  size_t error_index = 0;
  return PostPricesGrouped(requests, quotes, &error_index);
}

Status Broker::PostPrices(std::span<const PriceRequest> requests,
                          std::span<Quote> quotes) {
  if (requests.size() != quotes.size()) {
    return Status::InvalidArgument(
        "request/quote span size mismatch: " + std::to_string(requests.size()) +
        " vs " + std::to_string(quotes.size()));
  }
  // Lower names onto the handle path once per batch. Runs of the same
  // product (the common client pattern) resolve once; the grouped handle
  // batch then takes each session lock once. The returned Status is the
  // failure at the *lowest batch position*, whether it came from name
  // resolution here or from the session level inside the grouped batch —
  // resolution failures keep their "unknown product" message.
  Status resolve_error;
  size_t resolve_error_index = requests.size();
  BatchScratch& scratch = Scratch();
  scratch.handle_requests.resize(requests.size());
  std::string_view cached_product;
  ProductHandle cached_handle;
  Status cached_status;
  bool have_cached = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!have_cached || requests[i].product != cached_product) {
      cached_status = Resolve(requests[i].product, &cached_handle);
      cached_product = requests[i].product;
      have_cached = true;
    }
    if (!cached_status.ok() && i < resolve_error_index) {
      resolve_error = cached_status;
      resolve_error_index = i;
    }
    scratch.handle_requests[i] = {cached_handle, requests[i].features,
                                  requests[i].reserve};
  }
  size_t batch_error_index = requests.size();
  Status batch_error = PostPricesGrouped(
      std::span<const HandleRequest>(scratch.handle_requests), quotes,
      &batch_error_index);
  // At equal positions the resolution error wins: it names the product.
  if (resolve_error_index <= batch_error_index && !resolve_error.ok()) {
    return resolve_error;
  }
  return batch_error;
}

Status Broker::Observe(uint64_t ticket, bool accepted) {
  LockedSlot acquired = AcquireTicket(ticket);
  if (!acquired) {
    return Status::NotFound("ticket " + std::to_string(ticket) +
                            " references no open session");
  }
  return acquired.session()->Observe(ticket, accepted);
}

Status Broker::Observes(std::span<const FeedbackRequest> feedback,
                        std::span<StatusCode> codes) {
  if (!codes.empty() && codes.size() != feedback.size()) {
    return Status::InvalidArgument(
        "feedback/code span size mismatch: " + std::to_string(feedback.size()) +
        " vs " + std::to_string(codes.size()));
  }
  Status first_error;
  size_t error_index = feedback.size();
  BatchScratch& scratch = Scratch();
  scratch.ResetDone(feedback.size());
  // Groups execute in leader order, so "first failure" is by batch position.
  auto record = [&](size_t i, const Status& status) {
    if (!codes.empty()) codes[i] = status.code();
    if (!status.ok() && i < error_index) {
      error_index = i;
      first_error = status;
    }
  };
  // Same grouping discipline as the batched PostPrices: one session lock
  // acquisition per distinct ticket base per batch, items in batch order.
  for (size_t i = 0; i < feedback.size(); ++i) {
    if (scratch.Done(i)) continue;
    const uint64_t base = feedback[i].ticket >> 40;
    LockedSlot acquired = AcquireTicket(feedback[i].ticket);
    for (size_t j = i; j < feedback.size(); ++j) {
      if (scratch.Done(j) || (feedback[j].ticket >> 40) != base) continue;
      scratch.MarkDone(j);
      if (!acquired) {
        record(j, Status::NotFound("ticket " + std::to_string(feedback[j].ticket) +
                                   " references no open session"));
        continue;
      }
      record(j, acquired.session()->Observe(feedback[j].ticket, feedback[j].accepted));
    }
  }
  return first_error;
}

Status Broker::EstimateValue(ProductHandle handle, std::span<const double> features,
                             ValueInterval* out) const {
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) return StaleHandleError();
  return acquired.session()->EstimateValue(features, out);
}

Status Broker::EstimateValue(std::string_view product, std::span<const double> features,
                             ValueInterval* out) const {
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  return EstimateValue(handle, features, out);
}

Status Broker::Snapshot(std::string_view product, SessionSnapshot* out) const {
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) return StaleHandleError();
  return acquired.session()->Snapshot(out);
}

Status Broker::Restore(std::string_view product, const SessionSnapshot& snapshot) {
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) return StaleHandleError();
  return acquired.session()->Restore(snapshot);
}

Status Broker::GetSessionInfo(std::string_view product, SessionInfo* out) const {
  if (out == nullptr) return Status::InvalidArgument("null info output");
  ProductHandle handle;
  Status resolved = Resolve(product, &handle);
  if (!resolved.ok()) return resolved;
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) return StaleHandleError();
  const PricingSession& session = *acquired.session();
  out->product = session.product();
  out->engine_name = session.engine().name();
  out->pending = session.pending_count();
  out->quotes_issued = session.quotes_issued();
  out->feedback_received = session.feedback_received();
  out->counters = session.engine().counters();
  return Status::Ok();
}

std::vector<std::string> Broker::Products() const {
  const Directory* dir = directory_.Load();
  std::vector<std::string> names;
  names.reserve(dir->by_name.size());
  for (const auto& [name, handle] : dir->by_name) names.push_back(name);
  // The snapshot map is unordered; keep the public listing deterministic.
  std::sort(names.begin(), names.end());
  return names;
}

size_t Broker::session_count() const {
  return directory_.Load()->by_name.size();
}

const PricingEngine* Broker::FindEngine(std::string_view product) const {
  ProductHandle handle;
  if (!Resolve(product, &handle).ok()) return nullptr;
  LockedSlot acquired = AcquireHandle(handle);
  if (!acquired) return nullptr;
  return &acquired.session()->engine();
}

}  // namespace pdm::broker
