#include "broker/broker.h"

#include <utility>

#include "common/check.h"

namespace pdm::broker {

uint64_t TicketBaseForIndex(size_t session_index) {
  return (static_cast<uint64_t>(session_index) + 1) << 40;
}

Broker::Broker(const BrokerConfig& config) : config_(config) {
  PDM_CHECK(config_.num_shards >= 1);
  shards_ = std::vector<Shard>(static_cast<size_t>(config_.num_shards));
}

Status Broker::OpenSession(std::string product, std::unique_ptr<PricingEngine> engine) {
  if (product.empty()) return Status::InvalidArgument("empty product name");
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine for product '" + product + "'");
  }
  std::unique_lock lock(dir_mu_);
  if (index_.find(product) != index_.end()) {
    return Status::FailedPrecondition("product '" + product + "' is already open");
  }
  size_t index = sessions_.size();
  if (index >= (uint64_t{1} << 24) - 1) {
    return Status::FailedPrecondition("session-slot space exhausted");
  }
  sessions_.push_back(std::make_unique<PricingSession>(product, std::move(engine),
                                                      TicketBaseForIndex(index)));
  index_.emplace(std::move(product), index);
  return Status::Ok();
}

Status Broker::OpenSession(std::string product, const scenario::ScenarioSpec& spec,
                           const scenario::WorkloadInfo& info) {
  if (!scenario::MechanismRegistry::Builtin().Contains(spec.mechanism)) {
    return Status::InvalidArgument("unknown mechanism '" + spec.mechanism +
                                   "' for product '" + product + "'");
  }
  if (info.engine_dim < 1) {
    return Status::InvalidArgument("workload reports engine_dim " +
                                   std::to_string(info.engine_dim));
  }
  return OpenSession(std::move(product),
                     scenario::MechanismRegistry::Builtin().Build(spec, info));
}

Status Broker::CloseSession(std::string_view product) {
  std::unique_lock lock(dir_mu_);
  auto it = index_.find(product);
  if (it == index_.end()) {
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  // The exclusive directory lock excludes all request traffic, so no shard
  // lock can be mid-operation on this session.
  sessions_[it->second].reset();
  index_.erase(it);
  return Status::Ok();
}

bool Broker::FindIndexLocked(std::string_view product, size_t* index) const {
  auto it = index_.find(product);
  if (it == index_.end()) return false;
  *index = it->second;
  return true;
}

Status Broker::PostPrice(const PriceRequest& request, Quote* quote) {
  if (quote == nullptr) return Status::InvalidArgument("null quote output");
  std::shared_lock dir(dir_mu_);
  size_t index;
  if (!FindIndexLocked(request.product, &index)) {
    quote->ticket = 0;
    quote->status = StatusCode::kNotFound;
    return Status::NotFound("unknown product '" + std::string(request.product) + "'");
  }
  std::lock_guard shard(shard_for(index));
  return sessions_[index]->PostPrice(request.features, request.reserve, quote);
}

Status Broker::PostPrices(std::span<const PriceRequest> requests,
                          std::span<Quote> quotes) {
  if (requests.size() != quotes.size()) {
    return Status::InvalidArgument(
        "request/quote span size mismatch: " + std::to_string(requests.size()) +
        " vs " + std::to_string(quotes.size()));
  }
  Status first_error;
  std::shared_lock dir(dir_mu_);
  // Batches overwhelmingly target runs of the same product (the per-client
  // hot path), so the directory lookup and shard lock are carried across
  // consecutive same-product requests instead of being re-acquired 64 times
  // per batch.
  std::string_view cached_product;
  size_t cached_index = 0;
  bool have_cached = false;
  std::unique_lock<std::mutex> shard;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!have_cached || requests[i].product != cached_product) {
      size_t index;
      if (!FindIndexLocked(requests[i].product, &index)) {
        quotes[i].ticket = 0;
        quotes[i].status = StatusCode::kNotFound;
        if (first_error.ok()) {
          first_error = Status::NotFound("unknown product '" +
                                         std::string(requests[i].product) + "'");
        }
        continue;
      }
      std::mutex& mu = shard_for(index);
      if (!have_cached || &mu != shard.mutex()) {
        if (shard.owns_lock()) shard.unlock();
        shard = std::unique_lock<std::mutex>(mu);
      }
      cached_product = requests[i].product;
      cached_index = index;
      have_cached = true;
    }
    Status status = sessions_[cached_index]->PostPrice(requests[i].features,
                                                       requests[i].reserve, &quotes[i]);
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  return first_error;
}

Status Broker::Observe(uint64_t ticket, bool accepted) {
  uint64_t slot = ticket >> 40;
  if (slot == 0) {
    return Status::NotFound("malformed ticket " + std::to_string(ticket));
  }
  size_t index = static_cast<size_t>(slot - 1);
  std::shared_lock dir(dir_mu_);
  if (index >= sessions_.size() || sessions_[index] == nullptr) {
    return Status::NotFound("ticket " + std::to_string(ticket) +
                            " references no open session");
  }
  std::lock_guard shard(shard_for(index));
  return sessions_[index]->Observe(ticket, accepted);
}

Status Broker::EstimateValue(std::string_view product, std::span<const double> features,
                             ValueInterval* out) const {
  std::shared_lock dir(dir_mu_);
  size_t index;
  if (!FindIndexLocked(product, &index)) {
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  std::lock_guard shard(shard_for(index));
  return sessions_[index]->EstimateValue(features, out);
}

Status Broker::Snapshot(std::string_view product, SessionSnapshot* out) const {
  std::shared_lock dir(dir_mu_);
  size_t index;
  if (!FindIndexLocked(product, &index)) {
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  std::lock_guard shard(shard_for(index));
  return sessions_[index]->Snapshot(out);
}

Status Broker::Restore(std::string_view product, const SessionSnapshot& snapshot) {
  std::shared_lock dir(dir_mu_);
  size_t index;
  if (!FindIndexLocked(product, &index)) {
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  std::lock_guard shard(shard_for(index));
  return sessions_[index]->Restore(snapshot);
}

Status Broker::GetSessionInfo(std::string_view product, SessionInfo* out) const {
  if (out == nullptr) return Status::InvalidArgument("null info output");
  std::shared_lock dir(dir_mu_);
  size_t index;
  if (!FindIndexLocked(product, &index)) {
    return Status::NotFound("unknown product '" + std::string(product) + "'");
  }
  std::lock_guard shard(shard_for(index));
  const PricingSession& session = *sessions_[index];
  out->product = session.product();
  out->engine_name = session.engine().name();
  out->pending = session.pending_count();
  out->quotes_issued = session.quotes_issued();
  out->feedback_received = session.feedback_received();
  out->counters = session.engine().counters();
  return Status::Ok();
}

std::vector<std::string> Broker::Products() const {
  std::shared_lock dir(dir_mu_);
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const auto& [name, index] : index_) names.push_back(name);
  return names;
}

size_t Broker::session_count() const {
  std::shared_lock dir(dir_mu_);
  return index_.size();
}

const PricingEngine* Broker::FindEngine(std::string_view product) const {
  std::shared_lock dir(dir_mu_);
  size_t index;
  if (!FindIndexLocked(product, &index)) return nullptr;
  return &sessions_[index]->engine();
}

}  // namespace pdm::broker
