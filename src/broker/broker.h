#ifndef PDM_BROKER_BROKER_H_
#define PDM_BROKER_BROKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broker/session.h"
#include "common/status.h"
#include "scenario/mechanism_registry.h"
#include "scenario/scenario_spec.h"

/// \file
/// The serving front end: one `Broker` owns many named `PricingSession`s —
/// one per data product — behind a shard of striped locks (DESIGN.md §9).
///
/// This is the production-facing redesign of the public surface: where the
/// simulation layers expose "one engine in a loop", the broker exposes a
/// concurrency-safe request/feedback API in the style of an exchange front
/// end. Requests name their product; quotes carry ticket ids whose high bits
/// route feedback back to the owning session without any global ticket
/// table; feedback may be delayed and interleaved across products. Misuse
/// (unknown product, duplicate/unknown ticket, dimension mismatch) returns a
/// `pdm::Status` — the broker never aborts on client input.
///
/// Concurrency model: the product directory is guarded by a shared mutex
/// (shared for request traffic, exclusive only while opening/closing
/// sessions); session state is guarded by striped per-shard mutexes, so
/// traffic on different products proceeds in parallel up to the stripe
/// count. Steady-state PostPrice/Observe round trips perform zero heap
/// allocations (tests/allocation_test.cc); `bench/bench_broker_throughput`
/// tracks the multi-threaded round-trip rate.

namespace pdm::broker {

struct BrokerConfig {
  /// Lock stripes sessions are distributed over. More stripes = more
  /// products served truly concurrently; sessions map to stripes by index
  /// modulo this count.
  int num_shards = 16;
};

/// One price request of the batched entry point.
struct PriceRequest {
  /// Product (session) name.
  std::string_view product;
  /// Raw feature vector x_t; its length must match the session engine's
  /// input dimension.
  std::span<const double> features;
  /// Reserve price q_t.
  double reserve = 0.0;
};

/// Monitoring/test surface for one session.
struct SessionInfo {
  std::string product;
  std::string engine_name;
  int64_t pending = 0;
  int64_t quotes_issued = 0;
  int64_t feedback_received = 0;
  EngineCounters counters;
};

class Broker {
 public:
  explicit Broker(const BrokerConfig& config = {});

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Opens a session serving `product` with a caller-built engine. Errors:
  /// InvalidArgument (empty name, null engine), FailedPrecondition
  /// (duplicate product).
  Status OpenSession(std::string product, std::unique_ptr<PricingEngine> engine);

  /// Registry path: builds the engine for `spec` (mechanism name, link,
  /// geometry) through `scenario::MechanismRegistry::Builtin()` and opens a
  /// session named `product`. Errors: additionally InvalidArgument for an
  /// unknown mechanism name.
  Status OpenSession(std::string product, const scenario::ScenarioSpec& spec,
                     const scenario::WorkloadInfo& info);

  /// Closes a session; its tickets become unroutable (Observe → NotFound).
  Status CloseSession(std::string_view product);

  /// Prices one request, filling `*quote` (ticket, price, flags).
  Status PostPrice(const PriceRequest& request, Quote* quote);

  /// Batched round-trip entry point: prices `requests[i]` into `quotes[i]`.
  /// Requests for different products may hit different lock stripes; the
  /// batch is processed in order within each session. Individual request
  /// failures do not abort the batch — each failed quote carries its status
  /// code (and ticket 0) and the returned Status is the first failure.
  /// Errors: InvalidArgument when the spans' sizes differ.
  Status PostPrices(std::span<const PriceRequest> requests, std::span<Quote> quotes);

  /// Routes accept/reject feedback to the ticket's session. Errors:
  /// NotFound (ticket of a closed session, unknown or already-resolved
  /// ticket — duplicate feedback lands here).
  Status Observe(uint64_t ticket, bool accepted);

  /// Current knowledge-set bounds for a query (diagnostic surface).
  Status EstimateValue(std::string_view product, std::span<const double> features,
                       ValueInterval* out) const;

  /// Captures the product's full resumable session state.
  Status Snapshot(std::string_view product, SessionSnapshot* out) const;

  /// Restores a snapshot into the product's session (engine families must
  /// match; see PricingSession::Restore for the ticket-base contract).
  Status Restore(std::string_view product, const SessionSnapshot& snapshot);

  /// Monitoring/test surface.
  Status GetSessionInfo(std::string_view product, SessionInfo* out) const;
  std::vector<std::string> Products() const;
  size_t session_count() const;

  /// The session's engine, for read-only diagnostics while no concurrent
  /// traffic targets the product (tests, the driver); nullptr when unknown.
  const PricingEngine* FindEngine(std::string_view product) const;

 private:
  struct Shard {
    mutable std::mutex mu;
  };

  /// Looks up a session index under a directory lock the caller holds.
  /// Returns false when the product is unknown or closed.
  bool FindIndexLocked(std::string_view product, size_t* index) const;

  std::mutex& shard_for(size_t session_index) const {
    return shards_[session_index % shards_.size()].mu;
  }

  BrokerConfig config_;
  mutable std::shared_mutex dir_mu_;
  /// Product name → index into `sessions_`. Transparent comparator so hot
  /// lookups take string_views without materializing a std::string.
  std::map<std::string, size_t, std::less<>> index_;
  /// Append-only (slots are nulled on close, never erased), so indices — and
  /// the ticket bases derived from them — stay stable for the broker's life.
  std::vector<std::unique_ptr<PricingSession>> sessions_;
  std::vector<Shard> shards_;
};

/// The ticket base a broker assigns to its i-th session (index+1 in the
/// high 24 bits; the session fills the low 40 with slot index + generation,
/// see PricingSession's ticket layout).
uint64_t TicketBaseForIndex(size_t session_index);

}  // namespace pdm::broker

#endif  // PDM_BROKER_BROKER_H_
