#ifndef PDM_BROKER_BROKER_H_
#define PDM_BROKER_BROKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "broker/session.h"
#include "common/concurrency.h"
#include "common/status.h"
#include "scenario/mechanism_registry.h"
#include "scenario/scenario_spec.h"

/// \file
/// The serving front end: one `Broker` owns many named `PricingSession`s —
/// one per data product — behind a contention-free routing layer
/// (DESIGN.md §9).
///
/// This is the production-facing redesign of the public surface: where the
/// simulation layers expose "one engine in a loop", the broker exposes a
/// concurrency-safe request/feedback API in the style of an exchange front
/// end. Requests name their product (or carry a resolved `ProductHandle`);
/// quotes carry ticket ids whose high bits route feedback back to the owning
/// session without any global ticket table; feedback may be delayed and
/// interleaved across products. Misuse (unknown product, stale handle,
/// duplicate/unknown ticket, dimension mismatch) returns a `pdm::Status` —
/// the broker never aborts on client input.
///
/// Concurrency model (full treatment in DESIGN.md §9): the product directory
/// is an immutable snapshot published through one atomic pointer
/// (`common/concurrency.h`), so request traffic performs *zero* atomic
/// read-modify-writes on shared state — a plain acquire load finds the
/// session, and the only lock taken is that session's own cache-line-padded
/// mutex. Sessions live in a grow-only slab (slots are tombstoned on close,
/// never reused), which is what makes `ProductHandle`s and ticket bases
/// stable for the broker's life. Steady-state PostPrice/Observe round trips
/// perform zero heap allocations (tests/allocation_test.cc);
/// `bench/bench_broker_throughput` and `bench/bench_broker_scaling` track
/// the multi-threaded round-trip rate and its scaling curve.

namespace pdm::broker {

struct BrokerConfig {
  /// Retired (PR 5): sessions no longer share striped locks — every session
  /// owns a cache-line-padded mutex, so there is no stripe count to tune.
  /// The field survives only so callers written against the PR 4 surface
  /// keep compiling; its value is ignored (migration notes: DESIGN.md §9).
  int num_shards = 16;
};

/// A resolved fast-path reference to one open product: slab index plus the
/// slot's open-generation stamp. Steady-state clients `Resolve` once and
/// skip the name hash on every subsequent request. Handles stay valid until
/// the product is closed; a stale handle fails with NotFound (never UB —
/// slots are never reused, so a retired handle can only miss). Handles are
/// broker-specific; presenting one to a different Broker is misuse and gets
/// NotFound at best.
struct ProductHandle {
  static constexpr uint32_t kInvalidIndex = 0xFFFFFFFFu;
  /// Slab index of the session slot.
  uint32_t index = kInvalidIndex;
  /// The slot's state stamp observed at resolve time (odd = open).
  uint32_t generation = 0;

  bool valid() const { return index != kInvalidIndex; }
  friend bool operator==(const ProductHandle&, const ProductHandle&) = default;
};

/// One price request of the name-keyed batched entry point.
struct PriceRequest {
  /// Product (session) name.
  std::string_view product;
  /// Raw feature vector x_t; its length must match the session engine's
  /// input dimension.
  std::span<const double> features;
  /// Reserve price q_t.
  double reserve = 0.0;
};

/// One price request of the handle-keyed batched entry point (the
/// steady-state fast path: no string hashing anywhere).
struct HandleRequest {
  ProductHandle handle;
  std::span<const double> features;
  double reserve = 0.0;
};

/// One feedback item of the batched `Observes` entry point.
struct FeedbackRequest {
  uint64_t ticket = 0;
  bool accepted = false;
};

/// Monitoring/test surface for one session.
struct SessionInfo {
  std::string product;
  std::string engine_name;
  int64_t pending = 0;
  int64_t quotes_issued = 0;
  int64_t feedback_received = 0;
  EngineCounters counters;
};

class Broker {
 public:
  explicit Broker(const BrokerConfig& config = {});
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // ------------------------------------------------------ control plane

  /// Opens a session serving `product` with a caller-built engine. Errors:
  /// InvalidArgument (empty name, null engine), FailedPrecondition
  /// (duplicate product).
  Status OpenSession(std::string product, std::unique_ptr<PricingEngine> engine);

  /// Registry path: builds the engine for `spec` (mechanism name, link,
  /// geometry) through `scenario::MechanismRegistry::Builtin()` and opens a
  /// session named `product`. Errors: additionally InvalidArgument for an
  /// unknown mechanism name.
  Status OpenSession(std::string product, const scenario::ScenarioSpec& spec,
                     const scenario::WorkloadInfo& info);

  /// Closes a session; its tickets and any resolved handles become
  /// unroutable (→ NotFound). Reopening the same name later creates a fresh
  /// slot — old handles stay dead.
  Status CloseSession(std::string_view product);

  /// Resolves `product` to a fast-path handle (one immutable-map lookup).
  /// Errors: NotFound (unknown product), InvalidArgument (null output).
  Status Resolve(std::string_view product, ProductHandle* handle) const;

  // ------------------------------------------------- request fast path

  /// Prices one request against a resolved handle, filling `*quote`
  /// (ticket, price, flags). Errors: NotFound (stale/closed/foreign
  /// handle), plus the session-level statuses (dimension mismatch, ...).
  Status PostPrice(ProductHandle handle, std::span<const double> features,
                   double reserve, Quote* quote);

  /// Handle-keyed batch: prices `requests[i]` into `quotes[i]`, grouping
  /// the batch by session so each session's lock is taken once per batch
  /// (not once per request). Within one session, requests are processed in
  /// batch order. Individual request failures do not abort the batch — each
  /// failed quote carries its status code (and ticket 0) and the returned
  /// Status is the failure at the lowest batch position. Errors:
  /// InvalidArgument when the spans' sizes differ.
  Status PostPrices(std::span<const HandleRequest> requests, std::span<Quote> quotes);

  /// Name-keyed wrappers over the handle path (one directory lookup per
  /// distinct name run, then identical routing).
  Status PostPrice(const PriceRequest& request, Quote* quote);
  Status PostPrices(std::span<const PriceRequest> requests, std::span<Quote> quotes);

  /// Routes accept/reject feedback to the ticket's session. Errors:
  /// NotFound (ticket of a closed session, unknown or already-resolved
  /// ticket — duplicate feedback lands here).
  Status Observe(uint64_t ticket, bool accepted);

  /// Batched feedback, grouped by owning session exactly like PostPrices
  /// (one lock acquisition per session per batch, items in batch order
  /// within a session). `codes`, when non-empty, must match `feedback` in
  /// size and receives the per-item outcome; the returned Status is the
  /// failure at the lowest batch position. Errors: InvalidArgument on a
  /// size mismatch.
  Status Observes(std::span<const FeedbackRequest> feedback,
                  std::span<StatusCode> codes = {});

  // ----------------------------------------------------- diagnostics

  /// Current knowledge-set bounds for a query (diagnostic surface).
  Status EstimateValue(std::string_view product, std::span<const double> features,
                       ValueInterval* out) const;
  Status EstimateValue(ProductHandle handle, std::span<const double> features,
                       ValueInterval* out) const;

  /// Captures the product's full resumable session state.
  Status Snapshot(std::string_view product, SessionSnapshot* out) const;

  /// Restores a snapshot into the product's session (engine families must
  /// match; see PricingSession::Restore for the ticket-base contract).
  Status Restore(std::string_view product, const SessionSnapshot& snapshot);

  /// Monitoring/test surface.
  Status GetSessionInfo(std::string_view product, SessionInfo* out) const;
  std::vector<std::string> Products() const;
  size_t session_count() const;

  /// The session's engine, for read-only diagnostics while no concurrent
  /// traffic targets the product (tests, the driver); nullptr when unknown.
  const PricingEngine* FindEngine(std::string_view product) const;

 private:
  /// One slab slot: the per-session lock plus the session it guards, padded
  /// to its own cache line so traffic on neighbouring sessions never
  /// false-shares. `state` is the open-generation stamp (odd = open, even =
  /// closed); it is bumped under `mu`, so holders of `mu` may read it
  /// relaxed, while the lock-free pre-check uses acquire.
  ///
  /// Wrap-safety: slots are tombstoned on close and never reused, so one
  /// slot's stamp only ever steps 0 → 1 (open) → 2 (closed) — the uint32_t
  /// cannot wrap however hard open/close churns, because churn consumes
  /// fresh slots, not fresh generations. The churn bound lives in the slab
  /// instead: a broker refuses to open more than 2^24 - 2 sessions over its
  /// lifetime (FailedPrecondition "session-slot space exhausted"), which is
  /// also what keeps ticket bases unique forever (DESIGN.md §9).
  struct alignas(kCacheLineSize) SessionSlot {
    std::atomic<uint32_t> state{0};
    std::mutex mu;
    /// Guarded by `mu` (+ a state check: non-null iff state is odd).
    std::unique_ptr<PricingSession> session;
  };

  /// Transparent string hashing so hot name lookups take string_views.
  struct StringViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// The immutable directory snapshot: name → handle for resolution, plus
  /// the grow-only slot view for index routing (tickets, handles). A new
  /// snapshot is published on every open/close; readers see either the old
  /// or the new one, both internally consistent.
  struct Directory {
    std::unordered_map<std::string, ProductHandle, StringViewHash, std::equal_to<>>
        by_name;
    std::vector<SessionSlot*> slots;
  };

  /// Loads the current directory and validates `handle` against it without
  /// locking. Returns the slot when the handle *may* be live (the caller
  /// must re-check `state` under the slot lock), nullptr when certainly
  /// stale/foreign.
  SessionSlot* ProbeHandle(ProductHandle handle) const;

  /// Maps a ticket to its owning slot (no liveness guarantee; same re-check
  /// contract as ProbeHandle).
  SessionSlot* ProbeTicket(uint64_t ticket, uint32_t* state_out) const;

  /// A slot acquired through the full probe → lock → re-check protocol;
  /// empty (`slot == nullptr`) when the target is stale or closed. Single
  /// point of truth for the close-race guarantee: every read-side method
  /// goes through Acquire*.
  struct LockedSlot {
    SessionSlot* slot = nullptr;
    std::unique_lock<std::mutex> lock;
    explicit operator bool() const { return slot != nullptr; }
    PricingSession* session() const { return slot->session.get(); }
  };
  LockedSlot AcquireHandle(ProductHandle handle) const;
  LockedSlot AcquireTicket(uint64_t ticket) const;

  /// The grouped batch core behind both PostPrices overloads. `*error_index`
  /// receives the batch position of the returned failure (`requests.size()`
  /// when everything succeeded), letting the name-keyed wrapper merge
  /// resolution failures by position.
  Status PostPricesGrouped(std::span<const HandleRequest> requests,
                           std::span<Quote> quotes, size_t* error_index);

  /// Serializes directory mutations (open/close); never taken on the
  /// request path. Session-state mutations (Restore, feedback) need only
  /// the slot lock.
  mutable std::mutex control_mu_;
  /// Slot storage: grow-only, stable addresses, freed on destruction.
  std::vector<std::unique_ptr<SessionSlot>> slot_storage_;
  SnapshotPtr<Directory> directory_;
};

/// The ticket base a broker assigns to its i-th session (index+1 in the
/// high 24 bits; the session fills the low 40 with slot index + generation,
/// see PricingSession's ticket layout).
uint64_t TicketBaseForIndex(size_t session_index);

}  // namespace pdm::broker

#endif  // PDM_BROKER_BROKER_H_
