#ifndef PDM_BROKER_BROKER_H_
#define PDM_BROKER_BROKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "broker/session.h"
#include "common/arena.h"
#include "common/concurrency.h"
#include "common/status.h"
#include "metrics/metrics.h"
#include "scenario/mechanism_registry.h"
#include "scenario/scenario_spec.h"

/// \file
/// The serving front end: one `Broker` owns many named `PricingSession`s —
/// one per data product — behind a contention-free routing layer
/// (DESIGN.md §9).
///
/// This is the production-facing redesign of the public surface: where the
/// simulation layers expose "one engine in a loop", the broker exposes a
/// concurrency-safe request/feedback API in the style of an exchange front
/// end. Requests name their product (or carry a resolved `ProductHandle`);
/// quotes carry ticket ids whose high bits route feedback back to the owning
/// session without any global ticket table; feedback may be delayed and
/// interleaved across products. Misuse (unknown product, stale handle,
/// duplicate/unknown ticket, dimension mismatch) returns a `pdm::Status` —
/// the broker never aborts on client input.
///
/// Concurrency model (full treatment in DESIGN.md §9): the product directory
/// is an immutable snapshot published through one atomic pointer
/// (`common/concurrency.h`), so request traffic performs *zero* atomic
/// read-modify-writes on shared state — a plain acquire load finds the
/// session, and the only lock taken is that session's own cache-line-padded
/// mutex. Sessions live in a grow-only slab (slots are tombstoned on close,
/// never reused), which is what makes `ProductHandle`s and ticket bases
/// stable for the broker's life. Steady-state PostPrice/Observe round trips
/// perform zero heap allocations (tests/allocation_test.cc);
/// `bench/bench_broker_throughput` and `bench/bench_broker_scaling` track
/// the multi-threaded round-trip rate and its scaling curve.
///
/// Memory model at scale (DESIGN.md §12): slot and session objects live in a
/// slab arena (`common/arena.h`) — slots are bump-allocated and never freed
/// (their lifetime IS the broker's), session objects recycle through an
/// `ArenaPool` as products close, evict, and fault back in. A configurable
/// cold tier bounds resident engine state: when more than
/// `max_resident_sessions` sessions hold live engines, the least-recently
/// touched evictable sessions are serialized through the `pdm.snap.v1` codec
/// to `spill_dir` and their in-memory state is dropped; the next request
/// that touches an evicted product faults it back in transparently, and the
/// snapshot round trip makes the resumed session *bit-identical* to one that
/// was never evicted. Handles and outstanding tickets remain valid across
/// the round trip — the slot (and its ticket base) never moves.

namespace pdm::broker {

struct BrokerConfig {
  /// Cold-tier spill directory (created on demand). Empty disables the cold
  /// tier entirely: nothing is ever evicted and `max_resident_sessions` is
  /// ignored.
  std::string spill_dir;
  /// Soft cap on sessions holding live in-memory engines. 0 = unlimited.
  /// When the resident count exceeds the cap, request-path entry points
  /// trigger an eviction sweep (least-recently-touched first) down to the
  /// cap. Only registry-opened sessions (those with a rebuild recipe) are
  /// evictable; sessions opened with caller-built engines always stay
  /// resident, as does any session whose snapshot is not currently capturable.
  size_t max_resident_sessions = 0;
  /// Telemetry gateway (DESIGN.md §13). Instrument handles are resolved once
  /// in the Broker constructor; null leaves the default handles, which write
  /// to process-wide sink cells — the no-op gateway in all but name. The
  /// gateway must outlive the broker.
  metrics::MetricGateway* metrics = nullptr;
  /// Crash recovery (DESIGN.md §14). When true and `spill_dir` is set, the
  /// constructor sweeps the directory: `*.tmp` orphans from torn writes are
  /// deleted, and every `slot-*.snap` spill left by a previous (crashed)
  /// broker is validated and inventoried. A later OpenSession(s) whose
  /// product name matches an inventoried spill *adopts* it — the session
  /// starts evicted and faults in from the pre-crash bytes on first touch.
  /// Spills that fail validation are quarantined (renamed `*.quarantined`)
  /// and counted as corruptions. When false the constructor sweep still
  /// removes `*.tmp` files but treats every leftover spill as an orphan for
  /// SweepUnclaimedSpills.
  bool recover_spills = true;
};

/// What the startup sweep and spill adoption did (DESIGN.md §14); `pdm_serve`
/// prints this as its RECOVERY handshake line and tools/check_recovery.py
/// reconciles it against the pre-restart spill manifest.
struct RecoveryReport {
  /// `*.tmp` files from torn spill writes deleted at construction.
  size_t tmp_reclaimed = 0;
  /// Valid spills inventoried at construction (adoption candidates).
  size_t spills_found = 0;
  /// Spills that failed checksum/decode at construction and were renamed to
  /// `*.quarantined`.
  size_t corrupt_quarantined = 0;
  /// Inventoried spills adopted by OpenSession(s) so far.
  size_t adopted = 0;
  /// Unclaimed spills deleted by SweepUnclaimedSpills.
  size_t orphans_reclaimed = 0;
  /// Bytes freed by tmp + orphan reclamation.
  size_t bytes_reclaimed = 0;
};

/// A resolved fast-path reference to one open product: slab index plus the
/// slot's open-generation stamp. Steady-state clients `Resolve` once and
/// skip the name hash on every subsequent request. Handles stay valid until
/// the product is closed (eviction to the cold tier does NOT invalidate
/// handles); a stale handle fails with NotFound (never UB — slots are never
/// reused, so a retired handle can only miss). Handles are broker-specific;
/// presenting one to a different Broker is misuse and gets NotFound at best.
struct ProductHandle {
  static constexpr uint32_t kInvalidIndex = 0xFFFFFFFFu;
  /// Slab index of the session slot.
  uint32_t index = kInvalidIndex;
  /// The slot's state stamp observed at resolve time (odd = open).
  uint32_t generation = 0;

  bool valid() const { return index != kInvalidIndex; }
  friend bool operator==(const ProductHandle&, const ProductHandle&) = default;
};

/// One price request of the name-keyed batched entry point.
struct PriceRequest {
  /// Product (session) name.
  std::string_view product;
  /// Raw feature vector x_t; its length must match the session engine's
  /// input dimension.
  std::span<const double> features;
  /// Reserve price q_t.
  double reserve = 0.0;
};

/// One price request of the handle-keyed batched entry point (the
/// steady-state fast path: no string hashing anywhere).
struct HandleRequest {
  ProductHandle handle;
  std::span<const double> features;
  double reserve = 0.0;
};

/// One feedback item of the batched `Observes` entry point.
struct FeedbackRequest {
  uint64_t ticket = 0;
  bool accepted = false;
};

/// Monitoring/test surface for one session.
struct SessionInfo {
  std::string product;
  std::string engine_name;
  int64_t pending = 0;
  int64_t quotes_issued = 0;
  int64_t feedback_received = 0;
  /// Cumulative value-space regret-proxy inputs (see
  /// PricingSession::posted_value).
  double posted_value = 0.0;
  double accepted_value = 0.0;
  EngineCounters counters;
};

/// Broker-wide memory and occupancy counters (monitoring surface; the TCP
/// server folds these into its ServerStats shutdown line).
struct BrokerStats {
  /// Products currently open (directory size).
  size_t open_sessions = 0;
  /// Open sessions holding a live in-memory engine.
  size_t resident_sessions = 0;
  /// Open sessions currently spilled to the cold tier.
  size_t evicted_sessions = 0;
  /// Open sessions whose spill was quarantined as corrupt (DataLoss).
  size_t quarantined_sessions = 0;
  /// Slab occupancy: slots serving an open session / tombstoned by close /
  /// total ever allocated / remaining lifetime capacity.
  size_t slab_live_slots = 0;
  size_t slab_tombstoned_slots = 0;
  size_t slab_total_slots = 0;
  size_t slab_free_capacity = 0;
  /// Cumulative cold-tier traffic.
  uint64_t evictions = 0;
  uint64_t fault_ins = 0;
  /// Bytes currently held in spill files.
  size_t spill_bytes = 0;
  /// Ticket slots permanently retired at the generation bound, summed over
  /// resident sessions (evicted sessions' retirements reappear on fault-in).
  int64_t retired_ticket_slots = 0;
  /// Slab-arena footprint (slot + session blocks).
  size_t arena_bytes_reserved = 0;
  size_t arena_bytes_used = 0;
};

class Broker {
 public:
  explicit Broker(const BrokerConfig& config = {});
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // ------------------------------------------------------ control plane

  /// Opens a session serving `product` with a caller-built engine. Such a
  /// session has no rebuild recipe and is therefore never evicted. Errors:
  /// InvalidArgument (empty name, null engine), FailedPrecondition
  /// (duplicate product).
  Status OpenSession(std::string product, std::unique_ptr<PricingEngine> engine);

  /// Registry path: builds the engine for `spec` (mechanism name, link,
  /// geometry) through `scenario::MechanismRegistry::Builtin()` and opens a
  /// session named `product`. The (spec, info) pair is retained as the
  /// session's rebuild recipe, making it cold-tier evictable. Errors:
  /// additionally InvalidArgument for an unknown mechanism name.
  Status OpenSession(std::string product, const scenario::ScenarioSpec& spec,
                     const scenario::WorkloadInfo& info);

  /// Bulk registry open: every product in `products` gets its own session
  /// built from the shared (spec, info) recipe, all published in ONE
  /// directory snapshot. This is the scale path: a directory publish copies
  /// the whole name map, so opening N products one by one costs O(N²) map
  /// work and retains N snapshot generations, while one batch costs O(N)
  /// and retains one (DESIGN.md §12). All-or-nothing: on any validation
  /// failure (empty/duplicate name, unknown mechanism, slab exhaustion)
  /// nothing is opened.
  Status OpenSessions(std::span<const std::string> products,
                      const scenario::ScenarioSpec& spec,
                      const scenario::WorkloadInfo& info);

  /// Closes a session; its tickets and any resolved handles become
  /// unroutable (→ NotFound). Reopening the same name later creates a fresh
  /// slot — old handles stay dead. Closing an evicted session removes its
  /// spill file without faulting it in.
  Status CloseSession(std::string_view product);

  /// Resolves `product` to a fast-path handle (one immutable-map lookup).
  /// Errors: NotFound (unknown product), InvalidArgument (null output).
  Status Resolve(std::string_view product, ProductHandle* handle) const;

  // ------------------------------------------------- request fast path

  /// Prices one request against a resolved handle, filling `*quote`
  /// (ticket, price, flags). Errors: NotFound (stale/closed/foreign
  /// handle), plus the session-level statuses (dimension mismatch, ...).
  Status PostPrice(ProductHandle handle, std::span<const double> features,
                   double reserve, Quote* quote);

  /// Handle-keyed batch: prices `requests[i]` into `quotes[i]`, grouping
  /// the batch by session so each session's lock is taken once per batch
  /// (not once per request). Within one session, requests are processed in
  /// batch order. Individual request failures do not abort the batch — each
  /// failed quote carries its status code (and ticket 0) and the returned
  /// Status is the failure at the lowest batch position. Errors:
  /// InvalidArgument when the spans' sizes differ.
  Status PostPrices(std::span<const HandleRequest> requests, std::span<Quote> quotes);

  /// Name-keyed wrappers over the handle path (one directory lookup per
  /// distinct name run, then identical routing).
  Status PostPrice(const PriceRequest& request, Quote* quote);
  Status PostPrices(std::span<const PriceRequest> requests, std::span<Quote> quotes);

  /// Routes accept/reject feedback to the ticket's session. Errors:
  /// NotFound (ticket of a closed session, unknown or already-resolved
  /// ticket — duplicate feedback lands here).
  Status Observe(uint64_t ticket, bool accepted);

  /// Batched feedback, grouped by owning session exactly like PostPrices
  /// (one lock acquisition per session per batch, items in batch order
  /// within a session). `codes`, when non-empty, must match `feedback` in
  /// size and receives the per-item outcome; the returned Status is the
  /// failure at the lowest batch position. Errors: InvalidArgument on a
  /// size mismatch.
  Status Observes(std::span<const FeedbackRequest> feedback,
                  std::span<StatusCode> codes = {});

  // ----------------------------------------------------- cold tier

  /// Evicts least-recently-touched evictable sessions until at most
  /// `max_resident` remain resident (or no candidates are left). Returns
  /// the number evicted. A no-op (returns 0) when the broker has no
  /// spill_dir. Also the manual monitoring hook — the request path calls
  /// the same sweep automatically when `max_resident_sessions` is exceeded.
  size_t EvictIdleSessions(size_t max_resident);

  /// Deletes inventoried spill files no OpenSession(s) call has adopted and
  /// returns how many were reclaimed. Call once the serving fleet is open
  /// (pdm_serve does): anything still unclaimed belonged to a product this
  /// process will never serve — the spill-leak fix for unclean shutdowns.
  /// Previously-quarantined files are deliberately left on disk as evidence.
  size_t SweepUnclaimedSpills();

  /// Snapshot of the recovery bookkeeping (startup sweep + adoptions so far).
  RecoveryReport recovery_report() const;

  /// Broker-wide occupancy/memory counters (takes each live slot's lock
  /// briefly; intended for monitoring cadence, not the request path).
  BrokerStats Stats() const;

  /// Lock-free counter reads, cheap enough for the request path (the memory
  /// soak bench classifies per-touch latency by watching fault_in_count()
  /// move across a touch).
  uint64_t fault_in_count() const {
    return fault_ins_.load(std::memory_order_relaxed);
  }
  uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t resident_count() const {
    return resident_sessions_.load(std::memory_order_relaxed);
  }

  // ----------------------------------------------------- diagnostics

  /// Current knowledge-set bounds for a query (diagnostic surface).
  Status EstimateValue(std::string_view product, std::span<const double> features,
                       ValueInterval* out) const;
  Status EstimateValue(ProductHandle handle, std::span<const double> features,
                       ValueInterval* out) const;

  /// Captures the product's full resumable session state.
  Status Snapshot(std::string_view product, SessionSnapshot* out) const;

  /// Restores a snapshot into the product's session (engine families must
  /// match; see PricingSession::Restore for the ticket-base contract).
  Status Restore(std::string_view product, const SessionSnapshot& snapshot);

  /// Monitoring/test surface.
  Status GetSessionInfo(std::string_view product, SessionInfo* out) const;
  std::vector<std::string> Products() const;
  size_t session_count() const;

  /// The session's engine, for read-only diagnostics while no concurrent
  /// traffic targets the product (tests, the driver); nullptr when unknown.
  /// Faults an evicted session in like any other touch.
  const PricingEngine* FindEngine(std::string_view product) const;

 private:
  /// How a registry-opened session is rebuilt at fault-in time: the same
  /// (spec, info) pair that built its engine at open. Shared across a bulk
  /// open, so a million-product batch stores ONE recipe, not a million.
  struct RebuildRecipe {
    scenario::ScenarioSpec spec;
    scenario::WorkloadInfo info;
  };

  /// Pooled-session deleter: returns the object's storage to the broker's
  /// arena pool instead of the heap (see common/arena.h).
  struct PoolDeleter {
    // Explicit constructors (not an NSDMI): a nested class's default member
    // initializers only parse at the enclosing class's closing brace, which
    // would leave unique_ptr's default constructor unusable inside Broker.
    PoolDeleter() : broker(nullptr) {}
    explicit PoolDeleter(Broker* b) : broker(b) {}
    void operator()(PricingSession* session) const;
    Broker* broker;
  };
  using SessionPtr = std::unique_ptr<PricingSession, PoolDeleter>;

  /// One slab slot: the per-session lock plus the session it guards, padded
  /// to its own cache line so traffic on neighbouring sessions never
  /// false-shares. `state` is the open-generation stamp (odd = open, even =
  /// closed); it is bumped under `mu`, so holders of `mu` may read it
  /// relaxed, while the lock-free pre-check uses acquire.
  ///
  /// Wrap-safety: slots are tombstoned on close and never reused, so one
  /// slot's stamp only ever steps 0 → 1 (open) → 2 (closed) — the uint32_t
  /// cannot wrap however hard open/close churns, because churn consumes
  /// fresh slots, not fresh generations. The churn bound lives in the slab
  /// instead: a broker refuses to open more than 2^24 - 2 sessions over its
  /// lifetime (FailedPrecondition "session-slot space exhausted"), which is
  /// also what keeps ticket bases unique forever (DESIGN.md §9).
  ///
  /// Cold-tier state: an *evicted* slot keeps its odd `state` (handles and
  /// tickets stay routable) but holds no session — `evicted` is true and
  /// the serialized bytes sit in the spill file. `last_touch_epoch` is the
  /// eviction sweep's LRU clock: Acquire* stamps it with the current sweep
  /// epoch using plain relaxed stores, so the request hot path stays free
  /// of shared read-modify-writes (DESIGN.md §9's core invariant).
  struct alignas(kCacheLineSize) SessionSlot {
    std::atomic<uint32_t> state{0};
    std::mutex mu;
    /// Guarded by `mu` (+ a state check: non-null iff state is odd and the
    /// slot is not evicted).
    SessionPtr session;
    /// Guarded by `mu`.
    bool evicted = false;
    /// The slot's spill failed checksum or decode on fault-in: the file has
    /// been renamed `*.quarantined` and every touch answers DataLoss without
    /// retrying the bytes (DESIGN.md §14). Guarded by `mu`.
    bool quarantined = false;
    /// Bytes of this slot's spill file (0 unless evicted). Guarded by `mu`.
    size_t spill_size = 0;
    /// Immutable after the slot is published; null for caller-built engines
    /// (such sessions are never evicted).
    std::shared_ptr<const RebuildRecipe> recipe;
    /// LRU clock stamp (see above). Plain loads/stores only.
    std::atomic<uint64_t> last_touch_epoch{0};
  };

  /// Transparent string hashing so hot name lookups take string_views.
  struct StringViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// The immutable directory snapshot: name → handle for resolution, plus
  /// the grow-only slot view for index routing (tickets, handles). A new
  /// snapshot is published on every open/close; readers see either the old
  /// or the new one, both internally consistent. Eviction and fault-in do
  /// NOT republish — they change only slot-local state.
  struct Directory {
    std::unordered_map<std::string, ProductHandle, StringViewHash, std::equal_to<>>
        by_name;
    std::vector<SessionSlot*> slots;
  };

  /// Loads the current directory and validates `handle` against it without
  /// locking. Returns the slot when the handle *may* be live (the caller
  /// must re-check `state` under the slot lock), nullptr when certainly
  /// stale/foreign.
  SessionSlot* ProbeHandle(ProductHandle handle) const;

  /// Maps a ticket to its owning slot (no liveness guarantee; same re-check
  /// contract as ProbeHandle).
  SessionSlot* ProbeTicket(uint64_t ticket, uint32_t* state_out) const;

  /// A slot acquired through the full probe → lock → re-check protocol;
  /// empty (`slot == nullptr`) when the target is stale or closed. Single
  /// point of truth for the close-race guarantee: every read-side method
  /// goes through Acquire*. Acquire* also services the cold tier: touching
  /// an evicted slot faults the session back in (still under only the slot
  /// lock — fault-in never takes control_mu_, so it cannot deadlock with an
  /// eviction sweep holding control_mu_ and waiting on slot locks).
  struct LockedSlot {
    SessionSlot* slot = nullptr;
    std::unique_lock<std::mutex> lock;
    /// Why the acquisition failed when `slot == nullptr`: NotFound for a
    /// stale/closed/foreign target, DataLoss for a quarantined spill,
    /// Unavailable for a transient fault-in read failure. OK otherwise.
    Status error;
    explicit operator bool() const { return slot != nullptr; }
    PricingSession* session() const { return slot->session.get(); }
  };
  LockedSlot AcquireHandle(ProductHandle handle);
  LockedSlot AcquireTicket(uint64_t ticket);

  /// Allocates one slot from the arena and registers it for teardown.
  SessionSlot* NewSlot();

  /// Builds a session object in the arena pool.
  SessionPtr MakePooledSession(std::string product,
                               std::unique_ptr<PricingEngine> engine,
                               uint64_t ticket_base);

  /// Restores an evicted slot's session from its spill file. Requires
  /// `slot->mu` held and `slot->evicted`. On failure the slot stays evicted
  /// and the status says why: Unavailable for a transient read error (the
  /// bytes are still on disk — a retry may succeed), DataLoss when the spill
  /// failed checksum/decode/restore and was quarantined (every later touch
  /// short-circuits to DataLoss).
  Status FaultInLocked(SessionSlot* slot, size_t index);

  /// Marks the slot's spill corrupt: renames the file to `*.quarantined`,
  /// drops its bytes from the spill accounting, and flips the slot's
  /// quarantined flag. Requires `slot->mu` held.
  void QuarantineLocked(SessionSlot* slot, size_t index);

  /// Constructor-time spill_dir sweep (DESIGN.md §14): deletes `*.tmp`
  /// orphans from torn writes and inventories pre-crash spills into
  /// `recovered_spills_` (corrupt ones are quarantined on the spot). Valid
  /// `slot-*.snap` files are renamed into the disjoint `recovered-<n>.snap`
  /// inventory namespace first, so unclaimed inventory files can never
  /// collide with a live slot's spill path — neither via adoption's rename
  /// nor via a fresh slot evicting. Runs before the broker is visible to
  /// any other thread.
  void SweepSpillDirOnStartup();

  /// Spill file for slot `index`.
  std::string SpillPath(size_t index) const;

  /// Request-path residency enforcement: when the resident count exceeds
  /// the configured cap, runs one eviction sweep. Called with NO locks held
  /// (takes control_mu_ with try-lock so concurrent requests never convoy
  /// behind one sweep).
  void EnforceResidencyLimit();

  /// The sweep core; control_mu_ must be held.
  size_t EvictLocked(size_t max_resident);

  /// Serializes a resident session to its spill file and drops the
  /// in-memory state. Requires control_mu_ AND slot->mu held. Returns false
  /// when the session is not evictable right now.
  bool EvictSlotLocked(SessionSlot* slot, size_t index);

  /// Instrument handles, resolved once from `config.metrics` at construction
  /// (DESIGN.md §13). Default-constructed handles point at process-wide sink
  /// cells, so every site below writes unconditionally — no branches, no
  /// nullability — whether or not a live registry is wired.
  struct Instruments {
    metrics::Counter quotes;
    metrics::Counter accepts;
    metrics::Counter rejects;
    metrics::Counter retirements;
    metrics::Counter evictions;
    metrics::Counter fault_ins;
    metrics::Gauge regret;
    metrics::Gauge resident;
    metrics::Gauge evicted;
    metrics::Gauge open_products;
    metrics::Gauge spill;
    metrics::Histogram batch_size;
    metrics::Histogram fault_in_ns;
    /// Fault-tolerance counters (DESIGN.md §14).
    metrics::Counter spill_corruptions;
    metrics::Counter spill_write_errors;
    metrics::Counter spill_adopted;
    metrics::Counter spill_orphans_reclaimed;
  };

  /// The grouped batch core behind both PostPrices overloads. `*error_index`
  /// receives the batch position of the returned failure (`requests.size()`
  /// when everything succeeded), letting the name-keyed wrapper merge
  /// resolution failures by position.
  Status PostPricesGrouped(std::span<const HandleRequest> requests,
                           std::span<Quote> quotes, size_t* error_index);

  BrokerConfig config_;

  /// Serializes directory mutations (open/close) and eviction sweeps; never
  /// taken on the request path (fault-in included). Session-state mutations
  /// (Restore, feedback) need only the slot lock.
  mutable std::mutex control_mu_;
  /// Backing store for slot and session objects (DESIGN.md §12): slots are
  /// bump-allocated and live until ~Broker; session objects recycle through
  /// the pool as products close/evict/fault-in. `arena_mu_` guards both —
  /// pool mutations happen on open/close (control plane) and on fault-in
  /// (request threads, under a slot lock), so they need their own tiny lock.
  std::mutex arena_mu_;
  SlabArena arena_;
  ArenaPool<PricingSession> session_pool_{&arena_};
  /// Slot registry for teardown (slots are trivially reachable through the
  /// directory too, but tombstoned slots leave the directory's by_name map;
  /// this vector is the complete list). Guarded by control_mu_.
  std::vector<SessionSlot*> slots_;
  size_t slots_tombstoned_ = 0;

  SnapshotPtr<Directory> directory_;

  /// Cold-tier bookkeeping. The atomics are read on the request path
  /// (EnforceResidencyLimit) but only ever *modified* under either
  /// control_mu_ (eviction) or a slot lock (fault-in). They stay separate
  /// from the metric instruments below: the sweep logic and the lock-free
  /// accessors need exact control-plane values even when a no-op gateway is
  /// wired, so the cold-path event sites double-write both.
  std::atomic<uint64_t> sweep_epoch_{1};
  std::atomic<size_t> resident_sessions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> fault_ins_{0};
  std::atomic<size_t> spill_bytes_{0};
  /// Incremental CLOCK hand: the directory index where the next eviction
  /// sweep resumes, so consecutive over-cap faults keep walking forward
  /// instead of rescanning (and re-sorting) the whole slot table from zero.
  /// Guarded by control_mu_.
  size_t clock_hand_ = 0;
  /// Spill files inventoried by the startup sweep and not yet adopted:
  /// decoded product name → on-disk path + size. Guarded by control_mu_.
  struct RecoveredSpill {
    std::string path;
    size_t size = 0;
  };
  std::unordered_map<std::string, RecoveredSpill> recovered_spills_;
  /// Recovery bookkeeping (startup sweep + adoptions). Guarded by control_mu_.
  RecoveryReport recovery_report_;
  Instruments metrics_;
};

/// The ticket base a broker assigns to its i-th session (index+1 in the
/// high 24 bits; the session fills the low 40 with slot index + generation,
/// see PricingSession's ticket layout).
uint64_t TicketBaseForIndex(size_t session_index);

}  // namespace pdm::broker

#endif  // PDM_BROKER_BROKER_H_
