#include "broker/driver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/memory.h"
#include "common/timer.h"
#include "market/regret_tracker.h"
#include "market/round.h"
#include "scenario/mechanism_registry.h"

namespace pdm::broker {

BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory,
                                          Broker* broker) {
  PDM_CHECK(factory != nullptr);
  return RunScenarioThroughBroker(spec, factory->Prepare(spec), factory, broker);
}

namespace {

/// Shared core of the Run* entry points: executes `spec` through a session
/// opened under `product` (usually spec.name; the batch driver passes a
/// uniquified name when specs collide).
BrokerRunOutcome RunSpecOnBroker(const scenario::ScenarioSpec& spec,
                                 const scenario::WorkloadInfo& info,
                                 const std::string& product,
                                 scenario::StreamFactory* factory, Broker* broker) {
  PDM_CHECK(factory != nullptr);
  PDM_CHECK(broker != nullptr);
  PDM_CHECK(spec.rounds > 0);

  std::unique_ptr<PricingEngine> engine =
      scenario::MechanismRegistry::Builtin().Build(spec, info);
  // The stream may be adaptive (Lemma 8) and probe the engine's knowledge
  // set; keep a raw pointer across the ownership transfer to the broker.
  const PricingEngine* engine_view = engine.get();
  Status opened = broker->OpenSession(product, std::move(engine));
  PDM_CHECK(opened.ok());
  // Steady-state clients resolve once and never touch the name directory
  // again — the driver pins that fast path, not the string-keyed wrapper.
  ProductHandle handle;
  Status resolved = broker->Resolve(product, &handle);
  PDM_CHECK(resolved.ok());

  // Same Rng lifecycle as SimulationRunner::RunJob: stream construction
  // consumes a prefix of Rng(sim_seed), the market loop the rest (§4).
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory->CreateStream(spec, &rng);
  stream->BindEngine(engine_view);

  BrokerRunOutcome outcome;
  outcome.result.tracker = RegretTracker(spec.series_stride);

  WallTimer total_timer;
  MarketRound round;
  Quote quote;
  PostedPrice posted;
  for (int64_t t = 0; t < spec.rounds; ++t) {
    stream->Next(&rng, &round);
    Status status = broker->PostPrice(handle, round.features, round.reserve, &quote);
    PDM_CHECK(status.ok());
    // Immediate feedback: resolve the sale and answer the ticket before the
    // next request — the regime bit-identical to RunMarket's alternation.
    bool accepted = !quote.certain_no_sale && quote.price <= round.value;
    status = broker->Observe(quote.ticket, accepted);
    PDM_CHECK(status.ok());
    posted.price = quote.price;
    posted.exploratory = quote.exploratory;
    posted.certain_no_sale = quote.certain_no_sale;
    outcome.result.tracker.Observe(round, posted, accepted);
  }
  outcome.result.wall_seconds = total_timer.ElapsedSeconds();
  outcome.result.engine_counters = engine_view->counters();
  outcome.engine_name = engine_view->name();
  return outcome;
}

}  // namespace

BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          const scenario::WorkloadInfo& info,
                                          scenario::StreamFactory* factory,
                                          Broker* broker) {
  return RunSpecOnBroker(spec, info, spec.name, factory, broker);
}

BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory) {
  Broker broker;
  return RunScenarioThroughBroker(spec, factory, &broker);
}

std::vector<scenario::ScenarioOutcome> RunScenariosThroughBroker(
    const std::vector<scenario::ScenarioSpec>& specs,
    const scenario::RunOptions& options) {
  scenario::StreamFactory factory;
  std::vector<scenario::ScenarioOutcome> outcomes(specs.size());

  // Serial phase: caps + shared workload preparation, exactly like
  // ExperimentDriver::Run (the StreamFactory Prepare contract — Prepare is
  // serial-only, so workers receive their WorkloadInfo instead of calling
  // Prepare concurrently). Session names are uniquified up front: the
  // shared broker needs distinct products, but ExperimentDriver accepts
  // duplicate spec names, and parity with it is the contract.
  std::vector<scenario::WorkloadInfo> infos(specs.size());
  std::vector<std::string> session_names(specs.size());
  std::unordered_set<std::string> used_names;
  for (size_t i = 0; i < specs.size(); ++i) {
    outcomes[i].spec = scenario::CapRounds(specs[i], options.max_rounds);
    infos[i] = factory.Prepare(outcomes[i].spec);
    session_names[i] = outcomes[i].spec.name;
    for (int suffix = 2; !used_names.insert(session_names[i]).second; ++suffix) {
      session_names[i] = outcomes[i].spec.name + "#" + std::to_string(suffix);
    }
  }

  // Fan out over one shared broker: every scenario opens its own product
  // (OpenSession is the control plane, serialized internally), then prices
  // through the contention-free handle path. Each outcome is a pure
  // function of its spec, so worker count and scheduling cannot change it.
  int num_threads = options.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  num_threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_threads), specs.size()));
  if (num_threads < 1) num_threads = 1;

  Broker broker;
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < specs.size(); i = next.fetch_add(1)) {
      BrokerRunOutcome run = RunSpecOnBroker(outcomes[i].spec, infos[i],
                                             session_names[i], &factory, &broker);
      outcomes[i].engine_name = std::move(run.engine_name);
      outcomes[i].result = std::move(run.result);
    }
  };
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) workers.emplace_back(worker);
    for (std::thread& thread : workers) thread.join();
  }

  // Single-sample VmRSS semantics, as in ExperimentDriver (DESIGN.md §8).
  int64_t rss = CurrentRssBytes();
  for (scenario::ScenarioOutcome& outcome : outcomes) outcome.rss_bytes = rss;
  return outcomes;
}

}  // namespace pdm::broker
