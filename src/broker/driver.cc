#include "broker/driver.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "market/regret_tracker.h"
#include "market/round.h"
#include "scenario/mechanism_registry.h"

namespace pdm::broker {

BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory,
                                          Broker* broker) {
  PDM_CHECK(factory != nullptr);
  PDM_CHECK(broker != nullptr);
  PDM_CHECK(spec.rounds > 0);

  scenario::WorkloadInfo info = factory->Prepare(spec);
  std::unique_ptr<PricingEngine> engine =
      scenario::MechanismRegistry::Builtin().Build(spec, info);
  // The stream may be adaptive (Lemma 8) and probe the engine's knowledge
  // set; keep a raw pointer across the ownership transfer to the broker.
  const PricingEngine* engine_view = engine.get();
  Status opened = broker->OpenSession(spec.name, std::move(engine));
  PDM_CHECK(opened.ok());

  // Same Rng lifecycle as SimulationRunner::RunJob: stream construction
  // consumes a prefix of Rng(sim_seed), the market loop the rest (§4).
  Rng rng(spec.sim_seed);
  std::unique_ptr<QueryStream> stream = factory->CreateStream(spec, &rng);
  stream->BindEngine(engine_view);

  BrokerRunOutcome outcome;
  outcome.result.tracker = RegretTracker(spec.series_stride);

  WallTimer total_timer;
  MarketRound round;
  Quote quote;
  PostedPrice posted;
  for (int64_t t = 0; t < spec.rounds; ++t) {
    stream->Next(&rng, &round);
    Status status =
        broker->PostPrice({spec.name, round.features, round.reserve}, &quote);
    PDM_CHECK(status.ok());
    // Immediate feedback: resolve the sale and answer the ticket before the
    // next request — the regime bit-identical to RunMarket's alternation.
    bool accepted = !quote.certain_no_sale && quote.price <= round.value;
    status = broker->Observe(quote.ticket, accepted);
    PDM_CHECK(status.ok());
    posted.price = quote.price;
    posted.exploratory = quote.exploratory;
    posted.certain_no_sale = quote.certain_no_sale;
    outcome.result.tracker.Observe(round, posted, accepted);
  }
  outcome.result.wall_seconds = total_timer.ElapsedSeconds();
  outcome.result.engine_counters = engine_view->counters();
  outcome.engine_name = engine_view->name();
  return outcome;
}

BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory) {
  Broker broker;
  return RunScenarioThroughBroker(spec, factory, &broker);
}

}  // namespace pdm::broker
