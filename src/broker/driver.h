#ifndef PDM_BROKER_DRIVER_H_
#define PDM_BROKER_DRIVER_H_

#include <string>

#include "broker/broker.h"
#include "market/simulator.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"

/// \file
/// Executes declarative registry scenarios *through the broker surface*
/// instead of calling the engine directly, so the serving path is pinned
/// against the simulation path: with immediate feedback (every quote
/// answered before the next request) a broker run is bit-identical to
/// `RunMarket` on the same spec — same prices, same cuts, same regret
/// accounting (tests/broker_test.cc pins fig5a and table1 specs).

namespace pdm::broker {

/// One scenario executed through a broker session.
struct BrokerRunOutcome {
  /// Name reported by the session's engine.
  std::string engine_name;
  SimulationResult result;
};

/// Runs `spec` through a session on `broker` (opened under `spec.name`,
/// which must not already be in use), with immediate ticketed feedback.
/// `factory` prepares/caches the workload exactly as `ExperimentDriver`
/// does, so shared artifacts are reused across runs. The session stays open
/// afterwards for inspection; close it via `broker->CloseSession(spec.name)`.
BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory,
                                          Broker* broker);

/// Convenience overload with a private single-session broker.
BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory);

}  // namespace pdm::broker

#endif  // PDM_BROKER_DRIVER_H_
