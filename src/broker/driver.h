#ifndef PDM_BROKER_DRIVER_H_
#define PDM_BROKER_DRIVER_H_

#include <string>
#include <vector>

#include "broker/broker.h"
#include "market/simulator.h"
#include "scenario/experiment.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"

/// \file
/// Executes declarative registry scenarios *through the broker surface*
/// instead of calling the engine directly, so the serving path is pinned
/// against the simulation path: with immediate feedback (every quote
/// answered before the next request) a broker run is bit-identical to
/// `RunMarket` on the same spec — same prices, same cuts, same regret
/// accounting (tests/broker_test.cc pins fig5a and table1 specs).
///
/// Both entry points drive the steady-state *handle* fast path
/// (`Broker::Resolve` once, then handle-keyed `PostPrice`): the driver is
/// how serving-parity runs are produced at scale, so it exercises the
/// routing layer real clients should use.

namespace pdm::broker {

/// One scenario executed through a broker session.
struct BrokerRunOutcome {
  /// Name reported by the session's engine.
  std::string engine_name;
  SimulationResult result;
};

/// Runs `spec` through a session on `broker` (opened under `spec.name`,
/// which must not already be in use), with immediate ticketed feedback.
/// `factory` prepares/caches the workload exactly as `ExperimentDriver`
/// does, so shared artifacts are reused across runs. The session stays open
/// afterwards for inspection; close it via `broker->CloseSession(spec.name)`.
BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory,
                                          Broker* broker);

/// Worker-phase overload: takes the `WorkloadInfo` from a serial-phase
/// `factory->Prepare(spec)` instead of calling Prepare itself, so it is
/// safe to run concurrently with other workers' CreateStream calls
/// (`StreamFactory`'s Prepare is serial-only; only CreateStream is
/// thread-safe). The batch driver below uses this path.
BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          const scenario::WorkloadInfo& info,
                                          scenario::StreamFactory* factory,
                                          Broker* broker);

/// Convenience overload with a private single-session broker.
BrokerRunOutcome RunScenarioThroughBroker(const scenario::ScenarioSpec& spec,
                                          scenario::StreamFactory* factory);

/// The serving-side counterpart of `ExperimentDriver::Run`: executes every
/// spec (after the `options.max_rounds` cap) through sessions on ONE shared
/// broker — all products open concurrently, every worker thread on the
/// handle fast path — and returns outcomes index-aligned with `specs`, in
/// the same shape `WriteRunJson` consumes. Duplicate spec names are legal
/// (as they are for ExperimentDriver); colliding sessions get uniquified
/// internal product names. Workloads are prepared serially first (the
/// StreamFactory contract), then scenarios fan out over
/// `options.num_threads` workers (0 = hardware default, 1 = serial).
/// Results are bit-identical to `ExperimentDriver::Run` on the same specs
/// and to any worker count (`pdm_run --through_broker`).
std::vector<scenario::ScenarioOutcome> RunScenariosThroughBroker(
    const std::vector<scenario::ScenarioSpec>& specs,
    const scenario::RunOptions& options);

}  // namespace pdm::broker

#endif  // PDM_BROKER_DRIVER_H_
