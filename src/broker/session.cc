#include "broker/session.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pdm::broker {

PricingSession::PricingSession(std::string product,
                               std::unique_ptr<PricingEngine> engine,
                               uint64_t ticket_base)
    : product_(std::move(product)),
      engine_(std::move(engine)),
      ticket_base_(ticket_base) {
  PDM_CHECK(!product_.empty());
  PDM_CHECK(engine_ != nullptr);
}

Status PricingSession::PostPrice(std::span<const double> features, double reserve,
                                 Quote* quote) {
  if (quote == nullptr) return Status::InvalidArgument("null quote output");
  quote->ticket = 0;
  quote->status = StatusCode::kOk;
  int want = engine_->input_dim();
  if (static_cast<int>(features.size()) != want) {
    quote->status = StatusCode::kInvalidArgument;
    return Status::InvalidArgument(
        "dimension mismatch for product '" + product_ + "': got " +
        std::to_string(features.size()) + " features, engine expects " +
        std::to_string(want));
  }

  // Engines without detached-feedback support keep the pending round
  // attached; a second outstanding quote would trip their alternation CHECK,
  // so refuse it as a client error instead.
  if (has_attached_pending_) {
    quote->status = StatusCode::kFailedPrecondition;
    return Status::FailedPrecondition(
        "product '" + product_ +
        "': engine without detached-feedback support already has an "
        "outstanding ticket");
  }

  // Slot allocation runs before the engine is consulted: a failed
  // allocation must not leave a pending round dangling inside the engine.
  size_t index = 0;
  Status alloc = AllocateSlot(&index);
  if (!alloc.ok()) {
    quote->status = alloc.code();
    return alloc;
  }

  // Bridge the span into the engine's Vector parameter; the buffer reaches
  // steady-state capacity after the first request of each dimension.
  features_buf_.assign(features.begin(), features.end());
  PostedPrice posted = engine_->PostPrice(features_buf_, reserve);

  TicketSlot& slot = slots_[index];
  if (!engine_->DetachPending(&slot.cut)) {
    // Third-party engine without the serving hooks: the round stays attached
    // inside the engine and this ticket is the only one allowed outstanding.
    slot.cut.kind = kAttachedKind;
    has_attached_pending_ = true;
  }
  FinishIssue(index, posted, quote);
  return Status::Ok();
}

Status PricingSession::AllocateSlot(size_t* out_index) {
  // A slot whose generation has reached kGenMask is never reissued: bumping
  // past the mask would wrap the generation back to a value a long-stale
  // ticket may still carry, and that stale id would then alias a live quote
  // (ABA). Observe retires such slots instead of freeing them; the pop loop
  // below re-checks defensively (restored tables can carry arbitrary
  // generations).
  size_t index = slots_.size();
  while (!free_slots_.empty()) {
    size_t candidate = free_slots_.back();
    free_slots_.pop_back();
    if (slots_[candidate].generation < kGenMask) {
      index = candidate;
      break;
    }
    ++slots_retired_;
  }
  if (index == slots_.size()) {
    if (slots_.size() <= kSlotMask) {
      slots_.emplace_back();
    } else {
      return Status::FailedPrecondition(
          "product '" + product_ + "': ticket-slot space exhausted (" +
          std::to_string(pending_count_) + " quotes outstanding, " +
          std::to_string(slots_retired_) + " slots retired at the generation "
          "bound)");
    }
  }
  *out_index = index;
  return Status::Ok();
}

void PricingSession::FinishIssue(size_t index, const PostedPrice& posted, Quote* quote) {
  TicketSlot& slot = slots_[index];
  // The slot index goes into the ticket's middle bits (O(1) feedback
  // routing); the bumped generation makes recycled slots reject duplicate
  // or stale tickets. No mask on the bump: AllocateSlot guarantees
  // generation < kGenMask, so the increment saturates at kGenMask instead of
  // ever wrapping to an already-issued value.
  slot.generation = slot.generation + 1;
  slot.issued_at = static_cast<uint64_t>(quotes_issued_);
  slot.price = posted.price;
  slot.ticket = ticket_base_ | (static_cast<uint64_t>(index) << kGenBits) |
                slot.generation;
  ++pending_count_;
  ++quotes_issued_;
  posted_value_ += posted.price;

  quote->ticket = slot.ticket;
  quote->price = posted.price;
  quote->exploratory = posted.exploratory;
  quote->certain_no_sale = posted.certain_no_sale;
}

Status PricingSession::PostPrices(std::span<const SessionRequest> requests,
                                  std::span<Quote> quotes, size_t* error_index) {
  if (requests.size() != quotes.size()) {
    if (error_index != nullptr) *error_index = 0;
    return Status::InvalidArgument(
        "request/quote span size mismatch: " + std::to_string(requests.size()) +
        " vs " + std::to_string(quotes.size()));
  }
  Status first_error;
  size_t first_error_index = requests.size();
  auto record = [&](size_t i, Status status) {
    if (!status.ok() && i < first_error_index) {
      first_error_index = i;
      first_error = std::move(status);
    }
  };

  if (!engine_->SupportsBatchedQuotes()) {
    // Scalar fallback: engines without the batch hook (interval, baselines,
    // third-party) price request by request — same results, no panel.
    for (size_t i = 0; i < requests.size(); ++i) {
      record(i, PostPrice(requests[i].features, requests[i].reserve, &quotes[i]));
    }
    if (error_index != nullptr) *error_index = first_error_index;
    return first_error;
  }

  const int want = engine_->input_dim();
  for (size_t start = 0; start < requests.size();
       start += static_cast<size_t>(kQuoteTile)) {
    const size_t end =
        std::min(requests.size(), start + static_cast<size_t>(kQuoteTile));
    // Pass 1: validate and allocate ticket slots in request order — the same
    // free-list pops the scalar path would perform, so the issued ticket ids
    // are identical — and pack the valid queries into the feature panel.
    panel_buf_.resize((end - start) * static_cast<size_t>(want));
    reserve_buf_.resize(end - start);
    tile_slots_.clear();
    tile_positions_.clear();
    size_t m = 0;
    for (size_t i = start; i < end; ++i) {
      Quote& quote = quotes[i];
      quote.ticket = 0;
      quote.status = StatusCode::kOk;
      if (static_cast<int>(requests[i].features.size()) != want) {
        quote.status = StatusCode::kInvalidArgument;
        record(i, Status::InvalidArgument(
                      "dimension mismatch for product '" + product_ + "': got " +
                      std::to_string(requests[i].features.size()) +
                      " features, engine expects " + std::to_string(want)));
        continue;
      }
      size_t index = 0;
      Status alloc = AllocateSlot(&index);
      if (!alloc.ok()) {
        quote.status = alloc.code();
        record(i, std::move(alloc));
        continue;
      }
      std::copy(requests[i].features.begin(), requests[i].features.end(),
                panel_buf_.begin() + m * static_cast<size_t>(want));
      reserve_buf_[m] = requests[i].reserve;
      tile_slots_.push_back(index);
      tile_positions_.push_back(i);
      ++m;
    }
    if (m == 0) continue;

    // Pass 2: one engine pass for the whole tile. The cut pointers are
    // collected only now — every allocation is done, so `slots_` can no
    // longer reallocate under them. The engine writes each detached cut
    // context straight into its ticket slot.
    posted_buf_.resize(m);
    cut_buf_.resize(m);
    for (size_t j = 0; j < m; ++j) cut_buf_[j] = &slots_[tile_slots_[j]].cut;
    engine_->PostPriceBatch(panel_buf_.data(), static_cast<int>(m),
                            reserve_buf_.data(), posted_buf_.data(),
                            cut_buf_.data());

    // Pass 3: issue tickets in request order (generation bumps, issue-order
    // stamps, and counters land exactly as the scalar path would).
    for (size_t j = 0; j < m; ++j) {
      FinishIssue(tile_slots_[j], posted_buf_[j], &quotes[tile_positions_[j]]);
    }
  }
  if (error_index != nullptr) *error_index = first_error_index;
  return first_error;
}

Status PricingSession::Observe(uint64_t ticket, bool accepted,
                               ObserveResult* result) {
  size_t index = static_cast<size_t>((ticket >> kGenBits) & kSlotMask);
  if (ticket == 0 || index >= slots_.size() || slots_[index].ticket != ticket) {
    return Status::NotFound("product '" + product_ +
                            "': unknown or already-resolved ticket " +
                            std::to_string(ticket));
  }
  TicketSlot& slot = slots_[index];
  if (slot.cut.kind == kAttachedKind) {
    engine_->Observe(accepted);
    has_attached_pending_ = false;
  } else {
    engine_->ObserveDetached(slot.cut, accepted);
  }
  if (accepted) accepted_value_ += slot.price;
  if (result != nullptr) {
    result->price = slot.price;
    result->accepted = accepted;
    result->slot_retired = false;
  }
  slot.ticket = 0;
  if (slot.generation < kGenMask) {
    free_slots_.push_back(index);
  } else {
    // Generation saturated: retire the slot forever rather than wrap its
    // generation into values old tickets may still carry (ABA; see the
    // ticket-layout contract in session.h and DESIGN.md §9).
    ++slots_retired_;
    if (result != nullptr) result->slot_retired = true;
  }
  --pending_count_;
  ++feedback_received_;
  return Status::Ok();
}

Status PricingSession::EstimateValue(std::span<const double> features,
                                     ValueInterval* out) const {
  if (out == nullptr) return Status::InvalidArgument("null interval output");
  int want = engine_->input_dim();
  if (static_cast<int>(features.size()) != want) {
    return Status::InvalidArgument(
        "dimension mismatch for product '" + product_ + "': got " +
        std::to_string(features.size()) + " features, engine expects " +
        std::to_string(want));
  }
  // EstimateValueInterval is a const observer; the bridge buffer is the only
  // mutable touch, so cast rather than making the whole session mutable.
  Vector* buf = const_cast<Vector*>(&features_buf_);
  buf->assign(features.begin(), features.end());
  *out = engine_->EstimateValueInterval(*buf);
  return Status::Ok();
}

Status PricingSession::Snapshot(SessionSnapshot* out) const {
  if (out == nullptr) return Status::InvalidArgument("null snapshot output");
  SessionSnapshot snap;
  if (!engine_->SaveSnapshot(&snap.engine)) {
    return Status::Unimplemented("product '" + product_ + "': engine '" +
                                 engine_->name() + "' has no snapshot support");
  }
  snap.product = product_;
  snap.quotes_issued = quotes_issued_;
  snap.feedback_received = feedback_received_;
  snap.pending.reserve(static_cast<size_t>(pending_count_));
  std::vector<uint64_t> issue_order;
  issue_order.reserve(static_cast<size_t>(pending_count_));
  std::vector<double> prices;
  prices.reserve(static_cast<size_t>(pending_count_));
  for (const TicketSlot& slot : slots_) {
    if (slot.ticket == 0) continue;
    if (slot.cut.kind == kAttachedKind) {
      return Status::FailedPrecondition(
          "product '" + product_ +
          "': outstanding attached round cannot be snapshotted");
    }
    snap.pending.push_back({slot.ticket, slot.cut});
    issue_order.push_back(slot.issued_at);
    prices.push_back(slot.price);
  }
  // Issue order, so restore replays the table deterministically.
  std::vector<size_t> order(snap.pending.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&issue_order](size_t a, size_t b) {
    return issue_order[a] < issue_order[b];
  });
  std::vector<PendingTicketState> sorted;
  sorted.reserve(snap.pending.size());
  for (size_t i : order) sorted.push_back(std::move(snap.pending[i]));
  snap.pending = std::move(sorted);
  // Value accounting rides along (tag-2 section), aligned with the sorted
  // pending table, so a faulted-in session keeps its regret-proxy totals.
  snap.has_value_totals = true;
  snap.posted_value = posted_value_;
  snap.accepted_value = accepted_value_;
  snap.pending_prices.reserve(order.size());
  for (size_t i : order) snap.pending_prices.push_back(prices[i]);
  // Full allocator state, so a restored session issues bit-identical future
  // tickets (the cold-tier eviction contract — see SessionSnapshot).
  snap.has_ticket_table = true;
  snap.slot_generations.reserve(slots_.size());
  for (const TicketSlot& slot : slots_) snap.slot_generations.push_back(slot.generation);
  snap.free_slots.reserve(free_slots_.size());
  for (size_t index : free_slots_) {
    snap.free_slots.push_back(static_cast<uint32_t>(index));
  }
  snap.slots_retired = slots_retired_;
  *out = std::move(snap);
  return Status::Ok();
}

Status PricingSession::Restore(const SessionSnapshot& snapshot) {
  // Validate everything before mutating anything, so a rejected snapshot
  // leaves the session exactly as it was.
  std::vector<uint64_t> seen_slots;
  seen_slots.reserve(snapshot.pending.size());
  for (const PendingTicketState& p : snapshot.pending) {
    if ((p.ticket >> (kSlotBits + kGenBits)) != (ticket_base_ >> (kSlotBits + kGenBits)) ||
        p.ticket == 0) {
      return Status::FailedPrecondition(
          "pending ticket " + std::to_string(p.ticket) +
          " does not belong to this session's ticket base; drain feedback "
          "before migrating across broker slots");
    }
    // A decoded blob may be structurally valid yet carry cut kinds no engine
    // issues (corruption, foreign writers). Reject them here: once restored
    // they would abort inside ObserveDetached instead of returning a Status.
    bool valid_kind = (p.cut.kind >= 1 && p.cut.kind <= 3) ||
                      (p.cut.kind == 0 && p.cut.wrapped_skip);
    if (!valid_kind) {
      return Status::FailedPrecondition(
          "pending ticket " + std::to_string(p.ticket) +
          " carries invalid cut kind " + std::to_string(p.cut.kind));
    }
    seen_slots.push_back((p.ticket >> kGenBits) & kSlotMask);
  }
  std::sort(seen_slots.begin(), seen_slots.end());
  if (std::adjacent_find(seen_slots.begin(), seen_slots.end()) != seen_slots.end()) {
    return Status::FailedPrecondition(
        "two pending tickets collide on one ticket slot");
  }
  if (snapshot.has_value_totals &&
      snapshot.pending_prices.size() != snapshot.pending.size()) {
    return Status::FailedPrecondition(
        "value-accounting section does not match the pending table");
  }
  if (snapshot.has_ticket_table) {
    // The table must cover every pending slot, and its free stack must name
    // distinct slots that no pending ticket occupies.
    size_t table_size = snapshot.slot_generations.size();
    if (table_size > kSlotMask + 1) {
      return Status::FailedPrecondition("ticket table exceeds the slot space");
    }
    if (!seen_slots.empty() && seen_slots.back() >= table_size) {
      return Status::FailedPrecondition(
          "pending ticket names a slot outside the snapshot's ticket table");
    }
    std::vector<uint64_t> occupied = seen_slots;
    for (uint32_t index : snapshot.free_slots) {
      if (index >= table_size) {
        return Status::FailedPrecondition(
            "free-stack entry outside the snapshot's ticket table");
      }
      occupied.push_back(index);
    }
    std::sort(occupied.begin(), occupied.end());
    if (std::adjacent_find(occupied.begin(), occupied.end()) != occupied.end()) {
      return Status::FailedPrecondition(
          "free-stack entry collides with a pending ticket or repeats");
    }
  }
  if (!engine_->LoadSnapshot(snapshot.engine)) {
    return Status::FailedPrecondition(
        "product '" + product_ + "': engine '" + engine_->name() +
        "' cannot load a '" + snapshot.engine.engine + "' (dim " +
        std::to_string(snapshot.engine.dim) + ") snapshot");
  }
  quotes_issued_ = snapshot.quotes_issued;
  feedback_received_ = snapshot.feedback_received;
  slots_.clear();
  free_slots_.clear();
  has_attached_pending_ = false;
  pending_count_ = 0;
  slots_retired_ = 0;
  // Value totals resume where the snapshot left them; pre-metrics blobs
  // restart the accounting at zero (prices and tickets are unaffected).
  posted_value_ = snapshot.has_value_totals ? snapshot.posted_value : 0.0;
  accepted_value_ = snapshot.has_value_totals ? snapshot.accepted_value : 0.0;
  // Pending tickets return to the slots their ids encode; issue-order
  // stamps restart at 0..n-1, which stay below every future stamp
  // (quotes_issued_ ≥ n).
  for (size_t i = 0; i < snapshot.pending.size(); ++i) {
    const PendingTicketState& p = snapshot.pending[i];
    size_t index = static_cast<size_t>((p.ticket >> kGenBits) & kSlotMask);
    if (slots_.size() <= index) slots_.resize(index + 1);
    TicketSlot& slot = slots_[index];
    slot.ticket = p.ticket;
    slot.generation = static_cast<uint32_t>(p.ticket & kGenMask);
    slot.issued_at = i;
    slot.price = snapshot.has_value_totals ? snapshot.pending_prices[i] : 0.0;
    slot.cut = p.cut;
    ++pending_count_;
  }
  if (snapshot.has_ticket_table) {
    // Exact allocator state: free-slot generations, recycle-stack order, and
    // the retired count all come back verbatim, so future ticket ids are
    // bit-identical to the uninterrupted session. Slots holding a pending
    // ticket already took their generation from the ticket itself (the id is
    // authoritative — fast-forwarded snapshots rewrite only the ticket).
    slots_.resize(snapshot.slot_generations.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].ticket == 0) slots_[i].generation = snapshot.slot_generations[i];
    }
    free_slots_.assign(snapshot.free_slots.begin(), snapshot.free_slots.end());
    slots_retired_ = snapshot.slots_retired;
    return Status::Ok();
  }
  // Legacy snapshot without the table: rebuild a minimal one. Prices resume
  // bit-identically; future ticket ids may differ from the original session.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].ticket == 0) free_slots_.push_back(i);
  }
  return Status::Ok();
}

}  // namespace pdm::broker
