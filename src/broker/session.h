#ifndef PDM_BROKER_SESSION_H_
#define PDM_BROKER_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "broker/snapshot.h"
#include "common/concurrency.h"
#include "common/status.h"
#include "pricing/engine_state.h"
#include "pricing/pricing_engine.h"

/// \file
/// One data product's pricing session: a `PricingEngine` behind a ticketed
/// request/feedback surface (DESIGN.md §9).
///
/// Where the simulation layer's `RunMarket` enforces the Fig. 2 strict
/// PostPrice/Observe alternation (and `PDM_CHECK`-aborts on misuse), a
/// session is a *serving* object: `PostPrice` returns a `Quote` carrying a
/// ticket id, the posting-time cut context is detached from the engine and
/// buffered per ticket, and `Observe(ticket, accepted)` may arrive later, in
/// any order, interleaved with further quotes. Client-facing misuse
/// (dimension mismatch, unknown or already-resolved ticket) returns a
/// `pdm::Status` instead of aborting the process.
///
/// Feedback semantics under delay: cut contexts are applied to the knowledge
/// set in the order feedback *arrives*, each with its posting-time support.
/// When feedback is immediate (every quote answered before the next request)
/// this is bit-identical to the classic alternating protocol — pinned
/// against `RunMarket` in tests/broker_test.cc.
///
/// A session is not internally synchronized; `Broker` guards each session
/// with its own cache-line-padded lock (DESIGN.md §9). Steady-state
/// PostPrice/Observe round trips perform zero
/// heap allocations (ticket slots, their direction buffers, and the feature
/// bridge buffer are all recycled — tests/allocation_test.cc).

namespace pdm::broker {

/// One request of the session-level batched entry point (the broker gathers
/// each session's share of a mixed batch into a span of these).
struct SessionRequest {
  /// Raw feature vector x_t; length must match the engine's input dimension.
  std::span<const double> features;
  /// Reserve price q_t.
  double reserve = 0.0;
};

/// The serving-side answer to one price request.
struct Quote {
  /// Feedback ticket; 0 when the request failed (see `status`).
  uint64_t ticket = 0;
  /// The price shown to the consumer (value space).
  double price = 0.0;
  /// True if the exploratory (bisection) price was chosen.
  bool exploratory = false;
  /// True when the engine proved no price ≥ the reserve can sell; the offer
  /// should be withheld (accounting still treats the quote as posted).
  bool certain_no_sale = false;
  /// Per-request outcome for the batched entry point (kOk on success).
  StatusCode status = StatusCode::kOk;
};

/// Per-feedback outcome detail for the metrics layer (DESIGN.md §13): the
/// value-space price the resolved quote had posted, whether the consumer
/// accepted, and whether the ticket slot retired at the generation bound.
/// The broker aggregates these per batch so shared metric cells see one RMW
/// per counter per batch, not one per item.
struct ObserveResult {
  double price = 0.0;
  bool accepted = false;
  bool slot_retired = false;
};

class PricingSession {
 public:
  /// Default base for standalone sessions (a broker passes a per-slot base).
  static constexpr uint64_t kDefaultTicketBase = uint64_t{1} << 40;

  /// Ticket id layout: [63..40] session base, [39..20] slot index inside the
  /// session's ticket table, [19..0] per-slot generation. Feedback routing is
  /// therefore O(1) end to end — broker → session from the high bits, session
  /// → slot from the middle bits — with the generation guarding against
  /// duplicate or stale tickets after a slot is recycled.
  ///
  /// The generation never wraps: a slot whose generation reaches `kGenMask`
  /// is *retired* on resolution instead of returning to the free list
  /// (wrapping would let a ticket issued 2^20 recycles ago alias a freshly
  /// issued one — ABA). One slot therefore serves at most 2^20 - 1 tickets,
  /// and a session at most ~2^40 over its lifetime, after which PostPrice
  /// saturates with FailedPrecondition (bounds: DESIGN.md §9).
  static constexpr int kSlotBits = 20;
  static constexpr int kGenBits = 20;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  static constexpr uint64_t kGenMask = (uint64_t{1} << kGenBits) - 1;

  /// Takes ownership of the engine. `ticket_base` is OR-ed into every issued
  /// ticket id; the broker uses the high bits to route feedback to the
  /// owning session without a global ticket table.
  PricingSession(std::string product, std::unique_ptr<PricingEngine> engine,
                 uint64_t ticket_base = kDefaultTicketBase);

  PricingSession(const PricingSession&) = delete;
  PricingSession& operator=(const PricingSession&) = delete;

  const std::string& product() const { return product_; }
  const PricingEngine& engine() const { return *engine_; }
  uint64_t ticket_base() const { return ticket_base_; }

  /// Prices one request. On success fills `*quote` (with a fresh ticket) and
  /// detaches the engine's pending cut context into the ticket table.
  /// Errors: InvalidArgument (dimension mismatch, null quote),
  /// FailedPrecondition (engine without detached-feedback support already
  /// has an outstanding ticket; ticket-slot space exhausted at 2^20
  /// outstanding quotes).
  Status PostPrice(std::span<const double> features, double reserve, Quote* quote);

  /// Panel tile of the batched quoting path: PostPrices hands the engine at
  /// most this many queries per PostPriceBatch call, so the packing scratch
  /// is compile-time bounded (kQuoteTile × dim doubles) no matter how large
  /// a batch a client sends.
  static constexpr int kQuoteTile = 32;

  /// Prices `requests[i]` into `quotes[i]` in batch order. When the engine
  /// supports batched quotes (PricingEngine::SupportsBatchedQuotes), each
  /// kQuoteTile-sized run is packed into a feature panel and priced with one
  /// engine pass — bit-identical to sequential PostPrice calls, including
  /// the issued ticket ids (slots are allocated in request order, exactly as
  /// the scalar path would). Engines without batch support fall back to the
  /// scalar loop. Individual request failures do not abort the batch: each
  /// failed quote carries its status (and ticket 0), the returned Status is
  /// the failure at the lowest batch position, and `*error_index` (when
  /// non-null) receives that position (`requests.size()` when everything
  /// succeeded). Errors: InvalidArgument when the spans' sizes differ.
  Status PostPrices(std::span<const SessionRequest> requests, std::span<Quote> quotes,
                    size_t* error_index = nullptr);

  /// Applies accept/reject feedback for `ticket` and retires it — O(1), the
  /// ticket encodes its slot. `result`, when non-null, receives the resolved
  /// quote's posted price and outcome (the metrics layer's per-batch
  /// aggregation input); it is only written on success. Errors: NotFound
  /// (unknown, foreign, or already-resolved ticket — duplicate feedback
  /// lands here, the ticket was retired by its first resolution and the slot
  /// generation rejects it).
  Status Observe(uint64_t ticket, bool accepted, ObserveResult* result = nullptr);

  /// Current knowledge-set bounds for a query (diagnostic surface).
  Status EstimateValue(std::span<const double> features, ValueInterval* out) const;

  /// Quotes issued and still awaiting feedback.
  int64_t pending_count() const { return pending_count_; }
  int64_t quotes_issued() const { return quotes_issued_; }
  int64_t feedback_received() const { return feedback_received_; }
  /// Ticket slots permanently retired at the generation bound (never
  /// recycled again — the wrap-refusal path; monitoring/test surface).
  int64_t retired_ticket_slots() const { return slots_retired_; }
  /// Cumulative value-space accounting behind the regret proxy (DESIGN.md
  /// §13): the sum of every posted price, and the sum over accepted quotes.
  /// The difference is revenue quoted but not (yet) captured — pending
  /// tickets count as posted until their feedback arrives.
  double posted_value() const { return posted_value_; }
  double accepted_value() const { return accepted_value_; }

  /// Captures the full resumable session state. Errors: Unimplemented (the
  /// engine has no snapshot support), FailedPrecondition (an engine without
  /// detached-feedback support holds an attached pending round).
  Status Snapshot(SessionSnapshot* out) const;

  /// Restores state captured by Snapshot on a session with a compatible
  /// engine (same family and dimension — typically built from the same
  /// `ScenarioSpec`). Outstanding tickets are restored verbatim; their ids
  /// embed the snapshotting session's ticket base, so restore into a broker
  /// slot with the same base (or drain feedback before snapshotting). When
  /// the snapshot carries the ticket-table section (every Snapshot() output
  /// does), the slot allocator is reproduced exactly and future ticket ids
  /// are bit-identical to the uninterrupted session — the cold-tier
  /// eviction contract (DESIGN.md §12).
  /// Errors: FailedPrecondition (engine/snapshot mismatch, foreign ticket
  /// base on a pending ticket).
  Status Restore(const SessionSnapshot& snapshot);

 private:
  /// One buffered quote awaiting feedback. Slots are recycled through
  /// `free_slots_`, so their cut contexts' direction buffers reach a steady
  /// capacity and stop allocating. Cache-line-padded: two sessions' ticket
  /// tables are touched by different threads under different locks, and
  /// padding keeps their entries (and the allocator blocks around them)
  /// from ever sharing a line (DESIGN.md §9).
  struct alignas(kCacheLineSize) TicketSlot {
    uint64_t ticket = 0;  ///< 0 = free
    /// Bumped on every issue from this slot (the ticket's low bits).
    uint32_t generation = 0;
    /// Issue-order stamp (the value of quotes_issued_ at issue time);
    /// orders the pending table in snapshots.
    uint64_t issued_at = 0;
    /// Value-space posted price (the regret-proxy input; `cut.price` is NOT
    /// usable for this — wrapped engines store it in link space).
    double price = 0.0;
    PendingCut cut;
  };

  /// Sentinel `PendingCut::kind` for engines without DetachPending support:
  /// the pending round stayed attached inside the engine, and Observe must
  /// use the classic call (at most one such ticket can be outstanding).
  static constexpr int kAttachedKind = -1;

  /// Pops (or grows) a free ticket slot, retiring generation-saturated
  /// candidates along the way. Fails with FailedPrecondition when the slot
  /// space is exhausted. Runs *before* the engine is consulted, so a failed
  /// allocation never leaves a dangling pending round inside the engine.
  Status AllocateSlot(size_t* out_index);

  /// Shared tail of the scalar and batched quote paths: bumps the slot
  /// generation, stamps issue order, composes the ticket id, updates the
  /// session counters, and fills `*quote` from `posted`. The slot's cut
  /// context must already be populated.
  void FinishIssue(size_t index, const PostedPrice& posted, Quote* quote);

  std::string product_;
  std::unique_ptr<PricingEngine> engine_;
  uint64_t ticket_base_;
  /// True while an engine without DetachPending support holds its round
  /// attached — at most one ticket may then be outstanding.
  bool has_attached_pending_ = false;
  int64_t pending_count_ = 0;
  int64_t quotes_issued_ = 0;
  int64_t feedback_received_ = 0;
  int64_t slots_retired_ = 0;
  double posted_value_ = 0.0;
  double accepted_value_ = 0.0;
  /// Bridge buffer: span request → the Vector the engine API takes.
  Vector features_buf_;
  std::vector<TicketSlot> slots_;
  std::vector<size_t> free_slots_;

  // PostPrices tile workspaces, bounded by kQuoteTile and reused across
  // batches so the batched path is allocation-free in steady state: the
  // packed feature panel and reserves handed to the engine, the per-tile
  // posted-price and cut-pointer tables, and the slot/batch-position maps
  // that tie engine outputs back to tickets and caller quotes.
  Vector panel_buf_;
  Vector reserve_buf_;
  std::vector<PostedPrice> posted_buf_;
  std::vector<PendingCut*> cut_buf_;
  std::vector<size_t> tile_slots_;
  std::vector<size_t> tile_positions_;
};

}  // namespace pdm::broker

#endif  // PDM_BROKER_SESSION_H_
