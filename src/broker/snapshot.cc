#include "broker/snapshot.h"

#include <cstring>

#include "common/crc32.h"

namespace pdm::broker {
namespace {

/// 8-byte magic + format version. The magic doubles as an endianness/format
/// sentinel: the layout below is little-endian (the only platforms this repo
/// targets), and a corrupted or foreign blob fails fast on the first bytes.
constexpr char kMagic[8] = {'P', 'D', 'M', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kVersion = 1;

/// pdm.snap.v2 (DESIGN.md §14): a checksummed envelope around the complete
/// v1 byte stream — magic, u32 version, u32 body size, body, u32 CRC-32 of
/// the body. The envelope is what spill files on disk need (a torn or
/// bit-flipped spill must fail loudly as DataLoss), while the v1 body layout
/// and its decoder stay byte-for-byte unchanged.
constexpr char kMagicV2[8] = {'P', 'D', 'M', 'S', 'N', 'A', 'P', '2'};
constexpr uint32_t kVersionV2 = 2;
constexpr size_t kEnvelopeHeaderBytes = sizeof kMagicV2 + 2 * sizeof(uint32_t);
constexpr size_t kEnvelopeTrailerBytes = sizeof(uint32_t);

/// Validates a v2 envelope and exposes the inner v1 body. Envelope damage
/// (truncation, padding, checksum mismatch) is DataLoss — the bytes were
/// provably not what the encoder wrote — while a foreign version number is
/// InvalidArgument like any other unsupported document.
Status UnwrapV2Envelope(std::string_view bytes, std::string_view* body) {
  if (bytes.size() < kEnvelopeHeaderBytes + kEnvelopeTrailerBytes) {
    return Status::DataLoss("truncated pdm.snap.v2 envelope");
  }
  uint32_t version;
  std::memcpy(&version, bytes.data() + sizeof kMagicV2, sizeof version);
  if (version != kVersionV2) {
    return Status::InvalidArgument("unsupported pdm.snap version " +
                                   std::to_string(version));
  }
  uint32_t body_size;
  std::memcpy(&body_size, bytes.data() + sizeof kMagicV2 + sizeof version,
              sizeof body_size);
  if (bytes.size() !=
      kEnvelopeHeaderBytes + static_cast<size_t>(body_size) +
          kEnvelopeTrailerBytes) {
    return Status::DataLoss(
        "pdm.snap.v2 envelope size mismatch (truncated or padded spill)");
  }
  *body = bytes.substr(kEnvelopeHeaderBytes, body_size);
  uint32_t expected;
  std::memcpy(&expected, bytes.data() + kEnvelopeHeaderBytes + body_size,
              sizeof expected);
  if (Crc32(*body) != expected) {
    return Status::DataLoss("pdm.snap.v2 checksum mismatch");
  }
  return Status::Ok();
}

// ------------------------------------------------------------------- writer

void PutBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void PutU8(std::string* out, uint8_t v) { PutBytes(out, &v, sizeof v); }
void PutU32(std::string* out, uint32_t v) { PutBytes(out, &v, sizeof v); }
void PutU64(std::string* out, uint64_t v) { PutBytes(out, &v, sizeof v); }
void PutI32(std::string* out, int32_t v) { PutBytes(out, &v, sizeof v); }
void PutI64(std::string* out, int64_t v) { PutBytes(out, &v, sizeof v); }

/// Doubles travel as raw IEEE-754 bit patterns: exact round trip, NaN-safe.
void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  PutBytes(out, s.data(), s.size());
}

void PutVector(std::string* out, const Vector& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (double d : v) PutF64(out, d);
}

void PutCounters(std::string* out, const EngineCounters& c) {
  PutI64(out, c.rounds);
  PutI64(out, c.exploratory_rounds);
  PutI64(out, c.conservative_rounds);
  PutI64(out, c.skipped_rounds);
  PutI64(out, c.cuts_applied);
  PutI64(out, c.cuts_discarded);
}

// ------------------------------------------------------------------- reader

/// Bounds-checked cursor over the encoded bytes. Every Get reports failure
/// instead of reading past the end, so a truncated blob decodes to a clean
/// InvalidArgument rather than UB.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool GetBytes(void* out, size_t size) {
    if (bytes_.size() - pos_ < size) return false;
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool GetU8(uint8_t* v) { return GetBytes(v, sizeof *v); }
  bool GetU32(uint32_t* v) { return GetBytes(v, sizeof *v); }
  bool GetU64(uint64_t* v) { return GetBytes(v, sizeof *v); }
  bool GetI32(int32_t* v) { return GetBytes(v, sizeof *v); }
  bool GetI64(int64_t* v) { return GetBytes(v, sizeof *v); }

  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t size;
    if (!GetU32(&size)) return false;
    if (bytes_.size() - pos_ < size) return false;
    s->assign(bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool GetVector(Vector* v) {
    uint32_t size;
    if (!GetU32(&size)) return false;
    // Length sanity before resizing: the payload must actually be present.
    if ((bytes_.size() - pos_) / sizeof(double) < size) return false;
    v->resize(size);
    for (double& d : *v) {
      if (!GetF64(&d)) return false;
    }
    return true;
  }

  bool GetU32Array(std::vector<uint32_t>* v) {
    uint32_t size;
    if (!GetU32(&size)) return false;
    if ((bytes_.size() - pos_) / sizeof(uint32_t) < size) return false;
    v->resize(size);
    for (uint32_t& x : *v) {
      if (!GetU32(&x)) return false;
    }
    return true;
  }

  bool GetCounters(EngineCounters* c) {
    return GetI64(&c->rounds) && GetI64(&c->exploratory_rounds) &&
           GetI64(&c->conservative_rounds) && GetI64(&c->skipped_rounds) &&
           GetI64(&c->cuts_applied) && GetI64(&c->cuts_discarded);
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeSessionSnapshot(const SessionSnapshot& snapshot) {
  std::string out;
  PutBytes(&out, kMagic, sizeof kMagic);
  PutU32(&out, kVersion);
  PutString(&out, snapshot.product);
  // Engine state.
  const EngineSnapshot& e = snapshot.engine;
  PutString(&out, e.engine);
  PutI32(&out, e.dim);
  PutF64(&out, e.epsilon);
  PutF64(&out, e.delta);
  PutVector(&out, e.center);
  PutI32(&out, e.shape.rows());
  PutI32(&out, e.shape.cols());
  for (int r = 0; r < e.shape.rows(); ++r) {
    for (int c = 0; c < e.shape.cols(); ++c) PutF64(&out, e.shape(r, c));
  }
  PutI32(&out, e.cuts_since_symmetrize);
  PutF64(&out, e.lo);
  PutF64(&out, e.hi);
  PutCounters(&out, e.counters);
  // Session state.
  PutI64(&out, snapshot.quotes_issued);
  PutI64(&out, snapshot.feedback_received);
  PutU32(&out, static_cast<uint32_t>(snapshot.pending.size()));
  for (const PendingTicketState& p : snapshot.pending) {
    PutU64(&out, p.ticket);
    PutI32(&out, p.cut.kind);
    PutF64(&out, p.cut.price);
    PutF64(&out, p.cut.x);
    PutU8(&out, p.cut.wrapped_skip ? 1 : 0);
    PutF64(&out, p.cut.support.lower);
    PutF64(&out, p.cut.support.upper);
    PutF64(&out, p.cut.support.half_width);
    PutF64(&out, p.cut.support.midpoint);
    PutVector(&out, p.cut.support.direction);
  }
  // Optional trailing section (still pdm.snap.v1: old decoders never existed
  // without it in the wild, and this decoder treats end-of-bytes as "absent").
  if (snapshot.has_ticket_table) {
    PutU8(&out, 1);  // section tag: ticket-slot allocator state
    PutU32(&out, static_cast<uint32_t>(snapshot.slot_generations.size()));
    for (uint32_t gen : snapshot.slot_generations) PutU32(&out, gen);
    PutU32(&out, static_cast<uint32_t>(snapshot.free_slots.size()));
    for (uint32_t index : snapshot.free_slots) PutU32(&out, index);
    PutI64(&out, snapshot.slots_retired);
  }
  if (snapshot.has_value_totals) {
    PutU8(&out, 2);  // section tag: value accounting (regret proxy)
    PutF64(&out, snapshot.posted_value);
    PutF64(&out, snapshot.accepted_value);
    PutU32(&out, static_cast<uint32_t>(snapshot.pending_prices.size()));
    for (double price : snapshot.pending_prices) PutF64(&out, price);
  }
  return out;
}

std::string EncodeSessionSnapshotV2(const SessionSnapshot& snapshot) {
  std::string body = EncodeSessionSnapshot(snapshot);
  std::string out;
  out.reserve(kEnvelopeHeaderBytes + body.size() + kEnvelopeTrailerBytes);
  PutBytes(&out, kMagicV2, sizeof kMagicV2);
  PutU32(&out, kVersionV2);
  PutU32(&out, static_cast<uint32_t>(body.size()));
  out += body;
  PutU32(&out, Crc32(body));
  return out;
}

Status DecodeSessionSnapshot(std::string_view bytes, SessionSnapshot* out) {
  if (out == nullptr) return Status::InvalidArgument("null snapshot output");
  if (bytes.size() >= sizeof kMagicV2 &&
      std::memcmp(bytes.data(), kMagicV2, sizeof kMagicV2) == 0) {
    std::string_view body;
    Status unwrapped = UnwrapV2Envelope(bytes, &body);
    if (!unwrapped.ok()) return unwrapped;
    // The checksummed body is a complete v1 document; recursion terminates
    // because each envelope level strips at least its header and trailer.
    return DecodeSessionSnapshot(body, out);
  }
  Reader reader(bytes);
  char magic[8];
  if (!reader.GetBytes(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return Status::InvalidArgument("not a pdm.snap document (bad magic)");
  }
  uint32_t version;
  if (!reader.GetU32(&version)) return Status::InvalidArgument("truncated header");
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported pdm.snap version " +
                                   std::to_string(version));
  }

  SessionSnapshot snap;
  EngineSnapshot& e = snap.engine;
  int32_t dim, rows, cols, cuts;
  if (!reader.GetString(&snap.product) || !reader.GetString(&e.engine) ||
      !reader.GetI32(&dim) || !reader.GetF64(&e.epsilon) || !reader.GetF64(&e.delta) ||
      !reader.GetVector(&e.center) || !reader.GetI32(&rows) || !reader.GetI32(&cols)) {
    return Status::InvalidArgument("truncated engine state");
  }
  if (dim < 0 || rows < 0 || cols < 0 ||
      static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols) >
          bytes.size() / sizeof(double)) {
    return Status::InvalidArgument("implausible engine geometry");
  }
  e.dim = dim;
  e.shape = Matrix(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double v;
      if (!reader.GetF64(&v)) return Status::InvalidArgument("truncated shape matrix");
      e.shape(r, c) = v;
    }
  }
  if (!reader.GetI32(&cuts) || !reader.GetF64(&e.lo) || !reader.GetF64(&e.hi) ||
      !reader.GetCounters(&e.counters)) {
    return Status::InvalidArgument("truncated engine state");
  }
  e.cuts_since_symmetrize = cuts;

  uint32_t pending_count;
  if (!reader.GetI64(&snap.quotes_issued) || !reader.GetI64(&snap.feedback_received) ||
      !reader.GetU32(&pending_count)) {
    return Status::InvalidArgument("truncated session state");
  }
  // Each pending entry is ≥ 53 bytes; reject counts the payload can't hold.
  if (pending_count > bytes.size() / 53) {
    return Status::InvalidArgument("implausible pending-ticket count");
  }
  snap.pending.resize(pending_count);
  for (PendingTicketState& p : snap.pending) {
    uint8_t wrapped_skip;
    if (!reader.GetU64(&p.ticket) || !reader.GetI32(&p.cut.kind) ||
        !reader.GetF64(&p.cut.price) || !reader.GetF64(&p.cut.x) ||
        !reader.GetU8(&wrapped_skip) || !reader.GetF64(&p.cut.support.lower) ||
        !reader.GetF64(&p.cut.support.upper) ||
        !reader.GetF64(&p.cut.support.half_width) ||
        !reader.GetF64(&p.cut.support.midpoint) ||
        !reader.GetVector(&p.cut.support.direction)) {
      return Status::InvalidArgument("truncated pending ticket");
    }
    p.cut.wrapped_skip = wrapped_skip != 0;
  }
  // Optional tagged trailing sections, strictly increasing by tag:
  // end-of-bytes means a legacy blob without them (Restore then rebuilds a
  // minimal slot table and resumes value totals at zero).
  uint8_t last_tag = 0;
  while (!reader.AtEnd()) {
    uint8_t tag;
    if (!reader.GetU8(&tag) || tag <= last_tag || tag > 2) {
      return Status::InvalidArgument("unknown trailing section in snapshot");
    }
    last_tag = tag;
    if (tag == 1) {
      if (!reader.GetU32Array(&snap.slot_generations) ||
          !reader.GetU32Array(&snap.free_slots) ||
          !reader.GetI64(&snap.slots_retired)) {
        return Status::InvalidArgument("truncated ticket-table section");
      }
      snap.has_ticket_table = true;
    } else {  // tag == 2: value accounting
      uint32_t price_count;
      if (!reader.GetF64(&snap.posted_value) ||
          !reader.GetF64(&snap.accepted_value) ||
          !reader.GetU32(&price_count)) {
        return Status::InvalidArgument("truncated value-accounting section");
      }
      if (price_count != pending_count) {
        return Status::InvalidArgument(
            "value-accounting section does not match the pending table");
      }
      snap.pending_prices.resize(price_count);
      for (double& price : snap.pending_prices) {
        if (!reader.GetF64(&price)) {
          return Status::InvalidArgument("truncated value-accounting section");
        }
      }
      snap.has_value_totals = true;
    }
  }
  *out = std::move(snap);
  return Status::Ok();
}

}  // namespace pdm::broker
