#ifndef PDM_BROKER_SNAPSHOT_H_
#define PDM_BROKER_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "pricing/engine_state.h"

/// \file
/// Serialized session state for checkpoint and migration (DESIGN.md §9).
///
/// A `SessionSnapshot` is everything a `PricingSession` needs to resume
/// exactly where it left off: the engine's knowledge set and counters
/// (`EngineSnapshot`), the session-level counters, and every quote still
/// awaiting feedback (ticket id plus its posting-time cut context).
/// `EncodeSessionSnapshot`/`DecodeSessionSnapshot`
/// give it a stable byte representation — format `pdm.snap.v1`, a
/// little-endian binary layout with length-prefixed strings and doubles
/// stored as raw IEEE-754 bit patterns, so a decode → encode round trip is
/// byte-identical and a restored engine is *bit*-identical (no decimal
/// round-tripping anywhere).

namespace pdm::broker {

/// One quote awaiting feedback at snapshot time.
struct PendingTicketState {
  uint64_t ticket = 0;
  PendingCut cut;
};

/// Full resumable state of one pricing session.
struct SessionSnapshot {
  /// Product the session was serving when snapshotted (informational: a
  /// snapshot may be restored under a different product name).
  std::string product;
  EngineSnapshot engine;
  int64_t quotes_issued = 0;
  int64_t feedback_received = 0;
  /// Outstanding tickets in issue order. Their ids embed the session's
  /// ticket base and slot index, so restoring into a broker slot with a
  /// different base requires draining feedback first (see
  /// PricingSession::Restore).
  std::vector<PendingTicketState> pending;
  /// Optional ticket-slot allocator state. When present (every snapshot a
  /// `PricingSession` produces carries it), Restore reproduces the slot
  /// table exactly — free-slot generations, recycle-stack order, retired
  /// count — so a restored session issues *bit-identical* future tickets to
  /// the uninterrupted original (the cold-tier eviction contract,
  /// DESIGN.md §12). Absent in legacy `pdm.snap.v1` blobs without the
  /// trailing section; Restore then rebuilds a minimal table (prices stay
  /// bit-identical, ticket ids may differ). For slots holding a pending
  /// ticket the ticket's own generation bits stay authoritative —
  /// `slot_generations` matters for the free and retired slots the pending
  /// list cannot describe.
  bool has_ticket_table = false;
  /// Per-slot generation, index-aligned with the session's slot table.
  std::vector<uint32_t> slot_generations;
  /// The recycle stack (indices into the slot table), bottom first.
  std::vector<uint32_t> free_slots;
  /// Slots permanently retired at the generation bound.
  int64_t slots_retired = 0;
  /// Optional value-accounting section (the regret-proxy inputs, DESIGN.md
  /// §13): cumulative value-space posted/accepted totals plus each pending
  /// ticket's posted price, index-aligned with `pending`. Absent in blobs
  /// written before the metrics layer existed; Restore then resumes the
  /// totals at zero (prices and tickets are unaffected).
  bool has_value_totals = false;
  double posted_value = 0.0;
  double accepted_value = 0.0;
  std::vector<double> pending_prices;
};

/// Serializes to the versioned `pdm.snap.v1` byte format.
std::string EncodeSessionSnapshot(const SessionSnapshot& snapshot);

/// Serializes to `pdm.snap.v2`: the v1 bytes wrapped in a checksummed
/// envelope (magic, u32 version, u32 body size, body, u32 CRC-32 trailer).
/// This is the on-disk spill format (DESIGN.md §14) — a torn write or bit
/// flip fails decode with DataLoss instead of restoring a silently wrong
/// knowledge set.
std::string EncodeSessionSnapshotV2(const SessionSnapshot& snapshot);

/// Parses bytes produced by either encoder (any supported version).
/// Returns InvalidArgument on a malformed or truncated v1 document, and
/// DataLoss when a v2 envelope is truncated, padded, or fails its checksum.
Status DecodeSessionSnapshot(std::string_view bytes, SessionSnapshot* out);

}  // namespace pdm::broker

#endif  // PDM_BROKER_SNAPSHOT_H_
