#ifndef PDM_COMMON_ARCH_H_
#define PDM_COMMON_ARCH_H_

/// \file
/// Architecture dispatch for the per-round hot kernels.
///
/// The library ships portable x86-64 baseline binaries, but the O(n²)
/// mat-vec/rank-1 kernels gain ~1.5–2× from AVX2+FMA. PDM_TARGET_CLONES
/// compiles the annotated function twice (x86-64-v3 and baseline) and picks
/// the best variant at load time via GNU ifunc, so one binary serves every
/// machine at full speed. Within one process the chosen clone is fixed, so
/// results remain bit-deterministic for a given machine and build — the
/// property the runner/determinism tests rely on.
///
/// The dispatch is disabled under sanitizers (ifunc resolvers run before the
/// ASan runtime is initialized) and on toolchains without target_clones
/// (non-GCC, non-glibc, non-x86); the annotated functions then compile once
/// for the default target.

#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_ADDRESS__) &&              \
    !defined(__SANITIZE_THREAD__)
#define PDM_TARGET_CLONES __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define PDM_TARGET_CLONES
#endif

#endif  // PDM_COMMON_ARCH_H_
