#include "common/arena.h"

namespace pdm {

void SlabArena::NewChunk(size_t min_size, size_t align) {
  // A chunk must fit the worst-case aligned request; oversized allocations
  // get a dedicated chunk rather than forcing every chunk to be huge.
  size_t payload = chunk_bytes_;
  size_t worst = min_size + align;
  if (worst > payload) payload = worst;
  void* raw = ::operator new(payload, std::align_val_t(kCacheLineSize));
  chunks_.emplace_back(raw);
  cursor_ = reinterpret_cast<uintptr_t>(raw);
  limit_ = cursor_ + payload;
  bytes_reserved_ += payload;
}

}  // namespace pdm
