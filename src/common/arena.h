#ifndef PDM_COMMON_ARENA_H_
#define PDM_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/concurrency.h"

/// \file
/// Slab arena for session-scale state (DESIGN.md §12).
///
/// At a million products the broker's per-session bookkeeping becomes the
/// allocator's problem: one malloc per slot and one per session object means
/// millions of small allocations with interleaved lifetimes — heap metadata
/// overhead per object, fragmentation as sessions close, and no locality
/// between a slot and its neighbours in the slab index. The arena replaces
/// that with two building blocks:
///
///  - `SlabArena`: a chunked bump allocator. Allocation is a pointer bump
///    within the current chunk (O(1), no per-object metadata); chunks are
///    cache-line-aligned and never freed until the arena dies, which is
///    exactly the lifetime of the broker's grow-only slot slab.
///  - `ArenaPool<T>`: a fixed-size object pool on top of an arena with an
///    intrusive free list. `Destroy` pushes the object's storage onto the
///    list; the next `Create` pops it — so open/close/open session churn
///    recycles storage instead of growing the arena, and a *steady-state*
///    open performs no heap allocation at all.
///
/// Neither type is thread-safe; the broker serializes structural mutations
/// (open/close/evict/fault-in) behind its own locks.

namespace pdm {

class SlabArena {
 public:
  /// Default chunk payload: 64 KiB holds ~340 cache-line-aligned session
  /// slots per chunk, large enough to amortize the chunk malloc to noise.
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit SlabArena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {
    PDM_CHECK(chunk_bytes_ > 0);
  }

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Returns `size` bytes aligned to `align` (≥ the cache line by default:
  /// arena objects are concurrency-adjacent broker state, and false sharing
  /// between neighbouring slots would defeat the point). The memory lives
  /// until the arena is destroyed — there is no per-object free; pair with
  /// ArenaPool for recyclable objects.
  void* Allocate(size_t size, size_t align = kCacheLineSize) {
    PDM_CHECK(size > 0);
    PDM_CHECK(align > 0 && (align & (align - 1)) == 0);
    uintptr_t p = (cursor_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    if (p + size > limit_) {
      NewChunk(size, align);
      p = (cursor_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
      PDM_CHECK(p + size <= limit_);
    }
    cursor_ = p + size;
    bytes_used_ = bytes_used_ + size;
    return reinterpret_cast<void*>(p);
  }

  /// Total bytes handed out by Allocate (excludes alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Total bytes reserved from the system across all chunks.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct FreeDeleter {
    void operator()(void* p) const { ::operator delete(p, std::align_val_t(kCacheLineSize)); }
  };

  void NewChunk(size_t min_size, size_t align);

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<void, FreeDeleter>> chunks_;
  uintptr_t cursor_ = 0;  ///< next free byte in the current chunk
  uintptr_t limit_ = 0;   ///< one past the current chunk's payload
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

/// Object pool over a SlabArena: Create/Destroy with storage recycling.
/// Destroyed objects' storage is reused for the next Create (intrusive free
/// list through the dead object's first pointer-width bytes), so sustained
/// churn reaches a high-water mark and stops consuming arena space.
template <typename T>
class ArenaPool {
 public:
  explicit ArenaPool(SlabArena* arena) : arena_(arena) { PDM_CHECK(arena_ != nullptr); }

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  template <typename... Args>
  T* Create(Args&&... args) {
    void* storage;
    if (free_list_ != nullptr) {
      storage = free_list_;
      free_list_ = free_list_->next;
      ++recycled_;
    } else {
      storage = arena_->Allocate(kBlockSize, kBlockAlign);
    }
    ++live_;
    return ::new (storage) T(std::forward<Args>(args)...);
  }

  void Destroy(T* object) {
    PDM_CHECK(object != nullptr);
    PDM_CHECK(live_ > 0);
    object->~T();
    FreeNode* node = ::new (static_cast<void*>(object)) FreeNode{free_list_};
    free_list_ = node;
    --live_;
  }

  size_t live() const { return live_; }
  /// Creates served from the free list rather than fresh arena space.
  size_t recycled() const { return recycled_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  // A dead object's storage must be able to hold the free-list link, and
  // alignment must satisfy both T and the arena's cache-line floor.
  static constexpr size_t kBlockSize =
      sizeof(T) > sizeof(FreeNode) ? sizeof(T) : sizeof(FreeNode);
  static constexpr size_t kBlockAlign =
      alignof(T) > kCacheLineSize ? alignof(T) : kCacheLineSize;

  SlabArena* arena_;
  FreeNode* free_list_ = nullptr;
  size_t live_ = 0;
  size_t recycled_ = 0;
};

}  // namespace pdm

#endif  // PDM_COMMON_ARENA_H_
