#ifndef PDM_COMMON_CHECK_H_
#define PDM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Fatal assertion macros for programmer-error detection.
///
/// Following the project policy (no exceptions on hot paths), violated
/// preconditions abort the process with a source location. `PDM_CHECK` is
/// always on; `PDM_DCHECK` compiles away in release builds and is meant for
/// hot loops (e.g. per-round ellipsoid updates).

namespace pdm::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "PDM_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace pdm::internal

/// Aborts with a diagnostic if `cond` is false. Always enabled.
#define PDM_CHECK(cond)                                          \
  do {                                                           \
    if (!(cond)) {                                               \
      ::pdm::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                            \
  } while (0)

/// Debug-only variant of PDM_CHECK; no-op when NDEBUG is defined.
#ifdef NDEBUG
#define PDM_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define PDM_DCHECK(cond) PDM_CHECK(cond)
#endif

#endif  // PDM_COMMON_CHECK_H_
