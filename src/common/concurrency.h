#ifndef PDM_COMMON_CONCURRENCY_H_
#define PDM_COMMON_CONCURRENCY_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

/// \file
/// Shared-memory building blocks for the serving layers (DESIGN.md §9):
/// cache-line geometry constants and a read-mostly atomic-snapshot holder.
///
/// The broker's request hot path must never perform an atomic
/// read-modify-write on state shared across products — a single contended
/// cache line caps aggregate throughput no matter how many cores serve
/// independent sessions. These utilities encode the two idioms that keep it
/// that way: pad per-session state to exclusive cache lines, and publish
/// rarely-mutated shared structures (the product directory) as immutable
/// snapshots behind one atomic pointer so readers pay a plain acquire load.

namespace pdm {

/// Destructive-interference granularity. Hard-coded rather than
/// `std::hardware_destructive_interference_size`: the language constant is
/// an ABI hazard (GCC warns whenever it leaks into a public header) and 64
/// bytes is correct for every x86-64 and the common AArch64 parts this
/// project targets.
inline constexpr std::size_t kCacheLineSize = 64;

/// Read-mostly snapshot publication (RCU-lite). One writer at a time (the
/// caller serializes writers — the broker's control-plane mutex) replaces an
/// immutable `const T` snapshot; any number of readers `Load()` the current
/// snapshot with a single acquire load — no reference counting, no locking,
/// no atomic RMW on the reader side.
///
/// Memory-reclamation rule: a replaced snapshot is *retired*, not freed —
/// it stays on an internal list until the holder is destroyed, because a
/// reader may still be dereferencing it (readers are invisible by design).
/// This is safe and bounded precisely because mutations are control-plane
/// operations: total retired memory is O(mutation count × snapshot size),
/// not O(traffic). Holders with unbounded mutation rates need a different
/// tool (epochs/hazard pointers) — see DESIGN.md §9.
template <typename T>
class SnapshotPtr {
 public:
  SnapshotPtr() = default;
  explicit SnapshotPtr(std::unique_ptr<const T> initial) {
    current_.store(initial.get(), std::memory_order_release);
    retired_.push_back(std::move(initial));
  }

  SnapshotPtr(const SnapshotPtr&) = delete;
  SnapshotPtr& operator=(const SnapshotPtr&) = delete;

  /// Reader side: the current snapshot, or nullptr before the first
  /// Publish. Plain acquire load — never an RMW. The pointer stays valid
  /// for the life of this holder (see the reclamation rule above).
  const T* Load() const { return current_.load(std::memory_order_acquire); }

  /// Writer side: atomically swings readers to `next` and retires the
  /// previous snapshot. Callers must serialize Publish externally.
  void Publish(std::unique_ptr<const T> next) {
    current_.store(next.get(), std::memory_order_release);
    retired_.push_back(std::move(next));
  }

  /// Snapshots retired so far (including the live one); test/monitoring
  /// surface for the reclamation bound.
  std::size_t retired_count() const { return retired_.size(); }

 private:
  std::atomic<const T*> current_{nullptr};
  /// Every snapshot ever published, in order; freed on destruction. Guarded
  /// by the caller's writer serialization.
  std::vector<std::unique_ptr<const T>> retired_;
};

}  // namespace pdm

#endif  // PDM_COMMON_CONCURRENCY_H_
