#include "common/crc32.h"

#include <array>

namespace pdm {
namespace {

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace pdm
