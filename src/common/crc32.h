#ifndef PDM_COMMON_CRC32_H_
#define PDM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file
/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
/// behind the pdm.snap.v2 envelope (DESIGN.md §14). Table-driven, one byte
/// per step; spill blobs are megabytes at most and written on the cold
/// eviction path, so simplicity beats a slice-by-8 kernel here.

namespace pdm {

/// Incremental form: feed `crc` from a previous call (or 0 to start) and the
/// next chunk. The running value is the finalized CRC after every call — no
/// separate finalize step.
uint32_t Crc32(uint32_t crc, const void* data, size_t size);

/// One-shot convenience over a byte string.
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32(0, bytes.data(), bytes.size());
}

}  // namespace pdm

#endif  // PDM_COMMON_CRC32_H_
