#include "common/csv.h"

namespace pdm {
namespace {

std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header) {
  if (path.empty()) return;
  out_.open(path);
  if (ok()) WriteRow(header);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!ok()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeCell(cells[i]);
  }
  out_ << '\n';
}

}  // namespace pdm
