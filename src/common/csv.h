#ifndef PDM_COMMON_CSV_H_
#define PDM_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

/// \file
/// CSV emission for bench series (--csv=path dumps the plotted series so
/// figures can be regenerated with any plotting tool).

namespace pdm {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. A failed open leaves
  /// the writer inactive; rows are silently dropped (callers treat CSV output
  /// as optional).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True if the output file opened successfully.
  bool ok() const { return out_.is_open() && out_.good(); }

  /// Writes one row; cells are joined with commas. Cells containing commas or
  /// quotes are quoted per RFC 4180.
  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
};

}  // namespace pdm

#endif  // PDM_COMMON_CSV_H_
