#include "common/fault.h"

#include <algorithm>
#include <cstdlib>

namespace pdm::fault {
namespace {

// splitmix64: tiny, seedable, and good enough for fault-draw streams.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  rng_state_ = seed;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Arm() {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed_;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
}

FaultInjector::Site& FaultInjector::SiteLocked(std::string_view site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), Site{}).first;
  }
  return it->second;
}

void FaultInjector::SetProbability(std::string_view site, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteLocked(site).probability = std::clamp(p, 0.0, 1.0);
}

void FaultInjector::TriggerOnHit(std::string_view site, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteLocked(site).trigger_hits.push_back(nth);
}

Status FaultInjector::Configure(std::string_view spec) {
  // Parse into a staging list first so a bad entry leaves config untouched.
  struct Entry {
    std::string site;
    bool scripted = false;
    double probability = 0.0;
    uint64_t nth = 0;
  };
  std::vector<Entry> entries;
  uint64_t seed = 0;
  bool have_seed = false;

  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;

    size_t at = token.find('@');
    size_t eq = token.find('=');
    if (at != std::string_view::npos) {
      std::string_view site = token.substr(0, at);
      std::string value(token.substr(at + 1));
      char* end = nullptr;
      uint64_t nth = std::strtoull(value.c_str(), &end, 10);
      if (site.empty() || value.empty() || *end != '\0' || nth == 0) {
        return Status::InvalidArgument("bad fault trigger entry: " +
                                       std::string(token));
      }
      entries.push_back({std::string(site), true, 0.0, nth});
    } else if (eq != std::string_view::npos) {
      std::string_view site = token.substr(0, eq);
      std::string value(token.substr(eq + 1));
      if (site.empty() || value.empty()) {
        return Status::InvalidArgument("bad fault entry: " +
                                       std::string(token));
      }
      if (site == "seed") {
        char* end = nullptr;
        seed = std::strtoull(value.c_str(), &end, 10);
        if (*end != '\0') {
          return Status::InvalidArgument("bad fault seed: " +
                                         std::string(token));
        }
        have_seed = true;
      } else {
        char* end = nullptr;
        double p = std::strtod(value.c_str(), &end);
        if (*end != '\0' || p < 0.0 || p > 1.0) {
          return Status::InvalidArgument("bad fault probability: " +
                                         std::string(token));
        }
        entries.push_back({std::string(site), false, p, 0});
      }
    } else {
      return Status::InvalidArgument(
          "fault entry needs <site>=<prob> or <site>@<nth>: " +
          std::string(token));
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (have_seed) {
    seed_ = seed;
    rng_state_ = seed;
  }
  for (const Entry& e : entries) {
    Site& site = SiteLocked(e.site);
    if (e.scripted) {
      site.trigger_hits.push_back(e.nth);
    } else {
      site.probability = e.probability;
    }
  }
  return Status::Ok();
}

void FaultInjector::Reset() {
  armed_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  seed_ = 1;
  rng_state_ = 1;
}

bool FaultInjector::ShouldFailArmed(std::string_view site_name) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& site = SiteLocked(site_name);
  ++site.hits;
  bool fire = false;
  if (std::find(site.trigger_hits.begin(), site.trigger_hits.end(),
                site.hits) != site.trigger_hits.end()) {
    fire = true;
  } else if (site.probability > 0.0) {
    // Map the top 53 bits to [0, 1) — enough resolution for any test p.
    double draw =
        static_cast<double>(NextRandom(&rng_state_) >> 11) * 0x1.0p-53;
    fire = draw < site.probability;
  }
  if (fire) ++site.fires;
  return fire;
}

uint64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace pdm::fault
