#ifndef PDM_COMMON_FAULT_H_
#define PDM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file
/// Deterministic fault injection (DESIGN.md §14).
///
/// Production code asks `pdm::fault::ShouldFail("site")` at each injectable
/// failure point (spill I/O syscalls, server socket operations) and takes the
/// real error path when it returns true. Sites are plain string names; the
/// inventory lives in DESIGN.md §14 so tests, `--faults=` flags, and the
/// chaos CI job all speak the same vocabulary.
///
/// The injector is process-wide and **zero-cost when disarmed**: the check
/// compiles to one relaxed atomic load and a predicted-not-taken branch. When
/// armed, decisions are deterministic given the seed and the per-site hit
/// sequence — a site fires either with a configured probability (seeded
/// splitmix64 stream) or on scripted 1-based hit numbers (`TriggerOnHit`),
/// which is what the chaos tests use to place a fault at exactly the Nth
/// write or the first accept.
///
/// Thread safety: Arm/Disarm/configuration and armed-path decisions take an
/// internal mutex; every touched site keeps hit and fire counters for test
/// assertions. All injection sites sit on cold paths (eviction, fault-in,
/// accept, error handling), so the mutex never shows up in steady-state
/// serving profiles.

namespace pdm::fault {

class FaultInjector {
 public:
  /// The process-wide injector every `ShouldFail` call consults.
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Starts firing configured sites. The seed (re)initializes the
  /// probability-draw stream so armed runs are reproducible.
  void Arm(uint64_t seed);
  /// Arms with the seed most recently given to Configure/Arm (default 1).
  void Arm();
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Site fires on each hit with probability `p` in [0, 1].
  void SetProbability(std::string_view site, double p);
  /// Site fires on exactly its `nth` hit (1-based). May be called multiple
  /// times to script several scheduled failures.
  void TriggerOnHit(std::string_view site, uint64_t nth);

  /// Parses a `--faults=` spec: comma-separated `seed=<n>`,
  /// `<site>=<probability>`, and `<site>@<nth-hit>` entries, e.g.
  /// `"seed=7,spill.write=0.05,server.accept@3"`. Configures but does not
  /// arm. Returns InvalidArgument (leaving prior config intact) on a
  /// malformed entry.
  Status Configure(std::string_view spec);

  /// Disarms and clears all sites, counters, and the seed.
  void Reset();

  /// Armed-path decision; counts a hit on `site` and returns whether the
  /// site fires. Call through `pdm::fault::ShouldFail` so the disarmed case
  /// stays branch-cheap.
  bool ShouldFailArmed(std::string_view site);

  /// Times the site was consulted / times it fired (since Reset).
  uint64_t hits(std::string_view site) const;
  uint64_t fires(std::string_view site) const;

 private:
  struct Site {
    double probability = 0.0;
    std::vector<uint64_t> trigger_hits;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  Site& SiteLocked(std::string_view site);

  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;
  uint64_t seed_ = 1;
  uint64_t rng_state_ = 1;
  std::atomic<bool> armed_{false};
};

/// The hot-path check: one relaxed load when the injector is disarmed.
inline bool ShouldFail(std::string_view site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.armed()) return false;
  return injector.ShouldFailArmed(site);
}

}  // namespace pdm::fault

#endif  // PDM_COMMON_FAULT_H_
