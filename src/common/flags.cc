#include "common/flags.h"

#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"

namespace pdm {

FlagSet::FlagSet(std::string program) : program_(std::move(program)) {}

void FlagSet::AddInt64(const std::string& name, int64_t* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kInt64, value, help, std::to_string(*value)});
}

void FlagSet::AddUint64(const std::string& name, uint64_t* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kUint64, value, help, std::to_string(*value)});
}

void FlagSet::AddDouble(const std::string& name, double* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kDouble, value, help, FormatDouble(*value, 6)});
}

void FlagSet::AddBool(const std::string& name, bool* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kBool, value, help, *value ? "true" : "false"});
}

void FlagSet::AddString(const std::string& name, std::string* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kString, value, help, *value});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool FlagSet::Assign(const Flag& flag, const std::string& text) const {
  switch (flag.type) {
    case Type::kInt64: {
      auto parsed = ParseInt64(text);
      if (!parsed) return false;
      *static_cast<int64_t*>(flag.target) = *parsed;
      return true;
    }
    case Type::kUint64: {
      auto parsed = ParseUint64(text);
      if (!parsed) return false;
      *static_cast<uint64_t*>(flag.target) = *parsed;
      return true;
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(text);
      if (!parsed) return false;
      *static_cast<double*>(flag.target) = *parsed;
      return true;
    }
    case Type::kBool: {
      auto parsed = ParseBool(text);
      if (!parsed) return false;
      *static_cast<bool*>(flag.target) = *parsed;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = text;
      return true;
  }
  return false;
}

bool FlagSet::Parse(int argc, char** argv) {
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::fprintf(stderr, "%s", Usage().c_str());
      return false;
    }
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n%s", program_.c_str(),
                   arg.c_str(), Usage().c_str());
      return false;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    std::string name = eq == std::string::npos ? body : body.substr(0, eq);
    // Resolve the name before consuming a value so a bare unknown flag is
    // reported as unknown, not as "missing a value".
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(), name.c_str());
      // Suggest the closest registered name when the typo is within a third
      // of the flag's length — close enough to be a slip, not a guess.
      const Flag* closest = nullptr;
      size_t best = name.size();
      for (const Flag& candidate : flags_) {
        size_t distance = EditDistance(name, candidate.name);
        if (distance < best) {
          best = distance;
          closest = &candidate;
        }
      }
      if (closest != nullptr && best * 3 <= closest->name.size()) {
        std::fprintf(stderr, "  did you mean --%s?\n", closest->name.c_str());
      }
      std::fprintf(stderr, "known flags: %s\n", KnownFlagList().c_str());
      return false;
    }
    std::string value;
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
    } else if (flag->type == Type::kBool &&
               (i + 1 >= argc || StartsWith(argv[i + 1], "--"))) {
      // Bools may omit the value ("--verbose"); everything else consumes the
      // next argument.
      value = "true";
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "%s: flag --%s is missing a value\n", program_.c_str(),
                   name.c_str());
      return false;
    }
    if (!Assign(*flag, value)) {
      std::fprintf(stderr, "%s: cannot parse value '%s' for flag --%s\n", program_.c_str(),
                   value.c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagSet::KnownFlagList() const {
  if (flags_.empty()) return "(none; only --help)";
  std::string out;
  for (const Flag& flag : flags_) {
    if (!out.empty()) out += ", ";
    out += "--" + flag.name;
  }
  return out;
}

std::string FlagSet::Usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const Flag& flag : flags_) {
    out += "  --" + flag.name + " (default: " + flag.default_repr + ")\n      " + flag.help +
           "\n";
  }
  return out;
}

}  // namespace pdm
