#include "common/flags.h"

#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"

namespace pdm {

FlagSet::FlagSet(std::string program) : program_(std::move(program)) {}

void FlagSet::AddInt64(const std::string& name, int64_t* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kInt64, value, help, std::to_string(*value)});
}

void FlagSet::AddDouble(const std::string& name, double* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kDouble, value, help, FormatDouble(*value, 6)});
}

void FlagSet::AddBool(const std::string& name, bool* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kBool, value, help, *value ? "true" : "false"});
}

void FlagSet::AddString(const std::string& name, std::string* value, const std::string& help) {
  PDM_CHECK(value != nullptr);
  PDM_CHECK(Find(name) == nullptr);
  flags_.push_back({name, Type::kString, value, help, *value});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool FlagSet::Assign(const Flag& flag, const std::string& text) const {
  switch (flag.type) {
    case Type::kInt64: {
      auto parsed = ParseInt64(text);
      if (!parsed) return false;
      *static_cast<int64_t*>(flag.target) = *parsed;
      return true;
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(text);
      if (!parsed) return false;
      *static_cast<double*>(flag.target) = *parsed;
      return true;
    }
    case Type::kBool: {
      auto parsed = ParseBool(text);
      if (!parsed) return false;
      *static_cast<bool*>(flag.target) = *parsed;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = text;
      return true;
  }
  return false;
}

bool FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", Usage().c_str());
      return false;
    }
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n%s", program_.c_str(),
                   arg.c_str(), Usage().c_str());
      return false;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // Bools may omit the value ("--verbose"); everything else consumes the
      // next argument.
      const Flag* flag = Find(name);
      if (flag != nullptr && flag->type == Type::kBool &&
          (i + 1 >= argc || StartsWith(argv[i + 1], "--"))) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: flag --%s is missing a value\n", program_.c_str(),
                     name.c_str());
        return false;
      }
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "%s: unknown flag --%s\n%s", program_.c_str(), name.c_str(),
                   Usage().c_str());
      return false;
    }
    if (!Assign(*flag, value)) {
      std::fprintf(stderr, "%s: cannot parse value '%s' for flag --%s\n", program_.c_str(),
                   value.c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagSet::Usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const Flag& flag : flags_) {
    out += "  --" + flag.name + " (default: " + flag.default_repr + ")\n      " + flag.help +
           "\n";
  }
  return out;
}

}  // namespace pdm
