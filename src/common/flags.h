#ifndef PDM_COMMON_FLAGS_H_
#define PDM_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Minimal command-line flag parser used by every bench and example binary.
///
/// Flags are registered against caller-owned storage and parsed from
/// `--name=value` or `--name value` forms. `--help` prints usage and makes
/// `Parse` return false so the caller can exit cleanly. This deliberately
/// avoids global registries: each binary builds its own `FlagSet`.
///
/// Example:
/// \code
///   int64_t rounds = 100000;
///   pdm::FlagSet flags("bench_fig4");
///   flags.AddInt64("rounds", &rounds, "number of pricing rounds");
///   if (!flags.Parse(argc, argv)) return 1;
/// \endcode

namespace pdm {

class FlagSet {
 public:
  /// `program` is shown in the usage banner.
  explicit FlagSet(std::string program);

  /// Registers a flag bound to `*value`; the current content of `*value` is
  /// treated as the default and shown in `--help` output.
  void AddInt64(const std::string& name, int64_t* value, const std::string& help);
  void AddUint64(const std::string& name, uint64_t* value, const std::string& help);
  void AddDouble(const std::string& name, double* value, const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);
  void AddString(const std::string& name, std::string* value, const std::string& help);

  /// Parses argv. Returns false (after printing a message to stderr) on an
  /// unknown flag, a malformed value, or `--help`. An unknown flag reports
  /// the full list of known flags — and the closest-named one when the typo
  /// is close enough — instead of the error disappearing into a wall of
  /// usage text.
  bool Parse(int argc, char** argv);

  /// True when the last Parse returned false because of `--help`/`-h` (the
  /// usage text was printed); binaries exit 0 in that case, not 1.
  bool help_requested() const { return help_requested_; }

  /// Human-readable usage text listing all registered flags.
  std::string Usage() const;

  /// Comma-separated "--name" list of every registered flag, in registration
  /// order (what the unknown-flag error prints).
  std::string KnownFlagList() const;

 private:
  enum class Type { kInt64, kUint64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Flag* Find(const std::string& name) const;
  bool Assign(const Flag& flag, const std::string& text) const;

  std::string program_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace pdm

#endif  // PDM_COMMON_FLAGS_H_
