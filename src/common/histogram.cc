#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace pdm {

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount, 0) {}

size_t LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos > kMaxValue) nanos = kMaxValue;
  if (nanos < kSubBuckets) return static_cast<size_t>(nanos);
  int exponent = std::bit_width(nanos) - 1;
  uint64_t sub = (nanos >> (exponent - kSubBucketBits)) - kSubBuckets;
  return static_cast<size_t>(exponent - kSubBucketBits + 1) * kSubBuckets +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::BucketFloor(size_t index) {
  size_t group = index >> kSubBucketBits;
  uint64_t sub = index & (kSubBuckets - 1);
  if (group == 0) return sub;
  return (kSubBuckets + sub) << (group - 1);
}

void LatencyHistogram::Record(uint64_t nanos) {
  ++buckets_[BucketIndex(nanos)];
  if (count_ == 0 || nanos < min_) min_ = nanos;
  if (nanos > max_) max_ = nanos;
  sum_ += static_cast<double>(nanos);
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // The smallest bucket whose cumulative count reaches ceil(q * count).
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<int64_t>(rank, 1, count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += static_cast<int64_t>(buckets_[i]);
    if (cumulative >= rank) return BucketFloor(i);
  }
  return max_;
}

double LatencyHistogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

}  // namespace pdm
