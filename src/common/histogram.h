#ifndef PDM_COMMON_HISTOGRAM_H_
#define PDM_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Log-linear latency histogram for the serving benches (DESIGN.md §10).
///
/// `LatencyHistogram` records non-negative nanosecond values into buckets
/// whose width grows with magnitude — 2^kSubBucketBits linear sub-buckets
/// per power of two — so one fixed ~23 KiB array covers 1 ns to ~5 hours
/// with a bounded relative error of 2^-kSubBucketBits (< 1.6 %) per sample.
/// That is the right trade for round-trip latency tails: `Quantile(0.999)`
/// needs resolution *proportional* to the value, and recording must be O(1)
/// with no allocation (the serving bench records on its event loop).
///
/// Values are truncated to the bucket floor, so reported quantiles are
/// conservative (never above the true sample quantile by more than one
/// bucket width); `min`/`max` are tracked exactly.

namespace pdm {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power of two; the relative resolution is
  /// 2^-kSubBucketBits.
  static constexpr int kSubBucketBits = 6;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  /// Largest distinguishable value (~5.2 hours in ns); larger samples clamp
  /// into the top bucket.
  static constexpr uint64_t kMaxValue = (uint64_t{1} << 44) - 1;
  /// Buckets for magnitudes 2^kSubBucketBits .. 2^44 plus the exact range
  /// below kSubBuckets: one group of kSubBuckets per power of two.
  static constexpr size_t kBucketCount =
      (44 - kSubBucketBits + 1) * static_cast<size_t>(kSubBuckets);

  /// Bucket index for a sample. Public so other layouts over the same
  /// log-linear grid (the atomic `metrics::HistogramCell`) share one bucket
  /// geometry and their rendered edges line up with bench quantiles.
  static size_t BucketIndex(uint64_t nanos);
  /// Inclusive lower edge of bucket `index` (what Quantile reports).
  static uint64_t BucketFloor(size_t index);

  LatencyHistogram();

  /// Records one sample (nanoseconds). O(1), allocation-free.
  void Record(uint64_t nanos);

  /// Folds `other`'s samples into this histogram.
  void Merge(const LatencyHistogram& other);

  /// The q-quantile (q in [0, 1]) as a nanosecond value: the floor of the
  /// smallest bucket whose cumulative count reaches q * count. 0 when empty.
  uint64_t Quantile(double q) const;

  int64_t count() const { return count_; }
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  uint64_t max() const { return max_; }
  /// Mean of the exact recorded values (the sum is kept exactly).
  double mean() const;

 private:
  std::vector<uint64_t> buckets_;
  int64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace pdm

#endif  // PDM_COMMON_HISTOGRAM_H_
