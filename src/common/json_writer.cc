#include "common/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pdm {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          // UTF-8 continuation bytes pass through untouched; JSON strings
          // are UTF-8 and only the ASCII control range needs escaping.
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream* os, int indent) : os_(os), indent_(indent) {
  PDM_CHECK(os_ != nullptr);
  PDM_CHECK(indent_ >= 0);
}

JsonWriter::~JsonWriter() {
  // A half-written document is a bug in the emitter, not a recoverable I/O
  // condition; fail loudly rather than ship truncated JSON.
  PDM_CHECK(done());
}

bool JsonWriter::done() const { return root_written_ && stack_.empty() && !key_pending_; }

void JsonWriter::NewlineIndent() {
  if (indent_ == 0) return;
  *os_ << '\n';
  for (size_t i = 0; i < stack_.size() * static_cast<size_t>(indent_); ++i) *os_ << ' ';
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    PDM_CHECK(!root_written_);  // exactly one top-level value
    return;
  }
  Level& level = stack_.back();
  if (level.scope == Scope::kObject) {
    PDM_CHECK(key_pending_);  // object values require a preceding Key()
    return;
  }
  if (level.entries > 0) *os_ << ',';
  NewlineIndent();
}

void JsonWriter::AfterValue() {
  key_pending_ = false;
  if (stack_.empty()) {
    root_written_ = true;
  } else {
    ++stack_.back().entries;
  }
}

void JsonWriter::Key(std::string_view key) {
  PDM_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject);
  PDM_CHECK(!key_pending_);
  if (stack_.back().entries > 0) *os_ << ',';
  NewlineIndent();
  *os_ << '"' << JsonEscape(key) << "\":";
  if (indent_ > 0) *os_ << ' ';
  key_pending_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  key_pending_ = false;
  *os_ << '{';
  stack_.push_back({Scope::kObject});
}

void JsonWriter::EndObject() {
  PDM_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject);
  PDM_CHECK(!key_pending_);  // a Key() without its value
  bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) NewlineIndent();
  *os_ << '}';
  AfterValue();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  key_pending_ = false;
  *os_ << '[';
  stack_.push_back({Scope::kArray});
}

void JsonWriter::EndArray() {
  PDM_CHECK(!stack_.empty() && stack_.back().scope == Scope::kArray);
  bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) NewlineIndent();
  *os_ << ']';
  AfterValue();
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  *os_ << '"' << JsonEscape(value) << '"';
  AfterValue();
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  *os_ << value;
  AfterValue();
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  *os_ << value;
  AfterValue();
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    *os_ << "null";
  } else {
    // Shortest decimal form that parses back to the same bits. to_chars
    // never produces JSON-invalid output for finite doubles (no leading '+',
    // no bare '.'), unlike printf's %g with exotic locales.
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    PDM_CHECK(ec == std::errc());
    os_->write(buf, ptr - buf);
  }
  AfterValue();
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  *os_ << (value ? "true" : "false");
  AfterValue();
}

void JsonWriter::Null() {
  BeforeValue();
  *os_ << "null";
  AfterValue();
}

}  // namespace pdm
