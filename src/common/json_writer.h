#ifndef PDM_COMMON_JSON_WRITER_H_
#define PDM_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Streaming JSON emitter for the machine-readable bench/run documents
/// (`pdm.run.v1`, `pdm.bench_throughput.v1`). The repo deliberately vendors
/// no third-party JSON library; this writer owns the three things the
/// hand-rolled `fprintf` emission it replaced got wrong or could not check:
///
///   * string escaping — quotes, backslashes, and control characters become
///     valid JSON escapes (`\n`, `\u001b`, ...), so scenario names and file
///     paths can never corrupt the document;
///   * non-finite doubles — JSON has no NaN/Infinity literal; they are
///     emitted as `null` (the consumer-side convention for "not measured");
///   * nesting discipline — Begin/End mismatches and missing keys trip a
///     `PDM_CHECK` at write time instead of producing a silently truncated
///     document.
///
/// Doubles are formatted with the shortest representation that round-trips
/// (`std::to_chars`), so emitted numbers parse back to the exact bits.

namespace pdm {

/// Returns `text` with JSON string escaping applied (no surrounding quotes).
std::string JsonEscape(std::string_view text);

class JsonWriter {
 public:
  /// Writes onto `os` with `indent` spaces per nesting level (0 = compact,
  /// single line). The caller keeps ownership of the stream.
  explicit JsonWriter(std::ostream* os, int indent = 2);

  /// Exactly one top-level value must be written; the destructor checks the
  /// document was completed (all Begin* calls matched by End*).
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Names the next value; only valid directly inside an object.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// NaN and ±Infinity are emitted as `null`.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Key + value in one call (object context only).
  void Field(std::string_view key, std::string_view value) { Key(key); String(value); }
  void Field(std::string_view key, const char* value) { Key(key); String(value); }
  void Field(std::string_view key, int value) { Key(key); Int(value); }
  void Field(std::string_view key, int64_t value) { Key(key); Int(value); }
  void Field(std::string_view key, uint64_t value) { Key(key); UInt(value); }
  void Field(std::string_view key, double value) { Key(key); Double(value); }
  void Field(std::string_view key, bool value) { Key(key); Bool(value); }

  /// True once the single top-level value has been fully written.
  bool done() const;

 private:
  enum class Scope { kObject, kArray };
  struct Level {
    Scope scope;
    int entries = 0;
  };

  /// Pre-value bookkeeping: separators, newline/indent, key discipline.
  void BeforeValue();
  void AfterValue();
  void NewlineIndent();

  std::ostream* os_;
  int indent_;
  std::vector<Level> stack_;
  bool key_pending_ = false;
  bool root_written_ = false;
};

}  // namespace pdm

#endif  // PDM_COMMON_JSON_WRITER_H_
