#include "common/memory.h"

#include <cstdio>
#include <cstring>

namespace pdm {

int64_t CurrentRssBytes() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  int64_t kib = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%ld", &kib);
      break;
    }
  }
  std::fclose(file);
  return kib * 1024;
}

double CurrentRssMiB() { return static_cast<double>(CurrentRssBytes()) / (1024.0 * 1024.0); }

namespace {
/// Plain thread-local integer: no constructor, no heap, safe to bump from
/// inside operator new itself.
thread_local int64_t thread_allocation_count = 0;
}  // namespace

void NoteAllocation() noexcept { ++thread_allocation_count; }

int64_t ThreadAllocationCount() noexcept { return thread_allocation_count; }

}  // namespace pdm
