#include "common/memory.h"

#include <cstdio>
#include <cstring>

namespace pdm {

int64_t CurrentRssBytes() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  int64_t kib = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%ld", &kib);
      break;
    }
  }
  std::fclose(file);
  return kib * 1024;
}

double CurrentRssMiB() { return static_cast<double>(CurrentRssBytes()) / (1024.0 * 1024.0); }

}  // namespace pdm
