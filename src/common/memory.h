#ifndef PDM_COMMON_MEMORY_H_
#define PDM_COMMON_MEMORY_H_

#include <cstdint>

/// \file
/// Process-memory probes: the RSS reader mirroring the paper's methodology
/// (Section V-D reads VmRSS from /proc/PID/status), plus opt-in allocation
/// counting for the zero-allocation hot-path guarantee.
///
/// The allocation counter is observability-only plumbing: the library
/// maintains a thread-local counter but installs no hook itself. A binary
/// that wants real counts defines the replaceable global `operator new`
/// overloads and calls `NoteAllocation()` from them (see
/// tests/allocation_test.cc); everywhere else the counter stays 0 and costs
/// nothing. This is how the allocation-regression test *measures* (rather
/// than guesses) that steady-state pricing rounds never touch the heap.

namespace pdm {

/// Resident set size of the current process in bytes, or 0 if /proc is
/// unavailable (non-Linux platforms).
int64_t CurrentRssBytes();

/// VmRSS formatted in MiB for reporting.
double CurrentRssMiB();

/// Bumps the calling thread's allocation counter. Called from a replaceable
/// `operator new` hook; async-signal-safe and allocation-free by design.
void NoteAllocation() noexcept;

/// Allocations noted on the calling thread since thread start. Monotone;
/// subtract two readings to count allocations across a code region.
int64_t ThreadAllocationCount() noexcept;

}  // namespace pdm

#endif  // PDM_COMMON_MEMORY_H_
