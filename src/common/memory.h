#ifndef PDM_COMMON_MEMORY_H_
#define PDM_COMMON_MEMORY_H_

#include <cstdint>

/// \file
/// Process-memory probe mirroring the paper's methodology (Section V-D reads
/// VmRSS from /proc/PID/status).

namespace pdm {

/// Resident set size of the current process in bytes, or 0 if /proc is
/// unavailable (non-Linux platforms).
int64_t CurrentRssBytes();

/// VmRSS formatted in MiB for reporting.
double CurrentRssMiB();

}  // namespace pdm

#endif  // PDM_COMMON_MEMORY_H_
