#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace pdm {

void RunningStats::Add(double value) {
  ++count_;
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace pdm
