#ifndef PDM_COMMON_STATS_H_
#define PDM_COMMON_STATS_H_

#include <cstdint>
#include <limits>

/// \file
/// Online statistics accumulators. `RunningStats` implements Welford's
/// numerically stable single-pass mean/variance, which the bench harness uses
/// to reproduce the mean(std) cells of Table I without storing per-round
/// samples.

namespace pdm {

class RunningStats {
 public:
  RunningStats() = default;

  /// Folds one observation into the accumulator.
  void Add(double value);

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n); 0 for fewer than two samples.
  double variance() const;
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pdm

#endif  // PDM_COMMON_STATS_H_
