#include "common/status.h"

namespace pdm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pdm
