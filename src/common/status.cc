#include "common/status.h"

namespace pdm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pdm
