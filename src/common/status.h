#ifndef PDM_COMMON_STATUS_H_
#define PDM_COMMON_STATUS_H_

#include <string>
#include <utility>

/// \file
/// Lightweight recoverable-error value for client-facing APIs.
///
/// The simulation layers treat misuse as programmer error and abort
/// (`PDM_CHECK`), which is right for an algorithm driven by our own loop but
/// wrong for a serving surface where a malformed request must not take the
/// broker down. `pdm::Status` is the serving-side alternative: OK carries no
/// message and allocates nothing (so returning it from a hot path preserves
/// the zero-allocation steady state, DESIGN.md §6); error statuses carry a
/// code plus a human-readable message and may allocate — errors are off the
/// hot path by definition.

namespace pdm {

enum class StatusCode {
  kOk = 0,
  /// A request referenced something that does not exist (unknown product,
  /// unknown or already-resolved ticket).
  kNotFound,
  /// A request was malformed (dimension mismatch, size mismatch, empty name).
  kInvalidArgument,
  /// The target exists but is in a state that forbids the operation
  /// (duplicate product name, snapshot/engine family mismatch).
  kFailedPrecondition,
  /// The operation is not available on this engine (no snapshot support).
  kUnimplemented,
};

/// Human-readable code name ("ok", "not-found", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK; no allocation.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace pdm

#endif  // PDM_COMMON_STATUS_H_
