#ifndef PDM_COMMON_STATUS_H_
#define PDM_COMMON_STATUS_H_

#include <string>
#include <utility>

/// \file
/// Lightweight recoverable-error value for client-facing APIs.
///
/// The simulation layers treat misuse as programmer error and abort
/// (`PDM_CHECK`), which is right for an algorithm driven by our own loop but
/// wrong for a serving surface where a malformed request must not take the
/// broker down. `pdm::Status` is the serving-side alternative: OK carries no
/// message and allocates nothing (so returning it from a hot path preserves
/// the zero-allocation steady state, DESIGN.md §6); error statuses carry a
/// code plus a human-readable message and may allocate — errors are off the
/// hot path by definition.

namespace pdm {

enum class StatusCode {
  kOk = 0,
  /// A request referenced something that does not exist (unknown product,
  /// unknown or already-resolved ticket).
  kNotFound,
  /// A request was malformed (dimension mismatch, size mismatch, empty name).
  kInvalidArgument,
  /// The target exists but is in a state that forbids the operation
  /// (duplicate product name, snapshot/engine family mismatch).
  kFailedPrecondition,
  /// The operation is not available on this engine (no snapshot support).
  kUnimplemented,
  /// A client-side deadline elapsed before the response arrived. The
  /// operation may or may not have executed server-side (at-most-once).
  kDeadlineExceeded,
  /// The server or transport is temporarily unable to serve the request
  /// (connection lost, injected transport fault). Idempotent operations are
  /// safe to retry; mutating operations may have executed (at-most-once).
  kUnavailable,
  /// The server shed the request under overload (per-connection buffered-
  /// bytes or in-flight-frame caps, DESIGN.md §14). Retryable after backoff.
  kResourceExhausted,
  /// Durable state backing the target was lost or corrupted: a spilled
  /// session's snapshot failed its checksum or no longer decodes, and the
  /// file has been quarantined. Not retryable — the session is gone.
  kDataLoss,
};

/// Human-readable code name ("ok", "not-found", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK; no allocation.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace pdm

#endif  // PDM_COMMON_STATUS_H_
