#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace pdm {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  int64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<uint64_t> ParseUint64(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<bool> ParseBool(std::string_view text) {
  std::string lowered = ToLower(Trim(text));
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off") {
    return false;
  }
  return std::nullopt;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking to the last '*'. Linear
  // in |text|·(stars+1); no recursion, no allocation.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos;  // position of the last '*' seen
  size_t star_t = 0;                     // text position it was tried at
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      // Let the last '*' swallow one more character and retry.
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program over the shorter string.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[i];
      row[i] = std::min({substitute, row[i] + 1, row[i - 1] + 1});
    }
  }
  return row[a.size()];
}

}  // namespace pdm
