#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace pdm {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  int64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<bool> ParseBool(std::string_view text) {
  std::string lowered = ToLower(Trim(text));
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off") {
    return false;
  }
  return std::nullopt;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace pdm
