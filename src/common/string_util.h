#ifndef PDM_COMMON_STRING_UTIL_H_
#define PDM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Small string helpers shared by the CSV reader, flag parser, and table
/// printer. All functions are allocation-conscious and locale-independent.

namespace pdm {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Returns `text` with ASCII whitespace removed from both ends.
std::string_view Trim(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters; other bytes pass through unchanged.
std::string ToLower(std::string_view text);

/// Locale-independent numeric parsing. Returns nullopt on any trailing
/// garbage, overflow, or empty input.
std::optional<double> ParseDouble(std::string_view text);
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<uint64_t> ParseUint64(std::string_view text);
std::optional<bool> ParseBool(std::string_view text);

/// Formats `value` with `precision` significant fractional digits, e.g.
/// FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int precision);

/// Glob matching with `*` (any sequence, including empty) and `?` (any single
/// character); every other character matches literally. Used to select
/// scenarios by name ("fig4/*", "throughput/*/n=2?").
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Levenshtein edit distance (insert/delete/substitute, unit costs) between
/// two byte strings; drives the flag parser's "did you mean" suggestions.
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace pdm

#endif  // PDM_COMMON_STRING_UTIL_H_
