#include "common/table_printer.h"

#include <algorithm>

#include "common/check.h"

namespace pdm {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PDM_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PDM_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

}  // namespace pdm
