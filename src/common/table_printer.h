#ifndef PDM_COMMON_TABLE_PRINTER_H_
#define PDM_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

/// \file
/// Fixed-width console table used by the bench harness to print the same
/// rows the paper's tables and figure-series report.

namespace pdm {

class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the row must have exactly one cell per header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header separator, right-padding each column to
  /// its widest cell.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdm

#endif  // PDM_COMMON_TABLE_PRINTER_H_
