#ifndef PDM_COMMON_TIMER_H_
#define PDM_COMMON_TIMER_H_

#include <chrono>

/// \file
/// Wall-clock timer for the Section V-D latency measurements.

namespace pdm {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdm

#endif  // PDM_COMMON_TIMER_H_
