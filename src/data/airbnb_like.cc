#include "data/airbnb_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pdm {

const std::vector<std::string>& AirbnbCityNames() {
  static const std::vector<std::string> kCities = {
      "NYC", "LA", "SF", "DC", "Chicago", "Boston"};
  return kCities;
}

const std::vector<std::string>& AirbnbRoomTypeNames() {
  static const std::vector<std::string> kRoomTypes = {"entire_home", "private_room",
                                                      "shared_room"};
  return kRoomTypes;
}

const std::vector<std::string>& AirbnbCancellationPolicyNames() {
  static const std::vector<std::string> kPolicies = {"flexible", "moderate", "strict"};
  return kPolicies;
}

Table GenerateAirbnbLikeListings(const AirbnbLikeConfig& config, Rng* rng) {
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(config.num_listings > 0);
  int64_t n = config.num_listings;

  // Planted hedonic coefficients (log price in hundreds of dollars). The
  // categorical effects are linear in the category code because the paper's
  // pipeline feeds pandas integer codes (not one-hot indicators) into the
  // regression; a linear-in-code ground truth keeps OLS unbiased so the test
  // MSE matches the planted noise (paper: 0.226).
  const double kCityEffect[kAirbnbNumCities] = {0.30, 0.24, 0.18, 0.12, 0.06, 0.00};
  const double kRoomEffect[kAirbnbNumRoomTypes] = {0.55, 0.10, -0.35};
  const double kPolicyEffect[kAirbnbNumCancellationPolicies] = {0.00, 0.04, 0.08};
  const double kCityShare[kAirbnbNumCities] = {0.40, 0.25, 0.12, 0.08, 0.08, 0.07};
  const double kRoomShare[kAirbnbNumRoomTypes] = {0.62, 0.33, 0.05};

  std::vector<std::string> city(n);
  std::vector<std::string> room(n);
  std::vector<std::string> policy(n);
  std::vector<int64_t> accommodates(n), bedrooms(n), beds(n);
  Vector bathrooms(n);
  std::vector<int64_t> wifi(n), kitchen(n), parking(n), ac(n), washer(n), tv(n);
  Vector host_response(n);
  std::vector<int64_t> superhost(n), instant(n), num_reviews(n);
  Vector review_score(n), occupancy(n), log_price(n);

  auto pick_weighted = [&](const double* shares, int count) {
    double u = rng->NextDouble();
    double acc = 0.0;
    for (int i = 0; i < count; ++i) {
      acc += shares[i];
      if (u < acc) return i;
    }
    return count - 1;
  };

  for (int64_t i = 0; i < n; ++i) {
    size_t row = static_cast<size_t>(i);
    int city_id = pick_weighted(kCityShare, kAirbnbNumCities);
    int room_id = pick_weighted(kRoomShare, kAirbnbNumRoomTypes);
    int policy_id = static_cast<int>(rng->NextUint64(kAirbnbNumCancellationPolicies));
    city[row] = AirbnbCityNames()[static_cast<size_t>(city_id)];
    room[row] = AirbnbRoomTypeNames()[static_cast<size_t>(room_id)];
    policy[row] = AirbnbCancellationPolicyNames()[static_cast<size_t>(policy_id)];

    // Two latent factors drive most attributes, mirroring the strong
    // correlation structure of real listing data (bigger places have more
    // bedrooms/beds/baths; better-run places bundle amenities, superhosts,
    // and review scores). Real estate data has low effective rank, and the
    // online pricing phase depends on it: the ellipsoid engine only needs to
    // learn the directions that actually vary.
    double size_factor = rng->NextGaussian(0.0, 1.0);
    double quality_factor = rng->NextGaussian(0.0, 1.0);
    if (room_id == 0) size_factor += 0.8;  // entire homes skew large
    if (room_id == 2) size_factor -= 1.0;  // shared rooms skew small

    int64_t acc_n = std::clamp<int64_t>(
        static_cast<int64_t>(std::llround(4.0 + 2.2 * size_factor +
                                          rng->NextGaussian(0.0, 0.35))),
        1, 16);
    accommodates[row] = acc_n;
    bedrooms[row] = std::clamp<int64_t>(
        static_cast<int64_t>(std::llround(static_cast<double>(acc_n) / 2.0 - 1.0 +
                                          rng->NextGaussian(0.0, 0.25))),
        room_id == 2 ? 0 : 1, 8);
    beds[row] = std::clamp<int64_t>(
        acc_n - 1 - static_cast<int64_t>(rng->NextUint64(2)), 1, 12);
    bathrooms[row] = std::clamp(
        1.0 + 0.5 * std::round(size_factor + rng->NextGaussian(0.0, 0.3) + 1.0), 1.0,
        4.0);

    auto quality_amenity = [&](double base_logit) {
      double p = 1.0 / (1.0 + std::exp(-(base_logit + 2.2 * quality_factor)));
      return rng->NextBernoulli(p) ? 1 : 0;
    };
    wifi[row] = quality_amenity(2.9);
    kitchen[row] = quality_amenity(1.4);
    parking[row] = quality_amenity(-0.2);
    ac[row] = quality_amenity(0.6);
    washer[row] = quality_amenity(0.2);
    tv[row] = quality_amenity(0.85);

    // ~3% missing host response rates, like the real export; the categorical
    // pipeline must cope (pandas "categoricals" handled these for the paper).
    host_response[row] =
        rng->NextBernoulli(0.03)
            ? std::nan("")
            : std::clamp(0.93 + 0.05 * quality_factor + rng->NextGaussian(0.0, 0.05),
                         0.0, 1.0);
    superhost[row] = rng->NextBernoulli(
                         1.0 / (1.0 + std::exp(-(-1.3 + 1.1 * quality_factor))))
                         ? 1
                         : 0;
    instant[row] = rng->NextBernoulli(0.40) ? 1 : 0;
    num_reviews[row] = static_cast<int64_t>(std::llround(
        std::exp(2.4 + 0.5 * quality_factor + rng->NextGaussian(0.0, 0.9))));
    num_reviews[row] = std::min<int64_t>(num_reviews[row], 800);
    review_score[row] =
        std::clamp(4.6 + 0.18 * quality_factor + rng->NextGaussian(0.0, 0.2), 3.0, 5.0);
    occupancy[row] = std::clamp(
        0.55 + 0.10 * quality_factor + rng->NextGaussian(0.0, 0.18), 0.02, 0.98);

    // Planted log-linear market value (hedonic model, Section IV-A). Prices
    // are in hundreds of dollars and the intercept offsets the mean of the
    // attribute effects (≈ +1.25), so log-prices center near 0.5 — the scale
    // the paper's Fig. 5(b) baselines imply (log q = ratio·log v with
    // baseline regret ratios of 23.4%/17.0%/9.3% requires E[log v] ≈ 0.5;
    // see DESIGN.md §2).
    double lp = -1.15;
    lp += kCityEffect[city_id];
    lp += kRoomEffect[room_id];
    lp += kPolicyEffect[policy_id];
    lp += 0.055 * static_cast<double>(acc_n);
    lp += 0.090 * static_cast<double>(bedrooms[row]);
    lp += 0.070 * bathrooms[row];
    lp += 0.020 * static_cast<double>(beds[row]);
    lp += 0.040 * static_cast<double>(wifi[row]) + 0.050 * static_cast<double>(kitchen[row]) +
          0.060 * static_cast<double>(parking[row]) + 0.045 * static_cast<double>(ac[row]) +
          0.035 * static_cast<double>(washer[row]) + 0.025 * static_cast<double>(tv[row]);
    lp += 0.080 * static_cast<double>(superhost[row]);
    lp += 0.120 * (review_score[row] - 4.6);
    lp += 0.040 * std::log1p(static_cast<double>(num_reviews[row]));
    lp += -0.150 * occupancy[row];
    lp += 0.015 * static_cast<double>(instant[row]);
    // A mild interaction so the engineered interaction features carry signal.
    lp += 0.012 * static_cast<double>(acc_n) * static_cast<double>(bedrooms[row]) * 0.5;
    lp += rng->NextGaussian(0.0, config.log_price_noise);
    log_price[row] = lp;
  }

  Table table;
  table.AddColumn(Column::Strings("city", std::move(city)));
  table.AddColumn(Column::Strings("room_type", std::move(room)));
  table.AddColumn(Column::Strings("cancellation_policy", std::move(policy)));
  table.AddColumn(Column::Int64s("accommodates", std::move(accommodates)));
  table.AddColumn(Column::Int64s("bedrooms", std::move(bedrooms)));
  table.AddColumn(Column::Int64s("beds", std::move(beds)));
  table.AddColumn(Column::Doubles("bathrooms", std::move(bathrooms)));
  table.AddColumn(Column::Int64s("wifi", std::move(wifi)));
  table.AddColumn(Column::Int64s("kitchen", std::move(kitchen)));
  table.AddColumn(Column::Int64s("parking", std::move(parking)));
  table.AddColumn(Column::Int64s("air_conditioning", std::move(ac)));
  table.AddColumn(Column::Int64s("washer", std::move(washer)));
  table.AddColumn(Column::Int64s("tv", std::move(tv)));
  table.AddColumn(Column::Doubles("host_response_rate", std::move(host_response)));
  table.AddColumn(Column::Int64s("host_is_superhost", std::move(superhost)));
  table.AddColumn(Column::Int64s("instant_bookable", std::move(instant)));
  table.AddColumn(Column::Int64s("number_of_reviews", std::move(num_reviews)));
  table.AddColumn(Column::Doubles("review_score", std::move(review_score)));
  table.AddColumn(Column::Doubles("occupancy_rate", std::move(occupancy)));
  table.AddColumn(Column::Doubles("log_price", std::move(log_price)));
  return table;
}

}  // namespace pdm
