#ifndef PDM_DATA_AIRBNB_LIKE_H_
#define PDM_DATA_AIRBNB_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "rng/rng.h"

/// \file
/// Synthetic stand-in for the Kaggle "Airbnb listings in major U.S. cities"
/// dataset (Application 2, 74,111 rows).
///
/// Fig. 5(b) requires (a) listing records with the mixed categorical/numeric
/// schema the paper engineers into n = 55 features and (b) a *log-linear*
/// ground-truth price model that ordinary least squares can recover with test
/// MSE ≈ 0.226. The generator plants exactly such a model: log_price is a
/// linear function of the engineered features plus Gaussian noise whose
/// variance is calibrated to the paper's reported MSE. See DESIGN.md §2.

namespace pdm {

struct AirbnbLikeConfig {
  /// The real dataset has 74,111 booking records.
  int64_t num_listings = 74111;
  /// Residual noise σ of the planted log-linear model; OLS test MSE ≈ σ².
  double log_price_noise = 0.47;
};

/// Schema constants shared with the feature pipeline.
inline constexpr int kAirbnbNumCities = 6;
inline constexpr int kAirbnbNumRoomTypes = 3;
inline constexpr int kAirbnbNumCancellationPolicies = 3;

/// City names mirror the paper's list.
const std::vector<std::string>& AirbnbCityNames();
const std::vector<std::string>& AirbnbRoomTypeNames();
const std::vector<std::string>& AirbnbCancellationPolicyNames();

/// Generates the listings table with columns:
///   city (string), room_type (string), cancellation_policy (string),
///   accommodates, bedrooms, beds (int64), bathrooms (double),
///   wifi, kitchen, parking, air_conditioning, washer, tv (int64 0/1),
///   host_response_rate (double in [0,1]; a few % missing encoded as NaN),
///   host_is_superhost, instant_bookable (int64 0/1),
///   number_of_reviews (int64), review_score (double in [3,5]),
///   occupancy_rate (double in [0,1]),
///   log_price (double target; natural log of the nightly price in hundreds
///   of dollars — the unit that reproduces the paper's Fig. 5(b) reserve/value
///   ratios, see DESIGN.md §2).
Table GenerateAirbnbLikeListings(const AirbnbLikeConfig& config, Rng* rng);

}  // namespace pdm

#endif  // PDM_DATA_AIRBNB_LIKE_H_
