#include "data/avazu_like.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

const std::vector<AdFieldSpec>& AvazuLikeFields() {
  static const std::vector<AdFieldSpec> kFields = {
      {"banner_pos", 8},    {"site_category", 24}, {"app_category", 24},
      {"device_type", 6},   {"device_conn_type", 6}, {"hour", 24},
      {"site_id", 300},     {"app_id", 300},       {"device_model", 500},
      {"C1", 7},
  };
  return kFields;
}

AvazuLikeClickLog::AvazuLikeClickLog(const AvazuLikeConfig& config, Rng* rng)
    : config_(config) {
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(config_.num_signal_pairs > 0);
  const auto& fields = AvazuLikeFields();
  // Plant signal on low-cardinality fields with higher probability so each
  // signal pair fires often enough for FTRL to find it; the long-tail id
  // fields contribute a couple of pairs like real campaign effects.
  for (int k = 0; k < config_.num_signal_pairs; ++k) {
    int field = static_cast<int>(rng->NextUint64(fields.size()));
    int64_t value = static_cast<int64_t>(
        rng->NextUint64(static_cast<uint64_t>(fields[static_cast<size_t>(field)].cardinality)));
    // Avoid duplicate (field, value) pairs.
    bool duplicate = false;
    for (const auto& existing : signal_weights_) {
      if (existing.first.first == field && existing.first.second == value) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      --k;
      continue;
    }
    double magnitude = rng->NextUniform(0.6, 2.2);
    double sign = rng->NextBernoulli(0.55) ? 1.0 : -1.0;
    signal_weights_.push_back({{field, value}, sign * magnitude});
  }
}

AdImpression AvazuLikeClickLog::Next(Rng* rng) const {
  AdImpression sample;
  Next(rng, &sample);
  return sample;
}

void AvazuLikeClickLog::Next(Rng* rng, AdImpression* sample) const {
  PDM_CHECK(rng != nullptr);
  const auto& fields = AvazuLikeFields();
  sample->fields.clear();
  sample->fields.reserve(fields.size());
  for (size_t f = 0; f < fields.size(); ++f) {
    // Zipf-ish skew: half the mass on the first ~10% of values, so signal
    // pairs planted on popular values fire frequently.
    int64_t card = fields[f].cardinality;
    int64_t head = std::max<int64_t>(1, card / 10);
    int64_t value = rng->NextBernoulli(0.5)
                        ? static_cast<int64_t>(rng->NextUint64(static_cast<uint64_t>(head)))
                        : static_cast<int64_t>(rng->NextUint64(static_cast<uint64_t>(card)));
    sample->fields.push_back({static_cast<int>(f), value});
  }
  double logit = config_.base_logit;
  for (const auto& [pair, weight] : signal_weights_) {
    if (sample->fields[static_cast<size_t>(pair.first)].second == pair.second) {
      logit += weight;
    }
  }
  sample->logit = logit;
  sample->ctr = 1.0 / (1.0 + std::exp(-logit));
  sample->clicked = rng->NextBernoulli(sample->ctr);
}

}  // namespace pdm
