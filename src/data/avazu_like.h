#ifndef PDM_DATA_AVAZU_LIKE_H_
#define PDM_DATA_AVAZU_LIKE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rng/rng.h"

/// \file
/// Synthetic stand-in for the Avazu mobile ad click dataset (Application 3).
///
/// Fig. 5(c) needs a stream of ad-impression records with high-cardinality
/// categorical fields whose click-through rate follows a *sparse logistic*
/// model — the paper reports that FTRL-Proximal learns only 21 (n = 128) or
/// 23 (n = 1024) non-zero hashed weights with log-loss ≈ 0.42/0.406. This
/// generator plants a sparse ground truth directly in (field, value) space:
/// a small set of signal pairs carries all of the CTR signal; every other
/// value is noise. Records expose raw categorical pairs so the hashing
/// featurizer (features/hashing.h) can map them into any dimension n.

namespace pdm {

/// One ad-displaying sample: categorical (field, value) pairs plus the
/// planted ground truth.
struct AdImpression {
  /// (field index, value id) pairs, one per categorical field.
  std::vector<std::pair<int, int64_t>> fields;
  /// Planted logit and CTR = sigmoid(logit).
  double logit = 0.0;
  double ctr = 0.0;
  /// Click label ~ Bernoulli(ctr).
  bool clicked = false;
};

struct AvazuLikeConfig {
  /// Number of signal-carrying (field, value) pairs (paper's models keep
  /// ~21–23 non-zeros; signal pairs below that count leaves room for the
  /// learner's bias/noise pickups).
  int num_signal_pairs = 18;
  /// Base logit; sigmoid(−2.0) ≈ 12% base CTR, near Avazu's ~17% click rate
  /// once positive signal pairs fire.
  double base_logit = -2.0;
};

/// Field metadata (name, cardinality) mirroring the Avazu schema subset the
/// paper hashes: banner_pos, site_category, app_category, device_type,
/// device_conn_type, hour, site_id, app_id, device_model, C1.
struct AdFieldSpec {
  std::string name;
  int64_t cardinality;
};

const std::vector<AdFieldSpec>& AvazuLikeFields();

class AvazuLikeClickLog {
 public:
  AvazuLikeClickLog(const AvazuLikeConfig& config, Rng* rng);

  /// Draws the next impression (fields, planted CTR, click label).
  AdImpression Next(Rng* rng) const;

  /// Fill-in variant reusing `sample->fields`' storage (steady-state calls
  /// perform no allocation); identical draws to the by-value overload.
  void Next(Rng* rng, AdImpression* sample) const;

  /// The planted signal weights as ((field, value) -> weight).
  const std::vector<std::pair<std::pair<int, int64_t>, double>>& signal_weights() const {
    return signal_weights_;
  }

  double base_logit() const { return config_.base_logit; }

 private:
  AvazuLikeConfig config_;
  std::vector<std::pair<std::pair<int, int64_t>, double>> signal_weights_;
};

}  // namespace pdm

#endif  // PDM_DATA_AVAZU_LIKE_H_
