#include "data/csv_reader.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pdm {
namespace {

/// Splits one CSV record honoring RFC-4180 quoting. Returns false on an
/// unterminated quoted field.
bool SplitCsvRecord(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields->push_back(current);
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields->push_back(current);
  return !in_quotes;
}

std::optional<Table> ParseRows(const std::vector<std::string>& header,
                               const std::vector<std::vector<std::string>>& rows,
                               std::string* error) {
  size_t num_cols = header.size();
  // Infer each column's type.
  enum Kind { kInt, kReal, kText };
  std::vector<Kind> kinds(num_cols, kInt);
  for (const auto& row : rows) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = row[c];
      if (Trim(cell).empty()) continue;
      if (kinds[c] == kInt && !ParseInt64(cell)) kinds[c] = kReal;
      if (kinds[c] == kReal && !ParseDouble(cell)) kinds[c] = kText;
      if (kinds[c] == kInt && !ParseInt64(cell)) kinds[c] = kText;
    }
  }
  Table table;
  for (size_t c = 0; c < num_cols; ++c) {
    switch (kinds[c]) {
      case kInt: {
        std::vector<int64_t> values;
        values.reserve(rows.size());
        for (const auto& row : rows) {
          auto parsed = ParseInt64(row[c]);
          values.push_back(parsed.value_or(0));
        }
        table.AddColumn(Column::Int64s(header[c], std::move(values)));
        break;
      }
      case kReal: {
        Vector values;
        values.reserve(rows.size());
        for (const auto& row : rows) {
          auto parsed = ParseDouble(row[c]);
          values.push_back(parsed.value_or(std::nan("")));
        }
        table.AddColumn(Column::Doubles(header[c], std::move(values)));
        break;
      }
      case kText: {
        std::vector<std::string> values;
        values.reserve(rows.size());
        for (const auto& row : rows) values.push_back(row[c]);
        table.AddColumn(Column::Strings(header[c], std::move(values)));
        break;
      }
    }
  }
  (void)error;
  return table;
}

std::optional<Table> ReadCsvStream(std::istream& in, std::string* error) {
  std::string line;
  if (!std::getline(in, line)) {
    if (error != nullptr) *error = "empty input";
    return std::nullopt;
  }
  std::vector<std::string> header;
  if (!SplitCsvRecord(line, &header)) {
    if (error != nullptr) *error = "malformed header";
    return std::nullopt;
  }
  std::vector<std::vector<std::string>> rows;
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    if (!SplitCsvRecord(line, &fields) || fields.size() != header.size()) {
      if (error != nullptr) {
        *error = "malformed row at line " + std::to_string(line_number);
      }
      return std::nullopt;
    }
    rows.push_back(std::move(fields));
  }
  return ParseRows(header, rows, error);
}

}  // namespace

std::optional<Table> ReadCsv(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadCsvStream(file, error);
}

std::optional<Table> ReadCsvFromString(const std::string& content, std::string* error) {
  std::istringstream in(content);
  return ReadCsvStream(in, error);
}

}  // namespace pdm
