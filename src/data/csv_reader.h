#ifndef PDM_DATA_CSV_READER_H_
#define PDM_DATA_CSV_READER_H_

#include <optional>
#include <string>

#include "data/table.h"

/// \file
/// CSV ingestion with type inference, so real MovieLens/Airbnb/Avazu exports
/// can be dropped in for the synthetic generators.
///
/// Supported dialect: first row is the header; fields are comma-separated;
/// RFC-4180 double-quote escaping; a column is typed int64 if every non-empty
/// cell parses as an integer, else double if every non-empty cell parses as a
/// number, else string. Empty numeric cells become NaN (double) or 0 (int64);
/// downstream categorical encoding treats empty strings as missing.

namespace pdm {

/// Parses the file into a Table. Returns nullopt (with a message in *error,
/// if given) on I/O failure or ragged rows.
std::optional<Table> ReadCsv(const std::string& path, std::string* error = nullptr);

/// Parses CSV content from a string (testing convenience).
std::optional<Table> ReadCsvFromString(const std::string& content,
                                       std::string* error = nullptr);

}  // namespace pdm

#endif  // PDM_DATA_CSV_READER_H_
