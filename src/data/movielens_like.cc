#include "data/movielens_like.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pdm {

MovieLensLikeRatings MovieLensLikeRatings::Generate(const MovieLensLikeConfig& config,
                                                    Rng* rng) {
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(config.num_owners > 0);
  PDM_CHECK(config.num_movies > 0);
  PDM_CHECK(config.median_ratings_per_owner >= 1.0);

  MovieLensLikeRatings data;
  data.owners_.resize(static_cast<size_t>(config.num_owners));
  double mu = std::log(config.median_ratings_per_owner);
  int64_t max_ratings = 1;
  for (OwnerProfile& owner : data.owners_) {
    // Log-normal activity: most owners rate a few dozen movies, a heavy tail
    // rates thousands — the MovieLens shape that drives compensation spread.
    double draw = std::exp(rng->NextGaussian(mu, config.activity_sigma));
    owner.num_ratings = std::max<int64_t>(1, static_cast<int64_t>(std::llround(draw)));
    owner.num_ratings = std::min<int64_t>(owner.num_ratings, config.num_movies * 20L);
    max_ratings = std::max(max_ratings, owner.num_ratings);
    // Mean rating clusters around 3.5 stars with owner-level bias.
    double mean = rng->NextGaussian(3.5, 0.45);
    owner.mean_rating = std::clamp(mean, 0.5, 5.0);
  }
  for (OwnerProfile& owner : data.owners_) {
    owner.activity =
        static_cast<double>(owner.num_ratings) / static_cast<double>(max_ratings);
  }
  return data;
}

Vector MovieLensLikeRatings::OwnerData() const {
  Vector data(owners_.size());
  for (size_t i = 0; i < owners_.size(); ++i) {
    // Rescale [0.5, 5.0] stars to [0, 1] so the Laplace data_range bound of
    // 1.0 in the privacy layer is tight.
    data[i] = (owners_[i].mean_rating - 0.5) / 4.5;
  }
  return data;
}

Table MovieLensLikeRatings::RatingsTable(int64_t max_rows, Rng* rng) const {
  PDM_CHECK(rng != nullptr);
  std::vector<int64_t> owner_ids;
  std::vector<int64_t> movie_ids;
  Vector ratings;
  for (size_t i = 0; i < owners_.size() && static_cast<int64_t>(owner_ids.size()) < max_rows;
       ++i) {
    int64_t budget = std::min<int64_t>(owners_[i].num_ratings,
                                       max_rows - static_cast<int64_t>(owner_ids.size()));
    for (int64_t r = 0; r < budget; ++r) {
      owner_ids.push_back(static_cast<int64_t>(i));
      movie_ids.push_back(static_cast<int64_t>(rng->NextUint64(1000000)));
      // Half-star grid around the owner's mean, clamped to the rating scale.
      double rating = owners_[i].mean_rating + rng->NextGaussian(0.0, 0.8);
      rating = std::clamp(std::round(rating * 2.0) / 2.0, 0.5, 5.0);
      ratings.push_back(rating);
    }
  }
  Table table;
  table.AddColumn(Column::Int64s("owner_id", std::move(owner_ids)));
  table.AddColumn(Column::Int64s("movie_id", std::move(movie_ids)));
  table.AddColumn(Column::Doubles("rating", std::move(ratings)));
  return table;
}

}  // namespace pdm
