#ifndef PDM_DATA_MOVIELENS_LIKE_H_
#define PDM_DATA_MOVIELENS_LIKE_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "linalg/vector_ops.h"
#include "rng/rng.h"

/// \file
/// Synthetic stand-in for the MovieLens 20M dataset (Application 1).
///
/// The real evaluation treats MovieLens users as data owners whose ratings
/// are queried by noisy linear queries. What the pricing pipeline actually
/// consumes is (a) one numeric datum per owner (bounded range, so the Laplace
/// sensitivity analysis applies) and (b) a heterogeneous owner population
/// whose compensation demands vary. This generator reproduces exactly those
/// statistics: a long-tailed (log-normal) activity distribution over owners,
/// per-owner mean ratings in [0.5, 5.0], and a ratings table for tests and
/// examples. See DESIGN.md §2 for the substitution rationale.

namespace pdm {

struct MovieLensLikeConfig {
  int num_owners = 2000;
  int num_movies = 500;
  /// Median number of ratings per owner (log-normal, heavy right tail).
  double median_ratings_per_owner = 24.0;
  /// Log-normal shape parameter for the activity tail.
  double activity_sigma = 1.1;
};

struct OwnerProfile {
  /// Number of ratings this owner contributed.
  int64_t num_ratings = 0;
  /// Owner's mean rating in [0.5, 5.0] (the datum linear queries aggregate).
  double mean_rating = 0.0;
  /// num_ratings normalized by the population max, in (0, 1].
  double activity = 0.0;
};

class MovieLensLikeRatings {
 public:
  static MovieLensLikeRatings Generate(const MovieLensLikeConfig& config, Rng* rng);

  const std::vector<OwnerProfile>& owners() const { return owners_; }
  int num_owners() const { return static_cast<int>(owners_.size()); }

  /// Per-owner datum d_i ∈ [0, 1] (mean rating rescaled), the vector a noisy
  /// linear query aggregates: q(D) = Σ w_i·d_i.
  Vector OwnerData() const;

  /// Ratings triplets as a Table (owner_id, movie_id, rating); at most
  /// `max_rows` rows are materialized.
  Table RatingsTable(int64_t max_rows, Rng* rng) const;

 private:
  std::vector<OwnerProfile> owners_;
};

}  // namespace pdm

#endif  // PDM_DATA_MOVIELENS_LIKE_H_
