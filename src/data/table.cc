#include "data/table.h"

namespace pdm {

Column Column::Doubles(std::string name, Vector values) {
  Column c(std::move(name), ColumnType::kDouble);
  c.double_values_ = std::move(values);
  return c;
}

Column Column::Int64s(std::string name, std::vector<int64_t> values) {
  Column c(std::move(name), ColumnType::kInt64);
  c.int64_values_ = std::move(values);
  return c;
}

Column Column::Strings(std::string name, std::vector<std::string> values) {
  Column c(std::move(name), ColumnType::kString);
  c.string_values_ = std::move(values);
  return c;
}

int64_t Column::size() const {
  switch (type_) {
    case ColumnType::kDouble:
      return static_cast<int64_t>(double_values_.size());
    case ColumnType::kInt64:
      return static_cast<int64_t>(int64_values_.size());
    case ColumnType::kString:
      return static_cast<int64_t>(string_values_.size());
  }
  return 0;
}

double Column::DoubleAt(int64_t row) const {
  PDM_CHECK(type_ == ColumnType::kDouble);
  PDM_DCHECK(row >= 0 && row < size());
  return double_values_[static_cast<size_t>(row)];
}

int64_t Column::Int64At(int64_t row) const {
  PDM_CHECK(type_ == ColumnType::kInt64);
  PDM_DCHECK(row >= 0 && row < size());
  return int64_values_[static_cast<size_t>(row)];
}

const std::string& Column::StringAt(int64_t row) const {
  PDM_CHECK(type_ == ColumnType::kString);
  PDM_DCHECK(row >= 0 && row < size());
  return string_values_[static_cast<size_t>(row)];
}

double Column::NumericAt(int64_t row) const {
  switch (type_) {
    case ColumnType::kDouble:
      return DoubleAt(row);
    case ColumnType::kInt64:
      return static_cast<double>(Int64At(row));
    case ColumnType::kString:
      break;
  }
  PDM_CHECK(false);
  return 0.0;
}

const Vector& Column::doubles() const {
  PDM_CHECK(type_ == ColumnType::kDouble);
  return double_values_;
}

const std::vector<int64_t>& Column::int64s() const {
  PDM_CHECK(type_ == ColumnType::kInt64);
  return int64_values_;
}

const std::vector<std::string>& Column::strings() const {
  PDM_CHECK(type_ == ColumnType::kString);
  return string_values_;
}

void Table::AddColumn(Column column) {
  PDM_CHECK(!HasColumn(column.name()));
  if (columns_.empty()) {
    num_rows_ = column.size();
  } else {
    PDM_CHECK(column.size() == num_rows_);
  }
  columns_.push_back(std::move(column));
}

const Column& Table::column(const std::string& name) const {
  for (const Column& c : columns_) {
    if (c.name() == name) return c;
  }
  PDM_CHECK(false);
  return columns_.front();
}

const Column& Table::column(int index) const {
  PDM_CHECK(index >= 0 && index < num_cols());
  return columns_[static_cast<size_t>(index)];
}

bool Table::HasColumn(const std::string& name) const {
  for (const Column& c : columns_) {
    if (c.name() == name) return true;
  }
  return false;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name());
  return names;
}

}  // namespace pdm
