#ifndef PDM_DATA_TABLE_H_
#define PDM_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "linalg/vector_ops.h"

/// \file
/// Minimal typed in-memory columnar table.
///
/// The dataset generators and CSV reader materialize records here; the
/// feature pipeline consumes columns by name. The design mirrors what the
/// paper did with pandas: typed columns, missing-value support for
/// categorical data, and cheap column-wise access.

namespace pdm {

enum class ColumnType { kDouble, kInt64, kString };

/// A single named, typed column. Exactly one of the payload vectors is
/// populated, matching `type()`.
class Column {
 public:
  static Column Doubles(std::string name, Vector values);
  static Column Int64s(std::string name, std::vector<int64_t> values);
  static Column Strings(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  int64_t size() const;

  /// Typed accessors; the column must have the matching type.
  double DoubleAt(int64_t row) const;
  int64_t Int64At(int64_t row) const;
  const std::string& StringAt(int64_t row) const;

  /// Numeric view: doubles pass through, int64 is widened; strings abort.
  double NumericAt(int64_t row) const;

  const Vector& doubles() const;
  const std::vector<int64_t>& int64s() const;
  const std::vector<std::string>& strings() const;

 private:
  Column(std::string name, ColumnType type) : name_(std::move(name)), type_(type) {}

  std::string name_;
  ColumnType type_;
  Vector double_values_;
  std::vector<int64_t> int64_values_;
  std::vector<std::string> string_values_;
};

class Table {
 public:
  Table() = default;

  /// Adds a column; all columns must have equal length and unique names.
  void AddColumn(Column column);

  int64_t num_rows() const { return num_rows_; }
  int num_cols() const { return static_cast<int>(columns_.size()); }

  /// Lookup by name; aborts if absent (use HasColumn to probe).
  const Column& column(const std::string& name) const;
  const Column& column(int index) const;
  bool HasColumn(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;

 private:
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace pdm

#endif  // PDM_DATA_TABLE_H_
