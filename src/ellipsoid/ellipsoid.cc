#include "ellipsoid/ellipsoid.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"

namespace pdm {

Ellipsoid::Ellipsoid(Vector center, Matrix shape)
    : center_(std::move(center)), shape_(std::move(shape)) {
  PDM_CHECK(shape_.rows() == shape_.cols());
  PDM_CHECK(static_cast<int>(center_.size()) == shape_.rows());
  PDM_CHECK(dim() >= 2);
}

Ellipsoid::Ellipsoid(Vector center, PackedSymMatrix shape)
    : center_(std::move(center)),
      shape_(0, 0),
      packed_shape_(std::move(shape)),
      packed_mode_(true) {
  PDM_CHECK(static_cast<int>(center_.size()) == packed_shape_.dim());
  PDM_CHECK(dim() >= 2);
}

Ellipsoid Ellipsoid::FromSnapshotState(Vector center, Matrix shape,
                                       int cuts_since_symmetrize, bool packed) {
  PDM_CHECK(cuts_since_symmetrize >= 0 && cuts_since_symmetrize < 32);
  if (packed) {
    // Exact re-pack: the upper triangle of the serialized dense shape is the
    // packed state that produced it (DenseShape mirrors, never averages).
    Ellipsoid out(std::move(center), PackedSymMatrix::FromDense(shape));
    out.cuts_since_symmetrize_ = cuts_since_symmetrize;
    return out;
  }
  Ellipsoid out(std::move(center), std::move(shape));
  out.cuts_since_symmetrize_ = cuts_since_symmetrize;
  return out;
}

Ellipsoid Ellipsoid::Ball(int dim, double radius) {
  PDM_CHECK(dim >= 2);
  PDM_CHECK(radius > 0.0);
  return Ellipsoid(Zeros(dim), Matrix::ScaledIdentity(dim, radius * radius));
}

Ellipsoid Ellipsoid::PackedBall(int dim, double radius) {
  PDM_CHECK(dim >= 2);
  PDM_CHECK(radius > 0.0);
  return Ellipsoid(Zeros(dim), PackedSymMatrix::ScaledIdentity(dim, radius * radius));
}

Matrix Ellipsoid::DenseShape() const {
  return packed_mode_ ? packed_shape_.ToDense() : shape_;
}

double Ellipsoid::ShapeQuadraticForm(const Vector& x) const {
  return packed_mode_ ? packed_shape_.QuadraticForm(x) : shape_.QuadraticForm(x);
}

SupportInterval Ellipsoid::Support(const Vector& x) const {
  SupportInterval out;
  Support(x, &out);
  return out;
}

void Ellipsoid::Support(const Vector& x, SupportInterval* out) const {
  PDM_CHECK(out != nullptr);
  PDM_CHECK(static_cast<int>(x.size()) == dim());
  PDM_DCHECK(&x != &out->direction);
  out->midpoint = Dot(x, center_);
  // One O(n²) pass computes both A·x (the support direction) and xᵀAx; the
  // caller's direction buffer is reused as the A·x target.
  if (packed_mode_) {
    packed_shape_.MatVecInto(x, &out->direction);
  } else {
    shape_.MatVecInto(x, &out->direction);
  }
  double quad = Dot(x, out->direction);
  if (quad <= 0.0 || !std::isfinite(quad)) {
    // Collapsed (or numerically indefinite) direction: the probe width is
    // treated as zero, which routes the engine to the conservative price.
    out->lower = out->upper = out->midpoint;
    out->half_width = 0.0;
    out->direction.clear();  // keeps capacity; "empty when half_width = 0"
    return;
  }
  out->half_width = std::sqrt(quad);
  out->lower = out->midpoint - out->half_width;
  out->upper = out->midpoint + out->half_width;
  // direction keeps the raw A·x; the cuts fold in the 1/half_width scaling.
}

void Ellipsoid::SupportBatch(const double* panel, int k, SupportInterval* out) const {
  PDM_CHECK(k >= 0);
  if (k == 0) return;
  PDM_CHECK(panel != nullptr && out != nullptr);
  const int n = dim();
  // One matrix–panel pass computes every query's A·x_j; resize never shrinks
  // capacity, so the workspace reaches a steady high-water mark and stops
  // allocating.
  batch_panel_ws_.resize(static_cast<size_t>(k) * static_cast<size_t>(n));
  if (packed_mode_) {
    packed_shape_.MatPanelInto(panel, k, batch_panel_ws_.data());
  } else {
    shape_.MatPanelInto(panel, k, batch_panel_ws_.data());
  }
  for (int j = 0; j < k; ++j) {
    const double* x = panel + static_cast<size_t>(j) * n;
    const double* ax = batch_panel_ws_.data() + static_cast<size_t>(j) * n;
    SupportInterval& o = out[j];
    // Same per-query arithmetic as Support(): midpoint and quadratic form
    // through the shared Dot kernel, degenerate handling identical.
    o.midpoint = Dot(x, center_.data(), static_cast<size_t>(n));
    double quad = Dot(x, ax, static_cast<size_t>(n));
    if (quad <= 0.0 || !std::isfinite(quad)) {
      o.lower = o.upper = o.midpoint;
      o.half_width = 0.0;
      o.direction.clear();  // keeps capacity; "empty when half_width = 0"
      continue;
    }
    o.half_width = std::sqrt(quad);
    o.lower = o.midpoint - o.half_width;
    o.upper = o.midpoint + o.half_width;
    // Copy the raw A·x_j out of the workspace panel; assign reuses the
    // caller's buffer capacity, so recycled intervals stay allocation-free.
    o.direction.assign(ax, ax + n);
  }
}

double Ellipsoid::CutAlpha(const Vector& x, double cut_value) const {
  SupportInterval s = Support(x);
  PDM_CHECK(s.half_width > 0.0);
  return (s.midpoint - cut_value) / s.half_width;
}

void Ellipsoid::Cut(const Vector& ax, double half_width, double alpha, double sign) {
  // sign = +1: keep {xᵀθ ≤ cut}; sign = −1: keep {xᵀθ ≥ cut}. The formulas
  // below are Algorithm 1 Lines 17 (rejection) and 21 (acceptance); the
  // acceptance case is the mirror image obtained by α → −α, b → −b.
  int n = dim();
  PDM_CHECK(n >= 2);
  PDM_CHECK(static_cast<int>(ax.size()) == n);
  PDM_CHECK(half_width > 0.0);
  double a = sign * alpha;  // position measured toward the kept side
  // The Löwner–John formulas are the minimal enclosing ellipsoid only for
  // a ∈ [−1/n, 1); below −1/n the minimal enclosure is E itself and the
  // formula would produce a *non*-enclosing ellipsoid. a = −1/n is the
  // identity update.
  PDM_CHECK(a >= -1.0 / static_cast<double>(n) - 1e-12 && a < 1.0);

  double nd = static_cast<double>(n);
  double factor = nd * nd * (1.0 - a * a) / (nd * nd - 1.0);
  double coef = 2.0 * (1.0 + nd * a) / ((nd + 1.0) * (1.0 + a));
  double step = (1.0 + nd * a) / (nd + 1.0);

  // With b = ax/half_width: A ← factor · (A − coef · b·bᵀ) becomes
  // factor · (A − (coef/half_width²) · ax·axᵀ), and c ← c − sign·step·b
  // becomes c − (sign·step/half_width)·ax — the normalized direction is
  // never materialized.
  if (packed_mode_) {
    packed_shape_.FusedScaleRankOne(factor, coef / (half_width * half_width), ax);
    // Packed storage is symmetric by construction — nothing to re-average —
    // but the counter keeps the dense schedule so snapshots stay
    // mode-agnostic (and so the dense/packed control flow never diverges).
    if (++cuts_since_symmetrize_ >= 32) cuts_since_symmetrize_ = 0;
  } else {
    shape_.FusedScaleRankOne(factor, coef / (half_width * half_width), ax);
    if (++cuts_since_symmetrize_ >= 32) {
      shape_.Symmetrize();
      cuts_since_symmetrize_ = 0;
    }
  }
  AxpyInPlace(-sign * step / half_width, ax, &center_);
}

void Ellipsoid::CutKeepBelow(const Vector& x, double alpha) {
  SupportInterval support = Support(x);
  PDM_CHECK(support.half_width > 0.0);
  Cut(support.direction, support.half_width, alpha, +1.0);
}

void Ellipsoid::CutKeepAbove(const Vector& x, double alpha) {
  SupportInterval support = Support(x);
  PDM_CHECK(support.half_width > 0.0);
  Cut(support.direction, support.half_width, alpha, -1.0);
}

void Ellipsoid::CutKeepBelow(const SupportInterval& support, double alpha) {
  PDM_CHECK(support.half_width > 0.0);
  Cut(support.direction, support.half_width, alpha, +1.0);
}

void Ellipsoid::CutKeepAbove(const SupportInterval& support, double alpha) {
  PDM_CHECK(support.half_width > 0.0);
  Cut(support.direction, support.half_width, alpha, -1.0);
}

bool Ellipsoid::Contains(const Vector& theta, double tol) const {
  PDM_CHECK(static_cast<int>(theta.size()) == dim());
  Vector diff = Sub(theta, center_);
  // Diagnostics are O(n³) already; packed mode materializes a dense copy.
  Matrix dense = DenseShape();
  Matrix l(0, 0);
  if (!CholeskyFactor(dense, &l)) return false;
  Vector y = CholeskySolve(l, diff);
  return Dot(diff, y) <= 1.0 + tol;
}

double Ellipsoid::LogVolumeUnnormalized() const {
  Matrix dense = DenseShape();
  Matrix l(0, 0);
  PDM_CHECK(CholeskyFactor(dense, &l));
  return 0.5 * CholeskyLogDet(l);
}

double Ellipsoid::SmallestShapeEigenvalue() const {
  return SmallestEigenvalue(DenseShape());
}

Vector Ellipsoid::AxisWidths() const {
  EigenSymResult eig = JacobiEigenSymmetric(DenseShape());
  Vector widths(eig.eigenvalues.size());
  for (size_t i = 0; i < widths.size(); ++i) {
    widths[i] = 2.0 * std::sqrt(std::max(0.0, eig.eigenvalues[i]));
  }
  return widths;
}

bool Ellipsoid::LooksHealthy() const {
  for (double v : center_) {
    if (!std::isfinite(v)) return false;
  }
  if (packed_mode_) {
    // Asymmetry is structurally zero; check finiteness of the whole packed
    // triangle and positivity of the diagonal.
    for (int r = 0; r < packed_shape_.dim(); ++r) {
      if (packed_shape_.At(r, r) <= 0.0 || !std::isfinite(packed_shape_.At(r, r))) {
        return false;
      }
      for (int c = r + 1; c < packed_shape_.dim(); ++c) {
        if (!std::isfinite(packed_shape_.At(r, c))) return false;
      }
    }
    return true;
  }
  for (int r = 0; r < shape_.rows(); ++r) {
    if (shape_(r, r) <= 0.0 || !std::isfinite(shape_(r, r))) return false;
  }
  double scale = std::max(1.0, shape_.FrobeniusNorm());
  return shape_.MaxAsymmetry() <= 1e-8 * scale;
}

}  // namespace pdm
