#ifndef PDM_ELLIPSOID_ELLIPSOID_H_
#define PDM_ELLIPSOID_ELLIPSOID_H_

#include "linalg/matrix.h"
#include "linalg/packed_sym_matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Löwner–John ellipsoid knowledge set (Definition 1 of the paper).
///
/// E = { θ ∈ Rⁿ : (θ − c)ᵀ A⁻¹ (θ − c) ≤ 1 } with center c and positive
/// definite shape A. The pricing engine maintains the broker's knowledge of
/// the weight vector θ* as such an ellipsoid and refines it with cuts whose
/// position is the signed distance α of the cutting hyperplane
/// {θ : xᵀθ = cut_value} from the center, measured in the ‖·‖_{A⁻¹} norm:
///
///     α = (xᵀc − cut_value) / √(xᵀAx).
///
/// α = 0 is a central cut, α > 0 a deep cut (keeps less than half), and
/// α < 0 a shallow cut (keeps more than half). The update formulas are the
/// Grötschel–Lovász–Schrijver rank-1 modifications quoted in Algorithm 1
/// (Lines 17 and 21). They are singular at n = 1 (factor n²/(n²−1)), which is
/// why the one-dimensional engine uses an interval instead.

namespace pdm {

/// Support interval of the linear functional θ ↦ xᵀθ over the ellipsoid.
struct SupportInterval {
  /// min over E (the paper's p̲ = xᵀ(c − b)).
  double lower = 0.0;
  /// max over E (the paper's p̄ = xᵀ(c + b)).
  double upper = 0.0;
  /// √(xᵀAx); upper − lower = 2·√(xᵀAx) is the probed width of E along x.
  double half_width = 0.0;
  /// Midpoint xᵀc, the exploratory price candidate.
  double midpoint = 0.0;
  /// The raw support mat-vec A·x (empty when half_width = 0). The paper's
  /// normalized direction is b = direction/half_width; the Cut overloads fold
  /// the 1/half_width into their coefficients, which saves an O(n) scaling
  /// pass on every round. Cut overloads reuse this buffer to avoid
  /// recomputing the O(n²) mat-vec.
  Vector direction;
};

class Ellipsoid {
 public:
  /// Constructs from a center and an SPD shape matrix (dimension ≥ 2).
  Ellipsoid(Vector center, Matrix shape);

  /// Packed-storage mode (DESIGN.md §12): the shape matrix lives as its
  /// upper triangle only — n(n+1)/2 doubles instead of n², halving the
  /// dominant per-product state at serving scale. Semantically the same
  /// knowledge set; numerically a *documented-tolerance* twin of the dense
  /// mode (the packed mat-vec reduces in a different order, and packed
  /// storage — symmetric by construction — has no asymmetry drift for the
  /// 32-cut re-symmetrization to average away). Within packed mode every
  /// operation keeps the repo's determinism contracts: SupportBatch is
  /// bit-identical per query to Support, and save → restore resumes
  /// bit-identically.
  Ellipsoid(Vector center, PackedSymMatrix shape);

  /// Origin-centered ball of the given radius: A = R²·I (Algorithm 1 input).
  static Ellipsoid Ball(int dim, double radius);

  /// Packed-storage ball (see the packed constructor).
  static Ellipsoid PackedBall(int dim, double radius);

  int dim() const { return static_cast<int>(center_.size()); }
  const Vector& center() const { return center_; }
  /// Dense-mode shape accessor; misuse in packed mode is a programming
  /// error (PDM_CHECK). Mode-agnostic callers use DenseShape().
  const Matrix& shape() const {
    PDM_CHECK(!packed_mode_);
    return shape_;
  }
  /// True when the shape matrix is stored packed.
  bool packed() const { return packed_mode_; }
  /// Packed-mode shape accessor (PDM_CHECKs in dense mode).
  const PackedSymMatrix& packed_shape() const {
    PDM_CHECK(packed_mode_);
    return packed_shape_;
  }
  /// The shape matrix as a dense copy in either mode. In packed mode the
  /// mirror is exact (both triangles are the same stored doubles), so
  /// packed → dense → packed round trips bit-identically — the property the
  /// snapshot codec leans on (`pdm.snap.v1` stores shapes dense; a packed
  /// engine re-encodes byte-exactly, DESIGN.md §12).
  Matrix DenseShape() const;
  /// xᵀ·A·x without materializing A·x, in either storage mode
  /// (allocation-free; the EstimateValueInterval path).
  double ShapeQuadraticForm(const Vector& x) const;

  /// Computes [p̲, p̄] along x (Lines 5–7 of Algorithm 1). If the quadratic
  /// form underflows to ≤ 0 (a numerically collapsed direction), the interval
  /// degenerates to the midpoint with half_width 0.
  SupportInterval Support(const Vector& x) const;

  /// Hot-path overload writing into a caller-owned interval whose `direction`
  /// buffer is reused across rounds: steady-state calls perform no heap
  /// allocation. `x` must not alias `out->direction`. Produces bit-identical
  /// results to the by-value overload.
  void Support(const Vector& x, SupportInterval* out) const;

  /// Batched support: `panel` packs k query vectors query-major (query j at
  /// panel + j·dim()), `out[0..k)` receive exactly what k sequential
  /// Support(x_j, &out[j]) calls would produce — BIT-IDENTICAL per query,
  /// because the matrix–panel pass keeps each query's reduction order equal
  /// to the mat-vec pass (Matrix::MatPanelInto) and the midpoint/quadratic
  /// dots run the same kernel. One streamed O(k·n²) pass over A replaces k
  /// cold O(n²) passes (DESIGN.md §11). The A·X workspace panel is a mutable
  /// member reused across calls (steady-state calls allocate nothing once
  /// out[j].direction buffers reach capacity), which also means concurrent
  /// SupportBatch calls on one Ellipsoid are NOT safe — the broker serializes
  /// per-session access, and engines own their ellipsoids exclusively.
  void SupportBatch(const double* panel, int k, SupportInterval* out) const;

  /// Signed cut position α for hyperplane {θ : xᵀθ = cut_value}.
  double CutAlpha(const Vector& x, double cut_value) const;

  /// Replaces E by the Löwner–John ellipsoid of E ∩ {θ : xᵀθ ≤ xᵀc − α·√(xᵀAx)},
  /// i.e. keeps the *lower* halfspace; this is the rejection branch of the
  /// posted-price feedback (price too high ⇒ θ* lies below the cut).
  /// Requires α ∈ (−1/n, 1) for a volume-reducing, well-defined update; the
  /// caller enforces the paper's validity window.
  void CutKeepBelow(const Vector& x, double alpha);

  /// Keeps the *upper* halfspace E ∩ {θ : xᵀθ ≥ ...}: the acceptance branch.
  /// Requires −α ∈ (−1/n, 1) (paper's Line 22 window).
  void CutKeepAbove(const Vector& x, double alpha);

  /// Hot-path overloads reusing a Support() result computed for the same x
  /// on the *current* ellipsoid (saves one O(n²) mat-vec per round).
  void CutKeepBelow(const SupportInterval& support, double alpha);
  void CutKeepAbove(const SupportInterval& support, double alpha);

  /// True iff θ lies inside the (slightly inflated by tol) ellipsoid. Solves
  /// A·y = (θ−c) with Cholesky — O(n³), diagnostics/tests only.
  bool Contains(const Vector& theta, double tol = 1e-9) const;

  /// log(volume) − log(V_n) = ½·log det A (Eq. 3 without the unit-ball
  /// constant, which cancels in every ratio the analysis uses).
  double LogVolumeUnnormalized() const;

  /// Smallest eigenvalue of A (Jacobi; diagnostics/tests only).
  double SmallestShapeEigenvalue() const;

  /// Widths 2√γᵢ(A) of all axes, descending (Definition 1 discussion).
  Vector AxisWidths() const;

  /// Numerical health checks: symmetric, finite, positive diagonal.
  bool LooksHealthy() const;

  /// Cuts applied since the last drift-control re-symmetrization. Part of
  /// the serialized engine state: restoring it keeps a resumed cut sequence
  /// bit-identical to an uninterrupted one (the re-symmetrization would
  /// otherwise fire at different cut counts and perturb low-order bits).
  int cuts_since_symmetrize() const { return cuts_since_symmetrize_; }

  /// Rebuilds an ellipsoid from serialized state (broker session snapshots,
  /// DESIGN.md §9). `cuts_since_symmetrize` must be in [0, 32). With
  /// `packed` the dense snapshot shape is re-packed to its upper triangle
  /// (exact — see DenseShape); the snapshot byte format itself is
  /// storage-mode-agnostic.
  static Ellipsoid FromSnapshotState(Vector center, Matrix shape,
                                     int cuts_since_symmetrize,
                                     bool packed = false);

 private:
  /// Shared implementation: `sign` +1 keeps below (rejection), −1 keeps
  /// above (acceptance). `ax` is the raw support mat-vec A·x and
  /// `half_width` = √(xᵀAx); the normalized direction b = ax/half_width is
  /// never materialized — its scaling folds into the update coefficients.
  void Cut(const Vector& ax, double half_width, double alpha, double sign);

  Vector center_;
  /// Dense storage (empty 0×0 in packed mode).
  Matrix shape_;
  /// Packed storage (empty in dense mode). Exactly one of shape_ /
  /// packed_shape_ is populated, selected by packed_mode_.
  PackedSymMatrix packed_shape_;
  bool packed_mode_ = false;
  /// Cuts since the last explicit symmetrization (floating-point drift in
  /// the fused update is ~1 ulp per cut; re-symmetrizing every few dozen
  /// cuts keeps it far below tolerance without paying O(n²) every round).
  /// Packed mode has no drift to control, but the counter advances (and
  /// resets) on the same schedule so serialized state stays mode-agnostic.
  int cuts_since_symmetrize_ = 0;
  /// SupportBatch's A·X target panel, reused across calls (grow-only) so the
  /// batched hot path stays allocation-free in steady state. Mutable scratch,
  /// not logical state — see the SupportBatch thread-safety note.
  mutable Vector batch_panel_ws_;
};

}  // namespace pdm

#endif  // PDM_ELLIPSOID_ELLIPSOID_H_
