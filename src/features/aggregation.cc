#include "features/aggregation.h"

#include <algorithm>

#include "common/check.h"

namespace pdm {

Vector SortedPartitionFeatures(const Vector& compensations, int n) {
  int64_t m = static_cast<int64_t>(compensations.size());
  PDM_CHECK(n >= 1);
  PDM_CHECK(static_cast<int64_t>(n) <= m);
  Vector sorted(compensations);
  std::sort(sorted.begin(), sorted.end());
  Vector features(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    int64_t begin = m * i / n;
    int64_t end = m * (i + 1) / n;
    double acc = 0.0;
    for (int64_t k = begin; k < end; ++k) acc += sorted[static_cast<size_t>(k)];
    features[static_cast<size_t>(i)] = acc;
  }
  return features;
}

}  // namespace pdm
