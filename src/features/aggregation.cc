#include "features/aggregation.h"

#include <algorithm>

#include "common/check.h"

namespace pdm {

Vector SortedPartitionFeatures(const Vector& compensations, int n) {
  Vector sort_scratch;
  Vector features;
  SortedPartitionFeaturesInto(compensations, n, &sort_scratch, &features);
  return features;
}

void SortedPartitionFeaturesInto(const Vector& compensations, int n,
                                 Vector* sort_scratch, Vector* out) {
  int64_t m = static_cast<int64_t>(compensations.size());
  PDM_CHECK(n >= 1);
  PDM_CHECK(static_cast<int64_t>(n) <= m);
  PDM_DCHECK(sort_scratch != &compensations && out != &compensations);
  sort_scratch->assign(compensations.begin(), compensations.end());
  std::sort(sort_scratch->begin(), sort_scratch->end());
  out->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int64_t begin = m * i / n;
    int64_t end = m * (i + 1) / n;
    double acc = 0.0;
    for (int64_t k = begin; k < end; ++k) acc += (*sort_scratch)[static_cast<size_t>(k)];
    (*out)[static_cast<size_t>(i)] = acc;
  }
}

}  // namespace pdm
