#ifndef PDM_FEATURES_AGGREGATION_H_
#define PDM_FEATURES_AGGREGATION_H_

#include "linalg/vector_ops.h"

/// \file
/// Sorted-partition aggregation of privacy compensations (Section II-B).
///
/// The paper's feature representation for a query: "sort the privacy
/// compensations, and evenly divide them into n partitions. We sum the
/// privacy compensations falling into a certain partition, and thus obtain a
/// feature." Dimension n controls the aggregation granularity; n = 1 reduces
/// to the total compensation and n = #owners to the identity mapping.

namespace pdm {

/// Returns the n-dimensional aggregated feature vector. Requires
/// 1 ≤ n ≤ compensations.size(). The input is copied and sorted ascending;
/// partition i receives indices [⌊i·m/n⌋, ⌊(i+1)·m/n⌋) so sizes differ by at
/// most one. The output preserves total mass: Sum(result) = Sum(input).
Vector SortedPartitionFeatures(const Vector& compensations, int n);

}  // namespace pdm

#endif  // PDM_FEATURES_AGGREGATION_H_
