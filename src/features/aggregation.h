#ifndef PDM_FEATURES_AGGREGATION_H_
#define PDM_FEATURES_AGGREGATION_H_

#include "linalg/vector_ops.h"

/// \file
/// Sorted-partition aggregation of privacy compensations (Section II-B).
///
/// The paper's feature representation for a query: "sort the privacy
/// compensations, and evenly divide them into n partitions. We sum the
/// privacy compensations falling into a certain partition, and thus obtain a
/// feature." Dimension n controls the aggregation granularity; n = 1 reduces
/// to the total compensation and n = #owners to the identity mapping.

namespace pdm {

/// Returns the n-dimensional aggregated feature vector. Requires
/// 1 ≤ n ≤ compensations.size(). The input is copied and sorted ascending;
/// partition i receives indices [⌊i·m/n⌋, ⌊(i+1)·m/n⌋) so sizes differ by at
/// most one. The output preserves total mass: Sum(result) = Sum(input).
Vector SortedPartitionFeatures(const Vector& compensations, int n);

/// Fill-in variant for the per-round hot path. `sort_scratch` receives the
/// sorted copy of `compensations` and `out` the n aggregated features; both
/// buffers are reused across calls, so steady-state calls perform no heap
/// allocation. Neither may alias `compensations`. Identical output to the
/// by-value overload.
void SortedPartitionFeaturesInto(const Vector& compensations, int n,
                                 Vector* sort_scratch, Vector* out);

}  // namespace pdm

#endif  // PDM_FEATURES_AGGREGATION_H_
