#include "features/airbnb_features.h"

#include <cmath>

#include "common/check.h"
#include "data/airbnb_like.h"

namespace pdm {
namespace {

/// Base features for the interaction block, by name (indices refer to the
/// local array built in FeaturesForRow).
constexpr int kNumInteractionBases = 10;

/// The first 34 (i, j) pairs with i < j over the 10 interaction bases.
struct InteractionPair {
  int i;
  int j;
};

const InteractionPair* InteractionPairs() {
  static InteractionPair pairs[AirbnbFeatureSpace::kNumInteractions];
  static bool initialized = false;
  if (!initialized) {
    int k = 0;
    for (int i = 0; i < kNumInteractionBases && k < AirbnbFeatureSpace::kNumInteractions;
         ++i) {
      for (int j = i + 1;
           j < kNumInteractionBases && k < AirbnbFeatureSpace::kNumInteractions; ++j) {
        pairs[k++] = {i, j};
      }
    }
    PDM_CHECK(k == AirbnbFeatureSpace::kNumInteractions);
    initialized = true;
  }
  return pairs;
}

const char* kInteractionBaseNames[kNumInteractionBases] = {
    "city_code", "room_code",    "accommodates", "bedrooms",      "bathrooms",
    "superhost", "review_score", "occupancy",    "log1p_reviews", "instant"};

}  // namespace

void AirbnbFeatureSpace::Fit(const Table& listings) {
  (void)listings;
  // Codebooks are seeded from the canonical schema so the 55-dim layout is
  // stable even when a small sample happens to miss a rare category (e.g.
  // shared rooms are ~5% of listings).
  city_codes_.Fit(AirbnbCityNames());
  room_codes_.Fit(AirbnbRoomTypeNames());
  policy_codes_.Fit(AirbnbCancellationPolicyNames());
  PDM_CHECK(city_codes_.num_categories() == kAirbnbNumCities);
  PDM_CHECK(room_codes_.num_categories() == kAirbnbNumRoomTypes);
  PDM_CHECK(policy_codes_.num_categories() == kAirbnbNumCancellationPolicies);

  const Column& response = listings.column("host_response_rate");
  double sum = 0.0;
  int64_t count = 0;
  for (int64_t r = 0; r < listings.num_rows(); ++r) {
    double v = response.DoubleAt(r);
    if (!std::isnan(v)) {
      sum += v;
      ++count;
    }
  }
  host_response_mean_ = count > 0 ? sum / static_cast<double>(count) : 0.0;
  fitted_ = true;
}

Vector AirbnbFeatureSpace::FeaturesForRow(const Table& listings, int64_t row) const {
  PDM_CHECK(fitted_);
  Vector x = Zeros(kDim);
  int offset = 0;

  x[static_cast<size_t>(offset++)] = 1.0;  // bias

  double city = city_codes_.CodeOf(listings.column("city").StringAt(row));
  double room = room_codes_.CodeOf(listings.column("room_type").StringAt(row));
  double policy =
      policy_codes_.CodeOf(listings.column("cancellation_policy").StringAt(row));
  x[static_cast<size_t>(offset++)] = city;
  x[static_cast<size_t>(offset++)] = room;
  x[static_cast<size_t>(offset++)] = policy;

  double accommodates = listings.column("accommodates").NumericAt(row);
  double bedrooms = listings.column("bedrooms").NumericAt(row);
  double beds = listings.column("beds").NumericAt(row);
  double bathrooms = listings.column("bathrooms").NumericAt(row);
  double response = listings.column("host_response_rate").DoubleAt(row);
  bool response_missing = std::isnan(response);
  if (response_missing) response = host_response_mean_;
  double superhost = listings.column("host_is_superhost").NumericAt(row);
  double instant = listings.column("instant_bookable").NumericAt(row);
  double log_reviews = std::log1p(listings.column("number_of_reviews").NumericAt(row));
  double review_score = listings.column("review_score").NumericAt(row);
  double occupancy = listings.column("occupancy_rate").NumericAt(row);

  const double numeric_block[11] = {accommodates, bedrooms,  beds,
                                    bathrooms,    response,  response_missing ? 1.0 : 0.0,
                                    superhost,    instant,   log_reviews,
                                    review_score, occupancy};
  for (double v : numeric_block) x[static_cast<size_t>(offset++)] = v;

  const char* amenity_names[6] = {"wifi",   "kitchen", "parking",
                                  "air_conditioning", "washer", "tv"};
  for (const char* name : amenity_names) {
    x[static_cast<size_t>(offset++)] = listings.column(name).NumericAt(row);
  }

  const double bases[kNumInteractionBases] = {city,      room,         accommodates,
                                              bedrooms,  bathrooms,    superhost,
                                              review_score, occupancy, log_reviews,
                                              instant};
  const InteractionPair* pairs = InteractionPairs();
  for (int k = 0; k < kNumInteractions; ++k) {
    x[static_cast<size_t>(offset++)] = bases[pairs[k].i] * bases[pairs[k].j];
  }

  PDM_CHECK(offset == kDim);
  return x;
}

Matrix AirbnbFeatureSpace::FeatureMatrix(const Table& listings) const {
  Matrix out(static_cast<int>(listings.num_rows()), kDim);
  for (int64_t r = 0; r < listings.num_rows(); ++r) {
    Vector x = FeaturesForRow(listings, r);
    for (int c = 0; c < kDim; ++c) out(static_cast<int>(r), c) = x[static_cast<size_t>(c)];
  }
  return out;
}

Vector AirbnbFeatureSpace::Targets(const Table& listings) const {
  return listings.column("log_price").doubles();
}

std::vector<std::string> AirbnbFeatureSpace::FeatureNames() const {
  std::vector<std::string> names;
  names.reserve(kDim);
  names.push_back("bias");
  names.push_back("city_code");
  names.push_back("room_code");
  names.push_back("policy_code");
  const char* numeric[11] = {"accommodates", "bedrooms", "beds", "bathrooms",
                             "host_response_rate", "host_response_missing",
                             "host_is_superhost", "instant_bookable", "log1p_reviews",
                             "review_score", "occupancy_rate"};
  for (const char* n : numeric) names.push_back(n);
  const char* amenities[6] = {"wifi", "kitchen", "parking", "air_conditioning", "washer",
                              "tv"};
  for (const char* a : amenities) names.push_back(a);
  const InteractionPair* pairs = InteractionPairs();
  for (int k = 0; k < kNumInteractions; ++k) {
    names.push_back(std::string(kInteractionBaseNames[pairs[k].i]) + "*" +
                    kInteractionBaseNames[pairs[k].j]);
  }
  PDM_CHECK(static_cast<int>(names.size()) == kDim);
  return names;
}

}  // namespace pdm
