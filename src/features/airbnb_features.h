#ifndef PDM_FEATURES_AIRBNB_FEATURES_H_
#define PDM_FEATURES_AIRBNB_FEATURES_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "features/categorical.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Feature engineering for the accommodation-rental application
/// (Section V-B), mirroring the paper's pipeline: categorical columns are
/// encoded "with the pandas built-in data type categoricals, which ... return
/// an integer array of codes" (integer codes, not one-hot), plus "some
/// interaction features to enhance model capacity"; "the final dimension of
/// each feature vector n is 55".
///
/// The engineered space (exactly 55 columns, asserted at runtime):
///   [0]      bias (constant 1; carries the intercept once the market builder
///            standardizes every other column)
///   [1..3]   integer codes: city, room_type, cancellation_policy
///            (missing/unseen = −1, the pandas convention)
///   [4..14]  numeric block (11): accommodates, bedrooms, beds, bathrooms,
///            host_response_rate (mean-imputed), host_response_missing,
///            host_is_superhost, instant_bookable, log1p(number_of_reviews),
///            review_score, occupancy_rate
///   [15..20] amenities (6): wifi, kitchen, parking, air_conditioning,
///            washer, tv
///   [21..54] interactions (34): the first 34 pairwise products of the base
///            list {city, room, accommodates, bedrooms, bathrooms, superhost,
///            review_score, occupancy, log1p_reviews, instant} in (i, j)
///            lexicographic order.
///
/// Every column is dense — each booking request informs all 55 weights,
/// which is what lets the ellipsoid engine converge within the 74,111-round
/// stream as in the paper's Fig. 5(b).

namespace pdm {

class AirbnbFeatureSpace {
 public:
  static constexpr int kDim = 55;
  static constexpr int kNumInteractions = 34;

  /// Learns the categorical codebooks and imputation statistics.
  void Fit(const Table& listings);

  bool fitted() const { return fitted_; }

  /// The engineered 55-dim feature vector for one listing row.
  Vector FeaturesForRow(const Table& listings, int64_t row) const;

  /// All rows as a (num_rows × 55) matrix.
  Matrix FeatureMatrix(const Table& listings) const;

  /// Regression targets: the log_price column.
  Vector Targets(const Table& listings) const;

  /// Human-readable names for each of the 55 features (debugging/reports).
  std::vector<std::string> FeatureNames() const;

 private:
  CategoricalCodebook city_codes_;
  CategoricalCodebook room_codes_;
  CategoricalCodebook policy_codes_;
  double host_response_mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace pdm

#endif  // PDM_FEATURES_AIRBNB_FEATURES_H_
