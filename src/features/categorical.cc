#include "features/categorical.h"

#include "common/check.h"

namespace pdm {

void CategoricalCodebook::Fit(const std::vector<std::string>& values) {
  categories_.clear();
  code_by_value_.clear();
  for (const std::string& value : values) {
    if (value.empty()) continue;  // missing
    if (code_by_value_.find(value) == code_by_value_.end()) {
      code_by_value_.emplace(value, static_cast<int>(categories_.size()));
      categories_.push_back(value);
    }
  }
}

int CategoricalCodebook::CodeOf(const std::string& value) const {
  if (value.empty()) return -1;
  auto it = code_by_value_.find(value);
  return it == code_by_value_.end() ? -1 : it->second;
}

std::vector<int> CategoricalCodebook::Transform(
    const std::vector<std::string>& values) const {
  std::vector<int> codes;
  codes.reserve(values.size());
  for (const std::string& value : values) codes.push_back(CodeOf(value));
  return codes;
}

const std::string& CategoricalCodebook::CategoryOf(int code) const {
  PDM_CHECK(code >= 0 && code < num_categories());
  return categories_[static_cast<size_t>(code)];
}

int CategoricalCodebook::OneHotInto(const std::string& value, std::vector<double>* out,
                                    int offset) const {
  PDM_CHECK(out != nullptr);
  PDM_CHECK(offset >= 0);
  PDM_CHECK(offset + num_categories() <= static_cast<int>(out->size()));
  int code = CodeOf(value);
  if (code >= 0) {
    (*out)[static_cast<size_t>(offset + code)] = 1.0;
  }
  return num_categories();
}

}  // namespace pdm
