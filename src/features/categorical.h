#ifndef PDM_FEATURES_CATEGORICAL_H_
#define PDM_FEATURES_CATEGORICAL_H_

#include <string>
#include <unordered_map>
#include <vector>

/// \file
/// Categorical codebook equivalent to pandas "categoricals" as used by the
/// paper's Airbnb preprocessing: it "can handle the missing values, and
/// return an integer array of codes for all categories". Missing values
/// (empty strings) map to code −1, known categories to 0..k−1 in first-seen
/// order, and unseen categories at transform time also map to −1.

namespace pdm {

class CategoricalCodebook {
 public:
  /// Learns the category set from training values (empty string = missing).
  void Fit(const std::vector<std::string>& values);

  /// Code for one value: 0..k−1, or −1 for missing/unseen.
  int CodeOf(const std::string& value) const;

  /// Vectorized CodeOf.
  std::vector<int> Transform(const std::vector<std::string>& values) const;

  /// Number of distinct (non-missing) categories.
  int num_categories() const { return static_cast<int>(categories_.size()); }

  /// Category string for a code in [0, num_categories).
  const std::string& CategoryOf(int code) const;

  /// One-hot encodes a value into `out[offset .. offset+num_categories)`;
  /// missing/unseen contributes all zeros. Returns num_categories().
  int OneHotInto(const std::string& value, std::vector<double>* out, int offset) const;

 private:
  std::vector<std::string> categories_;
  std::unordered_map<std::string, int> code_by_value_;
};

}  // namespace pdm

#endif  // PDM_FEATURES_CATEGORICAL_H_
