#include "features/hashing.h"

#include <algorithm>

#include "common/check.h"

namespace pdm {

uint64_t Fnv1a64(const std::string& text) { return Fnv1a64(text.data(), text.size()); }

uint64_t Fnv1a64(const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

/// Fixed-width little-endian (field, value) key: 4 + 8 bytes, encoded with
/// shifts so the hash is identical on every platform. One spare byte lets
/// the signed-hash draw use an independent key.
constexpr size_t kFieldValueKeyBytes = 12;

void EncodeFieldValueKey(int field, int64_t value,
                         unsigned char out[kFieldValueKeyBytes + 1]) {
  uint32_t f = static_cast<uint32_t>(field);
  uint64_t v = static_cast<uint64_t>(value);
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned char>(f >> (8 * i));
  for (int i = 0; i < 8; ++i) out[4 + i] = static_cast<unsigned char>(v >> (8 * i));
  out[kFieldValueKeyBytes] = 's';  // suffix for the sign draw
}

}  // namespace

HashingFeaturizer::HashingFeaturizer(int dim, bool signed_hash)
    : dim_(dim), signed_hash_(signed_hash) {
  PDM_CHECK(dim_ > 0);
}

int32_t HashingFeaturizer::SlotOf(int field, int64_t value) const {
  unsigned char key[kFieldValueKeyBytes + 1];
  EncodeFieldValueKey(field, value, key);
  return static_cast<int32_t>(Fnv1a64(key, kFieldValueKeyBytes) %
                              static_cast<uint64_t>(dim_));
}

SparseVector HashingFeaturizer::Featurize(
    const std::vector<std::pair<int, int64_t>>& fields) const {
  std::vector<std::pair<int32_t, double>> slot_scratch;
  SparseVector out;
  FeaturizeInto(fields, &slot_scratch, &out);
  return out;
}

void HashingFeaturizer::FeaturizeInto(
    const std::vector<std::pair<int, int64_t>>& fields,
    std::vector<std::pair<int32_t, double>>* slot_scratch, SparseVector* out) const {
  // Accumulate per-slot (collisions add), then emit in index order.
  slot_scratch->clear();
  slot_scratch->reserve(fields.size());
  for (const auto& [field, value] : fields) {
    unsigned char key[kFieldValueKeyBytes + 1];
    EncodeFieldValueKey(field, value, key);
    int32_t slot = static_cast<int32_t>(Fnv1a64(key, kFieldValueKeyBytes) %
                                        static_cast<uint64_t>(dim_));
    double sign = 1.0;
    if (signed_hash_) {
      // Sign from a high bit of the 's'-suffixed key's hash: FNV-1a's
      // multiply-by-odd-prime preserves the LSB, so bit 0 would be fully
      // correlated with the slot parity for even dims (collisions would
      // never cancel); bit 32 is decorrelated from the slot.
      sign = ((Fnv1a64(key, kFieldValueKeyBytes + 1) >> 32) & 1) ? 1.0 : -1.0;
    }
    slot_scratch->push_back({slot, sign});
  }
  std::sort(slot_scratch->begin(), slot_scratch->end());
  out->indices.clear();
  out->values.clear();
  for (const auto& [slot, value] : *slot_scratch) {
    if (!out->indices.empty() && out->indices.back() == slot) {
      out->values.back() += value;
    } else {
      out->Append(slot, value);
    }
  }
}

}  // namespace pdm
