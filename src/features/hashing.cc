#include "features/hashing.h"

#include <algorithm>

#include "common/check.h"

namespace pdm {

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

HashingFeaturizer::HashingFeaturizer(int dim, bool signed_hash)
    : dim_(dim), signed_hash_(signed_hash) {
  PDM_CHECK(dim_ > 0);
}

int32_t HashingFeaturizer::SlotOf(int field, int64_t value) const {
  std::string key = std::to_string(field) + ":" + std::to_string(value);
  return static_cast<int32_t>(Fnv1a64(key) % static_cast<uint64_t>(dim_));
}

SparseVector HashingFeaturizer::Featurize(
    const std::vector<std::pair<int, int64_t>>& fields) const {
  // Accumulate per-slot (collisions add), then emit in index order.
  std::vector<std::pair<int32_t, double>> slots;
  slots.reserve(fields.size());
  for (const auto& [field, value] : fields) {
    int32_t slot = SlotOf(field, value);
    double sign = 1.0;
    if (signed_hash_) {
      std::string key = std::to_string(field) + ":" + std::to_string(value) + "#s";
      sign = (Fnv1a64(key) & 1) ? 1.0 : -1.0;
    }
    slots.push_back({slot, sign});
  }
  std::sort(slots.begin(), slots.end());
  SparseVector out;
  for (const auto& [slot, value] : slots) {
    if (!out.indices.empty() && out.indices.back() == slot) {
      out.values.back() += value;
    } else {
      out.Append(slot, value);
    }
  }
  return out;
}

}  // namespace pdm
