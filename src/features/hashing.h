#ifndef PDM_FEATURES_HASHING_H_
#define PDM_FEATURES_HASHING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/sparse_vector.h"

/// \file
/// One-hot encoding with the hashing trick (Application 3, Section V-C):
/// "we utilize one-hot encoding with the hashing trick, where the dimension
/// of the feature vector n serves as the modulus after hashing." Each
/// categorical (field, value) pair hashes (FNV-1a over "field:value") to a
/// slot in [0, n); collisions are resolved by addition, the standard
/// hashing-trick semantics.

namespace pdm {

/// 64-bit FNV-1a over a byte string (stable across platforms/runs).
uint64_t Fnv1a64(const std::string& text);

class HashingFeaturizer {
 public:
  /// `dim` is the hashed dimension n; `signed_hash` flips the contribution
  /// sign by one hash bit (reduces collision bias; off by default to match
  /// the paper's plain one-hot).
  explicit HashingFeaturizer(int dim, bool signed_hash = false);

  int dim() const { return dim_; }

  /// Hashed slot of a (field, value) pair.
  int32_t SlotOf(int field, int64_t value) const;

  /// Encodes the pairs into a sorted sparse one-hot vector; pairs that
  /// collide into one slot accumulate.
  SparseVector Featurize(const std::vector<std::pair<int, int64_t>>& fields) const;

 private:
  int dim_;
  bool signed_hash_;
};

}  // namespace pdm

#endif  // PDM_FEATURES_HASHING_H_
