#ifndef PDM_FEATURES_HASHING_H_
#define PDM_FEATURES_HASHING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/sparse_vector.h"

/// \file
/// One-hot encoding with the hashing trick (Application 3, Section V-C):
/// "we utilize one-hot encoding with the hashing trick, where the dimension
/// of the feature vector n serves as the modulus after hashing." Each
/// categorical (field, value) pair hashes (FNV-1a over "field:value") to a
/// slot in [0, n); collisions are resolved by addition, the standard
/// hashing-trick semantics.

namespace pdm {

/// 64-bit FNV-1a over a byte string (stable across platforms/runs).
uint64_t Fnv1a64(const std::string& text);

/// 64-bit FNV-1a over raw bytes — the allocation-free form the per-round
/// featurizer hashes its fixed-width keys with.
uint64_t Fnv1a64(const void* data, size_t len);

class HashingFeaturizer {
 public:
  /// `dim` is the hashed dimension n; `signed_hash` flips the contribution
  /// sign by one hash bit (reduces collision bias; off by default to match
  /// the paper's plain one-hot).
  explicit HashingFeaturizer(int dim, bool signed_hash = false);

  int dim() const { return dim_; }

  /// Hashed slot of a (field, value) pair.
  int32_t SlotOf(int field, int64_t value) const;

  /// Encodes the pairs into a sorted sparse one-hot vector; pairs that
  /// collide into one slot accumulate.
  SparseVector Featurize(const std::vector<std::pair<int, int64_t>>& fields) const;

  /// Fill-in variant for the per-round hot path: `slot_scratch` holds the
  /// (slot, sign) pairs before sorting and `out` the encoded vector; both are
  /// reused across calls, so steady-state calls perform no heap allocation
  /// (keys hash as fixed-width raw bytes — no string formatting). Identical
  /// output to the by-value overload.
  void FeaturizeInto(const std::vector<std::pair<int, int64_t>>& fields,
                     std::vector<std::pair<int32_t, double>>* slot_scratch,
                     SparseVector* out) const;

 private:
  int dim_;
  bool signed_hash_;
};

}  // namespace pdm

#endif  // PDM_FEATURES_HASHING_H_
