#include "features/pca.h"

#include "common/check.h"
#include "linalg/eigen_sym.h"

namespace pdm {

void Pca::Fit(const Matrix& rows, int num_components) {
  int n = rows.rows();
  int d = rows.cols();
  PDM_CHECK(n >= 2);
  PDM_CHECK(num_components >= 1 && num_components <= d);

  mean_ = Zeros(d);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) mean_[static_cast<size_t>(c)] += rows(r, c);
  }
  ScaleInPlace(&mean_, 1.0 / static_cast<double>(n));

  // Sample covariance (divides by n−1).
  Matrix cov(d, d);
  for (int r = 0; r < n; ++r) {
    Vector centered(static_cast<size_t>(d));
    for (int c = 0; c < d; ++c) {
      centered[static_cast<size_t>(c)] = rows(r, c) - mean_[static_cast<size_t>(c)];
    }
    cov.AddRankOne(1.0, centered);
  }
  cov.Scale(1.0 / static_cast<double>(n - 1));

  EigenSymResult eig = JacobiEigenSymmetric(cov);
  components_ = Matrix(num_components, d);
  explained_variance_ = Zeros(num_components);
  for (int k = 0; k < num_components; ++k) {
    explained_variance_[static_cast<size_t>(k)] = eig.eigenvalues[static_cast<size_t>(k)];
    for (int c = 0; c < d; ++c) components_(k, c) = eig.eigenvectors(c, k);
  }
}

Vector Pca::Transform(const Vector& x) const {
  PDM_CHECK(fitted());
  PDM_CHECK(x.size() == mean_.size());
  Vector centered = Sub(x, mean_);
  return components_.MatVec(centered);
}

Matrix Pca::TransformRows(const Matrix& rows) const {
  PDM_CHECK(fitted());
  Matrix out(rows.rows(), components_.rows());
  for (int r = 0; r < rows.rows(); ++r) {
    Vector projected = Transform(rows.Row(r));
    for (int k = 0; k < components_.rows(); ++k) {
      out(r, k) = projected[static_cast<size_t>(k)];
    }
  }
  return out;
}

}  // namespace pdm
