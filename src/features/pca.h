#ifndef PDM_FEATURES_PCA_H_
#define PDM_FEATURES_PCA_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Principal components analysis (Section II-B mentions PCA as the
/// alternative to sorted-partition aggregation when the raw compensation
/// dimension is prohibitively high). Covariance + Jacobi eigendecomposition;
/// suitable for the moderate dimensions this repo uses.

namespace pdm {

class Pca {
 public:
  /// Fits on `rows` (samples × dim), retaining `num_components` directions of
  /// maximal variance. Requires 1 ≤ num_components ≤ dim and ≥ 2 rows.
  void Fit(const Matrix& rows, int num_components);

  /// Projects one centered sample onto the principal directions.
  Vector Transform(const Vector& x) const;

  /// Projects every row.
  Matrix TransformRows(const Matrix& rows) const;

  bool fitted() const { return components_.rows() > 0; }
  int num_components() const { return components_.rows(); }
  const Vector& mean() const { return mean_; }
  /// Row k is the k-th principal direction (unit norm).
  const Matrix& components() const { return components_; }
  /// Variance explained by each retained component, descending.
  const Vector& explained_variance() const { return explained_variance_; }

 private:
  Vector mean_;
  Matrix components_{0, 0};
  Vector explained_variance_;
};

}  // namespace pdm

#endif  // PDM_FEATURES_PCA_H_
