#include "features/scaler.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

double L2NormalizeInPlace(Vector* x) {
  PDM_CHECK(x != nullptr);
  double norm = Norm2(*x);
  if (norm > 0.0) ScaleInPlace(x, 1.0 / norm);
  return norm;
}

void StandardScaler::Fit(const Matrix& rows) {
  PDM_CHECK(rows.rows() > 0);
  int dim = rows.cols();
  means_ = Zeros(dim);
  stddevs_ = Zeros(dim);
  double inv_n = 1.0 / static_cast<double>(rows.rows());
  for (int r = 0; r < rows.rows(); ++r) {
    for (int c = 0; c < dim; ++c) means_[static_cast<size_t>(c)] += rows(r, c);
  }
  ScaleInPlace(&means_, inv_n);
  for (int r = 0; r < rows.rows(); ++r) {
    for (int c = 0; c < dim; ++c) {
      double d = rows(r, c) - means_[static_cast<size_t>(c)];
      stddevs_[static_cast<size_t>(c)] += d * d;
    }
  }
  for (int c = 0; c < dim; ++c) {
    stddevs_[static_cast<size_t>(c)] =
        std::sqrt(stddevs_[static_cast<size_t>(c)] * inv_n);
  }
}

Vector StandardScaler::Transform(const Vector& x) const {
  PDM_CHECK(fitted());
  PDM_CHECK(x.size() == means_.size());
  Vector out(x.size());
  for (size_t c = 0; c < x.size(); ++c) {
    double sd = stddevs_[c];
    out[c] = (x[c] - means_[c]) / (sd > 0.0 ? sd : 1.0);
  }
  return out;
}

Matrix StandardScaler::TransformRows(const Matrix& rows) const {
  PDM_CHECK(fitted());
  PDM_CHECK(rows.cols() == static_cast<int>(means_.size()));
  Matrix out(rows.rows(), rows.cols());
  for (int r = 0; r < rows.rows(); ++r) {
    for (int c = 0; c < rows.cols(); ++c) {
      double sd = stddevs_[static_cast<size_t>(c)];
      out(r, c) = (rows(r, c) - means_[static_cast<size_t>(c)]) / (sd > 0.0 ? sd : 1.0);
    }
  }
  return out;
}

}  // namespace pdm
