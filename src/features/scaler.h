#ifndef PDM_FEATURES_SCALER_H_
#define PDM_FEATURES_SCALER_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Feature scalers. The evaluation normalizes every query feature vector to
/// unit L2 norm (so S = 1 in the regret analysis); the Airbnb pipeline
/// standardizes numeric columns before OLS.

namespace pdm {

/// Scales `x` to unit L2 norm in place; a zero vector is left unchanged.
/// Returns the original norm.
double L2NormalizeInPlace(Vector* x);

/// Per-column standardization fitted on training rows: z = (x − mean)/std.
/// Constant columns (std = 0) pass through centered only.
class StandardScaler {
 public:
  /// Fits column means and standard deviations of `rows` (rows × dim).
  void Fit(const Matrix& rows);

  /// Transforms a single feature vector (must match fitted dim).
  Vector Transform(const Vector& x) const;

  /// Transforms every row of a matrix.
  Matrix TransformRows(const Matrix& rows) const;

  bool fitted() const { return !means_.empty(); }
  const Vector& means() const { return means_; }
  const Vector& stddevs() const { return stddevs_; }

 private:
  Vector means_;
  Vector stddevs_;
};

}  // namespace pdm

#endif  // PDM_FEATURES_SCALER_H_
