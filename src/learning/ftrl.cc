#include "learning/ftrl.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

double Sigmoid(double z) {
  // Branch on sign to avoid overflow in exp.
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

FtrlProximal::FtrlProximal(int dim, FtrlConfig config)
    : dim_(dim), config_(config), z_(Zeros(dim)), n_(Zeros(dim)) {
  PDM_CHECK(dim_ > 0);
  PDM_CHECK(config_.alpha > 0.0);
  PDM_CHECK(config_.beta >= 0.0);
  PDM_CHECK(config_.l1 >= 0.0);
  PDM_CHECK(config_.l2 >= 0.0);
}

double FtrlProximal::WeightAt(int32_t index) const {
  PDM_DCHECK(index >= 0 && index < dim_);
  double zi = z_[static_cast<size_t>(index)];
  if (std::fabs(zi) <= config_.l1) return 0.0;
  double sign = zi < 0.0 ? -1.0 : 1.0;
  double ni = n_[static_cast<size_t>(index)];
  return -(zi - sign * config_.l1) /
         ((config_.beta + std::sqrt(ni)) / config_.alpha + config_.l2);
}

double FtrlProximal::bias() const {
  if (!config_.use_bias || bias_n_ == 0.0) return 0.0;
  // Unregularized FTRL closed form (λ₁ = λ₂ = 0).
  return -bias_z_ / ((config_.beta + std::sqrt(bias_n_)) / config_.alpha);
}

double FtrlProximal::Predict(const SparseVector& x) const {
  double dot = bias();
  for (size_t k = 0; k < x.indices.size(); ++k) {
    dot += x.values[k] * WeightAt(x.indices[k]);
  }
  return Sigmoid(dot);
}

double FtrlProximal::Train(const SparseVector& x, bool clicked) {
  double p = Predict(x);
  double y = clicked ? 1.0 : 0.0;
  for (size_t k = 0; k < x.indices.size(); ++k) {
    int32_t i = x.indices[k];
    double g = (p - y) * x.values[k];
    double ni = n_[static_cast<size_t>(i)];
    // Per-coordinate adaptive step: sigma = (√(n+g²) − √n)/α.
    double sigma = (std::sqrt(ni + g * g) - std::sqrt(ni)) / config_.alpha;
    double wi = WeightAt(i);
    z_[static_cast<size_t>(i)] += g - sigma * wi;
    n_[static_cast<size_t>(i)] = ni + g * g;
  }
  if (config_.use_bias) {
    double g = p - y;
    double sigma = (std::sqrt(bias_n_ + g * g) - std::sqrt(bias_n_)) / config_.alpha;
    double wb = bias();
    bias_z_ += g - sigma * wb;
    bias_n_ += g * g;
  }
  ++examples_seen_;
  return p;
}

Vector FtrlProximal::Weights() const {
  Vector w(static_cast<size_t>(dim_));
  for (int i = 0; i < dim_; ++i) w[static_cast<size_t>(i)] = WeightAt(i);
  return w;
}

int FtrlProximal::NonZeroCount() const {
  int count = 0;
  for (int i = 0; i < dim_; ++i) {
    if (WeightAt(i) != 0.0) ++count;
  }
  return count;
}

}  // namespace pdm
