#ifndef PDM_LEARNING_FTRL_H_
#define PDM_LEARNING_FTRL_H_

#include <cstdint>

#include "linalg/sparse_vector.h"
#include "linalg/vector_ops.h"

/// \file
/// FTRL-Proximal logistic regression (McMahan et al., "Ad click prediction: a
/// view from the trenches", KDD 2013 — the paper's reference [44]).
///
/// Application 3 uses it to learn the sparse CTR weight vector θ* over hashed
/// one-hot features: "apply Follow The Proximally Regularized Leader based
/// logistic regression ... an online learning algorithm with per-coordinate
/// learning rates and L1, L2 regularizations, and can preserve excellent
/// performance and sparsity" (Section V-C).
///
/// Per-coordinate state (z_i, n_i); weights are recovered lazily:
///   w_i = 0                                        if |z_i| ≤ λ₁
///   w_i = −(z_i − sgn(z_i)·λ₁) / ((β + √n_i)/α + λ₂)  otherwise.

namespace pdm {

struct FtrlConfig {
  double alpha = 0.1;  ///< Per-coordinate learning-rate scale.
  double beta = 1.0;   ///< Learning-rate smoothing.
  double l1 = 1.0;     ///< L1 strength λ₁ (drives sparsity).
  double l2 = 1.0;     ///< L2 strength λ₂.
  /// Learn an unregularized intercept. Without it, every frequently-hit
  /// hashed slot must carry a share of the base click rate and L1 cannot
  /// zero anything out.
  bool use_bias = false;
};

class FtrlProximal {
 public:
  FtrlProximal(int dim, FtrlConfig config);

  int dim() const { return dim_; }

  /// Predicted click probability σ(w·x) for a sparse example.
  double Predict(const SparseVector& x) const;

  /// One online step: predict, then update (z, n) with the logistic gradient
  /// for label y ∈ {0, 1}. Returns the pre-update prediction.
  double Train(const SparseVector& x, bool clicked);

  /// Current weight for one coordinate (lazy closed form).
  double WeightAt(int32_t index) const;

  /// Materializes the full dense weight vector.
  Vector Weights() const;

  /// Number of non-zero weights (the paper reports 21/23). The intercept is
  /// not counted.
  int NonZeroCount() const;

  /// Learned intercept (0 unless config.use_bias).
  double bias() const;

  int64_t examples_seen() const { return examples_seen_; }

 private:
  int dim_;
  FtrlConfig config_;
  Vector z_;
  Vector n_;
  double bias_z_ = 0.0;
  double bias_n_ = 0.0;
  int64_t examples_seen_ = 0;
};

/// Numerically safe logistic sigmoid.
double Sigmoid(double z);

}  // namespace pdm

#endif  // PDM_LEARNING_FTRL_H_
