#include "learning/kernels.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

double LinearKernel::operator()(const Vector& a, const Vector& b) const {
  return Dot(a, b);
}

RbfKernel::RbfKernel(double gamma) : gamma_(gamma) { PDM_CHECK(gamma_ > 0.0); }

double RbfKernel::operator()(const Vector& a, const Vector& b) const {
  PDM_CHECK(a.size() == b.size());
  double dist_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    dist_sq += d * d;
  }
  return std::exp(-gamma_ * dist_sq);
}

PolynomialKernel::PolynomialKernel(int degree, double offset)
    : degree_(degree), offset_(offset) {
  PDM_CHECK(degree_ >= 1);
  PDM_CHECK(offset_ >= 0.0);
}

double PolynomialKernel::operator()(const Vector& a, const Vector& b) const {
  double base = Dot(a, b) + offset_;
  double result = 1.0;
  for (int k = 0; k < degree_; ++k) result *= base;
  return result;
}

LandmarkKernelMap::LandmarkKernelMap(std::shared_ptr<const Kernel> kernel, Matrix landmarks)
    : kernel_(std::move(kernel)), landmarks_(std::move(landmarks)) {
  PDM_CHECK(kernel_ != nullptr);
  PDM_CHECK(landmarks_.rows() > 0);
  landmark_rows_.reserve(static_cast<size_t>(landmarks_.rows()));
  for (int m = 0; m < landmarks_.rows(); ++m) {
    landmark_rows_.push_back(landmarks_.Row(m));
  }
}

Vector LandmarkKernelMap::Map(const Vector& x) const {
  Vector out;
  MapInto(x, &out);
  return out;
}

void LandmarkKernelMap::MapInto(const Vector& x, Vector* out) const {
  PDM_CHECK(static_cast<int>(x.size()) == input_dim());
  out->resize(static_cast<size_t>(output_dim()));
  for (size_t m = 0; m < landmark_rows_.size(); ++m) {
    (*out)[m] = (*kernel_)(x, landmark_rows_[m]);
  }
}

Matrix LandmarkKernelMap::LandmarkGram() const {
  int m = output_dim();
  Matrix gram(m, m);
  for (int i = 0; i < m; ++i) {
    Vector li = landmarks_.Row(i);
    for (int j = i; j < m; ++j) {
      double k = (*kernel_)(li, landmarks_.Row(j));
      gram(i, j) = k;
      gram(j, i) = k;
    }
  }
  return gram;
}

}  // namespace pdm
