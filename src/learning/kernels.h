#ifndef PDM_LEARNING_KERNELS_H_
#define PDM_LEARNING_KERNELS_H_

#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Mercer kernels and the landmark feature map for the kernelized market
/// value model (Section IV-A): v_t = Σ_k K(x_t, x_k)·θ*_k.
///
/// The paper's formulation indexes past rounds, so the weight dimension grows
/// with t; a fixed-dimension engine needs a bounded map. We use the standard
/// landmark (Nyström-style) substitution: pick m reference points l_1..l_m
/// and define φ(x) = (K(x, l_1), …, K(x, l_m)). This preserves the structure
/// the pricing engine exploits — the market value is linear in an unknown
/// weight vector over kernel evaluations — with m fixed. Documented as a
/// substitution in DESIGN.md §2.

namespace pdm {

class Kernel {
 public:
  virtual ~Kernel() = default;
  /// K(a, b); must be symmetric positive semi-definite (Mercer).
  virtual double operator()(const Vector& a, const Vector& b) const = 0;
};

/// K(a,b) = aᵀb.
class LinearKernel : public Kernel {
 public:
  double operator()(const Vector& a, const Vector& b) const override;
};

/// K(a,b) = exp(−γ‖a−b‖²).
class RbfKernel : public Kernel {
 public:
  explicit RbfKernel(double gamma);
  double operator()(const Vector& a, const Vector& b) const override;

 private:
  double gamma_;
};

/// K(a,b) = (aᵀb + c)^degree.
class PolynomialKernel : public Kernel {
 public:
  PolynomialKernel(int degree, double offset);
  double operator()(const Vector& a, const Vector& b) const override;

 private:
  int degree_;
  double offset_;
};

/// φ(x) = (K(x, l_1), …, K(x, l_m)) over fixed landmarks.
class LandmarkKernelMap {
 public:
  /// `landmarks` is m × d (one landmark per row); the kernel is shared.
  LandmarkKernelMap(std::shared_ptr<const Kernel> kernel, Matrix landmarks);

  int input_dim() const { return landmarks_.cols(); }
  int output_dim() const { return landmarks_.rows(); }

  Vector Map(const Vector& x) const;

  /// φ(x) into a caller-owned buffer (resized to output_dim(); steady-state
  /// reuse performs no allocation — the per-round hot path of the kernelized
  /// workload).
  void MapInto(const Vector& x, Vector* out) const;

  /// Gram matrix K(l_i, l_j) of the landmarks (tests verify PSD-ness).
  Matrix LandmarkGram() const;

 private:
  std::shared_ptr<const Kernel> kernel_;
  Matrix landmarks_;
  /// Landmarks as row vectors, cached at construction so MapInto evaluates
  /// K(x, l_m) without materializing a row per call.
  std::vector<Vector> landmark_rows_;
};

}  // namespace pdm

#endif  // PDM_LEARNING_KERNELS_H_
