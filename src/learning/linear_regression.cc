#include "learning/linear_regression.h"

#include "common/check.h"
#include "linalg/cholesky.h"

namespace pdm {

bool LinearRegression::Fit(const Matrix& x, const Vector& y) {
  int n = x.rows();
  int d = x.cols();
  PDM_CHECK(n > 0);
  PDM_CHECK(static_cast<int>(y.size()) == n);

  // Normal matrix XᵀX and moment vector Xᵀy in one pass over the rows.
  Matrix gram(d, d);
  Vector moment = Zeros(d);
  for (int r = 0; r < n; ++r) {
    Vector row = x.Row(r);
    gram.AddRankOne(1.0, row);
    AxpyInPlace(y[static_cast<size_t>(r)], row, &moment);
  }
  for (int i = 0; i < d; ++i) gram(i, i) += config_.ridge;

  Matrix chol(0, 0);
  if (!CholeskyFactor(gram, &chol)) {
    weights_.clear();
    return false;
  }
  weights_ = CholeskySolve(chol, moment);
  return true;
}

double LinearRegression::Predict(const Vector& features) const {
  PDM_CHECK(fitted());
  return Dot(weights_, features);
}

Vector LinearRegression::PredictRows(const Matrix& x) const {
  PDM_CHECK(fitted());
  return x.MatVec(weights_);
}

double LinearRegression::MeanSquaredError(const Matrix& x, const Vector& y) const {
  PDM_CHECK(fitted());
  PDM_CHECK(x.rows() == static_cast<int>(y.size()));
  Vector preds = PredictRows(x);
  double acc = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    double d = preds[i] - y[i];
    acc += d * d;
  }
  return acc / static_cast<double>(y.size());
}

}  // namespace pdm
