#ifndef PDM_LEARNING_LINEAR_REGRESSION_H_
#define PDM_LEARNING_LINEAR_REGRESSION_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Ordinary least squares / ridge regression by normal equations + Cholesky.
///
/// Application 2 learns the Airbnb market-value weights offline: "we regard
/// the logarithmic lodging prices as target variables in supervised learning,
/// and then apply linear regression to learn the coefficients of different
/// features, which play the role of θ* here" (Section V-B).

namespace pdm {

struct LinearRegressionConfig {
  /// L2 penalty λ; 0 gives OLS. A tiny ridge keeps the normal equations well
  /// conditioned when one-hot blocks are collinear.
  double ridge = 1e-8;
};

class LinearRegression {
 public:
  explicit LinearRegression(LinearRegressionConfig config = {}) : config_(config) {}

  /// Fits θ = (XᵀX + λI)⁻¹ Xᵀy. X is samples × dim. Returns false if the
  /// regularized normal matrix is numerically singular.
  bool Fit(const Matrix& x, const Vector& y);

  bool fitted() const { return !weights_.empty(); }
  const Vector& weights() const { return weights_; }

  double Predict(const Vector& features) const;
  Vector PredictRows(const Matrix& x) const;

  /// Mean squared error over a dataset.
  double MeanSquaredError(const Matrix& x, const Vector& y) const;

 private:
  LinearRegressionConfig config_;
  Vector weights_;
};

}  // namespace pdm

#endif  // PDM_LEARNING_LINEAR_REGRESSION_H_
