#include "learning/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pdm {

double MeanSquaredError(const Vector& predictions, const Vector& targets) {
  PDM_CHECK(predictions.size() == targets.size());
  PDM_CHECK(!predictions.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    double d = predictions[i] - targets[i];
    acc += d * d;
  }
  return acc / static_cast<double>(predictions.size());
}

double LogLoss(const Vector& probabilities, const std::vector<bool>& labels) {
  PDM_CHECK(probabilities.size() == labels.size());
  PDM_CHECK(!probabilities.empty());
  double acc = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    double p = std::clamp(probabilities[i], 1e-12, 1.0 - 1e-12);
    acc += labels[i] ? -std::log(p) : -std::log(1.0 - p);
  }
  return acc / static_cast<double>(probabilities.size());
}

double BinaryAccuracy(const Vector& probabilities, const std::vector<bool>& labels) {
  PDM_CHECK(probabilities.size() == labels.size());
  PDM_CHECK(!probabilities.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    if ((probabilities[i] >= 0.5) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probabilities.size());
}

}  // namespace pdm
