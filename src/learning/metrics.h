#ifndef PDM_LEARNING_METRICS_H_
#define PDM_LEARNING_METRICS_H_

#include <vector>

#include "linalg/vector_ops.h"

/// \file
/// Evaluation metrics used to calibrate the offline learners against the
/// paper's reported numbers (Airbnb OLS test MSE 0.226; Avazu FTRL log-loss
/// 0.420/0.406).

namespace pdm {

/// Mean squared error between predictions and targets.
double MeanSquaredError(const Vector& predictions, const Vector& targets);

/// Mean logistic loss: −mean(y·log p + (1−y)·log(1−p)), probabilities clamped
/// to [1e-12, 1−1e-12].
double LogLoss(const Vector& probabilities, const std::vector<bool>& labels);

/// Fraction of correct 0.5-thresholded predictions.
double BinaryAccuracy(const Vector& probabilities, const std::vector<bool>& labels);

}  // namespace pdm

#endif  // PDM_LEARNING_METRICS_H_
