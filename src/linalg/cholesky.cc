#include "linalg/cholesky.h"

#include <cmath>

namespace pdm {

bool CholeskyFactor(const Matrix& a, Matrix* l) {
  PDM_CHECK(a.rows() == a.cols());
  PDM_CHECK(l != nullptr);
  int n = a.rows();
  *l = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= (*l)(j, k) * (*l)(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    double ljj = std::sqrt(diag);
    (*l)(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (int k = 0; k < j; ++k) acc -= (*l)(i, k) * (*l)(j, k);
      (*l)(i, j) = acc / ljj;
    }
  }
  return true;
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  int n = l.rows();
  PDM_CHECK(static_cast<int>(b.size()) == n);
  // Forward substitution: L·y = b.
  Vector y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double acc = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) acc -= l(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = acc / l(i, i);
  }
  // Back substitution: Lᵀ·x = y.
  Vector x(static_cast<size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double acc = y[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) acc -= l(k, i) * x[static_cast<size_t>(k)];
    x[static_cast<size_t>(i)] = acc / l(i, i);
  }
  return x;
}

double CholeskyLogDet(const Matrix& l) {
  double acc = 0.0;
  for (int i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

Vector SolveSpd(const Matrix& a, const Vector& b) {
  Matrix l(0, 0);
  PDM_CHECK(CholeskyFactor(a, &l));
  return CholeskySolve(l, b);
}

}  // namespace pdm
