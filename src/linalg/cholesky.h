#ifndef PDM_LINALG_CHOLESKY_H_
#define PDM_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Cholesky factorization for symmetric positive-definite systems. Used by
/// (a) the OLS/ridge learners (normal equations), and (b) the ellipsoid
/// log-volume computation (log det A = 2·Σ log L_ii).

namespace pdm {

/// Computes the lower-triangular L with A = L·Lᵀ. Returns false if A is not
/// (numerically) positive definite; `*l` is unspecified in that case.
bool CholeskyFactor(const Matrix& a, Matrix* l);

/// Solves A·x = b given the factor L from CholeskyFactor (forward then back
/// substitution).
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// log det A = 2·Σᵢ log L_ii given the factor L.
double CholeskyLogDet(const Matrix& l);

/// Convenience: solves the SPD system A·x = b, aborting if A is not positive
/// definite. Prefer the two-step API when failure must be handled.
Vector SolveSpd(const Matrix& a, const Vector& b);

}  // namespace pdm

#endif  // PDM_LINALG_CHOLESKY_H_
