#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pdm {

EigenSymResult JacobiEigenSymmetric(const Matrix& a, int max_sweeps) {
  PDM_CHECK(a.rows() == a.cols());
  int n = a.rows();
  EigenSymResult result;
  result.eigenvectors = Matrix::ScaledIdentity(n, 1.0);
  Matrix m = a;
  m.Symmetrize();

  auto off_diag_norm = [&]() {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) acc += m(i, j) * m(i, j);
    }
    return std::sqrt(acc);
  };

  const double tol = 1e-12 * std::max(1.0, m.FrobeniusNorm());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= tol) {
      result.converged = true;
      break;
    }
    ++result.sweeps;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double apq = m(p, q);
        if (std::fabs(apq) <= tol / (n * n + 1.0)) continue;
        double app = m(p, p);
        double aqq = m(q, q);
        // Classic Jacobi rotation parameters (Golub & Van Loan §8.5).
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = t * c;
        for (int k = 0; k < n; ++k) {
          double mkp = m(k, p);
          double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          double mpk = m(p, k);
          double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (int k = 0; k < n; ++k) {
          double vkp = result.eigenvectors(k, p);
          double vkq = result.eigenvectors(k, q);
          result.eigenvectors(k, p) = c * vkp - s * vkq;
          result.eigenvectors(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!result.converged && off_diag_norm() <= tol) result.converged = true;

  // Collect and sort eigenpairs in descending eigenvalue order.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Vector diag(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) diag[static_cast<size_t>(i)] = m(i, i);
  std::sort(order.begin(), order.end(), [&](int lhs, int rhs) {
    return diag[static_cast<size_t>(lhs)] > diag[static_cast<size_t>(rhs)];
  });
  result.eigenvalues.resize(static_cast<size_t>(n));
  Matrix sorted_vectors(n, n);
  for (int k = 0; k < n; ++k) {
    int src = order[static_cast<size_t>(k)];
    result.eigenvalues[static_cast<size_t>(k)] = diag[static_cast<size_t>(src)];
    for (int i = 0; i < n; ++i) sorted_vectors(i, k) = result.eigenvectors(i, src);
  }
  result.eigenvectors = std::move(sorted_vectors);
  return result;
}

double SmallestEigenvalue(const Matrix& a) {
  EigenSymResult r = JacobiEigenSymmetric(a);
  return r.eigenvalues.back();
}

}  // namespace pdm
