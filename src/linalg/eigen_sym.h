#ifndef PDM_LINALG_EIGEN_SYM_H_
#define PDM_LINALG_EIGEN_SYM_H_

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Cyclic Jacobi eigendecomposition for symmetric matrices.
///
/// The ellipsoid analysis (Lemmas 3–5) reasons about the smallest eigenvalue
/// of the shape matrix; tests and diagnostics verify those bounds
/// numerically. PCA in the feature pipeline also uses this solver. Jacobi is
/// O(n³) per sweep — fine for diagnostics, never on the per-round hot path.

namespace pdm {

struct EigenSymResult {
  /// Eigenvalues sorted in descending order (γ₁ ≥ … ≥ γ_n, paper notation).
  Vector eigenvalues;
  /// Column k of `eigenvectors` (i.e. eigenvectors(i, k) over i) is the unit
  /// eigenvector for eigenvalues[k].
  Matrix eigenvectors{0, 0};
  /// Number of sweeps performed.
  int sweeps = 0;
  /// True if off-diagonal mass converged below tolerance.
  bool converged = false;
};

/// Decomposes symmetric `a`; asymmetry above ~1e-9 (relative) is a caller
/// bug. `max_sweeps` bounds the cyclic Jacobi iterations.
EigenSymResult JacobiEigenSymmetric(const Matrix& a, int max_sweeps = 64);

/// Smallest eigenvalue convenience wrapper.
double SmallestEigenvalue(const Matrix& a);

}  // namespace pdm

#endif  // PDM_LINALG_EIGEN_SYM_H_
