#include "linalg/matrix.h"

#include <cmath>

#include "common/arch.h"

namespace pdm {
namespace {

/// Row-major mat-vec with a reassociated 4-accumulator inner reduction (see
/// vector_ops.cc's DotKernel for the rationale). `x` must not alias `y`.
PDM_TARGET_CLONES
void MatVecKernel(const double* __restrict data, int rows, int cols,
                  const double* __restrict x, double* __restrict y) {
  for (int r = 0; r < rows; ++r) {
    const double* __restrict row = data + static_cast<size_t>(r) * cols;
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      acc[0] += row[c] * x[c];
      acc[1] += row[c + 1] * x[c + 1];
      acc[2] += row[c + 2] * x[c + 2];
      acc[3] += row[c + 3] * x[c + 3];
    }
    double total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (; c < cols; ++c) total += row[c] * x[c];
    y[r] = total;
  }
}

/// A ← factor·(A − coef·b·bᵀ), elementwise — the fused Löwner–John update.
PDM_TARGET_CLONES
void FusedScaleRankOneKernel(double* __restrict data, int n, double factor,
                             double coef, const double* __restrict b) {
  for (int r = 0; r < n; ++r) {
    double* __restrict row = data + static_cast<size_t>(r) * n;
    double cr = coef * b[r];
    for (int c = 0; c < n; ++c) {
      row[c] = factor * (row[c] - cr * b[c]);
    }
  }
}

}  // namespace

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  PDM_CHECK(rows >= 0 && cols >= 0);
  data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0);
}

Matrix Matrix::ScaledIdentity(int n, double diag) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = diag;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  PDM_CHECK(!rows.empty());
  int r = static_cast<int>(rows.size());
  int c = static_cast<int>(rows[0].size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    PDM_CHECK(static_cast<int>(rows[static_cast<size_t>(i)].size()) == c);
    for (int j = 0; j < c; ++j) {
      m(i, j) = rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
  return m;
}

Vector Matrix::MatVec(const Vector& x) const {
  Vector y;
  MatVecInto(x, &y);
  return y;
}

void Matrix::MatVecInto(const Vector& x, Vector* y) const {
  PDM_CHECK(static_cast<int>(x.size()) == cols_);
  PDM_DCHECK(&x != y);
  y->resize(static_cast<size_t>(rows_));
  MatVecKernel(data_.data(), rows_, cols_, x.data(), y->data());
}

Vector Matrix::MatTVec(const Vector& x) const {
  Vector y;
  MatTVecInto(x, &y);
  return y;
}

void Matrix::MatTVecInto(const Vector& x, Vector* y) const {
  PDM_CHECK(static_cast<int>(x.size()) == rows_);
  PDM_DCHECK(&x != y);
  y->assign(static_cast<size_t>(cols_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = data_.data() + static_cast<size_t>(r) * cols_;
    double xr = x[static_cast<size_t>(r)];
    for (int c = 0; c < cols_; ++c) (*y)[static_cast<size_t>(c)] += row[c] * xr;
  }
}

double Matrix::QuadraticForm(const Vector& x) const {
  PDM_CHECK(rows_ == cols_);
  PDM_CHECK(static_cast<int>(x.size()) == cols_);
  double acc = 0.0;
  for (int r = 0; r < rows_; ++r) {
    const double* row = data_.data() + static_cast<size_t>(r) * cols_;
    double partial = 0.0;
    for (int c = 0; c < cols_; ++c) partial += row[c] * x[static_cast<size_t>(c)];
    acc += partial * x[static_cast<size_t>(r)];
  }
  return acc;
}

void Matrix::FusedScaleRankOne(double factor, double coef, const Vector& b) {
  PDM_CHECK(rows_ == cols_);
  PDM_CHECK(static_cast<int>(b.size()) == cols_);
  FusedScaleRankOneKernel(data_.data(), rows_, factor, coef, b.data());
}

void Matrix::AddRankOne(double s, const Vector& b) {
  PDM_CHECK(rows_ == cols_);
  PDM_CHECK(static_cast<int>(b.size()) == cols_);
  for (int r = 0; r < rows_; ++r) {
    double* row = data_.data() + static_cast<size_t>(r) * cols_;
    double sr = s * b[static_cast<size_t>(r)];
    for (int c = 0; c < cols_; ++c) row[c] += sr * b[static_cast<size_t>(c)];
  }
}

void Matrix::Scale(double s) {
  for (double& x : data_) x *= s;
}

void Matrix::Symmetrize() {
  PDM_CHECK(rows_ == cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

double Matrix::MaxAsymmetry() const {
  PDM_CHECK(rows_ == cols_);
  double worst = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      worst = std::max(worst, std::fabs((*this)(r, c) - (*this)(c, r)));
    }
  }
  return worst;
}

double Matrix::Trace() const {
  PDM_CHECK(rows_ == cols_);
  double acc = 0.0;
  for (int i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  PDM_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + static_cast<size_t>(k) * other.cols_;
      double* orow = out.data_.data() + static_cast<size_t>(i) * out.cols_;
      for (int j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

Vector Matrix::Row(int r) const {
  PDM_CHECK(r >= 0 && r < rows_);
  Vector out(static_cast<size_t>(cols_));
  for (int c = 0; c < cols_; ++c) out[static_cast<size_t>(c)] = (*this)(r, c);
  return out;
}

}  // namespace pdm
