#include "linalg/matrix.h"

#include <cmath>

#include "common/arch.h"

namespace pdm {
namespace {

/// One row·vector dot with a reassociated 4-accumulator stride-4 reduction
/// (see vector_ops.cc's DotKernel for the rationale), shared by the mat-vec
/// and matrix–panel kernels below so "bit-identical per query" is structural:
/// both inline literally this op sequence. Must stay inline-only — a separate
/// compiled copy could be specialized differently per call site.
inline double RowDot(const double* __restrict row, const double* __restrict x,
                     int cols) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  int c = 0;
  for (; c + 4 <= cols; c += 4) {
    acc[0] += row[c] * x[c];
    acc[1] += row[c + 1] * x[c + 1];
    acc[2] += row[c + 2] * x[c + 2];
    acc[3] += row[c + 3] * x[c + 3];
  }
  double total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (; c < cols; ++c) total += row[c] * x[c];
  return total;
}

/// Row-major mat-vec. `x` must not alias `y`.
PDM_TARGET_CLONES
void MatVecKernel(const double* __restrict data, int rows, int cols,
                  const double* __restrict x, double* __restrict y) {
  for (int r = 0; r < rows; ++r) {
    y[r] = RowDot(data + static_cast<size_t>(r) * cols, x, cols);
  }
}

/// Matrix–panel kernel: Y ← A·X for a query-major packed panel of k vectors,
/// blocked 4 queries wide so each A row is touched four times back to back —
/// one pass over A per block instead of one per query, which keeps the row
/// in L1 (and, once A outgrows L1, turns k memory sweeps into k/4). Each
/// query's dot is RowDot itself, so every output column is bit-identical to
/// a standalone MatVecKernel pass by construction. Remainder queries
/// (k mod 4) run through MatVecKernel.
///
/// Deliberately NOT a fully fused inner loop: a version that interleaved the
/// four queries' accumulator arrays inside one c-loop defeated GCC's SLP
/// vectorizer (it serialized the reductions through scalar adds plus lane
/// shuffles, ~3× slower than this shape at n ≥ 20). Four sequential RowDot
/// calls vectorize exactly like the mat-vec path while still amortizing the
/// row traffic. The identity additionally requires that the compiler not
/// contract mul+add into FMA differently per call site, so this layer builds
/// with -ffp-contract=off (CMakeLists.txt).
PDM_TARGET_CLONES
void MatPanelKernel(const double* __restrict data, int rows, int cols,
                    const double* __restrict panel, int k, double* __restrict y) {
  int j = 0;
  for (; j + 4 <= k; j += 4) {
    const double* __restrict x0 = panel + static_cast<size_t>(j) * cols;
    const double* __restrict x1 = panel + static_cast<size_t>(j + 1) * cols;
    const double* __restrict x2 = panel + static_cast<size_t>(j + 2) * cols;
    const double* __restrict x3 = panel + static_cast<size_t>(j + 3) * cols;
    double* __restrict y0 = y + static_cast<size_t>(j) * rows;
    double* __restrict y1 = y + static_cast<size_t>(j + 1) * rows;
    double* __restrict y2 = y + static_cast<size_t>(j + 2) * rows;
    double* __restrict y3 = y + static_cast<size_t>(j + 3) * rows;
    for (int r = 0; r < rows; ++r) {
      const double* __restrict row = data + static_cast<size_t>(r) * cols;
      y0[r] = RowDot(row, x0, cols);
      y1[r] = RowDot(row, x1, cols);
      y2[r] = RowDot(row, x2, cols);
      y3[r] = RowDot(row, x3, cols);
    }
  }
  for (; j < k; ++j) {
    MatVecKernel(data, rows, cols, panel + static_cast<size_t>(j) * cols,
                 y + static_cast<size_t>(j) * rows);
  }
}

/// A ← factor·(A − coef·b·bᵀ), elementwise — the fused Löwner–John update.
PDM_TARGET_CLONES
void FusedScaleRankOneKernel(double* __restrict data, int n, double factor,
                             double coef, const double* __restrict b) {
  for (int r = 0; r < n; ++r) {
    double* __restrict row = data + static_cast<size_t>(r) * n;
    double cr = coef * b[r];
    for (int c = 0; c < n; ++c) {
      row[c] = factor * (row[c] - cr * b[c]);
    }
  }
}

}  // namespace

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  PDM_CHECK(rows >= 0 && cols >= 0);
  data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0);
}

Matrix Matrix::ScaledIdentity(int n, double diag) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = diag;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  PDM_CHECK(!rows.empty());
  int r = static_cast<int>(rows.size());
  int c = static_cast<int>(rows[0].size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    PDM_CHECK(static_cast<int>(rows[static_cast<size_t>(i)].size()) == c);
    for (int j = 0; j < c; ++j) {
      m(i, j) = rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
  return m;
}

Vector Matrix::MatVec(const Vector& x) const {
  Vector y;
  MatVecInto(x, &y);
  return y;
}

void Matrix::MatVecInto(const Vector& x, Vector* y) const {
  PDM_CHECK(static_cast<int>(x.size()) == cols_);
  PDM_DCHECK(&x != y);
  y->resize(static_cast<size_t>(rows_));
  MatVecKernel(data_.data(), rows_, cols_, x.data(), y->data());
}

void Matrix::MatPanelInto(const double* panel, int k, double* y) const {
  PDM_CHECK(k >= 0);
  if (k == 0) return;
  PDM_CHECK(panel != nullptr && y != nullptr);
  MatPanelKernel(data_.data(), rows_, cols_, panel, k, y);
}

Vector Matrix::MatTVec(const Vector& x) const {
  Vector y;
  MatTVecInto(x, &y);
  return y;
}

void Matrix::MatTVecInto(const Vector& x, Vector* y) const {
  PDM_CHECK(static_cast<int>(x.size()) == rows_);
  PDM_DCHECK(&x != y);
  y->assign(static_cast<size_t>(cols_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = data_.data() + static_cast<size_t>(r) * cols_;
    double xr = x[static_cast<size_t>(r)];
    for (int c = 0; c < cols_; ++c) (*y)[static_cast<size_t>(c)] += row[c] * xr;
  }
}

double Matrix::QuadraticForm(const Vector& x) const {
  PDM_CHECK(rows_ == cols_);
  PDM_CHECK(static_cast<int>(x.size()) == cols_);
  double acc = 0.0;
  for (int r = 0; r < rows_; ++r) {
    const double* row = data_.data() + static_cast<size_t>(r) * cols_;
    double partial = 0.0;
    for (int c = 0; c < cols_; ++c) partial += row[c] * x[static_cast<size_t>(c)];
    acc += partial * x[static_cast<size_t>(r)];
  }
  return acc;
}

void Matrix::FusedScaleRankOne(double factor, double coef, const Vector& b) {
  PDM_CHECK(rows_ == cols_);
  PDM_CHECK(static_cast<int>(b.size()) == cols_);
  FusedScaleRankOneKernel(data_.data(), rows_, factor, coef, b.data());
}

void Matrix::AddRankOne(double s, const Vector& b) {
  PDM_CHECK(rows_ == cols_);
  PDM_CHECK(static_cast<int>(b.size()) == cols_);
  for (int r = 0; r < rows_; ++r) {
    double* row = data_.data() + static_cast<size_t>(r) * cols_;
    double sr = s * b[static_cast<size_t>(r)];
    for (int c = 0; c < cols_; ++c) row[c] += sr * b[static_cast<size_t>(c)];
  }
}

void Matrix::Scale(double s) {
  for (double& x : data_) x *= s;
}

void Matrix::Symmetrize() {
  PDM_CHECK(rows_ == cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

double Matrix::MaxAsymmetry() const {
  PDM_CHECK(rows_ == cols_);
  double worst = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      worst = std::max(worst, std::fabs((*this)(r, c) - (*this)(c, r)));
    }
  }
  return worst;
}

double Matrix::Trace() const {
  PDM_CHECK(rows_ == cols_);
  double acc = 0.0;
  for (int i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  PDM_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + static_cast<size_t>(k) * other.cols_;
      double* orow = out.data_.data() + static_cast<size_t>(i) * out.cols_;
      for (int j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

Vector Matrix::Row(int r) const {
  PDM_CHECK(r >= 0 && r < rows_);
  Vector out(static_cast<size_t>(cols_));
  for (int c = 0; c < cols_; ++c) out[static_cast<size_t>(c)] = (*this)(r, c);
  return out;
}

}  // namespace pdm
