#ifndef PDM_LINALG_MATRIX_H_
#define PDM_LINALG_MATRIX_H_

#include <vector>

#include "common/check.h"
#include "linalg/vector_ops.h"

/// \file
/// Dense row-major matrix. The ellipsoid engine stores the shape matrix A
/// here; the hot operations are MatVec and the symmetric rank-1 update of the
/// Löwner–John cut formulas, both O(n²) with contiguous inner loops.

namespace pdm {

class Matrix {
 public:
  /// Creates a rows×cols matrix of zeros.
  Matrix(int rows, int cols);

  /// The n×n identity scaled by `diag`.
  static Matrix ScaledIdentity(int n, double diag);

  /// Builds a matrix from nested initializer-style data (row major); all rows
  /// must have equal length. Intended for tests.
  static Matrix FromRows(const std::vector<Vector>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    PDM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    PDM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Raw row-major storage (rows()*cols() doubles).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// y = A·x.
  Vector MatVec(const Vector& x) const;

  /// y ← A·x into a caller-owned buffer (resized to rows(); steady-state
  /// reuse performs no allocation). `x` must not alias `*y`. This is the
  /// per-round hot kernel of the ellipsoid support computation.
  void MatVecInto(const Vector& x, Vector* y) const;

  /// Y ← A·X for a packed panel of k query vectors: one streamed pass over A
  /// instead of k mat-vec passes. `panel` is query-major — query j occupies
  /// panel[j·cols() .. j·cols()+cols()) — and `y` is filled query-major the
  /// same way: y[j·rows() + r] = (A·x_j)[r], so y must hold k·rows() doubles.
  /// Per query the inner reduction uses exactly MatVecInto's association
  /// order, so each output column is BIT-IDENTICAL to a standalone MatVecInto
  /// call on that query; the kernel only interleaves the independent per-query
  /// dependency chains (register-blocked 4 queries wide) so each A row is
  /// loaded once per block instead of once per query. `panel` must not alias
  /// `y`. This is the batched-quote hot kernel (DESIGN.md §11).
  void MatPanelInto(const double* panel, int k, double* y) const;

  /// y = Aᵀ·x.
  Vector MatTVec(const Vector& x) const;

  /// y ← Aᵀ·x with the MatVecInto reuse/aliasing contract.
  void MatTVecInto(const Vector& x, Vector* y) const;

  /// Quadratic form xᵀ·A·x (square matrices only).
  double QuadraticForm(const Vector& x) const;

  /// A ← A + s·b·bᵀ (square matrices only). This is the rank-1 modification
  /// pattern of the ellipsoid cut update (Lines 17/21 of Algorithm 1).
  void AddRankOne(double s, const Vector& b);

  /// A ← factor·(A − coef·b·bᵀ) in a single pass — the fused Löwner–John cut
  /// update, the per-round O(n²) hot path of the pricing engine.
  void FusedScaleRankOne(double factor, double coef, const Vector& b);

  /// A ← s·A.
  void Scale(double s);

  /// A ← (A + Aᵀ)/2; applied after every cut to stop asymmetry drift.
  void Symmetrize();

  /// Largest |A_ij − A_ji| (diagnostic).
  double MaxAsymmetry() const;

  /// Sum of diagonal entries (square matrices only).
  double Trace() const;

  /// C = A·B.
  Matrix MatMul(const Matrix& other) const;

  /// Aᵀ as a new matrix.
  Matrix Transposed() const;

  /// Entrywise Frobenius norm.
  double FrobeniusNorm() const;

  /// Copies row r into a Vector.
  Vector Row(int r) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace pdm

#endif  // PDM_LINALG_MATRIX_H_
