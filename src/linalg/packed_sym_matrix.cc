#include "linalg/packed_sym_matrix.h"

#include "common/arch.h"

namespace pdm {
namespace {

/// y ← A·x for packed upper-triangular row-major storage. One streamed pass
/// over the n(n+1)/2 entries: row r contributes its diagonal plus, for each
/// off-diagonal entry a = A(r,c) (c > r), a gather into row r's accumulator
/// (a·x[c]) and a scatter into y[c] (a·x[r]) — each stored entry serves both
/// mirror positions, which is what halves the memory traffic against the
/// dense mat-vec. The op order is fixed (scatters land in r-then-c order,
/// each row's gather reduction is sequential), making the kernel
/// deterministic; it is NOT the dense kernel's order, so packed-vs-dense is
/// a tolerance pin, not a bitwise one (see the header).
PDM_TARGET_CLONES
void PackedMatVecKernel(const double* __restrict data, int n,
                        const double* __restrict x, double* __restrict y) {
  for (int r = 0; r < n; ++r) y[r] = 0.0;
  const double* __restrict row = data;
  for (int r = 0; r < n; ++r) {
    const double xr = x[r];
    double acc = row[0] * xr;  // diagonal
    for (int c = r + 1; c < n; ++c) {
      const double a = row[c - r];
      acc += a * x[c];
      y[c] += a * xr;
    }
    y[r] += acc;
    row += n - r;
  }
}

/// Panel kernel: 4 queries per pass over the packed data, each query's op
/// sequence literally PackedMatVecKernel's (same zero-init, same per-row
/// gather/scatter order), so every output column is bit-identical to a
/// standalone mat-vec by construction — only the independent per-query
/// chains are interleaved to amortize the packed-row traffic. Remainder
/// queries (k mod 4) run the scalar kernel.
PDM_TARGET_CLONES
void PackedMatPanelKernel(const double* __restrict data, int n,
                          const double* __restrict panel, int k,
                          double* __restrict y) {
  int j = 0;
  for (; j + 4 <= k; j += 4) {
    const double* __restrict x0 = panel + static_cast<size_t>(j) * n;
    const double* __restrict x1 = panel + static_cast<size_t>(j + 1) * n;
    const double* __restrict x2 = panel + static_cast<size_t>(j + 2) * n;
    const double* __restrict x3 = panel + static_cast<size_t>(j + 3) * n;
    double* __restrict y0 = y + static_cast<size_t>(j) * n;
    double* __restrict y1 = y + static_cast<size_t>(j + 1) * n;
    double* __restrict y2 = y + static_cast<size_t>(j + 2) * n;
    double* __restrict y3 = y + static_cast<size_t>(j + 3) * n;
    for (int r = 0; r < n; ++r) {
      y0[r] = 0.0;
      y1[r] = 0.0;
      y2[r] = 0.0;
      y3[r] = 0.0;
    }
    const double* __restrict row = data;
    for (int r = 0; r < n; ++r) {
      const double xr0 = x0[r];
      const double xr1 = x1[r];
      const double xr2 = x2[r];
      const double xr3 = x3[r];
      double acc0 = row[0] * xr0;
      double acc1 = row[0] * xr1;
      double acc2 = row[0] * xr2;
      double acc3 = row[0] * xr3;
      for (int c = r + 1; c < n; ++c) {
        const double a = row[c - r];
        acc0 += a * x0[c];
        y0[c] += a * xr0;
        acc1 += a * x1[c];
        y1[c] += a * xr1;
        acc2 += a * x2[c];
        y2[c] += a * xr2;
        acc3 += a * x3[c];
        y3[c] += a * xr3;
      }
      y0[r] += acc0;
      y1[r] += acc1;
      y2[r] += acc2;
      y3[r] += acc3;
      row += n - r;
    }
  }
  for (; j < k; ++j) {
    PackedMatVecKernel(data, n, panel + static_cast<size_t>(j) * n,
                       y + static_cast<size_t>(j) * n);
  }
}

/// A ← factor·(A − coef·b·bᵀ) over the packed triangle. Per stored entry the
/// expression factor·(a − (coef·b[r])·b[c]) is exactly what the dense kernel
/// computes for its upper-triangle copy.
PDM_TARGET_CLONES
void PackedFusedScaleRankOneKernel(double* __restrict data, int n, double factor,
                                   double coef, const double* __restrict b) {
  double* __restrict row = data;
  for (int r = 0; r < n; ++r) {
    const double cr = coef * b[r];
    for (int c = r; c < n; ++c) {
      row[c - r] = factor * (row[c - r] - cr * b[c]);
    }
    row += n - r;
  }
}

}  // namespace

PackedSymMatrix::PackedSymMatrix(int n) : n_(n) {
  PDM_CHECK(n >= 0);
  data_.assign(static_cast<size_t>(n) * (n + 1) / 2, 0.0);
}

PackedSymMatrix PackedSymMatrix::ScaledIdentity(int n, double diag) {
  PackedSymMatrix m(n);
  for (int i = 0; i < n; ++i) m.At(i, i) = diag;
  return m;
}

PackedSymMatrix PackedSymMatrix::FromDense(const Matrix& dense) {
  PDM_CHECK(dense.rows() == dense.cols());
  PackedSymMatrix m(dense.rows());
  size_t idx = 0;
  for (int r = 0; r < dense.rows(); ++r) {
    for (int c = r; c < dense.cols(); ++c) m.data_[idx++] = dense(r, c);
  }
  return m;
}

Matrix PackedSymMatrix::ToDense() const {
  Matrix dense(n_, n_);
  size_t idx = 0;
  for (int r = 0; r < n_; ++r) {
    for (int c = r; c < n_; ++c) {
      dense(r, c) = data_[idx];
      dense(c, r) = data_[idx];
      ++idx;
    }
  }
  return dense;
}

void PackedSymMatrix::MatVecInto(const Vector& x, Vector* y) const {
  PDM_CHECK(static_cast<int>(x.size()) == n_);
  PDM_DCHECK(&x != y);
  y->resize(static_cast<size_t>(n_));
  PackedMatVecKernel(data_.data(), n_, x.data(), y->data());
}

void PackedSymMatrix::MatPanelInto(const double* panel, int k, double* y) const {
  PDM_CHECK(k >= 0);
  if (k == 0) return;
  PDM_CHECK(panel != nullptr && y != nullptr);
  PackedMatPanelKernel(data_.data(), n_, panel, k, y);
}

double PackedSymMatrix::QuadraticForm(const Vector& x) const {
  PDM_CHECK(static_cast<int>(x.size()) == n_);
  // xᵀAx = Σ_r a_rr·x_r² + 2·Σ_{r<c} a_rc·x_r·x_c, one pass, no A·x buffer.
  double acc = 0.0;
  const double* row = data_.data();
  for (int r = 0; r < n_; ++r) {
    const double xr = x[static_cast<size_t>(r)];
    double partial = row[0] * xr;
    for (int c = r + 1; c < n_; ++c) {
      partial += 2.0 * row[c - r] * x[static_cast<size_t>(c)];
    }
    acc += partial * xr;
    row += n_ - r;
  }
  return acc;
}

void PackedSymMatrix::FusedScaleRankOne(double factor, double coef, const Vector& b) {
  PDM_CHECK(static_cast<int>(b.size()) == n_);
  PackedFusedScaleRankOneKernel(data_.data(), n_, factor, coef, b.data());
}

double PackedSymMatrix::Trace() const {
  double acc = 0.0;
  for (int i = 0; i < n_; ++i) acc += At(i, i);
  return acc;
}

}  // namespace pdm
