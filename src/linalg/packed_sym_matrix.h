#ifndef PDM_LINALG_PACKED_SYM_MATRIX_H_
#define PDM_LINALG_PACKED_SYM_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

/// \file
/// Packed symmetric matrix: the upper triangle of an n×n symmetric matrix
/// stored row-major in n(n+1)/2 doubles — row r holds entries (r,r)..(r,n-1)
/// contiguously. This halves the bytes of the ellipsoid shape matrix A, which
/// dominates per-product session state at serving scale (DESIGN.md §12).
///
/// The storage is symmetric *by construction*: there is no lower triangle to
/// drift out of sync, so the fused cut update needs no periodic
/// re-symmetrization pass (the dense `Matrix` re-symmetrizes every 32 cuts to
/// bound 1-ulp-per-cut drift; packed storage has nothing to average).
///
/// Determinism contract: every kernel here is a fixed source-level FP op
/// sequence (the linalg layer builds with -ffp-contract=off), and
/// `MatPanelInto` runs each query through exactly `MatVecInto`'s op order, so
/// each panel column is BIT-IDENTICAL to a standalone mat-vec on that query —
/// the same contract the dense panel kernel gives (DESIGN.md §11). Against
/// the *dense* kernels the packed mat-vec is only tolerance-equal: a packed
/// traversal visits each off-diagonal entry once (gather + scatter) where the
/// dense row pass visits its two mirror copies, so the reduction order
/// differs and low-order bits may too (documented pin:
/// tests/linalg_test.cc).

namespace pdm {

class PackedSymMatrix {
 public:
  /// Empty 0×0 matrix (the "no packed storage" state).
  PackedSymMatrix() : n_(0) {}

  /// n×n zeros in packed form.
  explicit PackedSymMatrix(int n);

  /// diag·I in packed form.
  static PackedSymMatrix ScaledIdentity(int n, double diag);

  /// Packs the upper triangle of a square dense matrix (entries below the
  /// diagonal are ignored). Round trip law: FromDense(ToDense()) is exact,
  /// and ToDense(FromDense(A)) == A whenever A is exactly symmetric.
  static PackedSymMatrix FromDense(const Matrix& dense);

  /// Mirrors the packed triangle into a full dense symmetric matrix. Exact:
  /// both mirror copies are the same stored double.
  Matrix ToDense() const;

  int dim() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Packed element count n(n+1)/2.
  size_t packed_size() const { return data_.size(); }

  /// Element access for any (r, c) — both triangles map to the one stored
  /// upper-triangle entry.
  double& At(int r, int c) {
    return data_[PackedIndex(r, c)];
  }
  double At(int r, int c) const {
    return data_[PackedIndex(r, c)];
  }

  /// Raw packed storage (n(n+1)/2 doubles, upper-triangular row-major).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// y ← A·x (resizing y to n; steady-state reuse performs no allocation).
  /// `x` must not alias `*y`. Deterministic fixed op order; see the file
  /// comment for the relation to the dense kernel.
  void MatVecInto(const Vector& x, Vector* y) const;

  /// Y ← A·X over a query-major packed panel of k vectors, with the same
  /// layout contract as Matrix::MatPanelInto: query j reads
  /// panel[j·n .. j·n+n) and writes y[j·n .. j·n+n). Blocked 4 queries wide
  /// so each packed row is streamed once per block; every output column is
  /// bit-identical to a standalone MatVecInto on that query. `panel` must
  /// not alias `y`.
  void MatPanelInto(const double* panel, int k, double* y) const;

  /// xᵀ·A·x without materializing A·x (allocation-free diagnostics path).
  double QuadraticForm(const Vector& x) const;

  /// A ← factor·(A − coef·b·bᵀ) over the packed triangle — the fused
  /// Löwner–John cut update. Entry-for-entry the same op sequence as the
  /// dense kernel's upper triangle, so as long as a packed and a dense
  /// ellipsoid hold bit-equal upper triangles, one cut keeps them bit-equal
  /// (divergence only enters through the dense side's symmetrize pass).
  void FusedScaleRankOne(double factor, double coef, const Vector& b);

  /// Sum of diagonal entries.
  double Trace() const;

 private:
  size_t PackedIndex(int r, int c) const {
    PDM_DCHECK(r >= 0 && r < n_ && c >= 0 && c < n_);
    if (r > c) {
      int t = r;
      r = c;
      c = t;
    }
    // Row r starts after the r previous rows of lengths n, n-1, ..., n-r+1.
    return static_cast<size_t>(r) * n_ - static_cast<size_t>(r) * (r - 1) / 2 +
           static_cast<size_t>(c - r);
  }

  int n_;
  std::vector<double> data_;
};

}  // namespace pdm

#endif  // PDM_LINALG_PACKED_SYM_MATRIX_H_
