#ifndef PDM_LINALG_SPARSE_VECTOR_H_
#define PDM_LINALG_SPARSE_VECTOR_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "linalg/vector_ops.h"

/// \file
/// Sparse vector in coordinate format. Used by the one-hot hashing featurizer
/// (Application 3) and the FTRL-Proximal learner, where feature vectors have
/// a handful of active coordinates out of n = 1024 hashed slots.

namespace pdm {

struct SparseVector {
  /// Active coordinates, strictly increasing.
  std::vector<int32_t> indices;
  /// Values aligned with `indices`.
  Vector values;

  int nnz() const { return static_cast<int>(indices.size()); }

  /// Appends a coordinate; callers must append in increasing index order
  /// (checked in debug builds).
  void Append(int32_t index, double value) {
    PDM_DCHECK(indices.empty() || indices.back() < index);
    indices.push_back(index);
    values.push_back(value);
  }

  /// Sparse·dense dot product.
  double Dot(const Vector& dense) const {
    double acc = 0.0;
    for (size_t k = 0; k < indices.size(); ++k) {
      PDM_DCHECK(static_cast<size_t>(indices[k]) < dense.size());
      acc += values[k] * dense[static_cast<size_t>(indices[k])];
    }
    return acc;
  }

  /// Squared Euclidean norm.
  double SquaredNorm() const {
    double acc = 0.0;
    for (double v : values) acc += v * v;
    return acc;
  }

  /// Materializes into a dense n-vector.
  Vector ToDense(int n) const {
    Vector out;
    ToDenseInto(n, &out);
    return out;
  }

  /// Fill-in variant for the per-round hot path: zeroes and reuses `out`'s
  /// storage (steady-state calls perform no heap allocation). Duplicate
  /// indices accumulate, matching ToDense.
  void ToDenseInto(int n, Vector* out) const {
    out->assign(static_cast<size_t>(n), 0.0);
    for (size_t k = 0; k < indices.size(); ++k) {
      PDM_CHECK(indices[k] >= 0 && indices[k] < n);
      (*out)[static_cast<size_t>(indices[k])] += values[k];
    }
  }
};

}  // namespace pdm

#endif  // PDM_LINALG_SPARSE_VECTOR_H_
