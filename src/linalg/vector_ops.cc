#include "linalg/vector_ops.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

Vector Zeros(int n) {
  PDM_CHECK(n >= 0);
  return Vector(static_cast<size_t>(n), 0.0);
}

Vector Ones(int n) {
  PDM_CHECK(n >= 0);
  return Vector(static_cast<size_t>(n), 1.0);
}

Vector BasisVector(int n, int i) {
  PDM_CHECK(n > 0);
  PDM_CHECK(i >= 0 && i < n);
  Vector e(static_cast<size_t>(n), 0.0);
  e[static_cast<size_t>(i)] = 1.0;
  return e;
}

double Dot(const Vector& a, const Vector& b) {
  PDM_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const Vector& a) {
  double best = 0.0;
  for (double x : a) best = std::max(best, std::fabs(x));
  return best;
}

double Sum(const Vector& a) {
  double acc = 0.0;
  for (double x : a) acc += x;
  return acc;
}

void ScaleInPlace(Vector* a, double s) {
  for (double& x : *a) x *= s;
}

void AxpyInPlace(double s, const Vector& x, Vector* y) {
  PDM_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += s * x[i];
}

Vector Add(const Vector& a, const Vector& b) {
  PDM_DCHECK(a.size() == b.size());
  Vector out(a);
  AxpyInPlace(1.0, b, &out);
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  PDM_DCHECK(a.size() == b.size());
  Vector out(a);
  AxpyInPlace(-1.0, b, &out);
  return out;
}

Vector Scaled(const Vector& a, double s) {
  Vector out(a);
  ScaleInPlace(&out, s);
  return out;
}

double RescaleToNorm(Vector* a, double target_norm) {
  double norm = Norm2(*a);
  if (norm > 0.0) {
    ScaleInPlace(a, target_norm / norm);
  }
  return norm;
}

}  // namespace pdm
