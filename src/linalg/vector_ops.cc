#include "linalg/vector_ops.h"

#include <cmath>

#include "common/arch.h"
#include "common/check.h"

namespace pdm {
namespace {

/// Reassociated 4-accumulator reduction: the strict left-to-right sum chain
/// serializes on FP-add latency and defeats SIMD; four independent partials
/// vectorize cleanly. Fixed association order keeps the result deterministic
/// for a given build and machine.
PDM_TARGET_CLONES
double DotKernel(const double* __restrict a, const double* __restrict b, size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += a[i] * b[i];
    acc[1] += a[i + 1] * b[i + 1];
    acc[2] += a[i + 2] * b[i + 2];
    acc[3] += a[i + 3] * b[i + 3];
  }
  double total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

}  // namespace

Vector Zeros(int n) {
  PDM_CHECK(n >= 0);
  return Vector(static_cast<size_t>(n), 0.0);
}

Vector Ones(int n) {
  PDM_CHECK(n >= 0);
  return Vector(static_cast<size_t>(n), 1.0);
}

Vector BasisVector(int n, int i) {
  PDM_CHECK(n > 0);
  PDM_CHECK(i >= 0 && i < n);
  Vector e(static_cast<size_t>(n), 0.0);
  e[static_cast<size_t>(i)] = 1.0;
  return e;
}

double Dot(const Vector& a, const Vector& b) {
  PDM_DCHECK(a.size() == b.size());
  return DotKernel(a.data(), b.data(), a.size());
}

double Dot(const double* a, const double* b, size_t n) {
  return DotKernel(a, b, n);
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const Vector& a) {
  double best = 0.0;
  for (double x : a) best = std::max(best, std::fabs(x));
  return best;
}

double Sum(const Vector& a) {
  double acc = 0.0;
  for (double x : a) acc += x;
  return acc;
}

void ScaleInPlace(Vector* a, double s) {
  for (double& x : *a) x *= s;
}

void AxpyInPlace(double s, const Vector& x, Vector* y) {
  PDM_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += s * x[i];
}

void AddInto(const Vector& a, const Vector& b, Vector* out) {
  PDM_DCHECK(a.size() == b.size());
  out->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] = a[i] + b[i];
}

void SubInto(const Vector& a, const Vector& b, Vector* out) {
  PDM_DCHECK(a.size() == b.size());
  out->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] = a[i] - b[i];
}

void ScaledInto(const Vector& a, double s, Vector* out) {
  out->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] = s * a[i];
}

Vector Add(const Vector& a, const Vector& b) {
  Vector out;
  AddInto(a, b, &out);
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  Vector out;
  SubInto(a, b, &out);
  return out;
}

Vector Scaled(const Vector& a, double s) {
  Vector out;
  ScaledInto(a, s, &out);
  return out;
}

double RescaleToNorm(Vector* a, double target_norm) {
  double norm = Norm2(*a);
  if (norm > 0.0) {
    ScaleInPlace(a, target_norm / norm);
  }
  return norm;
}

}  // namespace pdm
