#ifndef PDM_LINALG_VECTOR_OPS_H_
#define PDM_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

/// \file
/// Dense vector type and kernels.
///
/// `Vector` is a plain alias for `std::vector<double>`: the pricing engine's
/// per-round cost is dominated by O(n²) matrix-vector work, and a bare
/// contiguous buffer keeps those loops auto-vectorizable and the API
/// interoperable with the data/feature layers. All operations live in free
/// functions so they read like the paper's math.

namespace pdm {

using Vector = std::vector<double>;

/// Allocates an n-vector of zeros.
Vector Zeros(int n);

/// Allocates an n-vector of ones.
Vector Ones(int n);

/// Standard basis vector e_i in R^n.
Vector BasisVector(int n, int i);

/// Dot product; the vectors must have equal length. Evaluated with a fixed
/// reassociated (SIMD-friendly) 4-accumulator reduction — deterministic per
/// build and machine, equal to the sequential sum up to rounding.
double Dot(const Vector& a, const Vector& b);

/// Raw-buffer overload of Dot for packed panels (DESIGN.md §11); runs the
/// same kernel, so it is bit-identical to the Vector overload on equal
/// contents.
double Dot(const double* a, const double* b, size_t n);

/// Euclidean norm ‖a‖₂.
double Norm2(const Vector& a);

/// Max-absolute-value norm ‖a‖_∞.
double NormInf(const Vector& a);

/// Sum of entries.
double Sum(const Vector& a);

/// In-place a ← s·a.
void ScaleInPlace(Vector* a, double s);

/// In-place y ← y + s·x (BLAS axpy).
void AxpyInPlace(double s, const Vector& x, Vector* y);

/// out ← a + b. `out` is resized to match; steady-state reuse of the same
/// buffer performs no allocation. `out` may alias `a` or `b`.
void AddInto(const Vector& a, const Vector& b, Vector* out);

/// out ← a − b. Same reuse/aliasing contract as AddInto.
void SubInto(const Vector& a, const Vector& b, Vector* out);

/// out ← s·a. Same reuse/aliasing contract as AddInto.
void ScaledInto(const Vector& a, double s, Vector* out);

/// Returns a + b.
Vector Add(const Vector& a, const Vector& b);

/// Returns a − b.
Vector Sub(const Vector& a, const Vector& b);

/// Returns s·a.
Vector Scaled(const Vector& a, double s);

/// Rescales `a` to the target Euclidean norm; a zero vector is returned
/// unchanged. Returns the original norm.
double RescaleToNorm(Vector* a, double target_norm);

}  // namespace pdm

#endif  // PDM_LINALG_VECTOR_OPS_H_
