#include "market/adversarial.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

AdversarialQueryStream::AdversarialQueryStream(const AdversarialStreamConfig& config)
    : config_(config) {
  PDM_CHECK(config_.dim >= 2);
  PDM_CHECK(config_.horizon >= 2);
  PDM_CHECK(std::sqrt(config_.theta1 * config_.theta1 + config_.theta2 * config_.theta2) <=
            1.0 + 1e-12);
}

void AdversarialQueryStream::Next(Rng* rng, MarketRound* round) {
  (void)rng;  // the adversary is deterministic
  PDM_CHECK(engine_ != nullptr);
  // e₁ in phase 1, e₂ in phase 2; assign() reuses the caller's storage.
  round->features.assign(static_cast<size_t>(config_.dim), 0.0);
  if (round_index_ < phase_one_rounds()) {
    round->features[0] = 1.0;
    // Reserve pinned to the engine's current mid-price along e₁ — exactly the
    // cut position a conservative-cutting engine would use.
    round->reserve = engine_->EstimateValueInterval(round->features).midpoint();
    round->value = config_.theta1;
  } else {
    round->features[1] = 1.0;
    round->reserve = 0.0;  // "discarding the reserve price constraint"
    round->value = config_.theta2;
  }
  ++round_index_;
}

}  // namespace pdm
