#include "market/adversarial.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

AdversarialQueryStream::AdversarialQueryStream(const AdversarialStreamConfig& config)
    : config_(config) {
  PDM_CHECK(config_.dim >= 2);
  PDM_CHECK(config_.horizon >= 2);
  PDM_CHECK(std::sqrt(config_.theta1 * config_.theta1 + config_.theta2 * config_.theta2) <=
            1.0 + 1e-12);
}

MarketRound AdversarialQueryStream::Next(Rng* rng) {
  (void)rng;  // the adversary is deterministic
  PDM_CHECK(engine_ != nullptr);
  MarketRound round;
  if (round_index_ < phase_one_rounds()) {
    round.features = BasisVector(config_.dim, 0);
    // Reserve pinned to the engine's current mid-price along e₁ — exactly the
    // cut position a conservative-cutting engine would use.
    round.reserve = engine_->EstimateValueInterval(round.features).midpoint();
    round.value = config_.theta1;
  } else {
    round.features = BasisVector(config_.dim, 1);
    round.reserve = 0.0;  // "discarding the reserve price constraint"
    round.value = config_.theta2;
  }
  ++round_index_;
  return round;
}

}  // namespace pdm
