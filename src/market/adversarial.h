#ifndef PDM_MARKET_ADVERSARIAL_H_
#define PDM_MARKET_ADVERSARIAL_H_

#include <cstdint>

#include "market/round.h"

/// \file
/// The Lemma 8 adversary (Appendix, Fig. 6): why conservative prices must
/// not cut the ellipsoid.
///
/// Phase 1 (rounds 1..⌊T/2⌋): every query probes the first coordinate
/// (x = e₁) and the adversary sets the reserve to the engine's current
/// mid-price. An engine that (unsafely) cuts on conservative feedback keeps
/// halving the e₁ width; each such Löwner–John update *expands* every other
/// axis by n/√(n²−1), so the e₂ width grows exponentially.
/// Phase 2 (remaining rounds): queries probe e₂ with no reserve. The safe
/// engine still has an O(1)-width knowledge set along e₂ and pays polylog
/// regret; the unsafe engine must bisect an exponentially inflated width,
/// paying Ω(T) regret. bench_lemma8_adversarial reproduces the separation.

namespace pdm {

struct AdversarialStreamConfig {
  /// Dimension n ≥ 2. Lemma 8 uses R = 1, S = 1.
  int dim = 2;
  /// Total horizon T (phase 1 is ⌊T/2⌋ rounds).
  int64_t horizon = 1000;
  /// θ* components along e₁/e₂; must keep ‖θ*‖ ≤ 1.
  double theta1 = 0.3;
  double theta2 = 0.8;
};

class AdversarialQueryStream : public QueryStream {
 public:
  explicit AdversarialQueryStream(const AdversarialStreamConfig& config);

  using QueryStream::Next;
  void Next(Rng* rng, MarketRound* round) override;
  void BindEngine(const PricingEngine* engine) override { engine_ = engine; }

  int64_t phase_one_rounds() const { return config_.horizon / 2; }

 private:
  AdversarialStreamConfig config_;
  const PricingEngine* engine_ = nullptr;
  int64_t round_index_ = 0;
};

}  // namespace pdm

#endif  // PDM_MARKET_ADVERSARIAL_H_
