#include "market/airbnb_market.h"

#include <cmath>

#include "common/check.h"
#include "learning/linear_regression.h"
#include "learning/metrics.h"

namespace pdm {
namespace {

/// Columns to standardize in the 55-dim engineered space: everything except
/// the bias column [0], which carries the intercept.
std::vector<int> StandardizedColumns() {
  std::vector<int> cols;
  for (int c = 1; c < AirbnbFeatureSpace::kDim; ++c) cols.push_back(c);
  return cols;
}

}  // namespace

AirbnbMarket BuildAirbnbMarket(const AirbnbMarketConfig& config, Rng* rng) {
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(config.num_listings > 10);
  PDM_CHECK(config.train_fraction > 0.0 && config.train_fraction < 1.0);

  AirbnbLikeConfig data_config;
  data_config.num_listings = config.num_listings;
  Table listings = GenerateAirbnbLikeListings(data_config, rng);

  AirbnbFeatureSpace space;
  space.Fit(listings);
  Matrix features = space.FeatureMatrix(listings);
  Vector targets = space.Targets(listings);

  int64_t train_rows = static_cast<int64_t>(
      config.train_fraction * static_cast<double>(listings.num_rows()));
  PDM_CHECK(train_rows >= AirbnbFeatureSpace::kDim);

  // Per-column standardization of the numeric/interaction columns, fitted on
  // the training split only (no leakage) and applied to the full stream.
  const std::vector<int> scaled_cols = StandardizedColumns();
  for (int c : scaled_cols) {
    double mean = 0.0;
    for (int64_t r = 0; r < train_rows; ++r) mean += features(static_cast<int>(r), c);
    mean /= static_cast<double>(train_rows);
    double var = 0.0;
    for (int64_t r = 0; r < train_rows; ++r) {
      double d = features(static_cast<int>(r), c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(train_rows);
    double stddev = std::sqrt(var);
    double inv = stddev > 0.0 ? 1.0 / stddev : 1.0;
    for (int64_t r = 0; r < listings.num_rows(); ++r) {
      double& cell = features(static_cast<int>(r), c);
      cell = (cell - mean) * inv;
    }
  }

  // OLS on the train split; a small ridge keeps the collinear one-hot blocks
  // (city + room + policy each sum to 1) well conditioned.
  Matrix train_x(static_cast<int>(train_rows), features.cols());
  Vector train_y(static_cast<size_t>(train_rows));
  for (int64_t r = 0; r < train_rows; ++r) {
    for (int c = 0; c < features.cols(); ++c) {
      train_x(static_cast<int>(r), c) = features(static_cast<int>(r), c);
    }
    train_y[static_cast<size_t>(r)] = targets[static_cast<size_t>(r)];
  }
  LinearRegression ols(LinearRegressionConfig{/*ridge=*/1e-6});
  PDM_CHECK(ols.Fit(train_x, train_y));

  AirbnbMarket market;
  market.theta = ols.weights();
  market.train_mse = ols.MeanSquaredError(train_x, train_y);

  int64_t test_rows = listings.num_rows() - train_rows;
  Matrix test_x(static_cast<int>(test_rows), features.cols());
  Vector test_y(static_cast<size_t>(test_rows));
  for (int64_t r = 0; r < test_rows; ++r) {
    for (int c = 0; c < features.cols(); ++c) {
      test_x(static_cast<int>(r), c) = features(static_cast<int>(train_rows + r), c);
    }
    test_y[static_cast<size_t>(r)] = targets[static_cast<size_t>(train_rows + r)];
  }
  market.test_mse = ols.MeanSquaredError(test_x, test_y);

  // Online rounds: the learned model is the ground truth (as in the paper,
  // which prices against the regression model it just fit).
  market.rounds.reserve(static_cast<size_t>(listings.num_rows()));
  for (int64_t r = 0; r < listings.num_rows(); ++r) {
    MarketRound round;
    round.features = features.Row(static_cast<int>(r));
    double z = Dot(market.theta, round.features);  // log market value
    round.value = std::exp(z);
    if (config.log_reserve_ratio > 0.0) {
      round.reserve = std::exp(config.log_reserve_ratio * z);
    } else {
      round.reserve = 0.0;
    }
    market.feature_norm_bound =
        std::max(market.feature_norm_bound, Norm2(round.features));
    market.rounds.push_back(std::move(round));
  }
  // Broker prior: the average (log) price level is public market knowledge;
  // the coefficient structure is not.
  double mean_log_price = Sum(train_y) / static_cast<double>(train_rows);
  market.recommended_center = Zeros(AirbnbFeatureSpace::kDim);
  market.recommended_center[0] = mean_log_price;  // bias coordinate
  market.recommended_radius =
      std::sqrt(2.0) * Norm2(Sub(market.theta, market.recommended_center));
  return market;
}

ReplayQueryStream::ReplayQueryStream(const std::vector<MarketRound>* rounds)
    : rounds_(rounds) {
  PDM_CHECK(rounds_ != nullptr);
  PDM_CHECK(!rounds_->empty());
}

void ReplayQueryStream::Next(Rng* rng, MarketRound* round) {
  (void)rng;
  // Copy-assign reuses the caller's feature storage: once the buffer has
  // grown to the workload's dimension, replay rounds allocate nothing.
  *round = (*rounds_)[cursor_];
  cursor_ = (cursor_ + 1) % rounds_->size();
}

}  // namespace pdm
