#ifndef PDM_MARKET_AIRBNB_MARKET_H_
#define PDM_MARKET_AIRBNB_MARKET_H_

#include <cstdint>
#include <vector>

#include "data/airbnb_like.h"
#include "features/airbnb_features.h"
#include "features/scaler.h"
#include "market/round.h"

/// \file
/// Application 2: accommodation rental under the log-linear model
/// (Section V-B).
///
/// Offline phase: generate Airbnb-like listings, engineer the 55-dim feature
/// space, standardize it, and fit OLS on an 80% train split with log prices
/// as targets — the learned coefficients "play the role of θ*" and the
/// 20% test MSE is reported (paper: 0.226). Online phase: stream the listings
/// as booking requests with market value v_t = exp(x_tᵀθ*) and reserve price
/// log q_t = ratio · log v_t ("we vary the ratio between the natural
/// logarithms of reserve price and market value").

namespace pdm {

struct AirbnbMarketConfig {
  /// Number of listings (the real dataset has 74,111 records).
  int64_t num_listings = 74111;
  /// log q_t / log v_t ∈ {0.4, 0.6, 0.8} in Fig. 5(b); ≤ 0 disables reserve.
  double log_reserve_ratio = 0.6;
  /// Train split fraction for OLS (paper: test set occupies 20%).
  double train_fraction = 0.8;
};

struct AirbnbMarket {
  /// Learned weights θ* over the standardized 55-dim space.
  Vector theta;
  double train_mse = 0.0;
  double test_mse = 0.0;
  /// Precomputed rounds in listing order (features standardized).
  std::vector<MarketRound> rounds;
  /// max‖x_t‖ over the rounds (the U bound of Theorem 2).
  double feature_norm_bound = 0.0;
  /// Suggested initial knowledge set: a ball centered on the broker's public
  /// prior (average log price on the bias coordinate, 0 elsewhere) with
  /// radius √2·‖θ* − center‖ — the same R/‖θ*‖ margin the paper uses for the
  /// noisy-linear-query application (R = 2√n vs ‖θ*‖ = √(2n)).
  Vector recommended_center;
  double recommended_radius = 0.0;
};

/// Builds the offline model and the online round sequence.
AirbnbMarket BuildAirbnbMarket(const AirbnbMarketConfig& config, Rng* rng);

/// Replays a precomputed round list (Airbnb uses this; any recorded workload
/// can too). Wraps around if asked for more rounds than recorded.
class ReplayQueryStream : public QueryStream {
 public:
  explicit ReplayQueryStream(const std::vector<MarketRound>* rounds);

  using QueryStream::Next;
  void Next(Rng* rng, MarketRound* round) override;

 private:
  const std::vector<MarketRound>* rounds_;
  size_t cursor_ = 0;
};

}  // namespace pdm

#endif  // PDM_MARKET_AIRBNB_MARKET_H_
