#include "market/avazu_market.h"

#include <cmath>

#include "common/check.h"
#include "learning/ftrl.h"
#include "learning/metrics.h"

namespace pdm {

AvazuMarket BuildAvazuMarket(const AvazuMarketConfig& config, const AvazuLikeClickLog& log,
                             Rng* rng) {
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(config.hashed_dim >= 2);
  PDM_CHECK(config.train_samples > 0);

  HashingFeaturizer featurizer(config.hashed_dim);
  FtrlConfig ftrl_config;
  ftrl_config.alpha = config.ftrl_alpha;
  ftrl_config.beta = config.ftrl_beta;
  ftrl_config.l2 = config.ftrl_l2;
  ftrl_config.use_bias = true;
  if (config.ftrl_l1 > 0.0) {
    ftrl_config.l1 = config.ftrl_l1;
  } else {
    // ~2σ of the null-coordinate gradient random walk: a slot with no real
    // signal sees ≈ train_samples·fields/n hits, each contributing a
    // zero-mean gradient of variance ≈ p(1−p) ≈ 0.1.
    double hits_per_slot = static_cast<double>(config.train_samples) *
                           static_cast<double>(AvazuLikeFields().size()) /
                           static_cast<double>(config.hashed_dim);
    ftrl_config.l1 = 2.0 * std::sqrt(0.1 * hits_per_slot);
  }
  FtrlProximal learner(config.hashed_dim, ftrl_config);

  for (int64_t i = 0; i < config.train_samples; ++i) {
    AdImpression sample = log.Next(rng);
    learner.Train(featurizer.Featurize(sample.fields), sample.clicked);
  }

  AvazuMarket market;
  market.theta = learner.Weights();
  market.bias = learner.bias();
  market.nonzero_weights = learner.NonZeroCount();
  for (int32_t i = 0; i < config.hashed_dim; ++i) {
    if (market.theta[static_cast<size_t>(i)] != 0.0) market.support.push_back(i);
  }

  // Hold-out log-loss (the paper reports 0.420 at n=128, 0.406 at n=1024).
  Vector predictions;
  std::vector<bool> labels;
  predictions.reserve(static_cast<size_t>(config.eval_samples));
  labels.reserve(static_cast<size_t>(config.eval_samples));
  for (int64_t i = 0; i < config.eval_samples; ++i) {
    AdImpression sample = log.Next(rng);
    predictions.push_back(learner.Predict(featurizer.Featurize(sample.fields)));
    labels.push_back(sample.clicked);
  }
  market.logloss = LogLoss(predictions, labels);
  market.recommended_radius = 2.0 * std::max(Norm2(market.theta), 1e-6);
  return market;
}

AvazuQueryStream::AvazuQueryStream(const AvazuLikeClickLog* log, const AvazuMarket* market,
                                   int hashed_dim, bool dense)
    : log_(log), market_(market), featurizer_(hashed_dim), dense_(dense) {
  PDM_CHECK(log_ != nullptr);
  PDM_CHECK(market_ != nullptr);
  PDM_CHECK(static_cast<int>(market_->theta.size()) == hashed_dim);
  if (dense_) {
    PDM_CHECK(!market_->support.empty());
    slot_to_dense_.assign(static_cast<size_t>(hashed_dim), 0);
    for (size_t k = 0; k < market_->support.size(); ++k) {
      slot_to_dense_[static_cast<size_t>(market_->support[k])] =
          static_cast<int32_t>(k) + 1;
      dense_theta_.push_back(
          market_->theta[static_cast<size_t>(market_->support[k])]);
    }
  }
}

int AvazuQueryStream::feature_dim() const {
  return dense_ ? static_cast<int>(market_->support.size()) : featurizer_.dim();
}

void AvazuQueryStream::Next(Rng* rng, MarketRound* round) {
  log_->Next(rng, &ws_.impression);
  featurizer_.FeaturizeInto(ws_.impression.fields, &ws_.slot_scratch, &ws_.hashed);

  round->reserve = 0.0;  // impressions carry no reserve; Fig. 5(c) is pure
  // assign() reuses the caller's feature storage in both encodings.
  if (dense_) {
    // Project onto the support; zero-weight coordinates carry no value signal
    // ("the dense case ... omits those features if their weights are zero").
    round->features.assign(static_cast<size_t>(feature_dim()), 0.0);
    for (size_t k = 0; k < ws_.hashed.indices.size(); ++k) {
      int32_t mapped = slot_to_dense_[static_cast<size_t>(ws_.hashed.indices[k])];
      if (mapped > 0) {
        round->features[static_cast<size_t>(mapped - 1)] = ws_.hashed.values[k];
      }
    }
    round->value = Sigmoid(Dot(round->features, dense_theta_) + market_->bias);
  } else {
    ws_.hashed.ToDenseInto(featurizer_.dim(), &round->features);
    round->value = Sigmoid(ws_.hashed.Dot(market_->theta) + market_->bias);
  }
}

}  // namespace pdm
