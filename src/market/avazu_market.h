#ifndef PDM_MARKET_AVAZU_MARKET_H_
#define PDM_MARKET_AVAZU_MARKET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/avazu_like.h"
#include "features/hashing.h"
#include "market/round.h"

/// \file
/// Application 3: pricing impressions under the logistic model
/// (Section V-C).
///
/// Offline phase: hash the categorical ad fields one-hot into n ∈ {128, 1024}
/// slots and train FTRL-Proximal logistic regression on click labels; the
/// learned sparse weight vector θ* captures CTR and "plays the role of θ*".
/// Online phase: each impression's market value is its model CTR
/// v_t = σ(x_tᵀθ*). Two encodings are evaluated:
///   sparse — keep all n hashed coordinates (zero-weight ones included);
///   dense  — keep only the coordinates where θ*_j ≠ 0 (n_dense = nnz).
/// Fig. 5(c) runs the pure engine (no reserve; impressions have none).

namespace pdm {

struct AvazuMarketConfig {
  /// Hashed dimension n (the paper uses 128 and 1024).
  int hashed_dim = 128;
  /// Offline FTRL training examples.
  int64_t train_samples = 200000;
  /// FTRL hyperparameters. `ftrl_l1 ≤ 0` auto-scales λ₁ to ~2σ of a null
  /// coordinate's gradient random walk (σ ≈ √(0.1·hits per slot)), which is
  /// what makes the learned model as sparse as the paper's (~21–23
  /// non-zeros) across training sizes.
  double ftrl_alpha = 0.1;
  double ftrl_beta = 1.0;
  double ftrl_l1 = -1.0;
  double ftrl_l2 = 1.0;
  /// Hold-out examples for the reported log-loss.
  int64_t eval_samples = 20000;
};

struct AvazuMarket {
  /// Learned weights over the hashed space (sparse: many exact zeros).
  Vector theta;
  /// Learned intercept; the pricing link becomes σ(z + bias).
  double bias = 0.0;
  /// Coordinates with θ*_j ≠ 0, ascending (the dense encoding's axes).
  std::vector<int32_t> support;
  double logloss = 0.0;
  int nonzero_weights = 0;
  /// Suggested initial knowledge radius: 2‖θ*‖ (sparse space); the dense
  /// space uses the same bound restricted to the support.
  double recommended_radius = 0.0;
};

/// Trains the offline CTR model.
AvazuMarket BuildAvazuMarket(const AvazuMarketConfig& config, const AvazuLikeClickLog& log,
                             Rng* rng);

/// Streams impressions as pricing rounds. In dense mode, features are the
/// support-restricted coordinates (dimension = support size); in sparse mode,
/// the full hashed one-hot vector (dimension = hashed_dim).
class AvazuQueryStream : public QueryStream {
 public:
  AvazuQueryStream(const AvazuLikeClickLog* log, const AvazuMarket* market, int hashed_dim,
                   bool dense);

  using QueryStream::Next;
  void Next(Rng* rng, MarketRound* round) override;

  /// Engine-facing feature dimension (hashed_dim or |support|).
  int feature_dim() const;

 private:
  /// Per-round scratch reused across Next() calls: the drawn impression, the
  /// featurizer's slot buffer, and the hashed sparse encoding.
  struct Workspace {
    AdImpression impression;
    std::vector<std::pair<int32_t, double>> slot_scratch;
    SparseVector hashed;
  };

  const AvazuLikeClickLog* log_;
  const AvazuMarket* market_;
  HashingFeaturizer featurizer_;
  bool dense_;
  /// Maps hashed slot -> dense position (+1; 0 = absent), dense mode only.
  std::vector<int32_t> slot_to_dense_;
  /// θ* restricted to the support (dense mode).
  Vector dense_theta_;
  Workspace ws_;
};

}  // namespace pdm

#endif  // PDM_MARKET_AVAZU_MARKET_H_
