#include "market/kernel_market.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

KernelQueryStream::KernelQueryStream(const KernelMarketConfig& config, Rng* rng)
    : config_(config) {
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(config_.input_dim >= 1);
  PDM_CHECK(config_.num_landmarks >= 2);
  PDM_CHECK(config_.rbf_gamma > 0.0);
  PDM_CHECK(config_.reserve_fraction >= 0.0 && config_.reserve_fraction < 1.0);

  Matrix landmarks(config_.num_landmarks, config_.input_dim);
  for (int m = 0; m < config_.num_landmarks; ++m) {
    for (int d = 0; d < config_.input_dim; ++d) {
      landmarks(m, d) = rng->NextUniform(-1.0, 1.0);
    }
  }
  map_ = std::make_shared<LandmarkKernelMap>(
      std::make_shared<RbfKernel>(config_.rbf_gamma), std::move(landmarks));

  // θ* over the kernel features. The positive offset keeps market values
  // bounded away from zero; because RBF features are in (0, 1] and sum to a
  // slowly varying total, the offset is spread across all weights rather
  // than requiring an explicit bias feature.
  theta_ = rng->GaussianVector(config_.num_landmarks);
  for (double& w : theta_) {
    w += config_.value_offset / static_cast<double>(config_.num_landmarks) * 4.0;
  }
}

void KernelQueryStream::Next(Rng* rng, MarketRound* round) {
  PDM_CHECK(rng != nullptr);
  rng->UniformVectorInto(config_.input_dim, -1.0, 1.0, &round->features);
  map_->MapInto(round->features, &phi_scratch_);
  round->value = Dot(phi_scratch_, theta_);
  round->reserve = config_.reserve_fraction * round->value;
}

double KernelQueryStream::RecommendedRadius() const { return 2.0 * Norm2(theta_); }

}  // namespace pdm
