#ifndef PDM_MARKET_KERNEL_MARKET_H_
#define PDM_MARKET_KERNEL_MARKET_H_

#include <memory>

#include "learning/kernels.h"
#include "market/round.h"

/// \file
/// Kernelized market values (the fourth non-linear model of Section IV-A):
/// v_t = Σ_j θ*_j · K(x_t, l_j).
///
/// The paper's formulation expands over all past rounds (dimension grows with
/// t); the fixed-budget landmark substitution (learning/kernels.h) keeps the
/// weight dimension at m. Both the kernel K and the landmarks l_j are public
/// knowledge — only θ* over the kernel features is learned from price
/// feedback, exactly the Theorem 2 reduction.
///
/// This workload exercises a value surface that is *non-linear in the raw
/// features*: a plain linear engine on x is misspecified and plateaus at the
/// misspecification error, while the kernelized engine converges — the
/// comparison bench_kernel_pricing runs.

namespace pdm {

struct KernelMarketConfig {
  /// Raw feature dimension of a product.
  int input_dim = 4;
  /// Number of kernel landmarks m (the learned weight dimension).
  int num_landmarks = 10;
  /// RBF bandwidth γ in K(a,b) = exp(−γ‖a−b‖²).
  double rbf_gamma = 0.5;
  /// Reserve price as a fraction of market value (0 disables).
  double reserve_fraction = 0.6;
  /// Offset added so market values stay positive.
  double value_offset = 2.0;
};

class KernelQueryStream : public QueryStream {
 public:
  /// Draws landmarks (uniform in [−1,1]^d) and θ* (standard normal over the
  /// m kernel features) from `rng`.
  KernelQueryStream(const KernelMarketConfig& config, Rng* rng);

  using QueryStream::Next;
  void Next(Rng* rng, MarketRound* round) override;

  /// The public feature map φ(x) = (K(x, l_1), …, K(x, l_m)) the engine
  /// should price over.
  std::shared_ptr<const LandmarkKernelMap> feature_map() const { return map_; }

  /// True weights over the kernel features (plus the offset on the last
  /// slot, see implementation).
  const Vector& theta() const { return theta_; }

  /// Suggested initial knowledge radius 2‖θ*‖.
  double RecommendedRadius() const;

  const KernelMarketConfig& config() const { return config_; }

 private:
  KernelMarketConfig config_;
  std::shared_ptr<const LandmarkKernelMap> map_;
  Vector theta_;
  /// φ(x) scratch reused across rounds (kept out of MarketRound: the engine
  /// prices the *raw* features; φ is applied by its own feature map).
  Vector phi_scratch_;
};

}  // namespace pdm

#endif  // PDM_MARKET_KERNEL_MARKET_H_
