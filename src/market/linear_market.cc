#include "market/linear_market.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "features/aggregation.h"
#include "features/scaler.h"

namespace pdm {
namespace {

Vector DrawTheta(const NoisyLinearMarketConfig& config, Rng* rng) {
  // "We draw the weight vector θ* in a similar way to sample the query
  // parameters ... scale θ* such that its L2 norm is √(2n)."
  Vector theta = (config.family == QueryWeightFamily::kUniform)
                     ? rng->UniformVector(config.feature_dim, -1.0, 1.0)
                     : rng->GaussianVector(config.feature_dim);
  if (config.theta_nonnegative) {
    for (double& v : theta) v = std::fabs(v);
  }
  PDM_CHECK(config.theta_flat_blend >= 0.0 && config.theta_flat_blend <= 1.0);
  // At small n the value/reserve ratio is a weighted average of only a few θ
  // components, so the per-seed spread grows like 1/√n; the floor keeps
  // v ≥ q with high probability for every seed at every dimension.
  double blend = std::max(config.theta_flat_blend,
                          1.0 / std::sqrt(static_cast<double>(config.feature_dim)));
  for (double& v : theta) {
    v = blend + (1.0 - blend) * v;
  }
  RescaleToNorm(&theta, std::sqrt(2.0 * static_cast<double>(config.feature_dim)));
  return theta;
}

QueryGeneratorConfig MakeQueryConfig(const NoisyLinearMarketConfig& config) {
  QueryGeneratorConfig qc;
  qc.num_owners = config.num_owners;
  qc.family = config.family;
  return qc;
}

}  // namespace

NoisyLinearQueryStream::NoisyLinearQueryStream(const NoisyLinearMarketConfig& config,
                                               Rng* rng)
    : config_(config),
      ledger_(CompensationLedger::Random(config.num_owners, /*base_scale=*/1.0,
                                         /*base_rate=*/1.0, rng)),
      query_generator_(MakeQueryConfig(config)),
      theta_(DrawTheta(config, rng)) {
  PDM_CHECK(config_.feature_dim >= 1);
  PDM_CHECK(config_.num_owners >= config_.feature_dim);
  PDM_CHECK(config_.value_noise_sigma >= 0.0);
}

void NoisyLinearQueryStream::Next(Rng* rng, MarketRound* round) {
  // Whole pipeline runs in reused buffers: query weights, compensations, the
  // aggregation's sort scratch, and the caller's feature vector.
  query_generator_.Next(rng, &ws_.query);
  ledger_.CompensationsInto(ws_.query, &ws_.compensations);
  SortedPartitionFeaturesInto(ws_.compensations, config_.feature_dim,
                              &ws_.sort_scratch, &round->features);
  L2NormalizeInPlace(&round->features);  // ‖x_t‖ = 1 ⇒ S = 1

  // q_t = Σᵢ x_{t,i} (total compensation, rescaled)
  round->reserve = Sum(round->features);
  double noise = config_.value_noise_sigma > 0.0
                     ? rng->NextGaussian(0.0, config_.value_noise_sigma)
                     : 0.0;
  round->value = Dot(round->features, theta_) + noise;
}

double NoisyLinearQueryStream::RecommendedRadius() const {
  return 2.0 * std::sqrt(static_cast<double>(config_.feature_dim));
}

}  // namespace pdm
