#ifndef PDM_MARKET_LINEAR_MARKET_H_
#define PDM_MARKET_LINEAR_MARKET_H_

#include <cstdint>
#include <memory>

#include "market/round.h"
#include "privacy/compensation.h"
#include "privacy/linear_query.h"
#include "rng/subgaussian.h"

/// \file
/// Application 1: pricing noisy linear queries (Section V-A).
///
/// Full pipeline per round: draw a random noisy linear query (Gaussian or
/// uniform weights, Laplace noise variance 10^k); quantify each owner's
/// differential-privacy leakage; evaluate the tanh compensation contracts;
/// aggregate the sorted compensations into an n-dimensional feature vector;
/// L2-normalize it (S = 1); set the reserve to the total compensation
/// q_t = Σᵢ x_{t,i}; realize the market value v_t = x_tᵀθ* + δ_t.
///
/// θ* is drawn from the same family as the query weights, made non-negative
/// (component-wise |·|) and rescaled to ‖θ*‖ = √(2n), "which guarantees that
/// the market value of each query is no less than its reserve price with a
/// high probability". The broker's initial knowledge-set radius is R = 2√n.

namespace pdm {

struct NoisyLinearMarketConfig {
  /// Feature dimension n ≥ 1.
  int feature_dim = 20;
  /// Number of data owners behind the broker.
  int num_owners = 2000;
  /// Query weight family (the evaluation mixes Gaussian and uniform).
  QueryWeightFamily family = QueryWeightFamily::kMixed;
  /// Standard deviation σ of the market-value noise δ_t (0 = noiseless).
  double value_noise_sigma = 0.0;
  /// Take |·| of θ* components before rescaling (matches Table I's positive
  /// mean market values; see DESIGN.md §5).
  bool theta_nonnegative = true;
  /// Blend θ* toward a flat (all-equal) vector: θ ∝ blend·1 + (1−blend)·|draw|
  /// before rescaling to ‖θ*‖ = √(2n). The sorted-partition features put most
  /// mass on a few top partitions, so with a fully random θ* the market-value
  /// to reserve ratio v/q is decided by a couple of θ components and swings
  /// wildly across seeds (some seeds would have q > v in every round). The
  /// flat component pins v/q near Table I's ≈1.1–1.3 for every seed while the
  /// random component keeps queries genuinely differentiated. The default is
  /// calibrated so the risk-averse baseline's regret ratio lands near the
  /// paper's 18.16% (Fig. 5(a)). The stream floors the blend at 1/√n, where
  /// the per-seed spread of the value/reserve ratio would otherwise explode.
  double theta_flat_blend = 0.1;
};

class NoisyLinearQueryStream : public QueryStream {
 public:
  /// Draws contracts and θ* from `rng`; subsequent queries use the rng passed
  /// to Next().
  NoisyLinearQueryStream(const NoisyLinearMarketConfig& config, Rng* rng);

  using QueryStream::Next;
  void Next(Rng* rng, MarketRound* round) override;

  const Vector& theta() const { return theta_; }
  const NoisyLinearMarketConfig& config() const { return config_; }

  /// The paper's initial knowledge-set radius R = 2√n for this workload.
  double RecommendedRadius() const;

 private:
  /// Per-round scratch reused across Next() calls: the query's owner-weight
  /// vector, the per-owner compensations, and the sort buffer of the
  /// partition aggregation. Once warm, a round allocates nothing.
  struct Workspace {
    NoisyLinearQuery query;
    Vector compensations;
    Vector sort_scratch;
  };

  NoisyLinearMarketConfig config_;
  CompensationLedger ledger_;
  NoisyLinearQueryGenerator query_generator_;
  Vector theta_;
  Workspace ws_;
};

}  // namespace pdm

#endif  // PDM_MARKET_LINEAR_MARKET_H_
