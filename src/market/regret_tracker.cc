#include "market/regret_tracker.h"

#include "common/check.h"

namespace pdm {

RegretTracker::RegretTracker(int64_t series_stride) : series_stride_(series_stride) {
  PDM_CHECK(series_stride_ >= 0);
}

double TailRegretRatio(const RegretSeriesPoint& from, const RegretSeriesPoint& to) {
  double value_delta = to.cumulative_value - from.cumulative_value;
  if (value_delta <= 0.0) return 0.0;
  return (to.cumulative_regret - from.cumulative_regret) / value_delta;
}

double RegretTracker::SingleRoundRegret(double value, double reserve, double price,
                                        bool accepted) {
  if (reserve > value) return 0.0;
  return value - (accepted ? price : 0.0);
}

void RegretTracker::Observe(const MarketRound& round, const PostedPrice& posted,
                            bool accepted) {
  ++rounds_;
  double regret = SingleRoundRegret(round.value, round.reserve, posted.price, accepted);
  cumulative_regret_ += regret;
  cumulative_value_ += round.value;
  if (accepted) {
    ++sales_;
    cumulative_revenue_ += posted.price;
  }
  if (round.reserve <= round.value) {
    // Risk-averse baseline sells at q_t; the oracle sells at v_t.
    baseline_regret_ += round.value - round.reserve;
    oracle_revenue_ += round.value;
  }
  value_stats_.Add(round.value);
  reserve_stats_.Add(round.reserve);
  price_stats_.Add(posted.price);
  regret_stats_.Add(regret);
  MaybeRecordSeriesPoint(/*force=*/false);
}

double RegretTracker::regret_ratio() const {
  return cumulative_value_ > 0.0 ? cumulative_regret_ / cumulative_value_ : 0.0;
}

double RegretTracker::baseline_regret_ratio() const {
  return cumulative_value_ > 0.0 ? baseline_regret_ / cumulative_value_ : 0.0;
}

void RegretTracker::MaybeRecordSeriesPoint(bool force) {
  if (series_stride_ == 0) return;
  if (!force && rounds_ % series_stride_ != 0) return;
  if (!series_.empty() && series_.back().round == rounds_) return;
  RegretSeriesPoint point;
  point.round = rounds_;
  point.cumulative_regret = cumulative_regret_;
  point.cumulative_value = cumulative_value_;
  point.regret_ratio = regret_ratio();
  point.baseline_cumulative_regret = baseline_regret_;
  point.baseline_regret_ratio = baseline_regret_ratio();
  series_.push_back(point);
}

}  // namespace pdm
