#ifndef PDM_MARKET_REGRET_TRACKER_H_
#define PDM_MARKET_REGRET_TRACKER_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "market/round.h"
#include "pricing/pricing_engine.h"

/// \file
/// Regret accounting per Eq. (1) of the paper:
///
///   R_t = 0                          if q_t > v_t,
///   R_t = v_t − p_t·1{p_t ≤ v_t}     otherwise.
///
/// The tracker also accumulates two companion references from the same round
/// sequence: the risk-averse baseline (post q_t every round, regret v_t − q_t
/// whenever q_t ≤ v_t) and the adversary/oracle revenue (sell at v_t whenever
/// q_t ≤ v_t). The regret ratio is Σ R_k / Σ v_k (Section V-A).

namespace pdm {

struct RegretSeriesPoint {
  int64_t round = 0;
  double cumulative_regret = 0.0;
  double cumulative_value = 0.0;
  double regret_ratio = 0.0;
  double baseline_cumulative_regret = 0.0;
  double baseline_regret_ratio = 0.0;
};

/// Marginal ("tail") regret ratio between two series points:
/// ΔΣR / ΔΣv. This is the steady-state per-round regret level once the
/// knowledge set has converged, independent of cold-start losses.
double TailRegretRatio(const RegretSeriesPoint& from, const RegretSeriesPoint& to);

class RegretTracker {
 public:
  /// `series_stride` > 0 records a series point every that-many rounds (plus
  /// the final round); 0 disables series recording.
  explicit RegretTracker(int64_t series_stride = 0);

  /// Folds one completed round into the accumulators.
  void Observe(const MarketRound& round, const PostedPrice& posted, bool accepted);

  /// Single-round regret per Eq. (1). `accepted` must equal (price ≤ value)
  /// for posted offers and false for withheld (certain-no-sale) offers.
  static double SingleRoundRegret(double value, double reserve, double price,
                                  bool accepted);

  int64_t rounds() const { return rounds_; }
  int64_t sales() const { return sales_; }
  double cumulative_regret() const { return cumulative_regret_; }
  double cumulative_value() const { return cumulative_value_; }
  double cumulative_revenue() const { return cumulative_revenue_; }
  /// Σ R_k / Σ v_k; 0 when no value has accrued.
  double regret_ratio() const;

  /// Companion risk-averse baseline (posts q_t each round).
  double baseline_cumulative_regret() const { return baseline_regret_; }
  double baseline_regret_ratio() const;
  /// Companion oracle revenue Σ v_t·1{q_t ≤ v_t} (the adversary's revenue).
  double oracle_revenue() const { return oracle_revenue_; }

  /// Per-round statistics for the Table I columns.
  const RunningStats& value_stats() const { return value_stats_; }
  const RunningStats& reserve_stats() const { return reserve_stats_; }
  const RunningStats& price_stats() const { return price_stats_; }
  const RunningStats& regret_stats() const { return regret_stats_; }

  const std::vector<RegretSeriesPoint>& series() const { return series_; }

 private:
  void MaybeRecordSeriesPoint(bool force);

  int64_t series_stride_;
  int64_t rounds_ = 0;
  int64_t sales_ = 0;
  double cumulative_regret_ = 0.0;
  double cumulative_value_ = 0.0;
  double cumulative_revenue_ = 0.0;
  double baseline_regret_ = 0.0;
  double oracle_revenue_ = 0.0;
  RunningStats value_stats_;
  RunningStats reserve_stats_;
  RunningStats price_stats_;
  RunningStats regret_stats_;
  std::vector<RegretSeriesPoint> series_;
};

}  // namespace pdm

#endif  // PDM_MARKET_REGRET_TRACKER_H_
