#ifndef PDM_MARKET_ROUND_H_
#define PDM_MARKET_ROUND_H_

#include "linalg/vector_ops.h"
#include "pricing/pricing_engine.h"
#include "rng/rng.h"

/// \file
/// One round of data trading and the workload-stream interface.
///
/// A `MarketRound` is everything the *simulator* knows about round t: the
/// engine-space feature vector x_t, the reserve price q_t, and the realized
/// market value v_t (which the engine never sees — it only observes the
/// accept/reject bit).

namespace pdm {

struct MarketRound {
  /// Feature vector handed to the pricing engine.
  Vector features;
  /// Reserve price q_t (total privacy compensation, host minimum, ...).
  double reserve = 0.0;
  /// Realized market value v_t = g(φ(x_t)ᵀθ*) + δ_t.
  double value = 0.0;
};

/// Produces the query sequence. Implementations cover the paper's three
/// applications plus the Lemma 8 adversary.
class QueryStream {
 public:
  virtual ~QueryStream() = default;

  /// Fills `*round` with the next query; `rng` drives any stochastic part of
  /// the workload. This is the per-round hot path: implementations must
  /// overwrite every MarketRound field and reuse `round->features`' storage,
  /// so steady-state calls perform no heap allocation. Overriding this hides
  /// the by-value convenience overload — re-expose it with
  /// `using QueryStream::Next;`.
  virtual void Next(Rng* rng, MarketRound* round) = 0;

  /// By-value convenience wrapper (tests, examples, workload recording);
  /// produces bit-identical rounds to the fill-in overload.
  MarketRound Next(Rng* rng) {
    MarketRound round;
    Next(rng, &round);
    return round;
  }

  /// Adaptive adversaries (Lemma 8) may inspect the engine's current
  /// knowledge set when crafting the next query; benign streams ignore this.
  virtual void BindEngine(const PricingEngine* engine) { (void)engine; }
};

}  // namespace pdm

#endif  // PDM_MARKET_ROUND_H_
