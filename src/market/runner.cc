#include "market/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/check.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace pdm {

SimulationRunner::SimulationRunner(const RunnerOptions& options) {
  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  num_threads_ = threads;
}

JobResult SimulationRunner::RunJob(const SimulationJob& spec) {
  SimulationScratch scratch;
  return RunJob(spec, &scratch);
}

JobResult SimulationRunner::RunJob(const SimulationJob& spec,
                                             SimulationScratch* scratch) {
  PDM_CHECK(spec.make_stream != nullptr);
  PDM_CHECK(spec.make_engine != nullptr);

  // The job's entire randomness flows from this one generator: stream
  // construction consumes a prefix, the market loop the rest. That makes the
  // outcome a pure function of the spec, independent of which worker thread
  // runs it or when.
  Rng rng(spec.seed);
  std::unique_ptr<QueryStream> stream = spec.make_stream(&rng);
  std::unique_ptr<PricingEngine> engine = spec.make_engine();
  PDM_CHECK(stream != nullptr);
  PDM_CHECK(engine != nullptr);

  JobResult out;
  out.name = spec.name;
  out.seed = spec.seed;
  out.engine_name = engine->name();
  out.result = RunMarket(stream.get(), engine.get(), spec.options, &rng, scratch);
  return out;
}

std::vector<JobResult> SimulationRunner::RunAll(
    const std::vector<SimulationJob>& jobs) const {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  const int workers =
      static_cast<int>(std::min<size_t>(jobs.size(),
                                        static_cast<size_t>(num_threads_)));
  if (workers <= 1) {
    SimulationScratch scratch;
    for (size_t i = 0; i < jobs.size(); ++i) {
      results[i] = RunJob(jobs[i], &scratch);
    }
    return results;
  }

  // Work-stealing by atomic ticket: each worker claims the next unclaimed
  // job index. Results land in their own slots, so no locking is needed
  // and the output order matches the input order exactly. Exceptions are
  // parked per-slot and rethrown after the join so a throwing job
  // behaves the same as on the serial path instead of std::terminate-ing
  // the process.
  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    // Per-thread scratch: the round buffers are allocated once per worker
    // and reused across every job the worker claims.
    SimulationScratch scratch;
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = RunJob(jobs[i], &scratch);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

void PrintComparisonTable(const std::vector<JobResult>& results,
                          std::ostream& os) {
  TablePrinter table({"scenario", "engine", "seed", "rounds", "sales", "regret",
                      "regret%", "explore", "skip", "wall_s"});
  for (const JobResult& r : results) {
    const RegretTracker& tracker = r.result.tracker;
    const EngineCounters& counters = r.result.engine_counters;
    table.AddRow({
        r.name,
        r.engine_name,
        std::to_string(r.seed),
        std::to_string(tracker.rounds()),
        std::to_string(tracker.sales()),
        FormatDouble(tracker.cumulative_regret(), 2),
        FormatDouble(tracker.regret_ratio() * 100.0, 2),
        std::to_string(counters.exploratory_rounds),
        std::to_string(counters.skipped_rounds),
        FormatDouble(r.result.wall_seconds, 3),
    });
  }
  table.Print(os);
}

}  // namespace pdm
