#ifndef PDM_MARKET_RUNNER_H_
#define PDM_MARKET_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "market/round.h"
#include "market/simulator.h"
#include "pricing/pricing_engine.h"
#include "rng/rng.h"

/// \file
/// Multi-job batch executor on top of `RunMarket`.
///
/// A `SimulationJob` wires one (stream, engine, options, seed) configuration
/// into runnable factories; `SimulationRunner` executes a batch of them on a
/// `std::thread` pool. Every job draws from its own `Rng(seed)` — first to
/// construct the stream, then to drive the rounds — so results are
/// bit-identical regardless of worker count or scheduling order, and
/// identical to a serial `RunMarket` call with the same seed.
///
/// This is the execution substrate; the *declarative* description of what to
/// run (dataset, mechanism, horizon, seeds) is `scenario::ScenarioSpec` one
/// layer down, which `scenario::ExperimentDriver` lowers onto jobs.

namespace pdm {

/// One named, fully wired simulation. The factories are invoked on the
/// worker thread that runs the job; they must not share mutable state with
/// other jobs.
struct SimulationJob {
  /// Label used in the comparison table (e.g. "reserve+uncertainty/n=20").
  std::string name;
  /// Builds the workload stream. The `Rng` is the job's own random stream,
  /// already seeded with `seed`; use it for any setup randomness (θ* draws,
  /// contract sampling, ...).
  std::function<std::unique_ptr<QueryStream>(Rng*)> make_stream;
  /// Builds the pricing engine under test.
  std::function<std::unique_ptr<PricingEngine>()> make_engine;
  /// Forwarded to `RunMarket`.
  SimulationOptions options;
  /// Seed of the job's private `Rng`; equal seeds give equal results.
  uint64_t seed = 0;
};

/// Outcome of one job.
struct JobResult {
  std::string name;
  uint64_t seed = 0;
  /// Name reported by the engine (for the comparison table).
  std::string engine_name;
  SimulationResult result;
};

struct RunnerOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency(). The batch
  /// outcome does not depend on this value — only wall time does.
  int num_threads = 0;
};

class SimulationRunner {
 public:
  explicit SimulationRunner(const RunnerOptions& options = {});

  /// Runs every job, at most `num_threads` concurrently. The returned
  /// vector is index-aligned with `jobs` and deterministic for fixed
  /// specs regardless of thread count.
  std::vector<JobResult> RunAll(const std::vector<SimulationJob>& jobs) const;

  /// Runs one job synchronously on the calling thread. `RunAll` is
  /// exactly a concurrent map of this function.
  static JobResult RunJob(const SimulationJob& spec);

  /// Scratch-reusing variant: `RunAll` workers hold one `SimulationScratch`
  /// per thread and pass it to every job they execute, so the per-round
  /// buffers are allocated once per worker rather than once per job.
  /// Results are bit-identical to the convenience overload.
  static JobResult RunJob(const SimulationJob& spec,
                                    SimulationScratch* scratch);

  /// Effective worker count after resolving the 0 = hardware default.
  int num_threads() const { return num_threads_; }

 private:
  int num_threads_;
};

/// Renders a batch outcome as a fixed-width comparison table (one row per
/// job: rounds, sales, regret, regret ratio, exploratory/skip counts,
/// wall time) via `common/table_printer`.
void PrintComparisonTable(const std::vector<JobResult>& results,
                          std::ostream& os);

}  // namespace pdm

#endif  // PDM_MARKET_RUNNER_H_
