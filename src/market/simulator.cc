#include "market/simulator.h"

#include "common/check.h"
#include "common/timer.h"

namespace pdm {

SimulationResult RunMarket(QueryStream* stream, PricingEngine* engine,
                           const SimulationOptions& options, Rng* rng) {
  SimulationScratch scratch;
  return RunMarket(stream, engine, options, rng, &scratch);
}

SimulationResult RunMarket(QueryStream* stream, PricingEngine* engine,
                           const SimulationOptions& options, Rng* rng,
                           SimulationScratch* scratch) {
  PDM_CHECK(stream != nullptr);
  PDM_CHECK(engine != nullptr);
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(scratch != nullptr);
  PDM_CHECK(options.rounds > 0);

  SimulationResult result;
  result.tracker = RegretTracker(options.series_stride);
  stream->BindEngine(engine);

  WallTimer total_timer;
  double engine_seconds = 0.0;
  WallTimer round_timer;
  // One MarketRound for the whole simulation: the stream refills it (and its
  // feature buffer) in place, so steady-state rounds perform no allocation.
  MarketRound& round = scratch->round;
  for (int64_t t = 0; t < options.rounds; ++t) {
    stream->Next(rng, &round);
    if (options.measure_latency) round_timer.Restart();
    PostedPrice posted = engine->PostPrice(round.features, round.reserve);
    bool accepted = !posted.certain_no_sale && posted.price <= round.value;
    engine->Observe(accepted);
    if (options.measure_latency) engine_seconds += round_timer.ElapsedSeconds();
    result.tracker.Observe(round, posted, accepted);
  }
  result.wall_seconds = total_timer.ElapsedSeconds();
  result.engine_counters = engine->counters();
  if (options.measure_latency && options.rounds > 0) {
    result.engine_millis_per_round =
        engine_seconds * 1e3 / static_cast<double>(options.rounds);
  }
  return result;
}

}  // namespace pdm
