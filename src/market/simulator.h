#ifndef PDM_MARKET_SIMULATOR_H_
#define PDM_MARKET_SIMULATOR_H_

#include <cstdint>

#include "market/regret_tracker.h"
#include "market/round.h"
#include "pricing/pricing_engine.h"
#include "rng/rng.h"

/// \file
/// The round-by-round market loop of Fig. 2: draw a query, let the engine
/// post a price, resolve the sale against the realized market value, feed
/// the accept/reject bit back, and account regret.

namespace pdm {

struct SimulationOptions {
  /// Number of rounds T.
  int64_t rounds = 10000;
  /// Regret-series sampling stride (0 = no series).
  int64_t series_stride = 0;
  /// Measure per-round engine latency (PostPrice + Observe) — Section V-D.
  bool measure_latency = false;
};

struct SimulationResult {
  RegretTracker tracker{0};
  EngineCounters engine_counters;
  /// Total wall time of the loop in seconds.
  double wall_seconds = 0.0;
  /// Mean engine latency per round in milliseconds (0 unless measured).
  double engine_millis_per_round = 0.0;
};

/// Reusable cross-simulation scratch. One MarketRound is allocated per
/// simulation (not per round) and its feature buffer is refilled in place by
/// the stream each round; holding the scratch outside RunMarket lets a
/// SimulationRunner worker thread reuse it across every scenario it executes.
struct SimulationScratch {
  MarketRound round;
};

/// Runs the loop. The stream is bound to the engine first so adaptive
/// adversaries can observe the knowledge set. A round's sale resolves as
/// accepted ⇔ (offer actually made) ∧ (price ≤ value); certain-no-sale
/// rounds never sell (the broker withholds the offer).
SimulationResult RunMarket(QueryStream* stream, PricingEngine* engine,
                           const SimulationOptions& options, Rng* rng);

/// Scratch-reusing overload: bit-identical to the convenience overload, which
/// simply calls it with a local scratch.
SimulationResult RunMarket(QueryStream* stream, PricingEngine* engine,
                           const SimulationOptions& options, Rng* rng,
                           SimulationScratch* scratch);

}  // namespace pdm

#endif  // PDM_MARKET_SIMULATOR_H_
