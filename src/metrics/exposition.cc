// Prometheus text exposition rendering and the pdm.metrics.v1 binary dump
// codec. The codec lives here (not in server/wire.h) because the metrics
// layer sits below the server: the server frames the dump as an opaque
// string, and `server::Client` hands the bytes back to DecodeMetricsDump.

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "metrics/metrics.h"

namespace pdm::metrics {
namespace {

// ------------------------------------------------------------- text render

/// Escapes HELP text: backslash and newline (exposition format 0.0.4).
void AppendEscapedHelp(std::string_view text, std::string* out) {
  for (char c : text) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

/// Escapes a label value: backslash, double quote, newline.
void AppendEscapedLabelValue(std::string_view text, std::string* out) {
  for (char c : text) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '"') {
      out->append("\\\"");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

/// Renders `{a="x",b="y"}` (empty string when there are no labels). `extra`
/// appends one more pre-rendered pair (the histogram `le`).
void AppendLabels(const std::vector<Label>& labels, std::string_view extra,
                  std::string* out) {
  if (labels.empty() && extra.empty()) return;
  out->push_back('{');
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(label.name);
    out->append("=\"");
    AppendEscapedLabelValue(label.value, out);
    out->push_back('"');
  }
  if (!extra.empty()) {
    if (!first) out->push_back(',');
    out->append(extra);
  }
  out->push_back('}');
}

void AppendDouble(double v, std::string* out) {
  if (std::isnan(v)) {
    out->append("NaN");
    return;
  }
  if (std::isinf(v)) {
    out->append(v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

// -------------------------------------------------------------- dump codec

constexpr char kDumpMagic[8] = {'P', 'D', 'M', 'M', 'E', 'T', 'R', '1'};
constexpr uint32_t kDumpVersion = 1;

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)), out);
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)), out);
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

class DumpReader {
 public:
  explicit DumpReader(std::string_view bytes) : data_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t size = 0;
    if (!GetU32(&size) || pos_ + size > data_.size()) return false;
    s->assign(data_.substr(pos_, size));
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

void MetricRegistry::RenderPrometheus(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  constexpr size_t kGroups =
      LatencyHistogram::kBucketCount / LatencyHistogram::kSubBuckets;
  for (const Family& family : families_) {
    out->append("# HELP ");
    out->append(family.name);
    out->push_back(' ');
    AppendEscapedHelp(family.help, out);
    out->push_back('\n');
    out->append("# TYPE ");
    out->append(family.name);
    out->append(family.type == InstrumentType::kCounter     ? " counter\n"
                : family.type == InstrumentType::kGauge     ? " gauge\n"
                                                            : " histogram\n");
    for (const Instrument& instrument : family.instruments) {
      switch (family.type) {
        case InstrumentType::kCounter: {
          out->append(family.name);
          AppendLabels(instrument.labels, {}, out);
          out->push_back(' ');
          AppendU64(instrument.counter->value.load(std::memory_order_relaxed),
                    out);
          out->push_back('\n');
          break;
        }
        case InstrumentType::kGauge: {
          out->append(family.name);
          AppendLabels(instrument.labels, {}, out);
          out->push_back(' ');
          AppendDouble(instrument.gauge->value.load(std::memory_order_relaxed),
                       out);
          out->push_back('\n');
          break;
        }
        case InstrumentType::kHistogram: {
          // Cumulative buckets at the grid's octave edges; octaves with no
          // samples are elided (sparse monotone series are valid exposition
          // and keep a 2.5k-bucket grid scrape-sized). `_count` repeats the
          // `+Inf` cumulative so the document is self-consistent even if a
          // concurrent Record landed between the two atomic loads.
          const HistogramCell* cell = instrument.histogram;
          uint64_t cumulative = 0;
          for (size_t group = 0; group < kGroups; ++group) {
            uint64_t in_group = 0;
            for (uint64_t sub = 0; sub < LatencyHistogram::kSubBuckets; ++sub) {
              in_group += cell->buckets[group * LatencyHistogram::kSubBuckets +
                                        sub]
                              .load(std::memory_order_relaxed);
            }
            if (in_group == 0) continue;
            cumulative += in_group;
            uint64_t upper_edge =
                LatencyHistogram::BucketFloor((group + 1) *
                                              LatencyHistogram::kSubBuckets) -
                1;
            std::string le = "le=\"";
            AppendU64(upper_edge, &le);
            le.push_back('"');
            out->append(family.name);
            out->append("_bucket");
            AppendLabels(instrument.labels, le, out);
            out->push_back(' ');
            AppendU64(cumulative, out);
            out->push_back('\n');
          }
          out->append(family.name);
          out->append("_bucket");
          AppendLabels(instrument.labels, "le=\"+Inf\"", out);
          out->push_back(' ');
          AppendU64(cumulative, out);
          out->push_back('\n');
          out->append(family.name);
          out->append("_sum");
          AppendLabels(instrument.labels, {}, out);
          out->push_back(' ');
          AppendU64(cell->sum.load(std::memory_order_relaxed), out);
          out->push_back('\n');
          out->append(family.name);
          out->append("_count");
          AppendLabels(instrument.labels, {}, out);
          out->push_back(' ');
          AppendU64(cumulative, out);
          out->push_back('\n');
          break;
        }
      }
    }
  }
}

std::string MetricRegistry::RenderPrometheus() const {
  std::string out;
  RenderPrometheus(&out);
  return out;
}

std::string MetricRegistry::EncodeDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.append(kDumpMagic, sizeof(kDumpMagic));
  PutU32(kDumpVersion, &out);
  PutU32(static_cast<uint32_t>(families_.size()), &out);
  for (const Family& family : families_) {
    PutString(family.name, &out);
    PutString(family.help, &out);
    PutU8(static_cast<uint8_t>(family.type), &out);
    PutU32(static_cast<uint32_t>(family.instruments.size()), &out);
    for (const Instrument& instrument : family.instruments) {
      PutU32(static_cast<uint32_t>(instrument.labels.size()), &out);
      for (const Label& label : instrument.labels) {
        PutString(label.name, &out);
        PutString(label.value, &out);
      }
      switch (family.type) {
        case InstrumentType::kCounter:
          PutU64(instrument.counter->value.load(std::memory_order_relaxed),
                 &out);
          break;
        case InstrumentType::kGauge:
          PutU64(std::bit_cast<uint64_t>(instrument.gauge->value.load(
                     std::memory_order_relaxed)),
                 &out);
          break;
        case InstrumentType::kHistogram: {
          const HistogramCell* cell = instrument.histogram;
          // Snapshot the sparse buckets first; report their total as the
          // count so count == sum of buckets in the decoded dump.
          uint64_t total = 0;
          std::string pairs;
          uint32_t nonzero = 0;
          for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
            uint64_t b = cell->buckets[i].load(std::memory_order_relaxed);
            if (b == 0) continue;
            PutU32(static_cast<uint32_t>(i), &pairs);
            PutU64(b, &pairs);
            total += b;
            ++nonzero;
          }
          PutU64(total, &out);
          PutU64(cell->sum.load(std::memory_order_relaxed), &out);
          PutU32(nonzero, &out);
          out.append(pairs);
          break;
        }
      }
    }
  }
  return out;
}

Status DecodeMetricsDump(std::string_view bytes, MetricsDump* out) {
  out->instruments.clear();
  DumpReader reader(bytes);
  if (bytes.size() < sizeof(kDumpMagic) ||
      std::memcmp(bytes.data(), kDumpMagic, sizeof(kDumpMagic)) != 0) {
    return Status::InvalidArgument("metrics dump: bad magic");
  }
  uint8_t skip;
  for (size_t i = 0; i < sizeof(kDumpMagic); ++i) reader.GetU8(&skip);
  uint32_t version = 0;
  if (!reader.GetU32(&version) || version != kDumpVersion) {
    return Status::InvalidArgument("metrics dump: unsupported version");
  }
  uint32_t n_families = 0;
  if (!reader.GetU32(&n_families)) {
    return Status::InvalidArgument("metrics dump: truncated");
  }
  for (uint32_t f = 0; f < n_families; ++f) {
    std::string name;
    std::string help;
    uint8_t type = 0;
    uint32_t n_instruments = 0;
    if (!reader.GetString(&name) || !reader.GetString(&help) ||
        !reader.GetU8(&type) || !reader.GetU32(&n_instruments) ||
        type > static_cast<uint8_t>(InstrumentType::kHistogram)) {
      return Status::InvalidArgument("metrics dump: bad family header");
    }
    for (uint32_t i = 0; i < n_instruments; ++i) {
      DumpInstrument instrument;
      instrument.name = name;
      instrument.type = static_cast<InstrumentType>(type);
      uint32_t n_labels = 0;
      if (!reader.GetU32(&n_labels)) {
        return Status::InvalidArgument("metrics dump: truncated labels");
      }
      for (uint32_t l = 0; l < n_labels; ++l) {
        Label label;
        if (!reader.GetString(&label.name) || !reader.GetString(&label.value)) {
          return Status::InvalidArgument("metrics dump: truncated label");
        }
        instrument.labels.push_back(std::move(label));
      }
      switch (instrument.type) {
        case InstrumentType::kCounter:
          if (!reader.GetU64(&instrument.counter)) {
            return Status::InvalidArgument("metrics dump: truncated counter");
          }
          break;
        case InstrumentType::kGauge: {
          uint64_t bits = 0;
          if (!reader.GetU64(&bits)) {
            return Status::InvalidArgument("metrics dump: truncated gauge");
          }
          instrument.gauge = std::bit_cast<double>(bits);
          break;
        }
        case InstrumentType::kHistogram: {
          uint64_t count = 0;
          uint32_t n_buckets = 0;
          if (!reader.GetU64(&count) || !reader.GetU64(&instrument.hist_sum) ||
              !reader.GetU32(&n_buckets)) {
            return Status::InvalidArgument("metrics dump: truncated histogram");
          }
          instrument.hist_count = static_cast<int64_t>(count);
          for (uint32_t b = 0; b < n_buckets; ++b) {
            uint32_t index = 0;
            uint64_t bucket_count = 0;
            if (!reader.GetU32(&index) || !reader.GetU64(&bucket_count) ||
                index >= LatencyHistogram::kBucketCount) {
              return Status::InvalidArgument("metrics dump: bad bucket");
            }
            instrument.hist_buckets.emplace_back(index, bucket_count);
          }
          break;
        }
      }
      out->instruments.push_back(std::move(instrument));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("metrics dump: trailing bytes");
  }
  return Status::Ok();
}

}  // namespace pdm::metrics
