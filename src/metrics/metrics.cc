#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pdm::metrics {

namespace internal {

CounterCell* SinkCounterCell() {
  static CounterCell cell;
  return &cell;
}

GaugeCell* SinkGaugeCell() {
  static GaugeCell cell;
  return &cell;
}

HistogramCell* SinkHistogramCell() {
  static HistogramCell cell;
  return &cell;
}

}  // namespace internal

uint64_t Histogram::Quantile(double q) const {
  int64_t count = cell_->count.load(std::memory_order_relaxed);
  if (count <= 0) return 0;
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<int64_t>(rank, 1, count);
  int64_t cumulative = 0;
  uint64_t floor = 0;
  for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    uint64_t b = cell_->buckets[i].load(std::memory_order_relaxed);
    if (b == 0) continue;
    cumulative += static_cast<int64_t>(b);
    floor = LatencyHistogram::BucketFloor(i);
    if (cumulative >= rank) return floor;
  }
  return floor;  // count raced ahead of buckets; report the highest seen
}

MetricGateway* MetricGateway::Noop() {
  static NoopMetricGateway gateway;
  return &gateway;
}

MetricRegistry::Family* MetricRegistry::FindOrCreateFamily(
    std::string_view name, std::string_view help, InstrumentType type) {
  for (Family& family : families_) {
    if (family.name == name) {
      // Re-registering a name as a different type is a wiring bug, not a
      // runtime condition.
      PDM_CHECK(family.type == type);
      return &family;
    }
  }
  Family family;
  family.name = std::string(name);
  family.help = std::string(help);
  family.type = type;
  families_.push_back(std::move(family));
  return &families_.back();
}

MetricRegistry::Instrument* MetricRegistry::FindOrCreateInstrument(
    Family* family, std::vector<Label> labels) {
  for (Instrument& instrument : family->instruments) {
    if (instrument.labels == labels) return &instrument;
  }
  Instrument instrument;
  instrument.labels = std::move(labels);
  family->instruments.push_back(std::move(instrument));
  return &family->instruments.back();
}

Counter MetricRegistry::GetCounter(std::string_view name, std::string_view help,
                                   std::vector<Label> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, InstrumentType::kCounter);
  Instrument* instrument = FindOrCreateInstrument(family, std::move(labels));
  if (instrument->counter == nullptr) {
    instrument->counter = &counter_cells_.emplace_back();
  }
  return Counter(instrument->counter);
}

Gauge MetricRegistry::GetGauge(std::string_view name, std::string_view help,
                               std::vector<Label> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, InstrumentType::kGauge);
  Instrument* instrument = FindOrCreateInstrument(family, std::move(labels));
  if (instrument->gauge == nullptr) {
    instrument->gauge = &gauge_cells_.emplace_back();
  }
  return Gauge(instrument->gauge);
}

Histogram MetricRegistry::GetHistogram(std::string_view name,
                                       std::string_view help,
                                       std::vector<Label> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, InstrumentType::kHistogram);
  Instrument* instrument = FindOrCreateInstrument(family, std::move(labels));
  if (instrument->histogram == nullptr) {
    instrument->histogram = &histogram_cells_.emplace_back();
  }
  return Histogram(instrument->histogram);
}

const DumpInstrument* MetricsDump::Find(std::string_view name) const {
  for (const DumpInstrument& instrument : instruments) {
    if (instrument.name == name && instrument.labels.empty()) {
      return &instrument;
    }
  }
  return nullptr;
}

const DumpInstrument* MetricsDump::Find(std::string_view name,
                                        std::string_view label,
                                        std::string_view value) const {
  for (const DumpInstrument& instrument : instruments) {
    if (instrument.name != name) continue;
    for (const Label& l : instrument.labels) {
      if (l.name == label && l.value == value) return &instrument;
    }
  }
  return nullptr;
}

uint64_t MetricsDump::CounterValue(std::string_view name) const {
  const DumpInstrument* instrument = Find(name);
  return instrument != nullptr ? instrument->counter : 0;
}

uint64_t DumpInstrument::HistogramQuantile(double q) const {
  if (hist_count <= 0) return 0;
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(hist_count)));
  rank = std::clamp<int64_t>(rank, 1, hist_count);
  int64_t cumulative = 0;
  uint64_t floor = 0;
  for (const auto& [index, count] : hist_buckets) {
    cumulative += static_cast<int64_t>(count);
    floor = LatencyHistogram::BucketFloor(index);
    if (cumulative >= rank) return floor;
  }
  return floor;
}

}  // namespace pdm::metrics
