#ifndef PDM_METRICS_METRICS_H_
#define PDM_METRICS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/concurrency.h"
#include "common/histogram.h"
#include "common/status.h"

/// \file
/// Allocation-free serving metrics (DESIGN.md §13).
///
/// The layer splits into three pieces:
///
///   * **Cells** — cache-line-padded atomics (`CounterCell`, `GaugeCell`,
///     `HistogramCell`) that hold the actual state. A histogram cell reuses
///     `LatencyHistogram`'s log-linear bucket geometry so scraped quantiles
///     line up with the bench JSON quantiles bit for bit.
///   * **Handles** — `Counter` / `Gauge` / `Histogram` are one-pointer
///     wrappers resolved once at wiring time. `Increment`/`Add`/`Record` on
///     the hot path are single relaxed atomic RMWs: no allocation, no lock,
///     and no branch beyond the handle deref. A default-constructed handle
///     points at a process-wide *sink* cell, so unwired code pays the same
///     (tiny) cost as wired code instead of branching on null.
///   * **Gateway** — `MetricGateway` is the abstract wiring surface
///     (coincenter-style abstract/void/live split). `NoopMetricGateway`
///     hands out sink-backed handles; `MetricRegistry` is the live
///     implementation that names instruments, renders Prometheus text
///     exposition format, and encodes the `pdm.metrics.v1` binary dump the
///     wire protocol's `GetMetrics` opcode returns.
///
/// Instruments are identified by (family name, label set). Lookups are
/// idempotent: asking twice for the same instrument returns handles on the
/// same cell, which is how readers (shutdown stats, tests) observe what the
/// hot path wrote without side plumbing.

namespace pdm::metrics {

// ---------------------------------------------------------------------------
// Cells

struct alignas(kCacheLineSize) CounterCell {
  std::atomic<uint64_t> value{0};
};

struct alignas(kCacheLineSize) GaugeCell {
  std::atomic<double> value{0.0};

  /// Relaxed add: x86-64 has no atomic f64 fetch_add, so this is a CAS loop;
  /// uncontended it is one cycle of the loop.
  void Add(double delta) {
    double cur = value.load(std::memory_order_relaxed);
    while (!value.compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
    }
  }
};

/// Atomic counterpart of `LatencyHistogram`: same log-linear bucket grid,
/// per-bucket relaxed counters plus exact count and nanosecond sum. Record is
/// three relaxed fetch_adds (bucket, count, sum); rendering reads the buckets
/// relaxed, so a concurrent scrape sees a consistent-enough snapshot (counts
/// may trail the buckets by in-flight samples, never the reverse by more
/// than the same in-flight window).
struct HistogramCell {
  std::atomic<uint64_t> buckets[LatencyHistogram::kBucketCount];
  std::atomic<int64_t> count{0};
  std::atomic<uint64_t> sum{0};

  HistogramCell() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }

  void Record(uint64_t nanos) {
    buckets[LatencyHistogram::BucketIndex(nanos)].fetch_add(
        1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(nanos, std::memory_order_relaxed);
  }
};

namespace internal {
/// Process-wide sink cells backing default-constructed handles. Writing to
/// a sink is defined and cheap; reading one is meaningless.
CounterCell* SinkCounterCell();
GaugeCell* SinkGaugeCell();
HistogramCell* SinkHistogramCell();
}  // namespace internal

// ---------------------------------------------------------------------------
// Handles

/// Monotonic counter. Copyable, trivially destructible, default = no-op sink.
class Counter {
 public:
  Counter() : cell_(internal::SinkCounterCell()) {}
  explicit Counter(CounterCell* cell) : cell_(cell) {}

  void Increment() { cell_->value.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { cell_->value.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return cell_->value.load(std::memory_order_relaxed); }

 private:
  CounterCell* cell_;
};

/// Last-write-wins double gauge with merge-safe Add/Sub deltas.
class Gauge {
 public:
  Gauge() : cell_(internal::SinkGaugeCell()) {}
  explicit Gauge(GaugeCell* cell) : cell_(cell) {}

  void Set(double v) { cell_->value.store(v, std::memory_order_relaxed); }
  void Add(double delta) { cell_->Add(delta); }
  void Sub(double delta) { cell_->Add(-delta); }
  double value() const { return cell_->value.load(std::memory_order_relaxed); }

 private:
  GaugeCell* cell_;
};

/// Log-linear histogram handle (`HistogramMetric` in the DESIGN.md naming:
/// the instrument type wrapping `common/histogram`'s bucket geometry).
class Histogram {
 public:
  Histogram() : cell_(internal::SinkHistogramCell()) {}
  explicit Histogram(HistogramCell* cell) : cell_(cell) {}

  void Record(uint64_t nanos) { cell_->Record(nanos); }
  int64_t count() const { return cell_->count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return cell_->sum.load(std::memory_order_relaxed); }
  /// Conservative q-quantile over the relaxed bucket snapshot (same contract
  /// as LatencyHistogram::Quantile). 0 when empty.
  uint64_t Quantile(double q) const;

 private:
  HistogramCell* cell_;
};

using HistogramMetric = Histogram;

// ---------------------------------------------------------------------------
// Gateway

struct Label {
  std::string name;
  std::string value;

  friend bool operator==(const Label& a, const Label& b) {
    return a.name == b.name && a.value == b.value;
  }
};

/// Abstract wiring surface. Layers take a `MetricGateway*` (null treated as
/// no-op) and resolve their instrument handles once at construction; after
/// that the gateway is never consulted again, so the hot path is identical
/// whether the process wired a live registry or nothing at all.
class MetricGateway {
 public:
  virtual ~MetricGateway() = default;

  virtual Counter GetCounter(std::string_view name, std::string_view help,
                             std::vector<Label> labels) = 0;
  virtual Gauge GetGauge(std::string_view name, std::string_view help,
                         std::vector<Label> labels) = 0;
  virtual Histogram GetHistogram(std::string_view name, std::string_view help,
                                 std::vector<Label> labels) = 0;

  Counter GetCounter(std::string_view name, std::string_view help) {
    return GetCounter(name, help, {});
  }
  Gauge GetGauge(std::string_view name, std::string_view help) {
    return GetGauge(name, help, {});
  }
  Histogram GetHistogram(std::string_view name, std::string_view help) {
    return GetHistogram(name, help, {});
  }

  /// Process-wide no-op gateway; the conventional default for a null
  /// `MetricGateway*` config field.
  static MetricGateway* Noop();
};

/// Hands out sink-backed handles: every instrument aliases the same sink
/// cell per type, so wiring against it costs nothing and records nothing.
class NoopMetricGateway : public MetricGateway {
 public:
  Counter GetCounter(std::string_view, std::string_view,
                     std::vector<Label>) override {
    return Counter();
  }
  Gauge GetGauge(std::string_view, std::string_view,
                 std::vector<Label>) override {
    return Gauge();
  }
  Histogram GetHistogram(std::string_view, std::string_view,
                         std::vector<Label>) override {
    return Histogram();
  }
};

enum class InstrumentType : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// Live registry. Registration (GetCounter/...) takes a mutex and may
/// allocate; it happens once at wiring time. Reads for rendering/encoding
/// take the same mutex for the *structure* only — cell values are read with
/// relaxed atomics, so concurrent hot-path writers are never blocked.
class MetricRegistry : public MetricGateway {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter GetCounter(std::string_view name, std::string_view help,
                     std::vector<Label> labels) override;
  Gauge GetGauge(std::string_view name, std::string_view help,
                 std::vector<Label> labels) override;
  Histogram GetHistogram(std::string_view name, std::string_view help,
                         std::vector<Label> labels) override;
  using MetricGateway::GetCounter;
  using MetricGateway::GetGauge;
  using MetricGateway::GetHistogram;

  /// Appends the registry in Prometheus text exposition format 0.0.4
  /// (`# HELP`/`# TYPE` headers, escaped help/label text, histograms as
  /// cumulative `_bucket{le=...}`/`_sum`/`_count` series rendered at the
  /// log-linear grid's occupied octave edges).
  void RenderPrometheus(std::string* out) const;
  std::string RenderPrometheus() const;

  /// Encodes the `pdm.metrics.v1` binary dump (the `GetMetrics` opcode
  /// payload). Self-describing: magic, version, then every instrument with
  /// name/labels/type and its current value(s).
  std::string EncodeDump() const;

 private:
  struct Instrument {
    std::vector<Label> labels;
    CounterCell* counter = nullptr;
    GaugeCell* gauge = nullptr;
    HistogramCell* histogram = nullptr;
  };
  struct Family {
    std::string name;
    std::string help;
    InstrumentType type;
    std::vector<Instrument> instruments;
  };

  Family* FindOrCreateFamily(std::string_view name, std::string_view help,
                             InstrumentType type);
  Instrument* FindOrCreateInstrument(Family* family, std::vector<Label> labels);

  mutable std::mutex mu_;
  std::vector<Family> families_;  // registration order = render order
  // Deques: grow without moving, so handed-out cell pointers stay stable.
  std::deque<CounterCell> counter_cells_;
  std::deque<GaugeCell> gauge_cells_;
  std::deque<HistogramCell> histogram_cells_;
};

// ---------------------------------------------------------------------------
// pdm.metrics.v1 dump decoding (client side of the GetMetrics opcode)

struct DumpInstrument {
  std::string name;
  std::vector<Label> labels;
  InstrumentType type = InstrumentType::kCounter;
  uint64_t counter = 0;
  double gauge = 0.0;
  int64_t hist_count = 0;
  uint64_t hist_sum = 0;
  /// Sparse (bucket index, count) pairs on the LatencyHistogram grid.
  std::vector<std::pair<uint32_t, uint64_t>> hist_buckets;

  /// Conservative quantile over hist_buckets (histogram instruments only).
  uint64_t HistogramQuantile(double q) const;
};

struct MetricsDump {
  std::vector<DumpInstrument> instruments;

  /// First instrument of `name` with no labels, or nullptr.
  const DumpInstrument* Find(std::string_view name) const;
  /// First instrument of `name` carrying `label == value`, or nullptr.
  const DumpInstrument* Find(std::string_view name, std::string_view label,
                             std::string_view value) const;
  /// Counter value of the unlabeled instrument `name` (0 when absent).
  uint64_t CounterValue(std::string_view name) const;
};

Status DecodeMetricsDump(std::string_view bytes, MetricsDump* out);

}  // namespace pdm::metrics

#endif  // PDM_METRICS_METRICS_H_
