#ifndef PDM_PDM_H_
#define PDM_PDM_H_

/// \file
/// Umbrella header for the pdm library — ellipsoid-based contextual dynamic
/// pricing with reserve price constraints for online data markets
/// (Niu et al., ICDE 2020).
///
/// Layered architecture (each layer only depends on the ones above it):
///
///   common/    → rng/ → linalg/ → ellipsoid/                 (math substrate)
///   privacy/ → data/ → features/ → learning/                 (market substrate)
///   pricing/                                                 (the contribution)
///   market/                                                  (simulation layer)
///   scenario/                                                (declarative experiments)
///   broker/                                                  (serving front end)
///   server/                                                  (wire protocol / TCP)
///
/// Typical entry points:
///  * `pdm::EllipsoidPricingEngine` — the posted-price mechanism (n ≥ 2).
///  * `pdm::IntervalPricingEngine` — the one-dimensional special case.
///  * `pdm::GeneralizedPricingEngine` — non-linear market values through a
///    link function and feature map (log-linear, log-log, logistic,
///    kernelized).
///  * `pdm::RunMarket` — the round-by-round simulation loop with Eq.-(1)
///    regret accounting.
///  * `pdm::SimulationRunner` — thread-pooled batch executor that runs many
///    wired (stream, engine, seed) jobs concurrently and deterministically.
///  * `pdm::NoisyLinearQueryStream` / `BuildAirbnbMarket` / `BuildAvazuMarket`
///    / `KernelQueryStream` — the paper's application workloads.
///  * `pdm::scenario::ScenarioRegistry::PaperExhibits()` — every paper
///    exhibit as a declarative `scenario::ScenarioSpec`, executed by
///    `scenario::ExperimentDriver` (the engine behind `bench/pdm_run`) and
///    expandable into new grids with `scenario::Sweep`.
///  * `pdm::broker::Broker` — the serving front end: named multi-product
///    sessions behind a contention-free snapshot directory with a
///    `ProductHandle` fast path, ticketed delayed feedback, session-grouped
///    batched `PostPrices`/`Observes`, and session `Snapshot`/`Restore`
///    (DESIGN.md §9).
///  * `pdm::server::TcpServer` / `pdm::server::Client` — the broker on the
///    wire: the `pdm.wire.v1` framed binary protocol over TCP, with
///    pipelined-run coalescing into the batched broker paths and graceful
///    drain (DESIGN.md §10).
///
/// See README.md for a quickstart and the hot-path performance conventions,
/// and DESIGN.md for the system inventory and the recorded deviations from
/// the paper (each bench binary prints its paper-vs-measured comparison
/// inline).

#include "broker/broker.h"
#include "broker/driver.h"
#include "broker/session.h"
#include "broker/snapshot.h"
#include "ellipsoid/ellipsoid.h"
#include "market/adversarial.h"
#include "market/airbnb_market.h"
#include "market/avazu_market.h"
#include "market/kernel_market.h"
#include "market/linear_market.h"
#include "market/regret_tracker.h"
#include "market/runner.h"
#include "market/simulator.h"
#include "pricing/baselines.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/engine_state.h"
#include "pricing/feature_maps.h"
#include "pricing/generalized_engine.h"
#include "pricing/interval_engine.h"
#include "pricing/link_functions.h"
#include "pricing/pricing_engine.h"
#include "scenario/experiment.h"
#include "scenario/linear_workload.h"
#include "scenario/mechanism_registry.h"
#include "scenario/scenario_registry.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace pdm {

/// Library semantic version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace pdm

#endif  // PDM_PDM_H_
