#include "pricing/baselines.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace pdm {

PostedPrice ReservePriceBaseline::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(!pending_);
  PDM_CHECK(static_cast<int>(features.size()) == dim_);
  pending_ = true;
  ++counters_.rounds;
  ++counters_.conservative_rounds;
  PostedPrice posted;
  posted.price = reserve;
  return posted;
}

void ReservePriceBaseline::Observe(bool accepted) {
  PDM_CHECK(pending_);
  (void)accepted;  // the baseline never learns
  pending_ = false;
}

ValueInterval ReservePriceBaseline::EstimateValueInterval(const Vector& features) const {
  (void)features;
  return ValueInterval{-std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()};
}

PostedPrice FixedPriceBaseline::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(!pending_);
  PDM_CHECK(static_cast<int>(features.size()) == dim_);
  pending_ = true;
  ++counters_.rounds;
  ++counters_.conservative_rounds;
  PostedPrice posted;
  posted.price = std::max(reserve, price_);
  return posted;
}

void FixedPriceBaseline::Observe(bool accepted) {
  PDM_CHECK(pending_);
  (void)accepted;
  pending_ = false;
}

ValueInterval FixedPriceBaseline::EstimateValueInterval(const Vector& features) const {
  (void)features;
  return ValueInterval{-std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()};
}

}  // namespace pdm
