#include "pricing/baselines.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "pricing/engine_state.h"

namespace pdm {

PostedPrice ReservePriceBaseline::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(!pending_);
  PDM_CHECK(static_cast<int>(features.size()) == dim_);
  pending_ = true;
  ++counters_.rounds;
  ++counters_.conservative_rounds;
  PostedPrice posted;
  posted.price = reserve;
  return posted;
}

void ReservePriceBaseline::Observe(bool accepted) {
  PDM_CHECK(pending_);
  (void)accepted;  // the baseline never learns
  pending_ = false;
}

ValueInterval ReservePriceBaseline::EstimateValueInterval(const Vector& features) const {
  (void)features;
  return ValueInterval{-std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()};
}

bool ReservePriceBaseline::DetachPending(PendingCut* out) {
  PDM_CHECK(out != nullptr);
  if (!pending_) return false;
  out->kind = 1;  // "posted, awaiting feedback" — no context beyond that
  out->price = 0.0;
  out->x = 0.0;
  out->wrapped_skip = false;
  pending_ = false;
  return true;
}

void ReservePriceBaseline::ObserveDetached(const PendingCut& cut, bool accepted) {
  PDM_CHECK(!pending_);
  PDM_CHECK(cut.kind != 0);
  (void)accepted;  // the baseline never learns
}

bool ReservePriceBaseline::SaveSnapshot(EngineSnapshot* out) const {
  PDM_CHECK(out != nullptr);
  if (pending_) return false;
  out->engine = "baseline";
  out->dim = dim_;
  out->epsilon = 0.0;
  out->delta = 0.0;
  out->center.clear();
  out->shape = Matrix(0, 0);
  out->cuts_since_symmetrize = 0;
  out->lo = 0.0;
  out->hi = 0.0;
  out->counters = counters_;
  return true;
}

bool ReservePriceBaseline::LoadSnapshot(const EngineSnapshot& snapshot) {
  if (snapshot.engine != "baseline") return false;
  if (snapshot.dim != dim_) return false;
  if (pending_) return false;
  counters_ = snapshot.counters;
  return true;
}

PostedPrice FixedPriceBaseline::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(!pending_);
  PDM_CHECK(static_cast<int>(features.size()) == dim_);
  pending_ = true;
  ++counters_.rounds;
  ++counters_.conservative_rounds;
  PostedPrice posted;
  posted.price = std::max(reserve, price_);
  return posted;
}

void FixedPriceBaseline::Observe(bool accepted) {
  PDM_CHECK(pending_);
  (void)accepted;
  pending_ = false;
}

ValueInterval FixedPriceBaseline::EstimateValueInterval(const Vector& features) const {
  (void)features;
  return ValueInterval{-std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()};
}

}  // namespace pdm
