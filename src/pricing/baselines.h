#ifndef PDM_PRICING_BASELINES_H_
#define PDM_PRICING_BASELINES_H_

#include <string>

#include "pricing/pricing_engine.h"

/// \file
/// Baseline posted-price policies the evaluation compares against.

namespace pdm {

/// The paper's "risk-averse baseline ... which consistently posts the reserve
/// price in each round" (Section V-A). Always sells whenever a sale is
/// possible (q ≤ v) but forfeits the whole markup v − q as regret.
class ReservePriceBaseline : public PricingEngine {
 public:
  explicit ReservePriceBaseline(int dim) : dim_(dim) {}

  int dim() const override { return dim_; }
  PostedPrice PostPrice(const Vector& features, double reserve) override;
  void Observe(bool accepted) override;
  ValueInterval EstimateValueInterval(const Vector& features) const override;
  const EngineCounters& counters() const override { return counters_; }
  std::string name() const override { return "risk-averse"; }

  /// Serving hooks: the baseline carries no cut context (it never learns),
  /// so detach/observe only track the outstanding-round bit, and snapshots
  /// are the counters alone.
  bool DetachPending(PendingCut* out) override;
  void ObserveDetached(const PendingCut& cut, bool accepted) override;
  bool SaveSnapshot(EngineSnapshot* out) const override;
  bool LoadSnapshot(const EngineSnapshot& snapshot) override;

 private:
  int dim_;
  EngineCounters counters_;
  bool pending_ = false;
};

/// Posts max(reserve, fixed price): a static marked-price policy, the
/// non-adaptive strategy of the query-pricing literature the paper contrasts
/// with (Section VI-A).
class FixedPriceBaseline : public PricingEngine {
 public:
  FixedPriceBaseline(int dim, double price) : dim_(dim), price_(price) {}

  int dim() const override { return dim_; }
  PostedPrice PostPrice(const Vector& features, double reserve) override;
  void Observe(bool accepted) override;
  ValueInterval EstimateValueInterval(const Vector& features) const override;
  const EngineCounters& counters() const override { return counters_; }
  std::string name() const override { return "fixed-price"; }

 private:
  int dim_;
  double price_;
  EngineCounters counters_;
  bool pending_ = false;
};

}  // namespace pdm

#endif  // PDM_PRICING_BASELINES_H_
