#include "pricing/ellipsoid_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "pricing/engine_state.h"

namespace pdm {

double DefaultEllipsoidEpsilon(int dim, int64_t horizon, double delta) {
  PDM_CHECK(dim >= 1);
  PDM_CHECK(horizon >= 1);
  // Theorem 1's choice. The 4nδ clamp is not cosmetic: cut validity requires
  // α ≥ −1/n, and with buffer δ the exploratory cut position is −δ/half_width,
  // so all refinement freezes once the probed width reaches 2nδ. If ε < 2nδ
  // the engine would then post exploratory mid prices forever — half of them
  // rejected at the cost of the full market value. ε ≥ 4nδ keeps the
  // conservative switch strictly inside the refinable regime. (The paper's
  // evaluation text quotes ε = n²/T while running δ ≫ n/T; a faithful
  // implementation is only stable with the clamp, so we keep it.)
  double n = static_cast<double>(dim);
  double t = static_cast<double>(horizon);
  return std::max(n * n / t, 4.0 * n * delta);
}

namespace {

Ellipsoid MakeInitialEllipsoid(const EllipsoidEngineConfig& config) {
  double diag = config.initial_radius * config.initial_radius;
  if (config.initial_center.empty()) {
    return config.packed_shape ? Ellipsoid::PackedBall(config.dim, config.initial_radius)
                               : Ellipsoid::Ball(config.dim, config.initial_radius);
  }
  PDM_CHECK(static_cast<int>(config.initial_center.size()) == config.dim);
  if (config.packed_shape) {
    return Ellipsoid(config.initial_center,
                     PackedSymMatrix::ScaledIdentity(config.dim, diag));
  }
  return Ellipsoid(config.initial_center, Matrix::ScaledIdentity(config.dim, diag));
}

}  // namespace

EllipsoidPricingEngine::EllipsoidPricingEngine(const EllipsoidEngineConfig& config)
    : config_(config),
      epsilon_(config.epsilon > 0.0
                   ? config.epsilon
                   : DefaultEllipsoidEpsilon(config.dim, config.horizon, config.delta)),
      ellipsoid_(MakeInitialEllipsoid(config)) {
  PDM_CHECK(config_.dim >= 2);
  PDM_CHECK(config_.initial_radius > 0.0);
  PDM_CHECK(config_.delta >= 0.0);
  PDM_CHECK(epsilon_ > 0.0);
}

PostedPrice EllipsoidPricingEngine::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(pending_ == PendingKind::kNone);
  PDM_CHECK(static_cast<int>(features.size()) == config_.dim);
  ++counters_.rounds;

  // The pending interval doubles as the engine's reusable workspace: its
  // direction buffer is written in place, so steady-state rounds allocate
  // nothing.
  ellipsoid_.Support(features, &pending_support_);
  const SupportInterval& support = pending_support_;

  double q = config_.use_reserve ? reserve : -std::numeric_limits<double>::infinity();

  PostedPrice posted;
  // Lines 8–10 (Algorithm 2): q ≥ p̄ + δ ⇒ the posted price must exceed the
  // market value w.h.p.; no refinement is possible either.
  if (config_.use_reserve && q >= support.upper + config_.delta) {
    ++counters_.skipped_rounds;
    posted.price = q;
    posted.exploratory = false;
    posted.certain_no_sale = true;
    pending_ = PendingKind::kSkip;
    pending_price_ = posted.price;
    return posted;
  }

  if (support.upper - support.lower > epsilon_) {
    // Exploratory price: max(q, (p̲+p̄)/2) (Line 13).
    posted.price = std::max(q, support.midpoint);
    posted.exploratory = true;
    pending_ = PendingKind::kExploratory;
    ++counters_.exploratory_rounds;
  } else {
    // Conservative price: max(q, p̲ − δ) (Line 27; δ = 0 recovers Line 23 of
    // Algorithm 1).
    posted.price = std::max(q, support.lower - config_.delta);
    posted.exploratory = false;
    pending_ = PendingKind::kConservative;
    ++counters_.conservative_rounds;
  }
  pending_price_ = posted.price;
  return posted;
}

void EllipsoidPricingEngine::PostPriceBatch(const double* panel, int k,
                                            const double* reserves, PostedPrice* posted,
                                            PendingCut* const* cuts) {
  PDM_CHECK(pending_ == PendingKind::kNone);
  PDM_CHECK(k >= 0);
  if (k == 0) return;
  PDM_CHECK(panel != nullptr && reserves != nullptr && posted != nullptr &&
            cuts != nullptr);
  if (k == 1) {
    // A single query gains nothing from the panel kernel; route it through
    // the scalar path (bridging the raw pointer into the Vector signature —
    // assign reuses the bridge buffer's capacity).
    batch_features_.assign(panel, panel + config_.dim);
    posted[0] = PostPrice(batch_features_, reserves[0]);
    PDM_CHECK(DetachPending(cuts[0]));
    return;
  }

  // Grow-only: shrinking would destroy the recycled per-entry direction
  // buffers and reintroduce steady-state allocation.
  if (static_cast<int>(batch_support_.size()) < k) {
    batch_support_.resize(static_cast<size_t>(k));
  }
  // One matrix–panel pass for all k supports; every quote below prices
  // against this same frozen knowledge set, which is exactly what sequential
  // PostPrice+DetachPending pairs do (detaching prevents any cut in between).
  ellipsoid_.SupportBatch(panel, k, batch_support_.data());

  for (int j = 0; j < k; ++j) {
    const SupportInterval& support = batch_support_[static_cast<size_t>(j)];
    ++counters_.rounds;
    double q = config_.use_reserve ? reserves[j] : -std::numeric_limits<double>::infinity();

    // The same Algorithm 2 decision ladder as PostPrice, fused with
    // DetachPending's context export.
    PostedPrice& out = posted[j];
    PendingKind kind;
    if (config_.use_reserve && q >= support.upper + config_.delta) {
      ++counters_.skipped_rounds;
      out.price = q;
      out.exploratory = false;
      out.certain_no_sale = true;
      kind = PendingKind::kSkip;
    } else if (support.upper - support.lower > epsilon_) {
      out.price = std::max(q, support.midpoint);
      out.exploratory = true;
      out.certain_no_sale = false;
      kind = PendingKind::kExploratory;
      ++counters_.exploratory_rounds;
    } else {
      out.price = std::max(q, support.lower - config_.delta);
      out.exploratory = false;
      out.certain_no_sale = false;
      kind = PendingKind::kConservative;
      ++counters_.conservative_rounds;
    }

    PendingCut* cut = cuts[j];
    cut->kind = static_cast<int>(kind);
    cut->price = out.price;
    cut->x = 0.0;
    cut->wrapped_skip = false;
    cut->support.lower = support.lower;
    cut->support.upper = support.upper;
    cut->support.half_width = support.half_width;
    cut->support.midpoint = support.midpoint;
    // Copy-assignment reuses the ticket slot's capacity (see DetachPending).
    cut->support.direction = support.direction;
  }
}

void EllipsoidPricingEngine::Observe(bool accepted) {
  PDM_CHECK(pending_ != PendingKind::kNone);
  PendingKind kind = pending_;
  pending_ = PendingKind::kNone;
  ApplyFeedback(kind, pending_support_, pending_price_, accepted);
}

void EllipsoidPricingEngine::ApplyFeedback(PendingKind kind,
                                           const SupportInterval& support,
                                           double price, bool accepted) {
  if (kind == PendingKind::kSkip) return;
  bool may_cut =
      kind == PendingKind::kExploratory ||
      (kind == PendingKind::kConservative && config_.allow_conservative_cuts);
  if (!may_cut) return;
  if (support.half_width <= 0.0) return;  // degenerate probe direction

  double n = static_cast<double>(config_.dim);
  double mid = support.midpoint;
  double half_width = support.half_width;
  if (!accepted) {
    // Rejection ⇒ p ≥ v ≥ xᵀθ* − δ: cut below the effective price p + δ
    // (Lines 14–19). α = (mid − (p + δ)) / √(xᵀAx).
    double alpha = (mid - (price + config_.delta)) / half_width;
    if (alpha >= -1.0 / n && alpha < 1.0) {
      ellipsoid_.CutKeepBelow(support, alpha);
      ++counters_.cuts_applied;
    } else {
      ++counters_.cuts_discarded;
    }
  } else {
    // Acceptance ⇒ p ≤ v ≤ xᵀθ* + δ: cut above the effective price p − δ
    // (Lines 20–25). Validity window −α ∈ [−1/n, 1).
    double alpha = (mid - (price - config_.delta)) / half_width;
    if (-alpha >= -1.0 / n && -alpha < 1.0) {
      ellipsoid_.CutKeepAbove(support, alpha);
      ++counters_.cuts_applied;
    } else {
      ++counters_.cuts_discarded;
    }
  }
}

bool EllipsoidPricingEngine::DetachPending(PendingCut* out) {
  PDM_CHECK(out != nullptr);
  if (pending_ == PendingKind::kNone) return false;
  out->kind = static_cast<int>(pending_);
  out->price = pending_price_;
  out->x = 0.0;
  out->wrapped_skip = false;
  // Vector copy-assignment reuses the slot's capacity, so recycled cut
  // slots keep the steady state allocation-free.
  out->support.lower = pending_support_.lower;
  out->support.upper = pending_support_.upper;
  out->support.half_width = pending_support_.half_width;
  out->support.midpoint = pending_support_.midpoint;
  out->support.direction = pending_support_.direction;
  pending_ = PendingKind::kNone;
  return true;
}

void EllipsoidPricingEngine::ObserveDetached(const PendingCut& cut, bool accepted) {
  PDM_CHECK(pending_ == PendingKind::kNone);
  PDM_CHECK(cut.kind != static_cast<int>(PendingKind::kNone));
  ApplyFeedback(static_cast<PendingKind>(cut.kind), cut.support, cut.price, accepted);
}

bool EllipsoidPricingEngine::SaveSnapshot(EngineSnapshot* out) const {
  PDM_CHECK(out != nullptr);
  if (pending_ != PendingKind::kNone) return false;
  out->engine = "ellipsoid";
  out->dim = config_.dim;
  out->epsilon = epsilon_;
  out->delta = config_.delta;
  out->center = ellipsoid_.center();
  // DenseShape: a plain copy in dense mode, an exact symmetric mirror in
  // packed mode — either way the snapshot byte format stays one dense
  // matrix, and a packed engine re-encodes byte-exactly (DESIGN.md §12).
  out->shape = ellipsoid_.DenseShape();
  out->cuts_since_symmetrize = ellipsoid_.cuts_since_symmetrize();
  out->lo = 0.0;
  out->hi = 0.0;
  out->counters = counters_;
  return true;
}

bool EllipsoidPricingEngine::LoadSnapshot(const EngineSnapshot& snapshot) {
  if (snapshot.engine != "ellipsoid") return false;
  if (snapshot.dim != config_.dim) return false;
  if (static_cast<int>(snapshot.center.size()) != config_.dim) return false;
  if (snapshot.shape.rows() != config_.dim || snapshot.shape.cols() != config_.dim) {
    return false;
  }
  if (snapshot.cuts_since_symmetrize < 0 || snapshot.cuts_since_symmetrize >= 32) {
    return false;
  }
  if (pending_ != PendingKind::kNone) return false;
  ellipsoid_ = Ellipsoid::FromSnapshotState(snapshot.center, snapshot.shape,
                                            snapshot.cuts_since_symmetrize,
                                            config_.packed_shape);
  epsilon_ = snapshot.epsilon;
  config_.delta = snapshot.delta;
  counters_ = snapshot.counters;
  return true;
}

ValueInterval EllipsoidPricingEngine::EstimateValueInterval(const Vector& features) const {
  // Allocation-free equivalent of Support(): the bounds need only the
  // midpoint and the quadratic form, not the support direction. Adaptive
  // streams (market/adversarial.h) call this every round.
  double mid = Dot(features, ellipsoid_.center());
  double quad = ellipsoid_.ShapeQuadraticForm(features);
  double half = (quad > 0.0 && std::isfinite(quad)) ? std::sqrt(quad) : 0.0;
  return ValueInterval{mid - half, mid + half};
}

std::string EllipsoidPricingEngine::name() const {
  std::string base = config_.use_reserve ? "reserve" : "pure";
  if (config_.delta > 0.0) base += "+uncertainty";
  return base;
}

}  // namespace pdm
