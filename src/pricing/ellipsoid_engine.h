#ifndef PDM_PRICING_ELLIPSOID_ENGINE_H_
#define PDM_PRICING_ELLIPSOID_ENGINE_H_

#include <cstdint>
#include <string>

#include "ellipsoid/ellipsoid.h"
#include "pricing/pricing_engine.h"

/// \file
/// The paper's contribution: ellipsoid-based contextual dynamic pricing with
/// the reserve price constraint (Algorithms 1 and 2), for feature dimension
/// n ≥ 2. Four published variants are configurations of this one class:
///
///   Algorithm 1* "pure":                    use_reserve=false, delta=0
///   Algorithm 2* "with uncertainty":        use_reserve=false, delta>0
///   Algorithm 1  "with reserve":            use_reserve=true,  delta=0
///   Algorithm 2  "with reserve+uncertainty":use_reserve=true,  delta>0
///
/// Per round: compute [p̲, p̄] from the ellipsoid; skip if q ≥ p̄ + δ; post
/// the exploratory price max(q, (p̲+p̄)/2) when p̄ − p̲ > ε, else the
/// conservative price max(q, p̲ − δ). Exploratory feedback cuts the ellipsoid
/// at the effective price p ± δ when the cut position α lies in the paper's
/// validity window; conservative prices never cut (Lemma 8 shows allowing
/// them admits an O(T)-regret adversary — the `allow_conservative_cuts`
/// ablation switch exists to demonstrate exactly that).

namespace pdm {

struct EllipsoidEngineConfig {
  /// Feature dimension n ≥ 2 (use IntervalPricingEngine for n = 1).
  int dim = 2;
  /// Horizon T used for the default threshold ε = max(n²/T, 4nδ) (Theorem 1).
  int64_t horizon = 10000;
  /// Initial knowledge-set ball radius R (‖θ* − initial_center‖ ≤ R must
  /// hold).
  double initial_radius = 1.0;
  /// Initial knowledge-set center c₁ (empty = origin, the paper's setup).
  /// A broker usually knows coarse market levels (e.g. the average price), so
  /// centering the prior there is the production-sensible choice; the regret
  /// analysis only needs θ* ∈ E₁.
  Vector initial_center;
  /// Exploration threshold ε on p̄ − p̲; ≤ 0 selects the Theorem 1 default.
  double epsilon = -1.0;
  /// Uncertainty buffer δ (Algorithm 2); 0 recovers Algorithm 1.
  double delta = 0.0;
  /// Enforce the reserve-price constraint (Algorithm 1/2 vs the * variants).
  bool use_reserve = true;
  /// ABLATION ONLY: also cut on conservative-price feedback. Unsafe — see
  /// Lemma 8 / bench_lemma8_adversarial.
  bool allow_conservative_cuts = false;
  /// Store the shape matrix packed (upper triangle only): n(n+1)/2 doubles
  /// instead of n², halving the dominant per-product bytes at serving scale
  /// (DESIGN.md §12). Semantically the same algorithm; numerically a
  /// documented-tolerance twin of the dense default (which stays
  /// bit-identical to every published pin). Within packed mode all
  /// determinism contracts hold, including bit-identical snapshot resume.
  bool packed_shape = false;
};

/// Theorem 1's threshold choice ε = max(n²/T, 4nδ); see the implementation
/// note for why the 4nδ clamp is required for stable dynamics.
double DefaultEllipsoidEpsilon(int dim, int64_t horizon, double delta);

class EllipsoidPricingEngine : public PricingEngine {
 public:
  explicit EllipsoidPricingEngine(const EllipsoidEngineConfig& config);

  int dim() const override { return config_.dim; }
  PostedPrice PostPrice(const Vector& features, double reserve) override;
  void Observe(bool accepted) override;
  ValueInterval EstimateValueInterval(const Vector& features) const override;
  const EngineCounters& counters() const override { return counters_; }
  std::string name() const override;

  /// Serving hooks (DESIGN.md §9): the pending support/price move into the
  /// ticket's cut context, and snapshots carry the full ellipsoid state
  /// (center, shape, symmetrization phase) plus counters.
  bool DetachPending(PendingCut* out) override;
  void ObserveDetached(const PendingCut& cut, bool accepted) override;
  bool SaveSnapshot(EngineSnapshot* out) const override;
  bool LoadSnapshot(const EngineSnapshot& snapshot) override;

  /// Batched quoting (DESIGN.md §11): one Ellipsoid::SupportBatch pass covers
  /// the whole panel, then the per-query Algorithm 2 decision logic runs
  /// unchanged. Bit-identical to k sequential PostPrice+DetachPending pairs.
  bool SupportsBatchedQuotes() const override { return true; }
  void PostPriceBatch(const double* panel, int k, const double* reserves,
                      PostedPrice* posted, PendingCut* const* cuts) override;

  /// The knowledge set E_t (diagnostics, tests, Lemma 6/7 volume tracking).
  const Ellipsoid& knowledge_set() const { return ellipsoid_; }
  const EllipsoidEngineConfig& config() const { return config_; }
  /// Effective ε in use (after defaulting).
  double epsilon() const { return epsilon_; }

 private:
  enum class PendingKind { kNone, kExploratory, kConservative, kSkip };

  /// Shared feedback path of Observe and ObserveDetached: applies the
  /// accept/reject bit with the given posting-time context. Bit-identical
  /// between the attached and detached calls by construction.
  void ApplyFeedback(PendingKind kind, const SupportInterval& support,
                     double price, bool accepted);

  EllipsoidEngineConfig config_;
  double epsilon_;
  Ellipsoid ellipsoid_;
  EngineCounters counters_;

  // Context of the round awaiting feedback, doubling as the engine's
  // reusable workspace: PostPrice writes the support computation into it in
  // place (the direction buffer holds the raw A·x — see SupportInterval —
  // and is reused across rounds, so steady-state rounds perform no heap
  // allocation) and Observe() cuts with it without recomputing the O(n²)
  // mat-vec.
  PendingKind pending_ = PendingKind::kNone;
  SupportInterval pending_support_;
  double pending_price_ = 0.0;

  // PostPriceBatch workspaces, grown to the high-water batch size and then
  // reused: batch_support_ holds the panel's support intervals (its entries'
  // direction buffers are recycled, and the vector is never shrunk — shrinking
  // would free those buffers) and batch_features_ bridges the k=1 scalar
  // fallback into PostPrice's Vector signature.
  std::vector<SupportInterval> batch_support_;
  Vector batch_features_;
};

}  // namespace pdm

#endif  // PDM_PRICING_ELLIPSOID_ENGINE_H_
