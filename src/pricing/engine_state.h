#ifndef PDM_PRICING_ENGINE_STATE_H_
#define PDM_PRICING_ENGINE_STATE_H_

#include <cstdint>
#include <string>

#include "ellipsoid/ellipsoid.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "pricing/pricing_engine.h"

/// \file
/// Externalized engine state for the serving layer (DESIGN.md §9).
///
/// The Fig. 2 protocol binds PostPrice and Observe into a strict
/// alternation because the knowledge-set update needs the *posting-time*
/// context of the round being answered (the support interval the ellipsoid
/// engine probed, the feature scalar of the 1-d engine). A serving broker
/// cannot hold an engine hostage to that alternation: feedback arrives late,
/// out of order across products, and in batches. These two value types break
/// the coupling:
///
///  - `PendingCut` is the posting-time cut context of one quoted round,
///    detached from the engine right after PostPrice (PricingEngine::
///    DetachPending) and re-injected when that round's feedback finally
///    arrives (ObserveDetached). Detach-then-observe immediately is
///    bit-identical to the classic Observe call.
///  - `EngineSnapshot` is the full persistent state of an engine between
///    rounds — knowledge set, effective threshold, counters — used by the
///    broker's session checkpoint/migration path.
///
/// Both structs reuse their vector buffers on assignment, so a broker that
/// recycles `PendingCut` slots keeps the steady-state zero-allocation
/// guarantee of DESIGN.md §6.

namespace pdm {

/// Posting-time feedback context of one round, detached from the engine so
/// the accept/reject bit can be applied later (and interleaved with other
/// rounds' contexts). Which fields are meaningful depends on the engine
/// family; `kind` is the engine's own PendingKind encoding and is only ever
/// round-tripped back into the engine that produced it.
struct PendingCut {
  /// Engine-specific pending-round kind (0 = none/idle).
  int kind = 0;
  /// The posted (z-space, for wrapped engines) price of the round.
  double price = 0.0;
  /// 1-d engines: the pending feature scalar x_t.
  double x = 0.0;
  /// Generalized adapter: the round was short-circuited by the link range
  /// check and never reached the base engine.
  bool wrapped_skip = false;
  /// Ellipsoid engines: the support interval probed at posting time. Its
  /// `direction` buffer is reused across slot recycles.
  SupportInterval support;
};

/// Full serializable state of a pricing engine between rounds. One flat
/// struct covers every built-in family; `engine` tags which fields are live
/// ("ellipsoid", "interval", "baseline", or "generalized(<base>)" for the
/// link/feature-map adapter, whose own wrapper adds no persistent state).
struct EngineSnapshot {
  /// Engine family tag; LoadSnapshot refuses a mismatched tag.
  std::string engine;
  /// Engine (z-space) dimension.
  int dim = 0;
  /// Effective exploration threshold ε in use (after defaulting).
  double epsilon = 0.0;
  /// Uncertainty buffer δ.
  double delta = 0.0;
  /// Ellipsoid state: center c_t and shape A_t of the knowledge set, plus
  /// the drift-control phase (cuts since the last re-symmetrization,
  /// DESIGN.md §3) — restoring it keeps the resumed cut sequence
  /// bit-identical to an uninterrupted run.
  Vector center;
  Matrix shape{0, 0};
  int cuts_since_symmetrize = 0;
  /// Interval (1-d) state: K_t = [lo, hi].
  double lo = 0.0;
  double hi = 0.0;
  EngineCounters counters;
};

}  // namespace pdm

#endif  // PDM_PRICING_ENGINE_STATE_H_
