#include "pricing/feature_maps.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

ElementwiseLogMap::ElementwiseLogMap(double floor) : floor_(floor) {
  PDM_CHECK(floor_ > 0.0);
}

Vector ElementwiseLogMap::Map(const Vector& x) const {
  Vector out;
  MapInto(x, &out);
  return out;
}

void ElementwiseLogMap::MapInto(const Vector& x, Vector* out) const {
  out->resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    (*out)[i] = std::log(std::max(x[i], floor_));
  }
}

KernelFeatureMap::KernelFeatureMap(std::shared_ptr<const LandmarkKernelMap> map)
    : map_(std::move(map)) {
  PDM_CHECK(map_ != nullptr);
}

Vector KernelFeatureMap::Map(const Vector& x) const { return map_->Map(x); }

void KernelFeatureMap::MapInto(const Vector& x, Vector* out) const {
  map_->MapInto(x, out);
}

int KernelFeatureMap::output_dim(int input_dim) const {
  PDM_CHECK(input_dim == map_->input_dim());
  return map_->output_dim();
}

int KernelFeatureMap::input_dim() const { return map_->input_dim(); }

}  // namespace pdm
