#ifndef PDM_PRICING_FEATURE_MAPS_H_
#define PDM_PRICING_FEATURE_MAPS_H_

#include <memory>
#include <string>

#include "learning/kernels.h"
#include "linalg/vector_ops.h"

/// \file
/// Inner feature maps φ for the non-linear models (Section IV-A): the market
/// value is v = g(φ(x)ᵀθ*), and the pricing engine operates on φ(x). φ is
/// public knowledge (only θ* is learned through price feedback).

namespace pdm {

class FeatureMap {
 public:
  virtual ~FeatureMap() = default;

  /// φ(x).
  virtual Vector Map(const Vector& x) const = 0;

  /// φ(x) into a caller-owned buffer that is reused across rounds; the
  /// per-round hot path calls this, so overrides must not allocate once the
  /// buffer has reached its steady-state capacity. `x` must not alias `*out`.
  /// The default forwards to Map() (allocating — override on hot maps).
  virtual void MapInto(const Vector& x, Vector* out) const { *out = Map(x); }

  /// Output dimension m of φ given the raw input dimension.
  virtual int output_dim(int input_dim) const = 0;

  /// Fixed raw input dimension the map accepts, or -1 when the map is
  /// dimension-agnostic (identity, elementwise transforms) — the broker's
  /// request validation then falls back to the engine dimension.
  virtual int input_dim() const { return -1; }

  virtual std::string name() const = 0;
};

/// φ = identity (linear, log-linear, logistic models).
class IdentityFeatureMap : public FeatureMap {
 public:
  Vector Map(const Vector& x) const override { return x; }
  void MapInto(const Vector& x, Vector* out) const override {
    out->assign(x.begin(), x.end());
  }
  int output_dim(int input_dim) const override { return input_dim; }
  std::string name() const override { return "identity"; }
};

/// φ(x)_i = log(max(x_i, floor)): the log-log hedonic model's elementwise
/// logarithm (Section IV-A), with a positive floor so zero/negative raw
/// features stay finite.
class ElementwiseLogMap : public FeatureMap {
 public:
  explicit ElementwiseLogMap(double floor = 1e-12);
  Vector Map(const Vector& x) const override;
  void MapInto(const Vector& x, Vector* out) const override;
  int output_dim(int input_dim) const override { return input_dim; }
  std::string name() const override { return "elementwise-log"; }

 private:
  double floor_;
};

/// φ(x) = (K(x, l_1), …, K(x, l_m)): fixed-budget substitution for the
/// kernelized model's growing expansion (see learning/kernels.h).
class KernelFeatureMap : public FeatureMap {
 public:
  explicit KernelFeatureMap(std::shared_ptr<const LandmarkKernelMap> map);
  Vector Map(const Vector& x) const override;
  void MapInto(const Vector& x, Vector* out) const override;
  int output_dim(int input_dim) const override;
  int input_dim() const override;
  std::string name() const override { return "landmark-kernel"; }

 private:
  std::shared_ptr<const LandmarkKernelMap> map_;
};

}  // namespace pdm

#endif  // PDM_PRICING_FEATURE_MAPS_H_
