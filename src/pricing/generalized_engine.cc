#include "pricing/generalized_engine.h"

#include <algorithm>

#include "common/check.h"

namespace pdm {

GeneralizedPricingEngine::GeneralizedPricingEngine(std::unique_ptr<PricingEngine> base,
                                                   std::shared_ptr<const LinkFunction> link,
                                                   std::shared_ptr<const FeatureMap> map)
    : base_(std::move(base)), link_(std::move(link)), map_(std::move(map)) {
  PDM_CHECK(base_ != nullptr);
  PDM_CHECK(link_ != nullptr);
  PDM_CHECK(map_ != nullptr);
}

PostedPrice GeneralizedPricingEngine::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(!pending_skip_);
  // A reserve at or above the range of g can never be met by any market
  // value: certain no sale without consulting the base engine.
  if (reserve >= link_->range_sup()) {
    pending_skip_ = true;
    PostedPrice posted;
    posted.price = reserve;
    posted.certain_no_sale = true;
    return posted;
  }
  map_->MapInto(features, &ws_.z_features);
  double z_reserve = link_->Inverse(reserve);
  PostedPrice z_posted = base_->PostPrice(ws_.z_features, z_reserve);
  PostedPrice posted = z_posted;
  posted.price = std::max(link_->Apply(z_posted.price), reserve);
  return posted;
}

void GeneralizedPricingEngine::Observe(bool accepted) {
  if (pending_skip_) {
    pending_skip_ = false;
    return;
  }
  base_->Observe(accepted);
}

ValueInterval GeneralizedPricingEngine::EstimateValueInterval(const Vector& features) const {
  // Adaptive streams call this every round; its own scratch keeps the call
  // allocation-free without touching the pending round's φ(x) buffer.
  map_->MapInto(features, &ws_.z_estimate);
  ValueInterval z = base_->EstimateValueInterval(ws_.z_estimate);
  return ValueInterval{link_->Apply(z.lower), link_->Apply(z.upper)};
}

std::string GeneralizedPricingEngine::name() const {
  return base_->name() + "/" + link_->name();
}

}  // namespace pdm
