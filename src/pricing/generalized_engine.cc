#include "pricing/generalized_engine.h"

#include <algorithm>
#include <string_view>

#include "common/check.h"
#include "pricing/engine_state.h"

namespace pdm {

GeneralizedPricingEngine::GeneralizedPricingEngine(std::unique_ptr<PricingEngine> base,
                                                   std::shared_ptr<const LinkFunction> link,
                                                   std::shared_ptr<const FeatureMap> map)
    : base_(std::move(base)), link_(std::move(link)), map_(std::move(map)) {
  PDM_CHECK(base_ != nullptr);
  PDM_CHECK(link_ != nullptr);
  PDM_CHECK(map_ != nullptr);
}

PostedPrice GeneralizedPricingEngine::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(!pending_skip_);
  // A reserve at or above the range of g can never be met by any market
  // value: certain no sale without consulting the base engine.
  if (reserve >= link_->range_sup()) {
    pending_skip_ = true;
    PostedPrice posted;
    posted.price = reserve;
    posted.certain_no_sale = true;
    return posted;
  }
  map_->MapInto(features, &ws_.z_features);
  double z_reserve = link_->Inverse(reserve);
  PostedPrice z_posted = base_->PostPrice(ws_.z_features, z_reserve);
  PostedPrice posted = z_posted;
  posted.price = std::max(link_->Apply(z_posted.price), reserve);
  return posted;
}

void GeneralizedPricingEngine::PostPriceBatch(const double* panel, int k,
                                              const double* reserves,
                                              PostedPrice* posted,
                                              PendingCut* const* cuts) {
  PDM_CHECK(!pending_skip_);
  PDM_CHECK(k >= 0);
  if (k == 0) return;
  PDM_CHECK(panel != nullptr && reserves != nullptr && posted != nullptr &&
            cuts != nullptr);
  const int in_dim = input_dim();
  const int z_dim = base_->dim();

  // Pass 1: resolve link-range skips in the wrapper (they never reach the
  // base engine — same as the scalar path) and φ-map the survivors into a
  // packed z-space panel. The scatter tables remember each survivor's batch
  // position so pass 3 can write results back in place.
  ws_.z_panel.resize(static_cast<size_t>(k) * static_cast<size_t>(z_dim));
  ws_.z_reserves.resize(static_cast<size_t>(k));
  ws_.z_posted.resize(static_cast<size_t>(k));
  ws_.z_cuts.resize(static_cast<size_t>(k));
  ws_.z_positions.resize(static_cast<size_t>(k));
  int m = 0;
  for (int j = 0; j < k; ++j) {
    if (reserves[j] >= link_->range_sup()) {
      // Scalar skip ≡ PostPrice's early return + DetachPending's
      // wrapped-skip export: price = reserve, certain no sale, and the cut
      // context (including its support buffer) is left untouched apart from
      // the wrapped_skip routing fields.
      posted[j].price = reserves[j];
      posted[j].exploratory = false;
      posted[j].certain_no_sale = true;
      cuts[j]->kind = 0;
      cuts[j]->price = 0.0;
      cuts[j]->x = 0.0;
      cuts[j]->wrapped_skip = true;
      continue;
    }
    const double* x = panel + static_cast<size_t>(j) * in_dim;
    ws_.raw_bridge.assign(x, x + in_dim);
    map_->MapInto(ws_.raw_bridge, &ws_.z_features);
    PDM_CHECK(static_cast<int>(ws_.z_features.size()) == z_dim);
    std::copy(ws_.z_features.begin(), ws_.z_features.end(),
              ws_.z_panel.begin() + static_cast<size_t>(m) * z_dim);
    ws_.z_reserves[static_cast<size_t>(m)] = link_->Inverse(reserves[j]);
    ws_.z_cuts[static_cast<size_t>(m)] = cuts[j];
    ws_.z_positions[static_cast<size_t>(m)] = j;
    ++m;
  }
  if (m == 0) return;

  // Pass 2: one base-engine batch over the surviving z-space panel. The base
  // writes the detached cut contexts straight into the caller's slots.
  base_->PostPriceBatch(ws_.z_panel.data(), m, ws_.z_reserves.data(),
                        ws_.z_posted.data(), ws_.z_cuts.data());

  // Pass 3: scatter the z-space decisions back through the link, exactly as
  // the scalar path does per round.
  for (int i = 0; i < m; ++i) {
    int j = ws_.z_positions[static_cast<size_t>(i)];
    PostedPrice out = ws_.z_posted[static_cast<size_t>(i)];
    out.price = std::max(link_->Apply(out.price), reserves[j]);
    posted[j] = out;
  }
}

void GeneralizedPricingEngine::Observe(bool accepted) {
  if (pending_skip_) {
    pending_skip_ = false;
    return;
  }
  base_->Observe(accepted);
}

ValueInterval GeneralizedPricingEngine::EstimateValueInterval(const Vector& features) const {
  // Adaptive streams call this every round; its own scratch keeps the call
  // allocation-free without touching the pending round's φ(x) buffer.
  map_->MapInto(features, &ws_.z_estimate);
  ValueInterval z = base_->EstimateValueInterval(ws_.z_estimate);
  return ValueInterval{link_->Apply(z.lower), link_->Apply(z.upper)};
}

std::string GeneralizedPricingEngine::name() const {
  return base_->name() + "/" + link_->name();
}

int GeneralizedPricingEngine::input_dim() const {
  int raw = map_->input_dim();
  return raw > 0 ? raw : base_->dim();
}

bool GeneralizedPricingEngine::DetachPending(PendingCut* out) {
  PDM_CHECK(out != nullptr);
  if (pending_skip_) {
    pending_skip_ = false;
    out->kind = 0;
    out->price = 0.0;
    out->x = 0.0;
    out->wrapped_skip = true;
    return true;
  }
  if (!base_->DetachPending(out)) return false;
  out->wrapped_skip = false;
  return true;
}

void GeneralizedPricingEngine::ObserveDetached(const PendingCut& cut, bool accepted) {
  PDM_CHECK(!pending_skip_);
  if (cut.wrapped_skip) return;  // the round never reached the base engine
  base_->ObserveDetached(cut, accepted);
}

bool GeneralizedPricingEngine::SaveSnapshot(EngineSnapshot* out) const {
  PDM_CHECK(out != nullptr);
  if (pending_skip_) return false;
  if (!base_->SaveSnapshot(out)) return false;
  out->engine = "generalized(" + out->engine + ")";
  return true;
}

bool GeneralizedPricingEngine::LoadSnapshot(const EngineSnapshot& snapshot) {
  constexpr std::string_view kPrefix = "generalized(";
  if (snapshot.engine.size() < kPrefix.size() + 1 ||
      snapshot.engine.compare(0, kPrefix.size(), kPrefix) != 0 ||
      snapshot.engine.back() != ')') {
    return false;
  }
  if (pending_skip_) return false;
  EngineSnapshot unwrapped = snapshot;
  unwrapped.engine =
      snapshot.engine.substr(kPrefix.size(), snapshot.engine.size() - kPrefix.size() - 1);
  return base_->LoadSnapshot(unwrapped);
}

}  // namespace pdm
