#include "pricing/generalized_engine.h"

#include <algorithm>
#include <string_view>

#include "common/check.h"
#include "pricing/engine_state.h"

namespace pdm {

GeneralizedPricingEngine::GeneralizedPricingEngine(std::unique_ptr<PricingEngine> base,
                                                   std::shared_ptr<const LinkFunction> link,
                                                   std::shared_ptr<const FeatureMap> map)
    : base_(std::move(base)), link_(std::move(link)), map_(std::move(map)) {
  PDM_CHECK(base_ != nullptr);
  PDM_CHECK(link_ != nullptr);
  PDM_CHECK(map_ != nullptr);
}

PostedPrice GeneralizedPricingEngine::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(!pending_skip_);
  // A reserve at or above the range of g can never be met by any market
  // value: certain no sale without consulting the base engine.
  if (reserve >= link_->range_sup()) {
    pending_skip_ = true;
    PostedPrice posted;
    posted.price = reserve;
    posted.certain_no_sale = true;
    return posted;
  }
  map_->MapInto(features, &ws_.z_features);
  double z_reserve = link_->Inverse(reserve);
  PostedPrice z_posted = base_->PostPrice(ws_.z_features, z_reserve);
  PostedPrice posted = z_posted;
  posted.price = std::max(link_->Apply(z_posted.price), reserve);
  return posted;
}

void GeneralizedPricingEngine::Observe(bool accepted) {
  if (pending_skip_) {
    pending_skip_ = false;
    return;
  }
  base_->Observe(accepted);
}

ValueInterval GeneralizedPricingEngine::EstimateValueInterval(const Vector& features) const {
  // Adaptive streams call this every round; its own scratch keeps the call
  // allocation-free without touching the pending round's φ(x) buffer.
  map_->MapInto(features, &ws_.z_estimate);
  ValueInterval z = base_->EstimateValueInterval(ws_.z_estimate);
  return ValueInterval{link_->Apply(z.lower), link_->Apply(z.upper)};
}

std::string GeneralizedPricingEngine::name() const {
  return base_->name() + "/" + link_->name();
}

int GeneralizedPricingEngine::input_dim() const {
  int raw = map_->input_dim();
  return raw > 0 ? raw : base_->dim();
}

bool GeneralizedPricingEngine::DetachPending(PendingCut* out) {
  PDM_CHECK(out != nullptr);
  if (pending_skip_) {
    pending_skip_ = false;
    out->kind = 0;
    out->price = 0.0;
    out->x = 0.0;
    out->wrapped_skip = true;
    return true;
  }
  if (!base_->DetachPending(out)) return false;
  out->wrapped_skip = false;
  return true;
}

void GeneralizedPricingEngine::ObserveDetached(const PendingCut& cut, bool accepted) {
  PDM_CHECK(!pending_skip_);
  if (cut.wrapped_skip) return;  // the round never reached the base engine
  base_->ObserveDetached(cut, accepted);
}

bool GeneralizedPricingEngine::SaveSnapshot(EngineSnapshot* out) const {
  PDM_CHECK(out != nullptr);
  if (pending_skip_) return false;
  if (!base_->SaveSnapshot(out)) return false;
  out->engine = "generalized(" + out->engine + ")";
  return true;
}

bool GeneralizedPricingEngine::LoadSnapshot(const EngineSnapshot& snapshot) {
  constexpr std::string_view kPrefix = "generalized(";
  if (snapshot.engine.size() < kPrefix.size() + 1 ||
      snapshot.engine.compare(0, kPrefix.size(), kPrefix) != 0 ||
      snapshot.engine.back() != ')') {
    return false;
  }
  if (pending_skip_) return false;
  EngineSnapshot unwrapped = snapshot;
  unwrapped.engine =
      snapshot.engine.substr(kPrefix.size(), snapshot.engine.size() - kPrefix.size() - 1);
  return base_->LoadSnapshot(unwrapped);
}

}  // namespace pdm
