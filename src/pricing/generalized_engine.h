#ifndef PDM_PRICING_GENERALIZED_ENGINE_H_
#define PDM_PRICING_GENERALIZED_ENGINE_H_

#include <memory>
#include <string>

#include "pricing/feature_maps.h"
#include "pricing/link_functions.h"
#include "pricing/pricing_engine.h"

/// \file
/// Adapter that lifts any base (linear, z-space) pricing engine to the
/// non-linear market value model v = g(φ(x)ᵀθ*) of Theorem 2.
///
/// Per round: map x to φ(x); pull the reserve back through g⁻¹; let the base
/// engine choose a z-space price p_z with the reserve constraint g⁻¹(q); post
/// g(p_z) (≥ q because g is non-decreasing). Accept/reject feedback is passed
/// straight through — p ≤ v ⇔ p_z ≤ g⁻¹(v) for monotone g, so the z-space cut
/// semantics are unchanged.

namespace pdm {

class GeneralizedPricingEngine : public PricingEngine {
 public:
  /// `base` must be sized for the φ-image dimension (base->dim() ==
  /// map->output_dim(raw input dim)).
  GeneralizedPricingEngine(std::unique_ptr<PricingEngine> base,
                           std::shared_ptr<const LinkFunction> link,
                           std::shared_ptr<const FeatureMap> map);

  /// Raw input feature dimension is whatever the map accepts; dim() reports
  /// the base engine's (z-space) dimension for introspection.
  int dim() const override { return base_->dim(); }
  PostedPrice PostPrice(const Vector& features, double reserve) override;
  void Observe(bool accepted) override;
  ValueInterval EstimateValueInterval(const Vector& features) const override;
  const EngineCounters& counters() const override { return base_->counters(); }
  std::string name() const override;

  const PricingEngine& base() const { return *base_; }

  /// Raw feature dimension the map accepts (≠ dim() for kernel maps).
  int input_dim() const override;

  /// Serving hooks (DESIGN.md §9): link-range skips are flagged on the cut
  /// context; everything else passes through to the base engine, whose
  /// snapshot is re-tagged "generalized(<base>)" — the wrapper itself holds
  /// no persistent state.
  bool DetachPending(PendingCut* out) override;
  void ObserveDetached(const PendingCut& cut, bool accepted) override;
  bool SaveSnapshot(EngineSnapshot* out) const override;
  bool LoadSnapshot(const EngineSnapshot& snapshot) override;

  /// Batched quoting (DESIGN.md §11): link-range skips are resolved in the
  /// wrapper; the surviving queries are φ-mapped into a z-space panel and
  /// handed to the base engine's batch in one call. Bit-identical to k
  /// sequential PostPrice+DetachPending pairs on this wrapper.
  bool SupportsBatchedQuotes() const override {
    return base_->SupportsBatchedQuotes();
  }
  void PostPriceBatch(const double* panel, int k, const double* reserves,
                      PostedPrice* posted, PendingCut* const* cuts) override;

 private:
  /// Scratch buffers reused across rounds so steady-state calls perform no
  /// heap allocation (the workspace convention of README's Performance
  /// section). Mutable because EstimateValueInterval is a const observer on
  /// the adaptive-stream hot path; it gets its own buffer so interleaved
  /// diagnostic calls never clobber the pending round's φ(x).
  struct Workspace {
    /// φ(x) target of MapInto in PostPrice (and the per-query map target of
    /// PostPriceBatch, which never runs concurrently with a pending round).
    Vector z_features;
    /// φ(x) target of MapInto in EstimateValueInterval.
    Vector z_estimate;
    /// PostPriceBatch scratch, grown to the high-water batch size: the raw
    /// feature bridge for MapInto, the packed z-space panel and reserves for
    /// the base engine, and the compacted posted/cut/position tables for the
    /// non-skipped queries.
    Vector raw_bridge;
    Vector z_panel;
    Vector z_reserves;
    std::vector<PostedPrice> z_posted;
    std::vector<PendingCut*> z_cuts;
    std::vector<int> z_positions;
  };

  std::unique_ptr<PricingEngine> base_;
  std::shared_ptr<const LinkFunction> link_;
  std::shared_ptr<const FeatureMap> map_;
  bool pending_skip_ = false;
  mutable Workspace ws_;
};

}  // namespace pdm

#endif  // PDM_PRICING_GENERALIZED_ENGINE_H_
