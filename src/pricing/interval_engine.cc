#include "pricing/interval_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "pricing/engine_state.h"

namespace pdm {

double DefaultIntervalEpsilon(int64_t horizon, double delta) {
  PDM_CHECK(horizon >= 2);
  // Theorem 3's choice, clamped to the refinable regime under uncertainty
  // (see DefaultEllipsoidEpsilon for why the clamp is required).
  double t = static_cast<double>(horizon);
  return std::max(std::log2(t) / t, 4.0 * delta);
}

IntervalPricingEngine::IntervalPricingEngine(const IntervalEngineConfig& config)
    : config_(config),
      epsilon_(config.epsilon > 0.0 ? config.epsilon
                                    : DefaultIntervalEpsilon(config.horizon, config.delta)),
      lo_(config.theta_min),
      hi_(config.theta_max) {
  PDM_CHECK(lo_ <= hi_);
  PDM_CHECK(config_.delta >= 0.0);
  PDM_CHECK(epsilon_ > 0.0);
}

PostedPrice IntervalPricingEngine::PostPrice(const Vector& features, double reserve) {
  PDM_CHECK(pending_ == PendingKind::kNone);
  PDM_CHECK(features.size() == 1);
  ++counters_.rounds;
  double x = features[0];
  pending_x_ = x;

  // Support of θ ↦ x·θ over [lo, hi]; a negative feature flips the ends.
  double lower = x >= 0.0 ? x * lo_ : x * hi_;
  double upper = x >= 0.0 ? x * hi_ : x * lo_;
  double mid = 0.5 * (lower + upper);
  double q = config_.use_reserve ? reserve : -std::numeric_limits<double>::infinity();

  PostedPrice posted;
  if (config_.use_reserve && q >= upper + config_.delta) {
    ++counters_.skipped_rounds;
    posted.price = q;
    posted.certain_no_sale = true;
    pending_ = PendingKind::kSkip;
    pending_price_ = posted.price;
    return posted;
  }

  if (upper - lower > epsilon_) {
    posted.price = std::max(q, mid);
    posted.exploratory = true;
    pending_ = PendingKind::kExploratory;
    ++counters_.exploratory_rounds;
  } else {
    posted.price = std::max(q, lower - config_.delta);
    posted.exploratory = false;
    pending_ = PendingKind::kConservative;
    ++counters_.conservative_rounds;
  }
  pending_price_ = posted.price;
  return posted;
}

void IntervalPricingEngine::Observe(bool accepted) {
  PDM_CHECK(pending_ != PendingKind::kNone);
  PendingKind kind = pending_;
  pending_ = PendingKind::kNone;
  ApplyFeedback(kind, pending_x_, pending_price_, accepted);
}

void IntervalPricingEngine::ApplyFeedback(PendingKind kind, double x, double price,
                                          bool accepted) {
  if (kind != PendingKind::kExploratory) return;  // conservative/skip: no cut
  if (x == 0.0) return;  // the price carried no information about θ*

  // Rejection ⇒ x·θ* ≥ v ... more precisely p ≥ v = x·θ* − δ_t ⇒
  // x·θ* ≤ p + δ; acceptance ⇒ x·θ* ≥ p − δ. Solve for θ* respecting the
  // sign of x.
  double new_lo = lo_;
  double new_hi = hi_;
  if (!accepted) {
    double bound = (price + config_.delta) / x;
    if (x > 0.0) {
      new_hi = std::min(new_hi, bound);
    } else {
      new_lo = std::max(new_lo, bound);
    }
  } else {
    double bound = (price - config_.delta) / x;
    if (x > 0.0) {
      new_lo = std::max(new_lo, bound);
    } else {
      new_hi = std::min(new_hi, bound);
    }
  }
  if (new_lo <= new_hi) {
    lo_ = new_lo;
    hi_ = new_hi;
    ++counters_.cuts_applied;
  } else {
    // A noise realisation outside ±δ produced contradictory feedback (the
    // ≤ 1/T probability event of Eq. 6); keep the previous interval.
    ++counters_.cuts_discarded;
  }
}

bool IntervalPricingEngine::DetachPending(PendingCut* out) {
  PDM_CHECK(out != nullptr);
  if (pending_ == PendingKind::kNone) return false;
  out->kind = static_cast<int>(pending_);
  out->price = pending_price_;
  out->x = pending_x_;
  out->wrapped_skip = false;
  pending_ = PendingKind::kNone;
  return true;
}

void IntervalPricingEngine::ObserveDetached(const PendingCut& cut, bool accepted) {
  PDM_CHECK(pending_ == PendingKind::kNone);
  PDM_CHECK(cut.kind != static_cast<int>(PendingKind::kNone));
  ApplyFeedback(static_cast<PendingKind>(cut.kind), cut.x, cut.price, accepted);
}

bool IntervalPricingEngine::SaveSnapshot(EngineSnapshot* out) const {
  PDM_CHECK(out != nullptr);
  if (pending_ != PendingKind::kNone) return false;
  out->engine = "interval";
  out->dim = 1;
  out->epsilon = epsilon_;
  out->delta = config_.delta;
  out->center.clear();
  out->shape = Matrix(0, 0);
  out->cuts_since_symmetrize = 0;
  out->lo = lo_;
  out->hi = hi_;
  out->counters = counters_;
  return true;
}

bool IntervalPricingEngine::LoadSnapshot(const EngineSnapshot& snapshot) {
  if (snapshot.engine != "interval") return false;
  if (snapshot.dim != 1) return false;
  if (!(snapshot.lo <= snapshot.hi)) return false;
  if (pending_ != PendingKind::kNone) return false;
  lo_ = snapshot.lo;
  hi_ = snapshot.hi;
  epsilon_ = snapshot.epsilon;
  config_.delta = snapshot.delta;
  counters_ = snapshot.counters;
  return true;
}

ValueInterval IntervalPricingEngine::EstimateValueInterval(const Vector& features) const {
  PDM_CHECK(features.size() == 1);
  double x = features[0];
  double lower = x >= 0.0 ? x * lo_ : x * hi_;
  double upper = x >= 0.0 ? x * hi_ : x * lo_;
  return ValueInterval{lower, upper};
}

std::string IntervalPricingEngine::name() const {
  std::string base = config_.use_reserve ? "reserve-1d" : "pure-1d";
  if (config_.delta > 0.0) base += "+uncertainty";
  return base;
}

}  // namespace pdm
