#ifndef PDM_PRICING_INTERVAL_ENGINE_H_
#define PDM_PRICING_INTERVAL_ENGINE_H_

#include <cstdint>
#include <string>

#include "pricing/pricing_engine.h"

/// \file
/// One-dimensional pricing engine (Section II-C's special case; Theorem 3).
///
/// For n = 1 the knowledge set is an interval K_t = [lo, hi] ∋ θ*, the
/// exploratory price performs bisection, and the worst-case regret is
/// O(log T) with ε = log₂(T)/T. The ellipsoid update formulas are singular at
/// n = 1 (factor n²/(n²−1)), so this engine exists as its own class rather
/// than a special case of EllipsoidPricingEngine.

namespace pdm {

struct IntervalEngineConfig {
  /// Initial knowledge interval [theta_min, theta_max] for θ*.
  double theta_min = 0.0;
  double theta_max = 1.0;
  /// Horizon T for the default threshold ε = log₂(T)/T (Theorem 3).
  int64_t horizon = 10000;
  /// Exploration threshold on p̄ − p̲; ≤ 0 selects the Theorem 3 default.
  double epsilon = -1.0;
  /// Uncertainty buffer δ.
  double delta = 0.0;
  /// Enforce the reserve constraint.
  bool use_reserve = true;
};

/// Theorem 3's threshold choice ε = log₂(T)/T, clamped to ≥ 4δ under
/// uncertainty.
double DefaultIntervalEpsilon(int64_t horizon, double delta);

class IntervalPricingEngine : public PricingEngine {
 public:
  explicit IntervalPricingEngine(const IntervalEngineConfig& config);

  int dim() const override { return 1; }
  PostedPrice PostPrice(const Vector& features, double reserve) override;
  void Observe(bool accepted) override;
  ValueInterval EstimateValueInterval(const Vector& features) const override;
  const EngineCounters& counters() const override { return counters_; }
  std::string name() const override;

  /// Serving hooks (DESIGN.md §9): the pending (x, price) pair moves into
  /// the ticket's cut context; snapshots carry [lo, hi] plus counters.
  bool DetachPending(PendingCut* out) override;
  void ObserveDetached(const PendingCut& cut, bool accepted) override;
  bool SaveSnapshot(EngineSnapshot* out) const override;
  bool LoadSnapshot(const EngineSnapshot& snapshot) override;

  double theta_lower() const { return lo_; }
  double theta_upper() const { return hi_; }
  double epsilon() const { return epsilon_; }

 private:
  enum class PendingKind { kNone, kExploratory, kConservative, kSkip };

  /// Shared feedback path of Observe and ObserveDetached.
  void ApplyFeedback(PendingKind kind, double x, double price, bool accepted);

  // The 1-d knowledge set is two scalars, so this engine needs no vector
  // workspace: rounds are allocation-free by construction (covered by the
  // allocation regression test all the same).
  IntervalEngineConfig config_;
  double epsilon_;
  double lo_;
  double hi_;
  EngineCounters counters_;

  PendingKind pending_ = PendingKind::kNone;
  double pending_x_ = 0.0;
  double pending_price_ = 0.0;
};

}  // namespace pdm

#endif  // PDM_PRICING_INTERVAL_ENGINE_H_
