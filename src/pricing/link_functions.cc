#include "pricing/link_functions.h"

#include <cmath>

namespace pdm {

double ExpLink::Apply(double z) const { return std::exp(z); }

double ExpLink::Inverse(double v) const {
  if (v <= 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(v);
}

double LogisticLink::Apply(double z) const {
  double shifted = z + shift_;
  if (shifted >= 0.0) {
    double e = std::exp(-shifted);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(shifted);
  return e / (1.0 + e);
}

double LogisticLink::Inverse(double v) const {
  if (v <= 0.0) return -std::numeric_limits<double>::infinity();
  if (v >= 1.0) return std::numeric_limits<double>::infinity();
  return std::log(v / (1.0 - v)) - shift_;
}

}  // namespace pdm
