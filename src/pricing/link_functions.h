#ifndef PDM_PRICING_LINK_FUNCTIONS_H_
#define PDM_PRICING_LINK_FUNCTIONS_H_

#include <limits>
#include <memory>
#include <string>

/// \file
/// Outer link functions g for the non-linear market value models of
/// Section IV-A: v_t = g(φ(x_t)ᵀθ*), with g non-decreasing and continuous
/// (Theorem 2). The engine prices in z-space and exposes g(z) to consumers;
/// reserve prices are pulled back through g⁻¹.
///
/// Model ↔ link map (Eq. 27 discussion):
///   linear           g = identity
///   log-linear/log-log g = exp  (the paper's hedonic models act on log v)
///   logistic         g = sigmoid — note the paper writes 1/(1+exp(xᵀθ*)),
///     which is decreasing and contradicts Theorem 2's non-decreasing
///     requirement; we use the standard sigmoid 1/(1+exp(−z)) and record the
///     sign typo in DESIGN.md.
///   kernelized       g = identity (over the kernel feature map)

namespace pdm {

class LinkFunction {
 public:
  virtual ~LinkFunction() = default;

  /// g(z).
  virtual double Apply(double z) const = 0;

  /// g⁻¹(v) for v inside the open range of g. For v at or below the range
  /// infimum returns −∞ (the pulled-back reserve constraint is vacuous); for
  /// v at or above the range supremum returns +∞ (no price can sell).
  virtual double Inverse(double v) const = 0;

  /// Supremum of g's range (+∞ for unbounded links).
  virtual double range_sup() const = 0;

  virtual std::string name() const = 0;
};

/// g(z) = z (linear and kernelized models).
class IdentityLink : public LinkFunction {
 public:
  double Apply(double z) const override { return z; }
  double Inverse(double v) const override { return v; }
  double range_sup() const override { return std::numeric_limits<double>::infinity(); }
  std::string name() const override { return "identity"; }
};

/// g(z) = exp(z) (log-linear and log-log hedonic models).
class ExpLink : public LinkFunction {
 public:
  double Apply(double z) const override;
  double Inverse(double v) const override;
  double range_sup() const override { return std::numeric_limits<double>::infinity(); }
  std::string name() const override { return "exp"; }
};

/// g(z) = 1/(1+exp(−(z + shift))) (logistic CTR model). A non-zero `shift`
/// absorbs a publicly known intercept (e.g. the offline model's learned
/// bias); any fixed shift keeps g non-decreasing and continuous, so
/// Theorem 2 applies unchanged.
class LogisticLink : public LinkFunction {
 public:
  explicit LogisticLink(double shift = 0.0) : shift_(shift) {}
  double Apply(double z) const override;
  double Inverse(double v) const override;
  double range_sup() const override { return 1.0; }
  std::string name() const override { return "logistic"; }

 private:
  double shift_;
};

}  // namespace pdm

#endif  // PDM_PRICING_LINK_FUNCTIONS_H_
