#ifndef PDM_PRICING_PRICING_ENGINE_H_
#define PDM_PRICING_PRICING_ENGINE_H_

#include <cstdint>
#include <string>

#include "linalg/vector_ops.h"

/// \file
/// The posted-price mechanism interface.
///
/// Protocol per round t (Fig. 2): the broker receives a query with feature
/// vector x_t and reserve price q_t, calls PostPrice, shows the returned
/// price to the consumer, then reports the binary accept/reject feedback via
/// Observe. PostPrice and Observe must strictly alternate — the engine's
/// knowledge-set update depends on the pending round's context.

namespace pdm {

/// The broker's decision for one round.
struct PostedPrice {
  /// The price shown to the consumer. Always ≥ the round's reserve when the
  /// engine enforces the reserve constraint.
  double price = 0.0;
  /// True if the exploratory (bisection) price was chosen; false for the
  /// conservative price.
  bool exploratory = false;
  /// True when the engine has proven q_t ≥ p̄_t + δ, i.e. no price ≥ q_t can
  /// sell (Lines 8–10 of Algorithm 2). The posted price is still ≥ q_t so
  /// accounting stays uniform, but the sale is (w.h.p.) impossible and the
  /// knowledge set will not be refined.
  bool certain_no_sale = false;
};

/// The engine's current estimate of a query's market-value interval
/// [p̲_t, p̄_t] (value space, after any link function).
struct ValueInterval {
  double lower = 0.0;
  double upper = 0.0;
  double width() const { return upper - lower; }
  double midpoint() const { return 0.5 * (lower + upper); }
};

/// Cumulative behaviour counters (exposed for the regret analysis benches:
/// Lemma 6/7 bound `exploratory_rounds`).
struct EngineCounters {
  int64_t rounds = 0;
  int64_t exploratory_rounds = 0;
  int64_t conservative_rounds = 0;
  int64_t skipped_rounds = 0;  ///< certain-no-sale rounds
  int64_t cuts_applied = 0;
  int64_t cuts_discarded = 0;  ///< feedback outside the valid α window
};

class PricingEngine {
 public:
  virtual ~PricingEngine() = default;

  /// Feature dimension this engine prices over.
  virtual int dim() const = 0;

  /// Chooses the price for a query. `reserve` is q_t (ignored by engines
  /// configured without the reserve constraint).
  virtual PostedPrice PostPrice(const Vector& features, double reserve) = 0;

  /// Reports whether the pending posted price was accepted (p_t ≤ v_t).
  virtual void Observe(bool accepted) = 0;

  /// Current knowledge-set bounds on the market value of `features`.
  virtual ValueInterval EstimateValueInterval(const Vector& features) const = 0;

  virtual const EngineCounters& counters() const = 0;

  /// Short identifier used in bench/table output (e.g. "reserve+uncertainty").
  virtual std::string name() const = 0;
};

}  // namespace pdm

#endif  // PDM_PRICING_PRICING_ENGINE_H_
