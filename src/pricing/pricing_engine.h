#ifndef PDM_PRICING_PRICING_ENGINE_H_
#define PDM_PRICING_PRICING_ENGINE_H_

#include <cstdint>
#include <string>

#include "common/check.h"
#include "linalg/vector_ops.h"

/// \file
/// The posted-price mechanism interface.
///
/// Protocol per round t (Fig. 2): the broker receives a query with feature
/// vector x_t and reserve price q_t, calls PostPrice, shows the returned
/// price to the consumer, then reports the binary accept/reject feedback via
/// Observe. PostPrice and Observe must strictly alternate — the engine's
/// knowledge-set update depends on the pending round's context.
///
/// The serving layer (src/broker, DESIGN.md §9) relaxes the alternation
/// without changing the math: right after PostPrice it *detaches* the
/// pending cut context into a `PendingCut` ticket and re-injects it when the
/// (possibly delayed) feedback arrives. The optional hooks at the bottom of
/// the interface implement that path; engines that support them also expose
/// `EngineSnapshot` save/load for session checkpointing.

namespace pdm {

struct PendingCut;      // pricing/engine_state.h
struct EngineSnapshot;  // pricing/engine_state.h

/// The broker's decision for one round.
struct PostedPrice {
  /// The price shown to the consumer. Always ≥ the round's reserve when the
  /// engine enforces the reserve constraint.
  double price = 0.0;
  /// True if the exploratory (bisection) price was chosen; false for the
  /// conservative price.
  bool exploratory = false;
  /// True when the engine has proven q_t ≥ p̄_t + δ, i.e. no price ≥ q_t can
  /// sell (Lines 8–10 of Algorithm 2). The posted price is still ≥ q_t so
  /// accounting stays uniform, but the sale is (w.h.p.) impossible and the
  /// knowledge set will not be refined.
  bool certain_no_sale = false;
};

/// The engine's current estimate of a query's market-value interval
/// [p̲_t, p̄_t] (value space, after any link function).
struct ValueInterval {
  double lower = 0.0;
  double upper = 0.0;
  double width() const { return upper - lower; }
  double midpoint() const { return 0.5 * (lower + upper); }
};

/// Cumulative behaviour counters (exposed for the regret analysis benches:
/// Lemma 6/7 bound `exploratory_rounds`).
struct EngineCounters {
  int64_t rounds = 0;
  int64_t exploratory_rounds = 0;
  int64_t conservative_rounds = 0;
  int64_t skipped_rounds = 0;  ///< certain-no-sale rounds
  int64_t cuts_applied = 0;
  int64_t cuts_discarded = 0;  ///< feedback outside the valid α window
};

class PricingEngine {
 public:
  virtual ~PricingEngine() = default;

  /// Feature dimension this engine prices over.
  virtual int dim() const = 0;

  /// Chooses the price for a query. `reserve` is q_t (ignored by engines
  /// configured without the reserve constraint).
  virtual PostedPrice PostPrice(const Vector& features, double reserve) = 0;

  /// Reports whether the pending posted price was accepted (p_t ≤ v_t).
  virtual void Observe(bool accepted) = 0;

  /// Current knowledge-set bounds on the market value of `features`.
  virtual ValueInterval EstimateValueInterval(const Vector& features) const = 0;

  virtual const EngineCounters& counters() const = 0;

  /// Short identifier used in bench/table output (e.g. "reserve+uncertainty").
  virtual std::string name() const = 0;

  // -------------------------------------------------------------------------
  // Serving hooks (src/broker). All built-in engines implement them; the
  // defaults below keep third-party engines source-compatible — a broker
  // falls back to strict alternation when DetachPending reports
  // unsupported, and snapshotting is simply unavailable.
  // -------------------------------------------------------------------------

  /// Raw feature dimension PostPrice accepts. Equals dim() except for
  /// engines wrapping a dimension-changing feature map (the broker validates
  /// request dimensions against this, not against the z-space dim()).
  virtual int input_dim() const { return dim(); }

  /// Moves the round awaiting feedback out of the engine into `*out`
  /// (clearing the engine's own pending state, so another PostPrice may
  /// follow immediately). Returns false when unsupported *or* when no round
  /// is pending; `out`'s buffers are reused across calls. Calling
  /// ObserveDetached with the detached context right away is bit-identical
  /// to the classic Observe call.
  virtual bool DetachPending(PendingCut* out) {
    (void)out;
    return false;
  }

  /// Applies accept/reject feedback for a round previously externalized by
  /// DetachPending on this engine. Must not be called while a non-detached
  /// round is pending. Cut contexts are applied in the order feedback
  /// arrives, each against the *current* knowledge set with its
  /// *posting-time* support (see DESIGN.md §9 for the semantics under
  /// delayed feedback).
  virtual void ObserveDetached(const PendingCut& cut, bool accepted) {
    (void)cut;
    (void)accepted;
    PDM_CHECK(false && "engine does not support detached feedback");
  }

  /// True when the engine implements PostPriceBatch. Engines reporting
  /// support must also support DetachPending — the batched call fuses
  /// PostPrice + DetachPending per query, so it only makes sense on engines
  /// that already run the ticketed feedback protocol.
  virtual bool SupportsBatchedQuotes() const { return false; }

  /// Quotes k same-engine queries in one pass. `panel` packs the raw feature
  /// vectors query-major (query j occupies panel + j·input_dim()),
  /// `reserves[j]` is query j's reserve, `posted[j]` receives the decision
  /// and `*cuts[j]` the detached cut context — exactly what the sequence
  /// { PostPrice(x_j, reserves[j]); DetachPending(cuts[j]); } would produce,
  /// BIT-IDENTICAL per query (DESIGN.md §11). Because every cut context is
  /// detached before the next quote, no knowledge-set update happens inside
  /// the batch: the whole panel prices against one frozen knowledge set,
  /// which is what lets the ellipsoid engine spend a single matrix–panel
  /// pass on it. Leaves no round attached. The default CHECK-fails; callers
  /// must consult SupportsBatchedQuotes() first.
  virtual void PostPriceBatch(const double* panel, int k, const double* reserves,
                              PostedPrice* posted, PendingCut* const* cuts) {
    (void)panel;
    (void)k;
    (void)reserves;
    (void)posted;
    (void)cuts;
    PDM_CHECK(false && "engine does not support batched quotes");
  }

  /// Writes the engine's full persistent state (knowledge set, thresholds,
  /// counters) into `*out`. Returns false when unsupported or when a
  /// non-detached round is pending (pending context belongs to the broker's
  /// ticket table, not the engine snapshot).
  virtual bool SaveSnapshot(EngineSnapshot* out) const {
    (void)out;
    return false;
  }

  /// Restores state previously produced by SaveSnapshot on a compatible
  /// engine (same family tag and dimension). Returns false on a mismatch;
  /// on success subsequent prices are bit-identical to the engine that was
  /// snapshotted.
  virtual bool LoadSnapshot(const EngineSnapshot& snapshot) {
    (void)snapshot;
    return false;
  }
};

}  // namespace pdm

#endif  // PDM_PRICING_PRICING_ENGINE_H_
