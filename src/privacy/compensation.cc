#include "privacy/compensation.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

double CompensationContract::Payment(double epsilon) const {
  PDM_DCHECK(epsilon >= 0.0);
  return scale * std::tanh(rate * epsilon);
}

CompensationLedger::CompensationLedger(std::vector<CompensationContract> contracts,
                                       LaplaceMechanism mechanism)
    : contracts_(std::move(contracts)), mechanism_(mechanism) {
  PDM_CHECK(!contracts_.empty());
  for (const CompensationContract& c : contracts_) {
    PDM_CHECK(c.scale >= 0.0);
    PDM_CHECK(c.rate >= 0.0);
  }
}

CompensationLedger CompensationLedger::Random(int num_owners, double base_scale,
                                              double base_rate, Rng* rng) {
  PDM_CHECK(num_owners > 0);
  PDM_CHECK(rng != nullptr);
  std::vector<CompensationContract> contracts;
  contracts.reserve(static_cast<size_t>(num_owners));
  for (int i = 0; i < num_owners; ++i) {
    CompensationContract c;
    c.scale = base_scale * rng->NextUniform(0.5, 1.5);
    c.rate = base_rate * rng->NextUniform(0.5, 1.5);
    contracts.push_back(c);
  }
  return CompensationLedger(std::move(contracts), LaplaceMechanism{});
}

Vector CompensationLedger::Compensations(const NoisyLinearQuery& query) const {
  Vector payments;
  CompensationsInto(query, &payments);
  return payments;
}

void CompensationLedger::CompensationsInto(const NoisyLinearQuery& query,
                                           Vector* payments) const {
  PDM_CHECK(query.num_owners() == num_owners());
  // Leakage and payment fuse into one elementwise pass (no intermediate
  // LeakageProfile vector): ε_i = |wᵢ|·Δᵢ/b, π_i = contractᵢ(ε_i).
  double scale = query.laplace_scale();
  payments->resize(query.owner_weights.size());
  for (size_t i = 0; i < payments->size(); ++i) {
    (*payments)[i] = contracts_[i].Payment(
        mechanism_.EpsilonForOwner(query.owner_weights[i], scale));
  }
}

double CompensationLedger::TotalCompensation(const NoisyLinearQuery& query) const {
  return Sum(Compensations(query));
}

}  // namespace pdm
