#ifndef PDM_PRIVACY_COMPENSATION_H_
#define PDM_PRIVACY_COMPENSATION_H_

#include <vector>

#include "linalg/vector_ops.h"
#include "privacy/laplace_mechanism.h"
#include "privacy/linear_query.h"
#include "rng/rng.h"

/// \file
/// Privacy-compensation contracts and the broker's compensation ledger.
///
/// Each data owner signs a contract mapping privacy loss ε to a monetary
/// compensation. Following the paper (which adopts "the tanh based privacy
/// compensation functions from [8]"), the contract family is
///
///     π(ε) = scale · tanh(rate · ε)
///
/// — increasing, concave, zero at ε = 0, and saturating at `scale` (an owner
/// can demand at most `scale` no matter how much privacy is spent). The sum
/// of compensations over all owners is the query's total cost and therefore
/// its reserve price q_t (Section II-A).

namespace pdm {

struct CompensationContract {
  /// Saturation payment (the owner's price for "all of my privacy").
  double scale = 1.0;
  /// How fast compensation approaches saturation as ε grows.
  double rate = 1.0;

  /// π(ε) = scale·tanh(rate·ε). Monotone non-decreasing in ε, π(0) = 0.
  double Payment(double epsilon) const;
};

/// The broker-side ledger: one contract per owner, plus the Laplace
/// quantifier that converts query weights into per-owner ε.
class CompensationLedger {
 public:
  CompensationLedger(std::vector<CompensationContract> contracts,
                     LaplaceMechanism mechanism);

  /// Draws heterogeneous contracts: scale ~ U[0.5, 1.5)·base_scale, rate ~
  /// U[0.5, 1.5)·base_rate. Heterogeneity is what gives the sorted-partition
  /// feature vector its discriminative shape.
  static CompensationLedger Random(int num_owners, double base_scale, double base_rate,
                                   Rng* rng);

  int num_owners() const { return static_cast<int>(contracts_.size()); }

  /// Per-owner compensations for a query (Fig. 2's "privacy compensation").
  Vector Compensations(const NoisyLinearQuery& query) const;

  /// Fill-in variant reusing `payments`' storage (steady-state calls perform
  /// no allocation); identical values to the by-value overload.
  void CompensationsInto(const NoisyLinearQuery& query, Vector* payments) const;

  /// Total compensation = the query's reserve price q_t.
  double TotalCompensation(const NoisyLinearQuery& query) const;

  const std::vector<CompensationContract>& contracts() const { return contracts_; }
  const LaplaceMechanism& mechanism() const { return mechanism_; }

 private:
  std::vector<CompensationContract> contracts_;
  LaplaceMechanism mechanism_;
};

}  // namespace pdm

#endif  // PDM_PRIVACY_COMPENSATION_H_
