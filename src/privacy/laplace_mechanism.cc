#include "privacy/laplace_mechanism.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

double LaplaceMechanism::EpsilonForOwner(double weight, double laplace_scale) const {
  PDM_CHECK(laplace_scale > 0.0);
  return std::fabs(weight) * data_range / laplace_scale;
}

Vector LaplaceMechanism::LeakageProfile(const NoisyLinearQuery& query) const {
  double scale = query.laplace_scale();
  Vector eps(query.owner_weights.size());
  for (size_t i = 0; i < eps.size(); ++i) {
    eps[i] = EpsilonForOwner(query.owner_weights[i], scale);
  }
  return eps;
}

double LaplaceMechanism::GlobalSensitivity(const NoisyLinearQuery& query) const {
  return NormInf(query.owner_weights) * data_range;
}

double LaplaceMechanism::WorstCaseEpsilon(const NoisyLinearQuery& query) const {
  return GlobalSensitivity(query) / query.laplace_scale();
}

}  // namespace pdm
