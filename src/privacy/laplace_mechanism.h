#ifndef PDM_PRIVACY_LAPLACE_MECHANISM_H_
#define PDM_PRIVACY_LAPLACE_MECHANISM_H_

#include "linalg/vector_ops.h"
#include "privacy/linear_query.h"

/// \file
/// Differential-privacy accounting for noisy linear queries.
///
/// The broker quantifies each owner's privacy leakage under a query with the
/// standard Laplace-mechanism analysis (Dwork et al.): perturbing
/// q(D) = Σ wᵢ·dᵢ with Laplace(b) noise makes the answer ε-differentially
/// private w.r.t. owner i with ε_i = |wᵢ|·Δᵢ / b, where Δᵢ bounds the range
/// of owner i's datum. This per-owner leakage vector is the input to the
/// compensation contracts (the paper's "differential privacy based privacy
/// leakage quantification mechanism ... from [8]").

namespace pdm {

struct LaplaceMechanism {
  /// Per-owner data range bound Δᵢ (how much one owner can shift the true
  /// answer per unit weight). The evaluation normalizes data to a unit range.
  double data_range = 1.0;

  /// ε_i for a single owner with aggregation weight `weight` under noise
  /// scale `laplace_scale`.
  double EpsilonForOwner(double weight, double laplace_scale) const;

  /// Per-owner leakage vector for a whole query.
  Vector LeakageProfile(const NoisyLinearQuery& query) const;

  /// Global sensitivity of the query: max over owners of |wᵢ|·Δᵢ.
  double GlobalSensitivity(const NoisyLinearQuery& query) const;

  /// Worst-case ε of the mechanism: GlobalSensitivity / laplace_scale.
  double WorstCaseEpsilon(const NoisyLinearQuery& query) const;
};

}  // namespace pdm

#endif  // PDM_PRIVACY_LAPLACE_MECHANISM_H_
