#include "privacy/linear_query.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

double NoisyLinearQuery::laplace_scale() const {
  PDM_CHECK(noise_variance > 0.0);
  // Laplace(b) has variance 2b².
  return std::sqrt(noise_variance / 2.0);
}

NoisyLinearQueryGenerator::NoisyLinearQueryGenerator(QueryGeneratorConfig config)
    : config_(config) {
  PDM_CHECK(config_.num_owners > 0);
  PDM_CHECK(config_.noise_exponent_range >= 0);
}

NoisyLinearQuery NoisyLinearQueryGenerator::Next(Rng* rng) const {
  NoisyLinearQuery query;
  Next(rng, &query);
  return query;
}

void NoisyLinearQueryGenerator::Next(Rng* rng, NoisyLinearQuery* query) const {
  PDM_CHECK(rng != nullptr);
  QueryWeightFamily family = config_.family;
  if (family == QueryWeightFamily::kMixed) {
    family = rng->NextBernoulli(0.5) ? QueryWeightFamily::kGaussian
                                     : QueryWeightFamily::kUniform;
  }
  if (family == QueryWeightFamily::kGaussian) {
    rng->GaussianVectorInto(config_.num_owners, &query->owner_weights);
  } else {
    rng->UniformVectorInto(config_.num_owners, -1.0, 1.0, &query->owner_weights);
  }
  int span = 2 * config_.noise_exponent_range + 1;
  int exponent =
      static_cast<int>(rng->NextUint64(static_cast<uint64_t>(span))) -
      config_.noise_exponent_range;
  query->noise_variance = std::pow(10.0, exponent);
}

double AnswerNoisyLinearQuery(const NoisyLinearQuery& query, const Vector& data, Rng* rng) {
  PDM_CHECK(rng != nullptr);
  PDM_CHECK(data.size() == query.owner_weights.size());
  return Dot(query.owner_weights, data) + rng->NextLaplace(query.laplace_scale());
}

}  // namespace pdm
