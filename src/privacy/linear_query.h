#ifndef PDM_PRIVACY_LINEAR_QUERY_H_
#define PDM_PRIVACY_LINEAR_QUERY_H_

#include <cstdint>

#include "linalg/vector_ops.h"
#include "rng/rng.h"

/// \file
/// Noisy linear queries over the owners' data (Application 1, Section V-A).
///
/// A data consumer customizes (a) a linear aggregation weight per data owner
/// and (b) a tolerable noise variance for the returned answer, following the
/// query model of Li et al., "A theory of pricing private data" (the paper's
/// reference [8]). The broker answers q(D) = Σᵢ wᵢ·dᵢ + Laplace noise.

namespace pdm {

struct NoisyLinearQuery {
  /// Per-owner aggregation weights w ∈ R^{num_owners}.
  Vector owner_weights;
  /// Variance of the Laplace noise added to the true answer; the consumer's
  /// accuracy knob. Scale b = √(variance/2).
  double noise_variance = 1.0;

  int num_owners() const { return static_cast<int>(owner_weights.size()); }
  double laplace_scale() const;
};

/// Distribution family for random query weights used in the evaluation:
/// "randomly drawn from either a multivariate normal distribution with zero
/// mean and identity covariance or a uniform distribution within [−1, 1]".
enum class QueryWeightFamily {
  kGaussian,
  kUniform,
  /// Picks one of the above uniformly at random per query.
  kMixed,
};

struct QueryGeneratorConfig {
  int num_owners = 0;
  QueryWeightFamily family = QueryWeightFamily::kMixed;
  /// Noise variance is 10^k with k uniform on {−k_range,…,k_range} (the
  /// evaluation uses k_range = 4).
  int noise_exponent_range = 4;
};

/// Draws the evaluation section's random noisy linear queries.
class NoisyLinearQueryGenerator {
 public:
  explicit NoisyLinearQueryGenerator(QueryGeneratorConfig config);

  NoisyLinearQuery Next(Rng* rng) const;

  /// Fill-in variant reusing `query->owner_weights`' storage (steady-state
  /// calls perform no allocation); identical draws to the by-value overload.
  void Next(Rng* rng, NoisyLinearQuery* query) const;

  const QueryGeneratorConfig& config() const { return config_; }

 private:
  QueryGeneratorConfig config_;
};

/// Evaluates the query over owner data `data` (one value per owner) and adds
/// Laplace noise with the query's scale.
double AnswerNoisyLinearQuery(const NoisyLinearQuery& query, const Vector& data, Rng* rng);

}  // namespace pdm

#endif  // PDM_PRIVACY_LINEAR_QUERY_H_
