#include "rng/rng.h"

#include <cmath>

#include "common/check.h"

namespace pdm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(&sm);
  }
  // xoshiro must not start from the all-zero state; SplitMix64 cannot emit
  // four zero words for any seed, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step (Blackman & Vigna).
  uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  PDM_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextUniform(-1.0, 1.0);
    v = NextUniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLaplace(double scale) {
  PDM_CHECK(scale > 0);
  // Inverse CDF: sign(u)·(−b·ln(1−2|u|)) for u uniform in (−1/2, 1/2).
  double u = NextDouble() - 0.5;
  double sign = (u < 0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

int Rng::NextRademacher() { return (NextUint64() & 1) ? 1 : -1; }

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Split() { return Rng(NextUint64()); }

std::vector<double> Rng::GaussianVector(int n) {
  std::vector<double> out;
  GaussianVectorInto(n, &out);
  return out;
}

void Rng::GaussianVectorInto(int n, std::vector<double>* out) {
  PDM_CHECK(n >= 0);
  out->resize(static_cast<size_t>(n));
  for (double& x : *out) x = NextGaussian();
}

std::vector<double> Rng::UniformVector(int n, double lo, double hi) {
  std::vector<double> out;
  UniformVectorInto(n, lo, hi, &out);
  return out;
}

void Rng::UniformVectorInto(int n, double lo, double hi, std::vector<double>* out) {
  PDM_CHECK(n >= 0);
  out->resize(static_cast<size_t>(n));
  for (double& x : *out) x = NextUniform(lo, hi);
}

}  // namespace pdm
