#ifndef PDM_RNG_RNG_H_
#define PDM_RNG_RNG_H_

#include <cstdint>
#include <vector>

/// \file
/// Deterministic random number generation for every simulation in the repo.
///
/// The engine is xoshiro256++ seeded through SplitMix64, which gives
/// high-quality 64-bit streams from any user seed and supports cheap
/// independent substreams via `Split()` (each substream is seeded from the
/// parent, so a bench can hand one stream to the workload generator and
/// another to the market-noise model without correlation). All draws are
/// reproducible across platforms: no libstdc++ distribution objects are used.

namespace pdm {

class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the stream; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// UniformRandomBitGenerator interface.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return NextUint64(); }

  /// Raw 64 uniformly random bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound); bound must be positive. Uses rejection
  /// sampling, so the result is exactly uniform.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via the Marsaglia polar method (one value cached).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Laplace(0, scale): density (1/2b)·exp(−|z|/b).
  double NextLaplace(double scale);

  /// Rademacher draw: ±1 with equal probability.
  int NextRademacher();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Derives an independent child stream; the parent advances by one draw.
  Rng Split();

  /// Vector of iid standard normals (used for multivariate normal query
  /// parameters with identity covariance, Section V-A).
  std::vector<double> GaussianVector(int n);

  /// Fills a caller-owned buffer with n iid standard normals (resized to n;
  /// steady-state reuse performs no allocation). Identical draw order to
  /// GaussianVector.
  void GaussianVectorInto(int n, std::vector<double>* out);

  /// Vector of iid Uniform[lo, hi) entries.
  std::vector<double> UniformVector(int n, double lo, double hi);

  /// Fill-in variant of UniformVector with the GaussianVectorInto contract.
  void UniformVectorInto(int n, double lo, double hi, std::vector<double>* out);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace pdm

#endif  // PDM_RNG_RNG_H_
