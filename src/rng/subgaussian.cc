#include "rng/subgaussian.h"

#include <cmath>

#include "common/check.h"

namespace pdm {

double BufferDelta(const SubGaussianSpec& spec, int64_t rounds) {
  PDM_CHECK(rounds >= 1);
  PDM_CHECK(spec.tail_constant > 1.0);
  if (spec.sigma == 0.0) return 0.0;
  return std::sqrt(2.0 * std::log(spec.tail_constant)) * spec.sigma *
         std::log(static_cast<double>(rounds));
}

double SigmaForBuffer(double delta, double tail_constant, int64_t rounds) {
  PDM_CHECK(rounds >= 2);
  PDM_CHECK(tail_constant > 1.0);
  PDM_CHECK(delta >= 0.0);
  return delta / (std::sqrt(2.0 * std::log(tail_constant)) *
                  std::log(static_cast<double>(rounds)));
}

}  // namespace pdm
