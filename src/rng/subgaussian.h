#ifndef PDM_RNG_SUBGAUSSIAN_H_
#define PDM_RNG_SUBGAUSSIAN_H_

#include <cstdint>

#include "rng/rng.h"

/// \file
/// Sub-Gaussian uncertainty model of Section III-B.
///
/// The paper assumes the market-value noise δ_t is σ-sub-Gaussian with tail
/// constant C (Eq. 4): Pr(|δ_t| > z) ≤ C·exp(−z²/2σ²). Choosing the buffer
/// δ = √(2·log C)·σ·log T gives Pr(|δ_t| > δ) ≤ T^{−log T} (Eq. 5) and, by a
/// union bound over T ≥ 8 rounds, all noise realisations stay inside ±δ with
/// probability ≥ 1 − 1/T (Eq. 6). The evaluation inverts this: it fixes
/// δ = 0.01 and sets σ = δ / (√(2·log 2)·log T) for Gaussian noise (C = 2).

namespace pdm {

struct SubGaussianSpec {
  /// Sub-Gaussian scale parameter σ.
  double sigma = 0.0;
  /// Tail constant C in Eq. (4); 2 for the normal distribution.
  double tail_constant = 2.0;
};

/// Buffer size δ = √(2·log C)·σ·log T from Eq. (5). Returns 0 when σ = 0.
double BufferDelta(const SubGaussianSpec& spec, int64_t rounds);

/// Inverse of BufferDelta: the σ that realises a target buffer δ for the
/// given horizon (used to reproduce the evaluation's σ = δ/(√(2 log 2)·log T)).
double SigmaForBuffer(double delta, double tail_constant, int64_t rounds);

/// Samples Gaussian noise with standard deviation spec.sigma. The normal
/// distribution is σ-sub-Gaussian with C = 2, so this realises the model the
/// evaluation section uses.
class GaussianMarketNoise {
 public:
  explicit GaussianMarketNoise(SubGaussianSpec spec) : spec_(spec) {}

  double Sample(Rng* rng) const { return rng->NextGaussian(0.0, spec_.sigma); }
  const SubGaussianSpec& spec() const { return spec_; }

 private:
  SubGaussianSpec spec_;
};

}  // namespace pdm

#endif  // PDM_RNG_SUBGAUSSIAN_H_
