#include "scenario/experiment.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/json_writer.h"
#include "common/memory.h"
#include "scenario/mechanism_registry.h"

namespace pdm::scenario {

ExperimentDriver::ExperimentDriver(const RunOptions& options) : options_(options) {}

ScenarioSpec ExperimentDriver::Capped(const ScenarioSpec& spec) const {
  return CapRounds(spec, options_.max_rounds);
}

std::vector<ScenarioOutcome> ExperimentDriver::Run(
    const std::vector<ScenarioSpec>& specs) {
  std::vector<ScenarioOutcome> outcomes(specs.size());
  std::vector<SimulationJob> jobs(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ScenarioSpec spec = Capped(specs[i]);
    // Serial phase: shared workloads (linear replays, offline fits) are
    // built once per distinct key before any worker starts.
    WorkloadInfo info = factory_.Prepare(spec);
    outcomes[i].spec = spec;

    SimulationJob& job = jobs[i];
    job.name = spec.name;
    job.seed = spec.sim_seed;
    job.options.rounds = spec.rounds;
    job.options.series_stride = spec.series_stride;
    const StreamFactory* factory = &factory_;
    job.make_stream = [factory, spec](Rng* rng) {
      return factory->CreateStream(spec, rng);
    };
    job.make_engine = [spec, info = std::move(info)]() {
      return MechanismRegistry::Builtin().Build(spec, info);
    };
  }

  RunnerOptions runner_options;
  runner_options.num_threads = options_.num_threads;
  std::vector<JobResult> results = SimulationRunner(runner_options).RunAll(jobs);

  // Process-wide VmRSS is sampled exactly once per batch — after every
  // scenario has completed — and replicated onto each row: the key is part
  // of the pdm.bench_throughput.v1 row schema, but per-row attribution is
  // meaningless when concurrent scenarios share the address space
  // (single-sample semantics documented in DESIGN.md §8).
  int64_t rss = CurrentRssBytes();
  for (size_t i = 0; i < results.size(); ++i) {
    outcomes[i].engine_name = std::move(results[i].engine_name);
    outcomes[i].result = std::move(results[i].result);
    outcomes[i].rss_bytes = rss;
  }
  return outcomes;
}

namespace {

void WriteStats(JsonWriter* json, const char* key, const RunningStats& stats) {
  json->Key(key);
  json->BeginObject();
  json->Field("mean", stats.mean());
  json->Field("stddev", stats.stddev());
  json->EndObject();
}

}  // namespace

void WriteRunJson(std::ostream& os, const RunMetadata& meta,
                  const std::vector<ScenarioOutcome>& outcomes) {
  JsonWriter json(&os);
  json.BeginObject();
  json.Field("schema", "pdm.run.v1");
  json.Field("generator", meta.generator);
  json.Field("selection", meta.selection);
  json.Field("max_rounds", meta.max_rounds);
  json.Field("num_threads", meta.num_threads);
  json.Key("results");
  json.BeginArray();
  for (const ScenarioOutcome& outcome : outcomes) {
    const ScenarioSpec& spec = outcome.spec;
    const RegretTracker& tracker = outcome.result.tracker;
    const EngineCounters& counters = outcome.result.engine_counters;
    double wall = outcome.result.wall_seconds;
    double rounds = static_cast<double>(spec.rounds);
    json.BeginObject();
    // pdm.bench_throughput.v1 compatibility block (same keys, same meaning).
    json.Field("scenario", spec.name);
    json.Field("variant", spec.mechanism);
    json.Field("dim", spec.n);
    json.Field("rounds", spec.rounds);
    json.Field("wall_seconds", wall);
    json.Field("rounds_per_sec", wall > 0.0 ? rounds / wall : 0.0);
    json.Field("ns_per_round", wall * 1e9 / rounds);
    json.Field("rss_bytes", outcome.rss_bytes);
    // Spec coordinates.
    json.Field("family", spec.family);
    json.Field("stream", StreamKindName(spec.stream));
    json.Field("mechanism", spec.mechanism);
    json.Field("link", LinkKindName(spec.link));
    json.Field("engine", outcome.engine_name);
    json.Field("delta", spec.delta);
    json.Field("epsilon", spec.epsilon);
    json.Field("workload_seed", spec.workload_seed);
    json.Field("sim_seed", spec.sim_seed);
    // Regret accounting (Eq. 1 and the Section V ratios).
    json.Field("sales", tracker.sales());
    json.Field("cumulative_regret", tracker.cumulative_regret());
    json.Field("cumulative_value", tracker.cumulative_value());
    json.Field("cumulative_revenue", tracker.cumulative_revenue());
    json.Field("regret_ratio", tracker.regret_ratio());
    json.Field("baseline_regret_ratio", tracker.baseline_regret_ratio());
    json.Key("counters");
    json.BeginObject();
    json.Field("exploratory_rounds", counters.exploratory_rounds);
    json.Field("conservative_rounds", counters.conservative_rounds);
    json.Field("skipped_rounds", counters.skipped_rounds);
    json.Field("cuts_applied", counters.cuts_applied);
    json.Field("cuts_discarded", counters.cuts_discarded);
    json.EndObject();
    json.Key("stats");
    json.BeginObject();
    WriteStats(&json, "value", tracker.value_stats());
    WriteStats(&json, "reserve", tracker.reserve_stats());
    WriteStats(&json, "price", tracker.price_stats());
    WriteStats(&json, "regret", tracker.regret_stats());
    json.EndObject();
    if (meta.include_series && !tracker.series().empty()) {
      json.Key("series");
      json.BeginArray();
      for (const RegretSeriesPoint& point : tracker.series()) {
        json.BeginObject();
        json.Field("round", point.round);
        json.Field("cumulative_regret", point.cumulative_regret);
        json.Field("regret_ratio", point.regret_ratio);
        json.Field("baseline_regret_ratio", point.baseline_regret_ratio);
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  os << "\n";
}

void PrintOutcomeTable(const std::vector<ScenarioOutcome>& outcomes, std::ostream& os) {
  std::vector<JobResult> rows;
  rows.reserve(outcomes.size());
  for (const ScenarioOutcome& outcome : outcomes) {
    JobResult row;
    row.name = outcome.spec.name;
    row.seed = outcome.spec.sim_seed;
    row.engine_name = outcome.engine_name;
    row.result = outcome.result;
    rows.push_back(std::move(row));
  }
  PrintComparisonTable(rows, os);
}

std::vector<int64_t> LogCheckpoints(int64_t max_round, int per_decade) {
  std::vector<int64_t> points;
  double factor = std::pow(10.0, 1.0 / per_decade);
  double current = 10.0;
  while (static_cast<int64_t>(current) < max_round) {
    int64_t value = static_cast<int64_t>(current);
    if (points.empty() || value > points.back()) points.push_back(value);
    current *= factor;
  }
  points.push_back(max_round);
  return points;
}

}  // namespace pdm::scenario
