#ifndef PDM_SCENARIO_EXPERIMENT_H_
#define PDM_SCENARIO_EXPERIMENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "market/runner.h"
#include "market/simulator.h"
#include "scenario/scenario_spec.h"
#include "scenario/stream_factory.h"

/// \file
/// The experiment driver: lowers declarative `ScenarioSpec`s onto
/// `SimulationJob`s, executes them on the thread-pooled `SimulationRunner`,
/// and serializes the batch as one machine-readable `pdm.run.v1` JSON
/// document. This is the engine behind `bench/pdm_run` and the thin
/// spec-driven bench binaries; outcomes are bit-identical to hand-wiring the
/// same (stream, engine, seed) by hand (DESIGN.md §4).

namespace pdm::scenario {

struct RunOptions {
  /// Worker threads; 0 picks the hardware default, 1 forces serial execution
  /// (what timing-sensitive benches use so scenarios don't contend).
  int num_threads = 0;
  /// > 0 caps every spec's horizon (and, for streams whose dataset size
  /// tracks the horizon, the dataset) — the CI smoke-grid knob.
  int64_t max_rounds = 0;
};

/// One executed scenario: the spec it came from plus the simulation outcome.
struct ScenarioOutcome {
  ScenarioSpec spec;
  /// Name reported by the constructed engine ("ellipsoid[reserve]"-style).
  std::string engine_name;
  SimulationResult result;
  /// Process VmRSS after the batch completed (process-level, not
  /// per-scenario: concurrent scenarios share the address space).
  int64_t rss_bytes = 0;
};

class ExperimentDriver {
 public:
  explicit ExperimentDriver(const RunOptions& options = {});

  /// Runs every spec (after applying the `max_rounds` cap) and returns
  /// outcomes index-aligned with `specs`. Shared workloads are prepared
  /// serially once per distinct (workload, seed) key, then scenarios execute
  /// concurrently. Invalid specs abort with a diagnostic.
  std::vector<ScenarioOutcome> Run(const std::vector<ScenarioSpec>& specs);

  /// The factory holding the prepared workloads of every Run so far —
  /// benches read offline-phase artifacts (test MSE, FTRL log-loss, θ*)
  /// through it.
  const StreamFactory& factory() const { return factory_; }

  /// The spec actually executed for `spec` once the cap is applied.
  ScenarioSpec Capped(const ScenarioSpec& spec) const;

 private:
  RunOptions options_;
  StreamFactory factory_;
};

/// Metadata header of a pdm.run.v1 document.
struct RunMetadata {
  /// Emitting binary ("pdm_run", "bench_throughput").
  std::string generator;
  /// The scenario selection that produced the batch (CLI globs).
  std::string selection;
  int64_t max_rounds = 0;
  int num_threads = 0;
  /// Also emit each outcome's regret series (round, cumulative regret,
  /// regret ratio) — only series the specs recorded are available.
  bool include_series = false;
};

/// Writes the batch as one `pdm.run.v1` JSON document. The per-result rows
/// are a superset of `pdm.bench_throughput.v1`'s (scenario/variant/dim/
/// rounds/wall_seconds/rounds_per_sec/ns_per_round/rss_bytes), adding the
/// spec coordinates (stream, mechanism, link, seeds, δ), the regret
/// accounting (cumulative regret/value, ratios, sales, Table-I stats), and
/// the engine counters. Schema documented in DESIGN.md §8.
void WriteRunJson(std::ostream& os, const RunMetadata& meta,
                  const std::vector<ScenarioOutcome>& outcomes);

/// Renders outcomes through the runner's fixed-width comparison table.
void PrintOutcomeTable(const std::vector<ScenarioOutcome>& outcomes, std::ostream& os);

/// Checkpoint rounds for figure-style series: `per_decade` log-spaced points
/// per decade up to `max_round`, always including `max_round`.
std::vector<int64_t> LogCheckpoints(int64_t max_round, int per_decade = 4);

}  // namespace pdm::scenario

#endif  // PDM_SCENARIO_EXPERIMENT_H_
