#include "scenario/linear_workload.h"

namespace pdm::scenario {

LinearWorkload MakeLinearWorkload(int dim, int64_t rounds, int num_owners,
                                  uint64_t seed) {
  NoisyLinearMarketConfig config;
  config.feature_dim = dim;
  config.num_owners = num_owners;
  config.value_noise_sigma = 0.0;
  Rng rng(seed);
  NoisyLinearQueryStream stream(config, &rng);
  LinearWorkload workload;
  workload.theta = stream.theta();
  workload.recommended_radius = stream.RecommendedRadius();
  workload.rounds.reserve(static_cast<size_t>(rounds));
  for (int64_t t = 0; t < rounds; ++t) {
    workload.rounds.push_back(stream.Next(&rng));
  }
  return workload;
}

}  // namespace pdm::scenario
