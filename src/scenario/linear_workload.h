#ifndef PDM_SCENARIO_LINEAR_WORKLOAD_H_
#define PDM_SCENARIO_LINEAR_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "market/linear_market.h"
#include "market/round.h"

/// \file
/// Precomputed noisy-linear-query workload (Application 1, Section V-A),
/// shared read-only across every mechanism variant of an exhibit so all
/// variants price the identical query sequence. Formerly bench-private
/// machinery in the (now deleted) bench/bench_common.h; it moved into the
/// scenario layer so the `StreamFactory` can cache one workload per
/// (n, T, owners, seed) key across a whole batch.

namespace pdm::scenario {

/// The recorded workload. `rounds[t].value` is the *clean* market value
/// x_tᵀθ*; per-variant market noise is added at replay time.
struct LinearWorkload {
  std::vector<MarketRound> rounds;
  Vector theta;
  double recommended_radius = 0.0;
};

/// Draws contracts, θ*, and `rounds` queries from `Rng(seed)`.
LinearWorkload MakeLinearWorkload(int dim, int64_t rounds, int num_owners,
                                  uint64_t seed);

/// Replays a precomputed workload in order (wrapping around), adding fresh
/// Gaussian market noise with standard deviation `noise_sigma` to each
/// round's clean value.
class NoisyReplayStream : public QueryStream {
 public:
  NoisyReplayStream(const std::vector<MarketRound>* rounds, double noise_sigma)
      : rounds_(rounds), noise_sigma_(noise_sigma) {}

  using QueryStream::Next;
  void Next(Rng* rng, MarketRound* round) override {
    *round = (*rounds_)[cursor_];  // copy-assign reuses the feature buffer
    cursor_ = (cursor_ + 1) % rounds_->size();
    if (noise_sigma_ > 0.0) {
      round->value += rng->NextGaussian(0.0, noise_sigma_);
    }
  }

 private:
  const std::vector<MarketRound>* rounds_;
  double noise_sigma_;
  size_t cursor_ = 0;
};

}  // namespace pdm::scenario

#endif  // PDM_SCENARIO_LINEAR_WORKLOAD_H_
