#include "scenario/mechanism_registry.h"

#include <utility>

#include "common/check.h"
#include "pricing/baselines.h"
#include "pricing/ellipsoid_engine.h"
#include "pricing/feature_maps.h"
#include "pricing/generalized_engine.h"
#include "pricing/interval_engine.h"
#include "pricing/link_functions.h"

namespace pdm::scenario {

MechanismRegistry::MechanismRegistry() {
  // The four published variants, in the paper's order (the labels the
  // evaluation section uses throughout).
  Register("pure", {/*use_reserve=*/false, /*uncertainty=*/false});
  Register("uncertainty", {/*use_reserve=*/false, /*uncertainty=*/true});
  Register("reserve", {/*use_reserve=*/true, /*uncertainty=*/false});
  Register("reserve+uncertainty", {/*use_reserve=*/true, /*uncertainty=*/true});
  // Lemma 8's forbidden configuration, kept to demonstrate the Ω(T) failure.
  MechanismTraits unsafe;
  unsafe.use_reserve = true;
  unsafe.allow_conservative_cuts = true;
  Register("reserve-unsafe", unsafe);
  // Section V-A's risk-averse baseline.
  MechanismTraits baseline;
  baseline.use_reserve = true;
  baseline.risk_averse_baseline = true;
  Register("risk-averse", baseline);
}

void MechanismRegistry::Register(const std::string& name, const MechanismTraits& traits) {
  PDM_CHECK(!name.empty());
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.traits = traits;
      return;
    }
  }
  entries_.push_back({name, traits});
}

const MechanismTraits* MechanismRegistry::Find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry.traits;
  }
  return nullptr;
}

bool MechanismRegistry::Contains(std::string_view name) const {
  return Find(name) != nullptr;
}

std::vector<std::string> MechanismRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

std::unique_ptr<PricingEngine> MechanismRegistry::Build(const ScenarioSpec& spec,
                                                        const WorkloadInfo& info) const {
  const MechanismTraits* traits = Find(spec.mechanism);
  PDM_CHECK(traits != nullptr);
  PDM_CHECK(info.engine_dim >= 1);

  if (traits->risk_averse_baseline) {
    // Posts the (value-space) reserve every round; link-independent, so it
    // never needs the generalized wrapper.
    return std::make_unique<ReservePriceBaseline>(info.engine_dim);
  }

  double delta = traits->uncertainty ? spec.delta : 0.0;
  std::unique_ptr<PricingEngine> base;
  if (info.engine_dim == 1) {
    // The evaluation's 1-d knowledge interval K₁ = [0, 2].
    IntervalEngineConfig config;
    config.theta_min = 0.0;
    config.theta_max = 2.0;
    config.horizon = spec.rounds;
    config.epsilon = spec.epsilon;
    config.delta = delta;
    config.use_reserve = traits->use_reserve;
    base = std::make_unique<IntervalPricingEngine>(config);
  } else {
    EllipsoidEngineConfig config;
    config.dim = info.engine_dim;
    config.horizon = spec.rounds;
    config.initial_radius = info.initial_radius;
    config.initial_center = info.initial_center;
    config.epsilon = spec.epsilon;
    config.delta = delta;
    config.use_reserve = traits->use_reserve;
    config.allow_conservative_cuts = traits->allow_conservative_cuts;
    config.packed_shape = spec.packed_shape;
    base = std::make_unique<EllipsoidPricingEngine>(config);
  }

  bool needs_map = info.kernel_map != nullptr;
  if (spec.link == LinkKind::kIdentity && !needs_map) return base;

  std::shared_ptr<const LinkFunction> link;
  switch (spec.link) {
    case LinkKind::kIdentity:
      link = std::make_shared<IdentityLink>();
      break;
    case LinkKind::kExp:
      link = std::make_shared<ExpLink>();
      break;
    case LinkKind::kLogistic:
      link = std::make_shared<LogisticLink>(info.logistic_shift);
      break;
  }
  std::shared_ptr<const FeatureMap> map;
  if (needs_map) {
    map = std::make_shared<KernelFeatureMap>(info.kernel_map);
  } else {
    map = std::make_shared<IdentityFeatureMap>();
  }
  return std::make_unique<GeneralizedPricingEngine>(std::move(base), std::move(link),
                                                    std::move(map));
}

const MechanismRegistry& MechanismRegistry::Builtin() {
  static const MechanismRegistry* registry = new MechanismRegistry();
  return *registry;
}

}  // namespace pdm::scenario
