#ifndef PDM_SCENARIO_MECHANISM_REGISTRY_H_
#define PDM_SCENARIO_MECHANISM_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "learning/kernels.h"
#include "linalg/vector_ops.h"
#include "pricing/pricing_engine.h"
#include "scenario/scenario_spec.h"

/// \file
/// Name-keyed construction of any `PricingEngine` variant from a
/// `ScenarioSpec`. The paper's four published mechanism variants, the unsafe
/// conservative-cut ablation, and the risk-averse baseline are pre-registered;
/// a bench or test can register additional trait combinations under new
/// names. `Build` picks the engine family from the workload geometry — the
/// 1-d interval engine, the ellipsoid engine for n ≥ 2, wrapped in the
/// generalized (link/feature-map) adapter whenever the market-value model is
/// non-linear — so callers never hand-wire engine configs again.

namespace pdm::scenario {

/// What the engine needs to know about the workload it will price: the
/// stream-side geometry the legacy benches read off the constructed
/// stream/market. Produced by `StreamFactory::Prepare`.
struct WorkloadInfo {
  /// Dimension the engine prices over (φ-image space for kernel scenarios,
  /// support size for dense Avazu encodings).
  int engine_dim = 0;
  /// Initial knowledge-set ball radius R.
  double initial_radius = 1.0;
  /// Initial knowledge-set center c₁ (empty = origin).
  Vector initial_center;
  /// Public intercept absorbed by the logistic link (Avazu's trained bias).
  double logistic_shift = 0.0;
  /// Non-null: wrap the base engine with this landmark kernel map.
  std::shared_ptr<const LandmarkKernelMap> kernel_map;
};

/// Behaviour flags one mechanism name stands for.
struct MechanismTraits {
  /// Enforce the reserve-price constraint (Algorithm 1/2 vs the * variants).
  bool use_reserve = false;
  /// Apply the spec's δ buffer (Algorithm 2); without it δ is forced to 0,
  /// exactly how the published variants are defined.
  bool uncertainty = false;
  /// ABLATION ONLY: cut on conservative feedback (the Lemma 8 failure mode).
  bool allow_conservative_cuts = false;
  /// Post the reserve every round instead of learning (Section V-A's
  /// risk-averse baseline).
  bool risk_averse_baseline = false;
};

class MechanismRegistry {
 public:
  /// Constructs a registry pre-populated with the built-in names:
  /// "pure", "uncertainty", "reserve", "reserve+uncertainty",
  /// "reserve-unsafe", "risk-averse".
  MechanismRegistry();

  /// Registers (or overrides) a mechanism name.
  void Register(const std::string& name, const MechanismTraits& traits);

  bool Contains(std::string_view name) const;
  /// nullptr when unknown.
  const MechanismTraits* Find(std::string_view name) const;
  /// Registration order.
  std::vector<std::string> Names() const;

  /// Builds the engine for `spec` over a workload with geometry `info`.
  /// PDM_CHECKs that the mechanism name is registered. The built engine
  /// honours the repo's allocation-free steady-state contract — it is the
  /// same wiring the dedicated benches used, now in one place (covered by
  /// tests/allocation_test.cc).
  std::unique_ptr<PricingEngine> Build(const ScenarioSpec& spec,
                                       const WorkloadInfo& info) const;

  /// The shared immutable default instance.
  static const MechanismRegistry& Builtin();

 private:
  struct Entry {
    std::string name;
    MechanismTraits traits;
  };
  std::vector<Entry> entries_;
};

}  // namespace pdm::scenario

#endif  // PDM_SCENARIO_MECHANISM_REGISTRY_H_
