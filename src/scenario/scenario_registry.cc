#include "scenario/scenario_registry.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"
#include "features/airbnb_features.h"
#include "pricing/ellipsoid_engine.h"
#include "rng/subgaussian.h"

namespace pdm::scenario {

namespace {

/// "20" for integral values, shortest round-trip decimal otherwise — the
/// suffix Sweep appends to scenario names.
std::string ShortNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  PDM_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

/// The paper's four published variants, in the evaluation's order.
const char* const kPaperVariants[] = {"pure", "uncertainty", "reserve",
                                      "reserve+uncertainty"};

}  // namespace

void ScenarioRegistry::Add(ScenarioSpec spec) {
  PDM_CHECK(!spec.name.empty());
  PDM_CHECK(Find(spec.name) == nullptr);
  specs_.push_back(std::move(spec));
}

void ScenarioRegistry::AddAll(std::vector<ScenarioSpec> specs) {
  for (ScenarioSpec& spec : specs) Add(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::Find(std::string_view name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const ScenarioSpec& spec : specs_) names.push_back(spec.name);
  return names;
}

std::vector<ScenarioSpec> ScenarioRegistry::Match(std::string_view patterns) const {
  std::vector<std::string> globs;
  for (const std::string& part : Split(patterns, ',')) {
    std::string_view trimmed = Trim(part);
    if (!trimmed.empty()) globs.emplace_back(trimmed);
  }
  std::vector<ScenarioSpec> selected;
  for (const ScenarioSpec& spec : specs_) {
    for (const std::string& glob : globs) {
      if (GlobMatch(glob, spec.name) || GlobMatch(glob, spec.family)) {
        selected.push_back(spec);
        break;
      }
    }
  }
  return selected;
}

std::vector<ScenarioSpec> Sweep(const ScenarioSpec& base, const std::string& field,
                                const std::vector<double>& values) {
  std::vector<ScenarioSpec> specs;
  specs.reserve(values.size());
  for (double value : values) {
    ScenarioSpec spec = base;
    if (field == "n") {
      spec.n = static_cast<int>(value);
    } else if (field == "rounds") {
      spec.rounds = static_cast<int64_t>(value);
    } else if (field == "delta") {
      spec.delta = value;
    } else if (field == "epsilon") {
      spec.epsilon = value;
    } else if (field == "owners") {
      spec.linear.num_owners = static_cast<int>(value);
    } else if (field == "workload_seed") {
      spec.workload_seed = static_cast<uint64_t>(value);
    } else if (field == "sim_seed") {
      spec.sim_seed = static_cast<uint64_t>(value);
    } else {
      std::fprintf(stderr, "Sweep: unknown field '%s'\n", field.c_str());
      PDM_CHECK(false);
    }
    spec.name = base.name + "/" + field + "=" + ShortNumber(value);
    specs.push_back(std::move(spec));
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Exhibit builders. Every constant below is the corresponding legacy bench's
// hand-wired value; tests/scenario_test.cc pins the bit-identical agreement.
// ---------------------------------------------------------------------------

namespace {

/// One noisy-linear-query variant run (the fig4/fig5a/table1 lowering):
/// workload precomputed at `workload_seed`, replayed with per-variant noise.
ScenarioSpec LinearVariantSpec(const std::string& family, const std::string& name,
                               const char* mechanism, int dim, int64_t rounds,
                               int64_t num_owners, double delta, uint64_t workload_seed,
                               uint64_t sim_seed, int64_t series_stride) {
  ScenarioSpec spec;
  spec.name = name;
  spec.family = family;
  spec.stream = StreamKind::kLinear;
  spec.mechanism = mechanism;
  spec.n = dim;
  spec.rounds = rounds;
  spec.delta = delta;
  spec.linear.num_owners = static_cast<int>(num_owners);
  spec.workload_seed = workload_seed;
  spec.sim_seed = sim_seed;
  spec.series_stride = series_stride;
  return spec;
}

}  // namespace

std::vector<ScenarioSpec> Fig4Scenarios(int64_t num_owners, double delta, uint64_t seed,
                                        bool full) {
  struct SubFigure {
    const char* panel;
    int dim;
    int64_t rounds;
  };
  const SubFigure subfigures[] = {
      {"a", 1, 100},     {"b", 20, 10000},  {"c", 40, 10000},
      {"d", 60, 100000}, {"e", 80, 100000}, {"f", 100, 100000},
  };
  std::vector<ScenarioSpec> specs;
  for (const SubFigure& sub : subfigures) {
    int64_t rounds = full ? sub.rounds : std::max<int64_t>(100, sub.rounds / 10);
    int64_t stride = std::max<int64_t>(1, rounds / 200);
    for (const char* variant : kPaperVariants) {
      specs.push_back(LinearVariantSpec(
          "fig4", std::string("fig4/") + sub.panel + "/" + variant, variant, sub.dim,
          rounds, num_owners, delta, seed + static_cast<uint64_t>(sub.dim),
          /*sim_seed=*/99, stride));
    }
  }
  return specs;
}

std::vector<ScenarioSpec> Fig5aScenarios(int dim, int64_t rounds, int64_t num_owners,
                                         double delta, uint64_t seed) {
  std::vector<ScenarioSpec> specs;
  int64_t stride = std::max<int64_t>(1, rounds / 400);
  for (const char* variant : kPaperVariants) {
    specs.push_back(LinearVariantSpec("fig5a", std::string("fig5a/") + variant, variant,
                                      dim, rounds, num_owners, delta, seed,
                                      /*sim_seed=*/99, stride));
  }
  return specs;
}

std::vector<ScenarioSpec> Fig5bScenarios(int64_t listings, uint64_t seed,
                                         double oracle_prior_radius) {
  struct Run {
    const char* label;
    double ratio;  // 0 = pure (no reserve)
  };
  const Run runs[] = {{"pure", 0.0}, {"ratio=0.4", 0.4}, {"ratio=0.6", 0.6},
                      {"ratio=0.8", 0.8}};
  std::vector<ScenarioSpec> specs;
  for (const Run& run : runs) {
    ScenarioSpec spec;
    spec.name = std::string("fig5b/") + run.label;
    spec.family = "fig5b";
    spec.stream = StreamKind::kAirbnb;
    spec.mechanism = run.ratio > 0.0 ? "reserve" : "pure";
    spec.n = AirbnbFeatureSpace::kDim;
    spec.rounds = listings;
    spec.link = LinkKind::kExp;
    spec.airbnb.log_reserve_ratio = run.ratio;
    spec.airbnb.oracle_prior_radius = oracle_prior_radius;
    spec.workload_seed = seed;
    spec.sim_seed = 5;
    spec.series_stride = std::max<int64_t>(1, listings / 400);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ScenarioSpec> Fig5cScenarios(int64_t rounds, int64_t rounds_sparse_1024,
                                         int64_t train_samples, uint64_t seed) {
  std::vector<ScenarioSpec> specs;
  for (int hashed_dim : {128, 1024}) {
    struct Mode {
      const char* label;
      bool dense;
      bool oracle;
    };
    const Mode modes[] = {{"sparse-honest", false, false},
                          {"sparse-oracle", false, true},
                          {"dense", true, false}};
    for (const Mode& mode : modes) {
      int64_t run_rounds =
          (!mode.dense && hashed_dim == 1024) ? rounds_sparse_1024 : rounds;
      ScenarioSpec spec;
      spec.name =
          "fig5c/n=" + std::to_string(hashed_dim) + "/" + mode.label;
      spec.family = "fig5c";
      spec.stream = StreamKind::kAvazu;
      spec.mechanism = "pure";  // impressions carry no reserve
      spec.n = hashed_dim;
      spec.rounds = run_rounds;
      spec.link = LinkKind::kLogistic;
      spec.avazu.dense = mode.dense;
      spec.avazu.train_samples = train_samples;
      spec.avazu.eval_samples = 20000;
      spec.avazu.oracle_prior_radius = mode.oracle ? 0.005 : 0.0;
      spec.workload_seed = seed;
      spec.sim_seed = 77;
      spec.series_stride = std::max<int64_t>(1, run_rounds / 200);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<ScenarioSpec> Table1Scenarios(int64_t num_owners, bool full, uint64_t seed) {
  struct Config {
    int dim;
    int64_t rounds;
  };
  const Config configs[] = {{1, 100},      {20, 10000},   {40, 10000},
                            {60, 100000},  {80, 100000},  {100, 100000}};
  std::vector<ScenarioSpec> specs;
  for (const Config& config : configs) {
    int64_t rounds = full ? config.rounds : std::max<int64_t>(100, config.rounds / 10);
    specs.push_back(LinearVariantSpec(
        "table1", "table1/n=" + std::to_string(config.dim), "reserve", config.dim,
        rounds, num_owners, /*delta=*/0.0, seed + static_cast<uint64_t>(config.dim),
        /*sim_seed=*/99, /*series_stride=*/0));
  }
  return specs;
}

std::vector<ScenarioSpec> ThroughputScenarios(int64_t rounds, int64_t workload_rounds,
                                              int64_t num_owners, double delta,
                                              uint64_t seed) {
  std::vector<ScenarioSpec> specs;
  for (int dim : {2, 5, 10, 20, 50}) {
    for (const char* variant : kPaperVariants) {
      ScenarioSpec spec = LinearVariantSpec(
          "throughput",
          std::string("throughput/") + variant + "/n=" + std::to_string(dim), variant,
          dim, rounds, num_owners, delta, seed,
          /*sim_seed=*/seed + static_cast<uint64_t>(dim), /*series_stride=*/0);
      spec.linear.workload_rounds = workload_rounds;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<ScenarioSpec> Theorem3Scenarios(int64_t max_rounds, int64_t num_owners) {
  std::vector<ScenarioSpec> specs;
  for (int64_t rounds = 100; rounds <= max_rounds; rounds *= 10) {
    // n = 1 rounds are identical (x = 1, v = √2); the replay wraps a short
    // recorded workload instead of materialising T rounds.
    ScenarioSpec spec = LinearVariantSpec(
        "theorem3", "theorem3/T=" + std::to_string(rounds), "pure", /*dim=*/1, rounds,
        num_owners, /*delta=*/0.0, /*workload_seed=*/7, /*sim_seed=*/99,
        /*series_stride=*/0);
    spec.linear.workload_rounds = std::min<int64_t>(rounds, 4096);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ScenarioSpec> ColdstartScenarios(int dim, int64_t rounds, int64_t num_owners,
                                             double delta, int64_t seeds) {
  std::vector<ScenarioSpec> specs;
  int64_t stride = std::max<int64_t>(1, rounds / 100);
  for (int64_t seed = 0; seed < seeds; ++seed) {
    for (const char* variant : kPaperVariants) {
      specs.push_back(LinearVariantSpec(
          "coldstart",
          "coldstart/s" + std::to_string(seed) + "/" + variant, variant, dim, rounds,
          num_owners, delta, /*workload_seed=*/1000 + static_cast<uint64_t>(seed),
          /*sim_seed=*/99 + static_cast<uint64_t>(seed), stride));
    }
  }
  return specs;
}

std::vector<ScenarioSpec> AblationDeltaScenarios(int dim, int64_t rounds,
                                                 int64_t num_owners, double delta_star) {
  // The market noise stays fixed at the evaluation's calibration for δ*
  // while the engine's buffer sweeps around it.
  ScenarioSpec base = LinearVariantSpec("ablation", "ablation/delta",
                                        "reserve+uncertainty", dim, rounds, num_owners,
                                        /*delta=*/delta_star, /*workload_seed=*/1,
                                        /*sim_seed=*/99, /*series_stride=*/0);
  base.linear.noise_sigma = SigmaForBuffer(delta_star, 2.0, rounds);
  std::vector<double> deltas;
  for (double multiplier : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    deltas.push_back(multiplier * delta_star);
  }
  return Sweep(base, "delta", deltas);
}

std::vector<ScenarioSpec> AblationEpsilonScenarios(int dim, int64_t rounds,
                                                   int64_t num_owners) {
  ScenarioSpec base = LinearVariantSpec("ablation", "ablation/epsilon", "reserve", dim,
                                        rounds, num_owners, /*delta=*/0.0,
                                        /*workload_seed=*/1, /*sim_seed=*/99,
                                        /*series_stride=*/0);
  base.linear.noise_sigma = 0.0;
  double default_epsilon = DefaultEllipsoidEpsilon(dim, rounds, 0.0);
  std::vector<double> epsilons;
  for (double multiplier : {0.1, 0.3, 1.0, 3.0, 10.0, 30.0}) {
    epsilons.push_back(multiplier * default_epsilon);
  }
  return Sweep(base, "epsilon", epsilons);
}

std::vector<ScenarioSpec> KernelScenarios(int64_t rounds, uint64_t seed) {
  std::vector<ScenarioSpec> specs;
  for (int landmarks : {5, 10, 20, 40}) {
    ScenarioSpec spec;
    spec.name = "kernel/m=" + std::to_string(landmarks);
    spec.family = "kernel";
    spec.stream = StreamKind::kKernel;
    spec.mechanism = "reserve";  // reserve_fraction 0.6 > 0
    spec.n = landmarks;
    spec.rounds = rounds;
    spec.sim_seed = seed;  // stream construction + loop share one Rng
    specs.push_back(std::move(spec));
  }
  ScenarioSpec misspecified;
  misspecified.name = "kernel/misspecified-linear";
  misspecified.family = "kernel";
  misspecified.stream = StreamKind::kKernel;
  misspecified.mechanism = "reserve";
  misspecified.n = 10;  // the workload's landmark count; the engine sees raw x
  misspecified.rounds = rounds;
  misspecified.sim_seed = seed;
  misspecified.kernel.misspecified_linear = true;
  specs.push_back(std::move(misspecified));
  return specs;
}

std::vector<ScenarioSpec> Lemma8Scenarios(int64_t max_horizon) {
  std::vector<ScenarioSpec> specs;
  for (int64_t horizon = 50; horizon <= max_horizon; horizon *= 2) {
    for (bool unsafe : {false, true}) {
      ScenarioSpec spec;
      spec.name = std::string("lemma8/") + (unsafe ? "unsafe" : "safe") +
                  "/T=" + std::to_string(horizon);
      spec.family = "lemma8";
      spec.stream = StreamKind::kAdversarial;
      spec.mechanism = unsafe ? "reserve-unsafe" : "reserve";
      spec.n = 2;
      spec.rounds = horizon;
      spec.sim_seed = 4;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

const ScenarioRegistry& ScenarioRegistry::PaperExhibits() {
  static const ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    r->AddAll(Fig4Scenarios());
    r->AddAll(Fig5aScenarios());
    r->AddAll(Fig5bScenarios());
    r->AddAll(Fig5cScenarios());
    r->AddAll(Table1Scenarios());
    r->AddAll(ThroughputScenarios());
    r->AddAll(Theorem3Scenarios());
    r->AddAll(ColdstartScenarios());
    r->AddAll(AblationDeltaScenarios());
    r->AddAll(AblationEpsilonScenarios());
    r->AddAll(KernelScenarios());
    r->AddAll(Lemma8Scenarios());
    return r;
  }();
  return *registry;
}

}  // namespace pdm::scenario
