#ifndef PDM_SCENARIO_SCENARIO_REGISTRY_H_
#define PDM_SCENARIO_SCENARIO_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario_spec.h"

/// \file
/// Name-keyed catalogue of declarative scenarios.
///
/// `ScenarioRegistry::PaperExhibits()` holds one spec per run of every paper
/// exhibit the repo reproduces by simulation — Fig. 4(a)–(f), Fig. 5(a)–(c),
/// Table I, Theorem 3, the Lemma 8 adversary, the kernelized model, the
/// cold-start study, and the δ/ε ablations, plus the throughput sweep — each
/// with the exact dimensions, horizons, and seeds the dedicated bench
/// binaries used, so `pdm_run --scenarios=fig4/*` reproduces the legacy
/// outputs bit for bit. The per-exhibit builder functions are public so the
/// thin bench binaries can rebuild their grid from command-line flags; the
/// registry is those builders evaluated at the paper's defaults.
///
/// `Sweep` is the grid-expansion helper: it turns one base spec plus one
/// axis into a family of named specs (`Sweep(base, "n", {2, 5, 10, 20, 50})`),
/// which is how new parameter studies are meant to be added — declare, don't
/// hand-roll another main().

namespace pdm::scenario {

class ScenarioRegistry {
 public:
  /// Registers a spec; the name must be non-empty and unique.
  void Add(ScenarioSpec spec);
  void AddAll(std::vector<ScenarioSpec> specs);

  /// nullptr when no spec has that exact name.
  const ScenarioSpec* Find(std::string_view name) const;

  /// Registration order.
  const std::vector<ScenarioSpec>& specs() const { return specs_; }
  std::vector<std::string> Names() const;
  size_t size() const { return specs_.size(); }

  /// Selects specs by a comma-separated list of glob patterns (`*`/`?`,
  /// see common/string_util). A pattern matches a spec when it matches the
  /// full name or the family ("fig4" alone selects all fig4 runs).
  /// Registration order, each spec at most once.
  std::vector<ScenarioSpec> Match(std::string_view patterns) const;

  /// Every paper exhibit at the paper's scale and seeds.
  static const ScenarioRegistry& PaperExhibits();

 private:
  std::vector<ScenarioSpec> specs_;
};

/// Grid expansion: one spec per value with "/<field>=<value>" appended to
/// the name. Fields: "n", "rounds", "delta", "epsilon", "owners",
/// "workload_seed", "sim_seed". Unknown fields abort.
std::vector<ScenarioSpec> Sweep(const ScenarioSpec& base, const std::string& field,
                                const std::vector<double>& values);

// ---------------------------------------------------------------------------
// Exhibit builders (defaults = the paper's scale). The registry is the union
// of these at their defaults; the thin bench binaries call them with flag
// values instead.
// ---------------------------------------------------------------------------

/// Fig. 4(a)–(f): four variants × six (n, T) panels; `full=false` divides
/// the horizons by 10 for smoke runs.
std::vector<ScenarioSpec> Fig4Scenarios(int64_t num_owners = 2000, double delta = 0.01,
                                        uint64_t seed = 1, bool full = true);

/// Fig. 5(a): regret ratios of the four variants at n = 100.
std::vector<ScenarioSpec> Fig5aScenarios(int dim = 100, int64_t rounds = 100000,
                                         int64_t num_owners = 2000, double delta = 0.01,
                                         uint64_t seed = 1);

/// Fig. 5(b): accommodation rental, pure + log-ratio ∈ {0.4, 0.6, 0.8}.
std::vector<ScenarioSpec> Fig5bScenarios(int64_t listings = 74111, uint64_t seed = 21,
                                         double oracle_prior_radius = 0.0);

/// Fig. 5(c): impressions, n ∈ {128, 1024} × {sparse honest, sparse oracle,
/// dense}.
std::vector<ScenarioSpec> Fig5cScenarios(int64_t rounds = 100000,
                                         int64_t rounds_sparse_1024 = 20000,
                                         int64_t train_samples = 200000,
                                         uint64_t seed = 31);

/// Table I: per-round statistics of the reserve variant over six (n, T).
std::vector<ScenarioSpec> Table1Scenarios(int64_t num_owners = 2000, bool full = true,
                                          uint64_t seed = 1);

/// Throughput sweep: n ∈ {2, 5, 10, 20, 50} × four variants over the
/// precomputed replay workload (the perf-trajectory bench).
std::vector<ScenarioSpec> ThroughputScenarios(int64_t rounds = 200000,
                                              int64_t workload_rounds = 2048,
                                              int64_t num_owners = 512,
                                              double delta = 0.01, uint64_t seed = 1);

/// Theorem 3: 1-d pure mechanism, T over four decades.
std::vector<ScenarioSpec> Theorem3Scenarios(int64_t max_rounds = 1000000,
                                            int64_t num_owners = 100);

/// Cold-start study: four variants × `seeds` workload draws at (n, T).
std::vector<ScenarioSpec> ColdstartScenarios(int dim = 20, int64_t rounds = 10000,
                                             int64_t num_owners = 2000,
                                             double delta = 0.01, int64_t seeds = 5);

/// δ-buffer ablation: engine δ ∈ {0, δ*/2, δ*, 2δ*, 4δ*} under fixed market
/// noise calibrated to δ*.
std::vector<ScenarioSpec> AblationDeltaScenarios(int dim = 20, int64_t rounds = 10000,
                                                 int64_t num_owners = 2000,
                                                 double delta_star = 0.01);

/// ε-threshold ablation: Theorem 1's default × {0.1, 0.3, 1, 3, 10, 30}.
std::vector<ScenarioSpec> AblationEpsilonScenarios(int dim = 20, int64_t rounds = 10000,
                                                   int64_t num_owners = 2000);

/// Kernelized model: landmark budget m ∈ {5, 10, 20, 40} plus the
/// misspecified linear-on-raw-x run.
std::vector<ScenarioSpec> KernelScenarios(int64_t rounds = 20000, uint64_t seed = 9);

/// Lemma 8 adversary: safe vs unsafe engine over doubling horizons.
std::vector<ScenarioSpec> Lemma8Scenarios(int64_t max_horizon = 3200);

}  // namespace pdm::scenario

#endif  // PDM_SCENARIO_SCENARIO_REGISTRY_H_
