#include "scenario/scenario_spec.h"

#include <algorithm>

#include "features/airbnb_features.h"
#include "scenario/mechanism_registry.h"

namespace pdm::scenario {

const char* StreamKindName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kLinear:
      return "linear";
    case StreamKind::kKernel:
      return "kernel";
    case StreamKind::kAirbnb:
      return "airbnb";
    case StreamKind::kAvazu:
      return "avazu";
    case StreamKind::kAdversarial:
      return "adversarial";
  }
  return "unknown";
}

const char* LinkKindName(LinkKind kind) {
  switch (kind) {
    case LinkKind::kIdentity:
      return "identity";
    case LinkKind::kExp:
      return "exp";
    case LinkKind::kLogistic:
      return "logistic";
  }
  return "unknown";
}

std::string Validate(const ScenarioSpec& spec) {
  if (!MechanismRegistry::Builtin().Contains(spec.mechanism)) {
    return "unknown mechanism '" + spec.mechanism + "'";
  }
  if (spec.rounds <= 0) return "rounds must be positive";
  if (spec.n < 1) return "n must be >= 1";
  if (spec.delta < 0.0) return "delta must be >= 0";
  if (spec.series_stride < 0) return "series_stride must be >= 0";
  switch (spec.stream) {
    case StreamKind::kLinear:
      if (spec.link != LinkKind::kIdentity) {
        return "linear stream requires the identity link";
      }
      if (spec.linear.num_owners < 1) return "linear stream needs >= 1 owner";
      if (spec.linear.workload_rounds < 0) {
        return "workload_rounds must be >= 0 (0 = one query per round)";
      }
      break;
    case StreamKind::kKernel:
      if (spec.link != LinkKind::kIdentity) {
        return "kernel stream requires the identity link (the kernel is the map)";
      }
      if (spec.kernel.input_dim < 1) return "kernel input_dim must be >= 1";
      break;
    case StreamKind::kAirbnb:
      if (spec.link != LinkKind::kExp) {
        return "airbnb stream models log-linear values: link must be exp";
      }
      if (spec.n != AirbnbFeatureSpace::kDim) {
        return "airbnb stream prices the engineered " +
               std::to_string(AirbnbFeatureSpace::kDim) + "-dim space: n must match";
      }
      break;
    case StreamKind::kAvazu:
      if (spec.link != LinkKind::kLogistic) {
        return "avazu stream models CTR values: link must be logistic";
      }
      if (spec.avazu.dense && spec.avazu.oracle_prior_radius > 0.0) {
        return "the oracle prior is defined over the sparse encoding only";
      }
      if (spec.avazu.train_samples < 1) return "avazu train_samples must be >= 1";
      break;
    case StreamKind::kAdversarial:
      if (spec.link != LinkKind::kIdentity) {
        return "adversarial stream requires the identity link";
      }
      if (spec.n < 2) return "the Lemma 8 adversary needs n >= 2";
      break;
  }
  return "";
}

ScenarioSpec CapRounds(const ScenarioSpec& spec, int64_t max_rounds) {
  ScenarioSpec capped = spec;
  if (max_rounds > 0 && capped.rounds > max_rounds) {
    capped.rounds = max_rounds;
    // Recorded workloads never need to outsize the capped horizon.
    if (capped.linear.workload_rounds > 0) {
      capped.linear.workload_rounds =
          std::min(capped.linear.workload_rounds, capped.rounds);
    }
    if (capped.series_stride > capped.rounds) capped.series_stride = 0;
  }
  return capped;
}

}  // namespace pdm::scenario
