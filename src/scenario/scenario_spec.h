#ifndef PDM_SCENARIO_SCENARIO_SPEC_H_
#define PDM_SCENARIO_SCENARIO_SPEC_H_

#include <cstdint>
#include <string>

/// \file
/// The declarative scenario layer's value type.
///
/// A `ScenarioSpec` is pure data: which workload stream, which mechanism,
/// which dimension/horizon/seeds — everything needed to reproduce one paper
/// exhibit run (or any point of a sweep grid), with no factories or wiring.
/// `StreamFactory` turns the stream half into a `QueryStream`,
/// `MechanismRegistry` turns the mechanism half into a `PricingEngine`, and
/// `ExperimentDriver` (experiment.h) lowers the whole spec onto a
/// `SimulationJob` for the thread-pooled `SimulationRunner`. Identical specs
/// produce bit-identical results (DESIGN.md §4); the pre-refactor bench
/// binaries' hand-wired runs are reproduced exactly by the specs in
/// `ScenarioRegistry::PaperExhibits()` (tested in tests/scenario_test.cc).

namespace pdm::scenario {

/// Which of the five workload streams produces the query sequence.
enum class StreamKind {
  /// Application 1 (Section V-A): precomputed noisy-linear-query workload
  /// replayed through `NoisyReplayStream`; market noise is added at replay
  /// time from the scenario's own seeded Rng.
  kLinear,
  /// The kernelized model (Section IV-A): `KernelQueryStream`, landmarks and
  /// θ* drawn from the scenario Rng at stream construction.
  kKernel,
  /// Application 2 (Section V-B): Airbnb-like accommodation rental replay
  /// under the log-linear model.
  kAirbnb,
  /// Application 3 (Section V-C): Avazu-like ad impressions under the
  /// logistic model.
  kAvazu,
  /// The Lemma 8 adaptive adversary (Appendix).
  kAdversarial,
};

/// Outer link function g of the market-value model v = g(φ(x)ᵀθ*).
enum class LinkKind { kIdentity, kExp, kLogistic };

const char* StreamKindName(StreamKind kind);
const char* LinkKindName(LinkKind kind);

/// Parameters of `StreamKind::kLinear`.
struct LinearStreamParams {
  /// Data owners behind the broker.
  int num_owners = 2000;
  /// Distinct precomputed queries; the replay wraps around. 0 = one per
  /// round (the figure benches' setup; the throughput bench uses 2048).
  int64_t workload_rounds = 0;
  /// Market-value noise σ added at replay. < 0 derives the evaluation's
  /// default: σ = δ/(√(2·log 2)·log T) when the mechanism carries the
  /// uncertainty flag, 0 otherwise. ≥ 0 is used verbatim (the δ-ablation
  /// fixes the noise while sweeping the engine buffer).
  double noise_sigma = -1.0;
};

/// Parameters of `StreamKind::kKernel`. The engine dimension is
/// `ScenarioSpec::n` = number of landmarks m (unless misspecified).
struct KernelStreamParams {
  /// Raw feature dimension of a product.
  int input_dim = 4;
  /// RBF bandwidth γ.
  double rbf_gamma = 0.5;
  /// Reserve as a fraction of market value (0 disables).
  double reserve_fraction = 0.6;
  /// Offset keeping market values positive.
  double value_offset = 2.0;
  /// Price over the raw features instead of φ(x): the misspecification
  /// study of bench_kernel_pricing (engine dim = input_dim, radius 4R).
  bool misspecified_linear = false;
};

/// Parameters of `StreamKind::kAirbnb`. The horizon doubles as the number of
/// generated listings (the paper streams each listing once); `n` must be the
/// engineered space's dimension (55).
struct AirbnbStreamParams {
  /// log q / log v ∈ {0.4, 0.6, 0.8} in Fig. 5(b); ≤ 0 disables the reserve.
  double log_reserve_ratio = 0.6;
  /// Offline OLS train split.
  double train_fraction = 0.8;
  /// > 0: center the initial knowledge set on the offline fit with this
  /// radius (the tight-prior regime of DESIGN.md §3); 0 = honest ball prior.
  double oracle_prior_radius = 0.0;
};

/// Parameters of `StreamKind::kAvazu`. `n` is the hashed dimension; in dense
/// mode the engine dimension shrinks to the learned support size.
struct AvazuStreamParams {
  /// Keep only non-zero-weight coordinates (Fig. 5(c)'s dense encoding).
  bool dense = false;
  /// Offline FTRL training examples.
  int64_t train_samples = 200000;
  /// Hold-out examples for the reported log-loss.
  int64_t eval_samples = 20000;
  /// > 0: tight prior around the offline FTRL fit (sparse mode only).
  double oracle_prior_radius = 0.0;
};

/// Parameters of `StreamKind::kAdversarial` (Lemma 8 uses R = 1, S = 1).
struct AdversarialStreamParams {
  /// θ* components along e₁/e₂; ‖θ*‖ ≤ 1 must hold.
  double theta1 = 0.3;
  double theta2 = 0.8;
};

/// One declarative scenario. Field semantics that depend on the stream kind
/// are documented on the per-stream parameter structs above.
struct ScenarioSpec {
  /// Unique registry key, path-style so globs select families
  /// ("fig4/b/reserve", "throughput/pure/n=20").
  std::string name;
  /// Exhibit family ("fig4", "throughput", ...) — reported in pdm.run.v1.
  std::string family;

  StreamKind stream = StreamKind::kLinear;
  LinearStreamParams linear;
  KernelStreamParams kernel;
  AirbnbStreamParams airbnb;
  AvazuStreamParams avazu;
  AdversarialStreamParams adversarial;

  /// `MechanismRegistry` key ("pure", "uncertainty", "reserve",
  /// "reserve+uncertainty", "reserve-unsafe", "risk-averse").
  std::string mechanism = "reserve";

  /// Feature dimension n: aggregation granularity (linear), landmark budget
  /// m (kernel), hashed dimension (avazu), engineered dim 55 (airbnb),
  /// adversary dimension (adversarial, ≥ 2).
  int n = 20;
  /// Horizon T.
  int64_t rounds = 10000;
  /// Uncertainty buffer δ; applied only by mechanisms carrying the
  /// uncertainty flag (matching the published variants).
  double delta = 0.0;
  /// Exploration threshold override; ≤ 0 keeps the Theorem 1/3 default.
  double epsilon = -1.0;
  /// Outer link g. Must match the stream's market-value model: identity for
  /// linear/kernel/adversarial, exp for airbnb, logistic for avazu.
  LinkKind link = LinkKind::kIdentity;

  /// Seed of the offline/workload phase (dataset generation, θ* draws,
  /// offline training). Streams that have no offline phase ignore it.
  uint64_t workload_seed = 1;
  /// Seed of the online simulation's Rng (the `SimulationJob` seed).
  uint64_t sim_seed = 99;
  /// Regret-series sampling stride (0 = no series).
  int64_t series_stride = 0;

  /// Packed (upper-triangular) shape storage for ellipsoid engines: halves
  /// the per-product shape bytes at serving scale (DESIGN.md §12). Off by
  /// default — the dense path stays bit-identical to every published pin;
  /// packed mode is a documented-tolerance twin. Interval engines ignore it.
  bool packed_shape = false;
};

/// Returns the empty string when `spec` is well-formed, else a
/// human-readable description of the first problem found (unknown mechanism,
/// link/stream mismatch, non-positive horizon, ...).
std::string Validate(const ScenarioSpec& spec);

/// Shrinks `spec` to at most `max_rounds` rounds without changing its
/// workload identity beyond what the horizon cap implies: recorded linear
/// workloads never outsize the capped horizon, and a series stride larger
/// than the horizon is dropped. `max_rounds <= 0` is a no-op. This is the
/// one capping rule every driver shares (`ExperimentDriver::Capped`,
/// `broker::RunScenariosThroughBroker`, the CI smoke grids).
ScenarioSpec CapRounds(const ScenarioSpec& spec, int64_t max_rounds);

}  // namespace pdm::scenario

#endif  // PDM_SCENARIO_SCENARIO_SPEC_H_
