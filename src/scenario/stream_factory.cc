#include "scenario/stream_factory.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "features/airbnb_features.h"
#include "market/adversarial.h"
#include "market/kernel_market.h"
#include "rng/subgaussian.h"

namespace pdm::scenario {

namespace {

KernelMarketConfig KernelConfigFor(const ScenarioSpec& spec) {
  KernelMarketConfig config;
  config.input_dim = spec.kernel.input_dim;
  config.num_landmarks = spec.n;
  config.rbf_gamma = spec.kernel.rbf_gamma;
  config.reserve_fraction = spec.kernel.reserve_fraction;
  config.value_offset = spec.kernel.value_offset;
  return config;
}

int64_t EffectiveWorkloadRounds(const ScenarioSpec& spec) {
  return spec.linear.workload_rounds > 0 ? spec.linear.workload_rounds : spec.rounds;
}

}  // namespace

std::string StreamFactory::LinearKey(const ScenarioSpec& spec) const {
  return "n=" + std::to_string(spec.n) +
         "/w=" + std::to_string(EffectiveWorkloadRounds(spec)) +
         "/owners=" + std::to_string(spec.linear.num_owners) +
         "/seed=" + std::to_string(spec.workload_seed);
}

std::string StreamFactory::AirbnbKey(const ScenarioSpec& spec) const {
  return "T=" + std::to_string(spec.rounds) +
         "/ratio=" + std::to_string(spec.airbnb.log_reserve_ratio) +
         "/train=" + std::to_string(spec.airbnb.train_fraction) +
         "/seed=" + std::to_string(spec.workload_seed);
}

std::string StreamFactory::AvazuKey(const ScenarioSpec& spec) const {
  return "n=" + std::to_string(spec.n) +
         "/train=" + std::to_string(spec.avazu.train_samples) +
         "/eval=" + std::to_string(spec.avazu.eval_samples) +
         "/seed=" + std::to_string(spec.workload_seed);
}

double StreamFactory::LinearNoiseSigma(const ScenarioSpec& spec) const {
  if (spec.linear.noise_sigma >= 0.0) return spec.linear.noise_sigma;
  const MechanismTraits* traits = MechanismRegistry::Builtin().Find(spec.mechanism);
  if (traits != nullptr && traits->uncertainty && spec.delta > 0.0) {
    // The evaluation's inversion: fix the buffer δ, derive the Gaussian σ
    // that makes it tight for horizon T (rng/subgaussian.h, Eq. 5).
    return SigmaForBuffer(spec.delta, 2.0, spec.rounds);
  }
  return 0.0;
}

WorkloadInfo StreamFactory::Prepare(const ScenarioSpec& spec) {
  std::string problem = Validate(spec);
  if (!problem.empty()) {
    std::fprintf(stderr, "invalid scenario '%s': %s\n", spec.name.c_str(),
                 problem.c_str());
  }
  PDM_CHECK(problem.empty());

  WorkloadInfo info;
  switch (spec.stream) {
    case StreamKind::kLinear: {
      auto [it, inserted] = linear_cache_.try_emplace(LinearKey(spec));
      if (inserted) {
        it->second = MakeLinearWorkload(spec.n, EffectiveWorkloadRounds(spec),
                                        spec.linear.num_owners, spec.workload_seed);
      }
      info.engine_dim = spec.n;
      info.initial_radius = it->second.recommended_radius;
      break;
    }
    case StreamKind::kKernel: {
      // Shadow construction with the scenario's own seed: the worker's
      // CreateStream repeats exactly these draws, so radius and landmark map
      // here match the stream the engine will actually price.
      Rng rng(spec.sim_seed);
      KernelQueryStream shadow(KernelConfigFor(spec), &rng);
      if (spec.kernel.misspecified_linear) {
        info.engine_dim = spec.kernel.input_dim;
        info.initial_radius = 4.0 * shadow.RecommendedRadius();
      } else {
        info.engine_dim = spec.n;
        info.initial_radius = shadow.RecommendedRadius();
        info.kernel_map = shadow.feature_map();
      }
      break;
    }
    case StreamKind::kAirbnb: {
      auto [it, inserted] = airbnb_cache_.try_emplace(AirbnbKey(spec));
      if (inserted) {
        AirbnbMarketConfig config;
        config.num_listings = spec.rounds;
        config.log_reserve_ratio = spec.airbnb.log_reserve_ratio;
        config.train_fraction = spec.airbnb.train_fraction;
        Rng rng(spec.workload_seed);
        it->second = BuildAirbnbMarket(config, &rng);
      }
      const AirbnbMarket& market = it->second;
      info.engine_dim = AirbnbFeatureSpace::kDim;
      if (spec.airbnb.oracle_prior_radius > 0.0) {
        info.initial_center = market.theta;
        info.initial_radius = spec.airbnb.oracle_prior_radius;
      } else {
        info.initial_center = market.recommended_center;
        info.initial_radius = market.recommended_radius;
      }
      break;
    }
    case StreamKind::kAvazu: {
      auto [it, inserted] = avazu_cache_.try_emplace(AvazuKey(spec));
      if (inserted) {
        Rng rng(spec.workload_seed);
        AvazuLikeConfig data_config;
        it->second.click_log = std::make_unique<AvazuLikeClickLog>(data_config, &rng);
        AvazuMarketConfig config;
        config.hashed_dim = spec.n;
        config.train_samples = spec.avazu.train_samples;
        config.eval_samples = spec.avazu.eval_samples;
        it->second.market = BuildAvazuMarket(config, *it->second.click_log, &rng);
      }
      const AvazuMarket& market = it->second.market;
      info.engine_dim =
          spec.avazu.dense ? static_cast<int>(market.support.size()) : spec.n;
      info.logistic_shift = market.bias;
      if (spec.avazu.oracle_prior_radius > 0.0) {
        info.initial_center = market.theta;
        info.initial_radius = spec.avazu.oracle_prior_radius;
      } else {
        info.initial_radius = market.recommended_radius;
      }
      break;
    }
    case StreamKind::kAdversarial: {
      info.engine_dim = spec.n;
      info.initial_radius = 1.0;  // Lemma 8's R = 1, S = 1
      break;
    }
  }
  return info;
}

std::unique_ptr<QueryStream> StreamFactory::CreateStream(const ScenarioSpec& spec,
                                                         Rng* rng) const {
  switch (spec.stream) {
    case StreamKind::kLinear: {
      const LinearWorkload* workload = FindLinearWorkload(spec);
      PDM_CHECK(workload != nullptr);  // Prepare(spec) must run first
      return std::make_unique<NoisyReplayStream>(&workload->rounds,
                                                 LinearNoiseSigma(spec));
    }
    case StreamKind::kKernel:
      return std::make_unique<KernelQueryStream>(KernelConfigFor(spec), rng);
    case StreamKind::kAirbnb: {
      const AirbnbMarket* market = FindAirbnbMarket(spec);
      PDM_CHECK(market != nullptr);
      return std::make_unique<ReplayQueryStream>(&market->rounds);
    }
    case StreamKind::kAvazu: {
      auto it = avazu_cache_.find(AvazuKey(spec));
      PDM_CHECK(it != avazu_cache_.end());
      return std::make_unique<AvazuQueryStream>(it->second.click_log.get(),
                                                &it->second.market, spec.n,
                                                spec.avazu.dense);
    }
    case StreamKind::kAdversarial: {
      AdversarialStreamConfig config;
      config.dim = spec.n;
      config.horizon = spec.rounds;
      config.theta1 = spec.adversarial.theta1;
      config.theta2 = spec.adversarial.theta2;
      return std::make_unique<AdversarialQueryStream>(config);
    }
  }
  return nullptr;
}

const LinearWorkload* StreamFactory::FindLinearWorkload(const ScenarioSpec& spec) const {
  auto it = linear_cache_.find(LinearKey(spec));
  return it == linear_cache_.end() ? nullptr : &it->second;
}

const AirbnbMarket* StreamFactory::FindAirbnbMarket(const ScenarioSpec& spec) const {
  auto it = airbnb_cache_.find(AirbnbKey(spec));
  return it == airbnb_cache_.end() ? nullptr : &it->second;
}

const AvazuMarket* StreamFactory::FindAvazuMarket(const ScenarioSpec& spec) const {
  auto it = avazu_cache_.find(AvazuKey(spec));
  return it == avazu_cache_.end() ? nullptr : &it->second.market;
}

}  // namespace pdm::scenario
