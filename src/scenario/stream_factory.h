#ifndef PDM_SCENARIO_STREAM_FACTORY_H_
#define PDM_SCENARIO_STREAM_FACTORY_H_

#include <map>
#include <memory>
#include <string>

#include "data/avazu_like.h"
#include "market/airbnb_market.h"
#include "market/avazu_market.h"
#include "market/round.h"
#include "scenario/linear_workload.h"
#include "scenario/mechanism_registry.h"
#include "scenario/scenario_spec.h"

/// \file
/// Builds any of the five `QueryStream`s from a `ScenarioSpec`, caching the
/// heavy shared artifacts (precomputed linear workloads, the Airbnb offline
/// fit, the Avazu click log + FTRL model) so a batch of scenarios over the
/// same workload pays for it once.
///
/// Two-phase protocol, mirroring the runner's job lifecycle:
///
///   1. `Prepare(spec)` — serial, before dispatch. Builds (or reuses) the
///      shared immutable workload and returns the engine-facing geometry
///      (`WorkloadInfo`) that `MechanismRegistry::Build` consumes.
///   2. `CreateStream(spec, rng)` — on the worker thread, with the
///      scenario's own `Rng(sim_seed)`. Only reads the caches, so concurrent
///      calls for different scenarios are safe.
///
/// Determinism: every prepared artifact is a pure function of the spec's
/// workload parameters and `workload_seed` (each gets a fresh
/// `Rng(workload_seed)`), and kernel scenarios re-derive their stream from
/// the scenario Rng itself — so a spec's outcome is bit-identical to the
/// hand-wired construction the dedicated benches used (DESIGN.md §4).

namespace pdm::scenario {

class StreamFactory {
 public:
  StreamFactory() = default;
  StreamFactory(const StreamFactory&) = delete;
  StreamFactory& operator=(const StreamFactory&) = delete;

  /// Serial phase (not thread-safe): ensures the spec's shared workload
  /// exists and reports the engine geometry. PDM_CHECKs Validate(spec).
  WorkloadInfo Prepare(const ScenarioSpec& spec);

  /// Worker phase (thread-safe w.r.t. other CreateStream calls): builds the
  /// per-scenario stream over the prepared workload. `rng` is the
  /// scenario's own generator; kernel streams consume a construction prefix
  /// from it, exactly like the legacy benches did.
  std::unique_ptr<QueryStream> CreateStream(const ScenarioSpec& spec, Rng* rng) const;

  /// Market noise σ a linear scenario's replay applies: the explicit
  /// `linear.noise_sigma` when ≥ 0, else the evaluation's default —
  /// σ = δ/(√(2·log 2)·log T) for uncertainty mechanisms, 0 otherwise.
  double LinearNoiseSigma(const ScenarioSpec& spec) const;

  /// Prepared-artifact accessors (nullptr before Prepare). Benches use them
  /// for offline-phase reporting (test MSE, FTRL log-loss, θ*).
  const LinearWorkload* FindLinearWorkload(const ScenarioSpec& spec) const;
  const AirbnbMarket* FindAirbnbMarket(const ScenarioSpec& spec) const;
  const AvazuMarket* FindAvazuMarket(const ScenarioSpec& spec) const;

 private:
  struct AvazuArtifacts {
    // The stream replays impressions straight out of the click log, so the
    // log must stay alive alongside the trained market.
    std::unique_ptr<AvazuLikeClickLog> click_log;
    AvazuMarket market;
  };

  std::string LinearKey(const ScenarioSpec& spec) const;
  std::string AirbnbKey(const ScenarioSpec& spec) const;
  std::string AvazuKey(const ScenarioSpec& spec) const;

  std::map<std::string, LinearWorkload> linear_cache_;
  std::map<std::string, AirbnbMarket> airbnb_cache_;
  std::map<std::string, AvazuArtifacts> avazu_cache_;
};

}  // namespace pdm::scenario

#endif  // PDM_SCENARIO_STREAM_FACTORY_H_
