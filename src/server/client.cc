#include "server/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace pdm::server {
namespace {

using pdm::broker::FeedbackRequest;
using pdm::broker::HandleRequest;
using pdm::broker::ProductHandle;
using pdm::broker::Quote;

void PutFeatures(WireWriter* w, std::span<const double> features) {
  w->PutU32(static_cast<uint32_t>(features.size()));
  for (double v : features) w->PutF64(v);
}

/// splitmix64 step: the backoff jitter stream.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Status Client::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  host_ = host;
  port_ = port;
  jitter_state_ = config_.jitter_seed;
  prev_backoff_ms_ = std::max(1, config_.backoff_base_ms);
  return ConnectTcp(host, port, &fd_);
}

void Client::Disconnect() {
  fd_.Reset();
  queued_.clear();
  pending_.clear();
}

Status Client::Reconnect() {
  if (host_.empty()) return Status::FailedPrecondition("client not connected");
  Disconnect();
  Status s = ConnectTcp(host_, port_, &fd_);
  if (!s.ok()) {
    // The dial failure is transient by assumption (the retry loops key on
    // Unavailable); the endpoint itself was validated by the first Connect.
    return Status::Unavailable(std::string("reconnect: ") +
                               std::string(s.message()));
  }
  ++reconnects_;
  return Status::Ok();
}

void Client::BackoffSleep() {
  // Decorrelated jitter: sleep = uniform(base, min(cap, 3 * previous)).
  // Independent clients desynchronize instead of thundering back in step.
  const int base = std::max(1, config_.backoff_base_ms);
  const int cap = std::max(base, config_.backoff_cap_ms);
  const int hi = std::max(base, std::min<int>(cap, prev_backoff_ms_ * 3));
  const int span = hi - base + 1;
  const int sleep_ms =
      base + static_cast<int>(NextRandom(&jitter_state_) %
                              static_cast<uint64_t>(span));
  prev_backoff_ms_ = sleep_ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

// ----------------------------------------------------------- pipelining

uint64_t Client::QueuePostPrice(ProductHandle handle, std::span<const double> features,
                                double reserve) {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kPostPrice, id);
  w.PutU32(handle.index);
  w.PutU32(handle.generation);
  w.PutF64(reserve);
  PutFeatures(&w, features);
  w.EndFrame(frame);
  return id;
}

uint64_t Client::QueueObserve(uint64_t ticket, bool accepted) {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kObserve, id);
  w.PutU64(ticket);
  w.PutU8(accepted ? 1 : 0);
  w.EndFrame(frame);
  return id;
}

uint64_t Client::QueuePing() {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kPing, id);
  w.EndFrame(frame);
  return id;
}

Status Client::Flush() {
  if (!fd_.valid()) return Status::FailedPrecondition("client not connected");
  size_t sent = 0;
  while (sent < queued_.size()) {
    ssize_t n = ::send(fd_.get(), queued_.data() + sent, queued_.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    int saved = errno;
    Disconnect();  // the stream position is unknown — poison the connection
    return Status::Unavailable(std::string("send: ") + std::strerror(saved));
  }
  queued_.clear();
  return Status::Ok();
}

Status Client::ReadFrame(std::string* payload) {
  const bool bounded = config_.deadline_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.deadline_ms);
  for (;;) {
    std::string_view view;
    size_t next;
    FrameResult r = NextFrame(pending_, 0, &view, &next);
    if (r == FrameResult::kMalformed) {
      Disconnect();
      return Status::FailedPrecondition("oversized response frame");
    }
    if (r == FrameResult::kFrame) {
      payload->assign(view);
      pending_.erase(0, next);
      return Status::Ok();
    }
    if (bounded) {
      // Bounded wait. On expiry the connection is dropped, not kept: the
      // response may still arrive later, and reading it against the *next*
      // request would hand the caller someone else's answer.
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) {
        Disconnect();
        return Status::DeadlineExceeded("response deadline exceeded");
      }
      pollfd p{fd_.get(), POLLIN, 0};
      int ready = ::poll(&p, 1, static_cast<int>(left));
      if (ready == 0) {
        Disconnect();
        return Status::DeadlineExceeded("response deadline exceeded");
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        int saved = errno;
        Disconnect();
        return Status::Unavailable(std::string("poll: ") + std::strerror(saved));
      }
    }
    char chunk[16 << 10];
    ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
    if (n > 0) {
      pending_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      Disconnect();
      return Status::Unavailable("connection closed by server");
    }
    if (errno == EINTR) continue;
    int saved = errno;
    Disconnect();
    return Status::Unavailable(std::string("recv: ") + std::strerror(saved));
  }
}

Status Client::ReadResponse(Response* out) {
  if (!fd_.valid()) return Status::FailedPrecondition("client not connected");
  std::string payload;
  Status s = ReadFrame(&payload);
  if (!s.ok()) return s;

  WireReader r(payload);
  uint8_t op_byte, code_byte;
  if (!r.GetU8(&op_byte) || !r.GetU64(&out->id) || !r.GetU8(&code_byte)) {
    return Status::FailedPrecondition("truncated response header");
  }
  out->op = static_cast<Opcode>(op_byte);
  StatusCode code = StatusCodeFromWire(code_byte);
  out->quotes.clear();
  out->codes.clear();

  auto decode_error = [] { return Status::FailedPrecondition("malformed response body"); };

  // Connection-level error frame (opcode 0, id 0): the server's last word
  // before it closes the connection — framing violation, idle reap. It does
  // not answer any request, so it surfaces on the transport channel (the
  // returned Status), not as an op outcome, and the connection is dropped.
  if (op_byte == 0) {
    std::string_view message;
    Disconnect();
    if (!r.GetString(&message)) return decode_error();
    return Status(code,
                  std::string("server error frame: ") + std::string(message));
  }

  // Batch ops always carry message + per-item results regardless of status.
  if (out->op == Opcode::kPostPrices) {
    std::string_view message;
    uint32_t count;
    if (!r.GetString(&message) || !r.GetU32(&count)) return decode_error();
    out->status = code == StatusCode::kOk ? Status::Ok()
                                          : Status(code, std::string(message));
    out->quotes.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint8_t flags, item_code;
      if (!r.GetU64(&out->quotes[i].ticket) || !r.GetF64(&out->quotes[i].price) ||
          !r.GetU8(&flags) || !r.GetU8(&item_code)) {
        return decode_error();
      }
      out->quotes[i].exploratory = (flags & kQuoteExploratory) != 0;
      out->quotes[i].certain_no_sale = (flags & kQuoteCertainNoSale) != 0;
      out->quotes[i].status = StatusCodeFromWire(item_code);
    }
    return Status::Ok();
  }
  if (out->op == Opcode::kObserves) {
    std::string_view message;
    uint32_t count;
    if (!r.GetString(&message) || !r.GetU32(&count)) return decode_error();
    out->status = code == StatusCode::kOk ? Status::Ok()
                                          : Status(code, std::string(message));
    out->codes.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint8_t item_code;
      if (!r.GetU8(&item_code)) return decode_error();
      out->codes[i] = StatusCodeFromWire(item_code);
    }
    return Status::Ok();
  }

  // Single ops: non-OK carries the message; OK carries the op body.
  if (code != StatusCode::kOk) {
    std::string_view message;
    if (!r.GetString(&message)) return decode_error();
    out->status = Status(code, std::string(message));
    return Status::Ok();
  }
  out->status = Status::Ok();
  switch (out->op) {
    case Opcode::kPing:
    case Opcode::kObserve:
      return r.AtEnd() ? Status::Ok() : decode_error();
    case Opcode::kGetMetrics: {
      std::string_view dump;
      if (!r.GetString(&dump) || !r.AtEnd()) return decode_error();
      Status decoded = metrics::DecodeMetricsDump(dump, &out->metrics);
      if (!decoded.ok()) return decoded;
      return Status::Ok();
    }
    case Opcode::kResolve:
      if (!r.GetU32(&out->handle.index) || !r.GetU32(&out->handle.generation)) {
        return decode_error();
      }
      return Status::Ok();
    case Opcode::kPostPrice: {
      uint8_t flags;
      if (!r.GetU64(&out->quote.ticket) || !r.GetF64(&out->quote.price) ||
          !r.GetU8(&flags)) {
        return decode_error();
      }
      out->quote.exploratory = (flags & kQuoteExploratory) != 0;
      out->quote.certain_no_sale = (flags & kQuoteCertainNoSale) != 0;
      out->quote.status = StatusCode::kOk;
      return Status::Ok();
    }
    case Opcode::kEstimateValue:
      if (!r.GetF64(&out->interval.lower) || !r.GetF64(&out->interval.upper)) {
        return decode_error();
      }
      return Status::Ok();
    default:
      return decode_error();
  }
}

// ----------------------------------------------------- synchronous calls

Status Client::Transact(bool idempotent, std::string_view frame, Response* resp) {
  // At-most-once for mutating ops: one send, transport failures surface as
  // Unavailable and the frame is never replayed (a lost PostPrice response
  // may have issued a ticket server-side). Idempotent ops retry transparently
  // — every retry reconnects, because any transport failure poisoned the
  // connection (the stream position is unknown).
  const int attempts = idempotent ? config_.max_retries + 1 : 1;
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      BackoffSleep();
      ++retries_;
    }
    if (!fd_.valid()) {
      if (host_.empty()) return Status::FailedPrecondition("client not connected");
      Status rc = Reconnect();
      if (!rc.ok()) {
        last = rc;
        continue;
      }
    }
    queued_.append(frame);
    Status s = Flush();
    if (s.ok()) s = ReadResponse(resp);
    if (s.ok()) return s;
    if (s.code() != StatusCode::kUnavailable) return s;  // deadline, protocol
    last = s;  // transport failure: the connection is already dropped
  }
  return last;
}

Status Client::Ping() {
  std::string frame;
  {
    WireWriter w(&frame);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kPing, NextId());
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/true, frame, &resp);
  if (!s.ok()) return s;
  return resp.status;
}

Status Client::Resolve(std::string_view product, ProductHandle* handle) {
  std::string frame;
  {
    WireWriter w(&frame);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kResolve, NextId());
    w.PutString(product);
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/true, frame, &resp);
  if (!s.ok()) return s;
  if (resp.status.ok() && handle != nullptr) *handle = resp.handle;
  return resp.status;
}

Status Client::PostPrice(ProductHandle handle, std::span<const double> features,
                         double reserve, Quote* quote) {
  std::string frame;
  {
    WireWriter w(&frame);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kPostPrice, NextId());
    w.PutU32(handle.index);
    w.PutU32(handle.generation);
    w.PutF64(reserve);
    PutFeatures(&w, features);
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/false, frame, &resp);
  if (!s.ok()) return s;
  if (quote != nullptr) {
    *quote = resp.quote;
    if (!resp.status.ok()) {
      quote->ticket = 0;
      quote->status = resp.status.code();
    }
  }
  return resp.status;
}

Status Client::Observe(uint64_t ticket, bool accepted) {
  std::string frame;
  {
    WireWriter w(&frame);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kObserve, NextId());
    w.PutU64(ticket);
    w.PutU8(accepted ? 1 : 0);
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/false, frame, &resp);
  if (!s.ok()) return s;
  return resp.status;
}

Status Client::GetMetrics(metrics::MetricsDump* out) {
  std::string frame;
  {
    WireWriter w(&frame);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kGetMetrics, NextId());
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/true, frame, &resp);
  if (!s.ok()) return s;
  if (resp.status.ok() && out != nullptr) *out = std::move(resp.metrics);
  return resp.status;
}

Status Client::EstimateValue(ProductHandle handle, std::span<const double> features,
                             ValueInterval* out) {
  std::string frame;
  {
    WireWriter w(&frame);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kEstimateValue, NextId());
    w.PutU32(handle.index);
    w.PutU32(handle.generation);
    PutFeatures(&w, features);
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/true, frame, &resp);
  if (!s.ok()) return s;
  if (resp.status.ok() && out != nullptr) *out = resp.interval;
  return resp.status;
}

Status Client::PostPrices(std::span<const HandleRequest> requests,
                          std::span<Quote> quotes) {
  if (requests.size() != quotes.size()) {
    return Status::InvalidArgument("requests/quotes size mismatch");
  }
  std::string frame_bytes;
  {
    WireWriter w(&frame_bytes);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kPostPrices, NextId());
    w.PutU32(static_cast<uint32_t>(requests.size()));
    for (const HandleRequest& req : requests) {
      w.PutU32(req.handle.index);
      w.PutU32(req.handle.generation);
      w.PutF64(req.reserve);
      PutFeatures(&w, req.features);
    }
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/false, frame_bytes, &resp);
  if (!s.ok()) return s;
  if (resp.quotes.size() == quotes.size()) {
    for (size_t i = 0; i < quotes.size(); ++i) quotes[i] = resp.quotes[i];
  }
  return resp.status;
}

Status Client::Observes(std::span<const FeedbackRequest> feedback,
                        std::span<StatusCode> codes) {
  if (!codes.empty() && codes.size() != feedback.size()) {
    return Status::InvalidArgument("feedback/codes size mismatch");
  }
  std::string frame_bytes;
  {
    WireWriter w(&frame_bytes);
    size_t f = w.BeginFrame();
    w.PutRequestHeader(Opcode::kObserves, NextId());
    w.PutU32(static_cast<uint32_t>(feedback.size()));
    for (const FeedbackRequest& fb : feedback) {
      w.PutU64(fb.ticket);
      w.PutU8(fb.accepted ? 1 : 0);
    }
    w.EndFrame(f);
  }
  Response resp;
  Status s = Transact(/*idempotent=*/false, frame_bytes, &resp);
  if (!s.ok()) return s;
  if (!codes.empty() && resp.codes.size() == codes.size()) {
    for (size_t i = 0; i < codes.size(); ++i) codes[i] = resp.codes[i];
  }
  return resp.status;
}

}  // namespace pdm::server
