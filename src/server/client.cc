#include "server/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pdm::server {
namespace {

using pdm::broker::FeedbackRequest;
using pdm::broker::HandleRequest;
using pdm::broker::ProductHandle;
using pdm::broker::Quote;

void PutFeatures(WireWriter* w, std::span<const double> features) {
  w->PutU32(static_cast<uint32_t>(features.size()));
  for (double v : features) w->PutF64(v);
}

}  // namespace

Status Client::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  return ConnectTcp(host, port, &fd_);
}

void Client::Disconnect() {
  fd_.Reset();
  queued_.clear();
  pending_.clear();
}

// ----------------------------------------------------------- pipelining

uint64_t Client::QueuePostPrice(ProductHandle handle, std::span<const double> features,
                                double reserve) {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kPostPrice, id);
  w.PutU32(handle.index);
  w.PutU32(handle.generation);
  w.PutF64(reserve);
  PutFeatures(&w, features);
  w.EndFrame(frame);
  return id;
}

uint64_t Client::QueueObserve(uint64_t ticket, bool accepted) {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kObserve, id);
  w.PutU64(ticket);
  w.PutU8(accepted ? 1 : 0);
  w.EndFrame(frame);
  return id;
}

uint64_t Client::QueuePing() {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kPing, id);
  w.EndFrame(frame);
  return id;
}

Status Client::Flush() {
  if (!fd_.valid()) return Status::FailedPrecondition("client not connected");
  size_t sent = 0;
  while (sent < queued_.size()) {
    ssize_t n = ::send(fd_.get(), queued_.data() + sent, queued_.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    queued_.erase(0, sent);
    return Status::FailedPrecondition(std::string("send: ") + std::strerror(errno));
  }
  queued_.clear();
  return Status::Ok();
}

Status Client::ReadFrame(std::string* payload) {
  for (;;) {
    std::string_view view;
    size_t next;
    FrameResult r = NextFrame(pending_, 0, &view, &next);
    if (r == FrameResult::kMalformed) {
      return Status::FailedPrecondition("oversized response frame");
    }
    if (r == FrameResult::kFrame) {
      payload->assign(view);
      pending_.erase(0, next);
      return Status::Ok();
    }
    char chunk[16 << 10];
    ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
    if (n > 0) {
      pending_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::FailedPrecondition("connection closed by server");
    if (errno == EINTR) continue;
    return Status::FailedPrecondition(std::string("recv: ") + std::strerror(errno));
  }
}

Status Client::ReadResponse(Response* out) {
  if (!fd_.valid()) return Status::FailedPrecondition("client not connected");
  std::string payload;
  Status s = ReadFrame(&payload);
  if (!s.ok()) return s;

  WireReader r(payload);
  uint8_t op_byte, code_byte;
  if (!r.GetU8(&op_byte) || !r.GetU64(&out->id) || !r.GetU8(&code_byte)) {
    return Status::FailedPrecondition("truncated response header");
  }
  out->op = static_cast<Opcode>(op_byte);
  StatusCode code = StatusCodeFromWire(code_byte);
  out->quotes.clear();
  out->codes.clear();

  auto decode_error = [] { return Status::FailedPrecondition("malformed response body"); };

  // Batch ops always carry message + per-item results regardless of status.
  if (out->op == Opcode::kPostPrices) {
    std::string_view message;
    uint32_t count;
    if (!r.GetString(&message) || !r.GetU32(&count)) return decode_error();
    out->status = code == StatusCode::kOk ? Status::Ok()
                                          : Status(code, std::string(message));
    out->quotes.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint8_t flags, item_code;
      if (!r.GetU64(&out->quotes[i].ticket) || !r.GetF64(&out->quotes[i].price) ||
          !r.GetU8(&flags) || !r.GetU8(&item_code)) {
        return decode_error();
      }
      out->quotes[i].exploratory = (flags & kQuoteExploratory) != 0;
      out->quotes[i].certain_no_sale = (flags & kQuoteCertainNoSale) != 0;
      out->quotes[i].status = StatusCodeFromWire(item_code);
    }
    return Status::Ok();
  }
  if (out->op == Opcode::kObserves) {
    std::string_view message;
    uint32_t count;
    if (!r.GetString(&message) || !r.GetU32(&count)) return decode_error();
    out->status = code == StatusCode::kOk ? Status::Ok()
                                          : Status(code, std::string(message));
    out->codes.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint8_t item_code;
      if (!r.GetU8(&item_code)) return decode_error();
      out->codes[i] = StatusCodeFromWire(item_code);
    }
    return Status::Ok();
  }

  // Single ops: non-OK carries the message; OK carries the op body.
  if (code != StatusCode::kOk) {
    std::string_view message;
    if (!r.GetString(&message)) return decode_error();
    out->status = Status(code, std::string(message));
    return Status::Ok();
  }
  out->status = Status::Ok();
  switch (out->op) {
    case Opcode::kPing:
    case Opcode::kObserve:
      return r.AtEnd() ? Status::Ok() : decode_error();
    case Opcode::kGetMetrics: {
      std::string_view dump;
      if (!r.GetString(&dump) || !r.AtEnd()) return decode_error();
      Status decoded = metrics::DecodeMetricsDump(dump, &out->metrics);
      if (!decoded.ok()) return decoded;
      return Status::Ok();
    }
    case Opcode::kResolve:
      if (!r.GetU32(&out->handle.index) || !r.GetU32(&out->handle.generation)) {
        return decode_error();
      }
      return Status::Ok();
    case Opcode::kPostPrice: {
      uint8_t flags;
      if (!r.GetU64(&out->quote.ticket) || !r.GetF64(&out->quote.price) ||
          !r.GetU8(&flags)) {
        return decode_error();
      }
      out->quote.exploratory = (flags & kQuoteExploratory) != 0;
      out->quote.certain_no_sale = (flags & kQuoteCertainNoSale) != 0;
      out->quote.status = StatusCode::kOk;
      return Status::Ok();
    }
    case Opcode::kEstimateValue:
      if (!r.GetF64(&out->interval.lower) || !r.GetF64(&out->interval.upper)) {
        return decode_error();
      }
      return Status::Ok();
    default:
      return decode_error();
  }
}

// ----------------------------------------------------- synchronous calls

Status Client::Ping() {
  QueuePing();
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  return resp.status;
}

Status Client::Resolve(std::string_view product, ProductHandle* handle) {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kResolve, id);
  w.PutString(product);
  w.EndFrame(frame);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status.ok() && handle != nullptr) *handle = resp.handle;
  return resp.status;
}

Status Client::PostPrice(ProductHandle handle, std::span<const double> features,
                         double reserve, Quote* quote) {
  QueuePostPrice(handle, features, reserve);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (quote != nullptr) {
    *quote = resp.quote;
    if (!resp.status.ok()) {
      quote->ticket = 0;
      quote->status = resp.status.code();
    }
  }
  return resp.status;
}

Status Client::Observe(uint64_t ticket, bool accepted) {
  QueueObserve(ticket, accepted);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  return resp.status;
}

Status Client::GetMetrics(metrics::MetricsDump* out) {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kGetMetrics, id);
  w.EndFrame(frame);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status.ok() && out != nullptr) *out = std::move(resp.metrics);
  return resp.status;
}

Status Client::EstimateValue(ProductHandle handle, std::span<const double> features,
                             ValueInterval* out) {
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kEstimateValue, id);
  w.PutU32(handle.index);
  w.PutU32(handle.generation);
  PutFeatures(&w, features);
  w.EndFrame(frame);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status.ok() && out != nullptr) *out = resp.interval;
  return resp.status;
}

Status Client::PostPrices(std::span<const HandleRequest> requests,
                          std::span<Quote> quotes) {
  if (requests.size() != quotes.size()) {
    return Status::InvalidArgument("requests/quotes size mismatch");
  }
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kPostPrices, id);
  w.PutU32(static_cast<uint32_t>(requests.size()));
  for (const HandleRequest& req : requests) {
    w.PutU32(req.handle.index);
    w.PutU32(req.handle.generation);
    w.PutF64(req.reserve);
    PutFeatures(&w, req.features);
  }
  w.EndFrame(frame);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.quotes.size() == quotes.size()) {
    for (size_t i = 0; i < quotes.size(); ++i) quotes[i] = resp.quotes[i];
  }
  return resp.status;
}

Status Client::Observes(std::span<const FeedbackRequest> feedback,
                        std::span<StatusCode> codes) {
  if (!codes.empty() && codes.size() != feedback.size()) {
    return Status::InvalidArgument("feedback/codes size mismatch");
  }
  uint64_t id = NextId();
  WireWriter w(&queued_);
  size_t frame = w.BeginFrame();
  w.PutRequestHeader(Opcode::kObserves, id);
  w.PutU32(static_cast<uint32_t>(feedback.size()));
  for (const FeedbackRequest& fb : feedback) {
    w.PutU64(fb.ticket);
    w.PutU8(fb.accepted ? 1 : 0);
  }
  w.EndFrame(frame);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (!codes.empty() && resp.codes.size() == codes.size()) {
    for (size_t i = 0; i < codes.size(); ++i) codes[i] = resp.codes[i];
  }
  return resp.status;
}

}  // namespace pdm::server
