#ifndef PDM_SERVER_CLIENT_H_
#define PDM_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broker/broker.h"
#include "common/status.h"
#include "metrics/metrics.h"
#include "server/net.h"
#include "server/wire.h"

/// \file
/// Blocking `pdm.wire.v1` client (DESIGN.md §10).
///
/// Two surfaces over one connection:
///
///  * Synchronous calls (`Resolve`, `PostPrice`, `Observe`, ...) mirror the
///    `Broker` method signatures one-to-one: send one frame, wait for its
///    response, reconstruct the `pdm::Status`. A scenario driven through
///    these calls is bit-identical to driving the broker in-process
///    (tests/server_test.cc).
///
///  * Pipelined calls (`QueuePostPrice`/`QueueObserve` + `Flush` +
///    `ReadResponse`) queue many frames before writing, letting the server
///    coalesce the run into batched broker calls; `ReadResponse` decodes
///    responses in server order (which is request order). The load
///    generator and the coalescing tests live on this surface.
///
/// A `Client` is single-threaded by contract — one connection, one request
/// stream. Concurrency is modeled as one Client per thread (the server
/// multiplexes).
///
/// Resilience (DESIGN.md §14): a `ClientConfig` adds per-call deadlines
/// (bounded response waits), transparent reconnect with decorrelated-jitter
/// backoff, and automatic retry of *idempotent* calls (Ping, Resolve,
/// EstimateValue, GetMetrics) on transient transport failures. Mutating
/// calls (PostPrice, Observe, and the batch ops) are at-most-once: a
/// transport failure surfaces as `Unavailable` and is never resent — the
/// caller cannot know whether the broker executed the request, so replaying
/// it could double-issue a ticket or double-apply feedback.

namespace pdm::server {

/// Knobs for deadlines, retries, and reconnect backoff. The defaults are
/// the pre-§14 behavior: block forever, never retry.
struct ClientConfig {
  /// Per-call bound on each response wait, enforced with poll() before
  /// every read. On expiry the call returns DeadlineExceeded and the
  /// connection is dropped (the stream is desynced — a late response would
  /// be mis-matched to the next request). 0: wait forever.
  int deadline_ms = 0;
  /// Extra attempts for idempotent calls after a transient (`Unavailable`)
  /// transport failure; each retry reconnects first. 0: no retries.
  int max_retries = 0;
  /// Decorrelated-jitter backoff between retry attempts:
  /// sleep = uniform(base, min(cap, 3 * previous_sleep)).
  int backoff_base_ms = 10;
  int backoff_cap_ms = 2000;
  /// Seed for the backoff jitter stream (deterministic tests).
  uint64_t jitter_seed = 0x853c49e6748fea9bULL;
};

/// One decoded response frame (union-style: the fields that matter depend
/// on `op`; `status` is always meaningful).
struct Response {
  Opcode op = Opcode::kPing;
  uint64_t id = 0;
  Status status;
  broker::Quote quote;                 ///< kPostPrice
  broker::ProductHandle handle;        ///< kResolve
  ValueInterval interval;              ///< kEstimateValue
  std::vector<broker::Quote> quotes;   ///< kPostPrices
  std::vector<StatusCode> codes;       ///< kObserves
  metrics::MetricsDump metrics;        ///< kGetMetrics
};

class Client {
 public:
  Client() = default;
  explicit Client(const ClientConfig& config) : config_(config) {}
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `host:port` (TCP_NODELAY). Errors: FailedPrecondition.
  /// The endpoint is remembered for `Reconnect`.
  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_.valid(); }

  /// Drops the current connection (discarding queued and pending bytes) and
  /// dials the endpoint from the last `Connect`. Errors: FailedPrecondition
  /// when `Connect` was never called, Unavailable when the dial fails.
  Status Reconnect();

  /// Idempotent-call retries performed (each preceded by a backoff sleep).
  int64_t retries() const { return retries_; }
  /// Successful re-dials, both explicit and automatic.
  int64_t reconnects() const { return reconnects_; }

  // ------------------------------------------------- synchronous calls

  /// Round-trip liveness probe.
  Status Ping();

  Status Resolve(std::string_view product, broker::ProductHandle* handle);
  Status PostPrice(broker::ProductHandle handle, std::span<const double> features,
                   double reserve, broker::Quote* quote);
  Status Observe(uint64_t ticket, bool accepted);
  Status EstimateValue(broker::ProductHandle handle, std::span<const double> features,
                       ValueInterval* out);

  /// Fetches the server's metric registry as a decoded `pdm.metrics.v1`
  /// dump — the wire-native alternative to scraping the HTTP metrics port.
  Status GetMetrics(metrics::MetricsDump* out);

  /// Wire batch ops (one frame each; mirror the Broker batch semantics:
  /// per-item codes plus first-error Status).
  Status PostPrices(std::span<const broker::HandleRequest> requests,
                    std::span<broker::Quote> quotes);
  Status Observes(std::span<const broker::FeedbackRequest> feedback,
                  std::span<StatusCode> codes = {});

  // -------------------------------------------------- pipelined surface

  /// Queues one request frame without writing; returns its request id.
  uint64_t QueuePostPrice(broker::ProductHandle handle,
                          std::span<const double> features, double reserve);
  uint64_t QueueObserve(uint64_t ticket, bool accepted);
  uint64_t QueuePing();

  /// Writes every queued frame to the socket (one send stream — the server
  /// sees the whole run at once and can coalesce it).
  Status Flush();

  /// Blocking-reads and decodes the next response frame. Responses arrive
  /// in request order. `out->status` carries the op's outcome; the returned
  /// Status reports transport/decode failures only.
  Status ReadResponse(Response* out);

 private:
  uint64_t NextId() { return next_id_++; }
  /// Reads until `pending_` holds one complete frame; yields its payload.
  /// Honors `config_.deadline_ms`; transport failures poison the connection.
  Status ReadFrame(std::string* payload);
  /// One request/response exchange for the synchronous surface. Reconnects
  /// a dropped connection before sending; when `idempotent`, retries
  /// Unavailable transport failures up to `config_.max_retries` times with
  /// backoff. Non-idempotent frames are sent at most once.
  Status Transact(bool idempotent, std::string_view frame, Response* resp);
  /// Sleeps the next decorrelated-jitter backoff interval.
  void BackoffSleep();

  ClientConfig config_;
  UniqueFd fd_;
  std::string host_;  ///< endpoint from the last Connect ("" = never dialed)
  uint16_t port_ = 0;
  uint64_t next_id_ = 1;
  std::string queued_;   ///< frames queued and not yet written
  std::string pending_;  ///< bytes read and not yet decoded
  uint64_t jitter_state_ = 0;
  int prev_backoff_ms_ = 0;
  int64_t retries_ = 0;
  int64_t reconnects_ = 0;
};

}  // namespace pdm::server

#endif  // PDM_SERVER_CLIENT_H_
