#ifndef PDM_SERVER_CLIENT_H_
#define PDM_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broker/broker.h"
#include "common/status.h"
#include "metrics/metrics.h"
#include "server/net.h"
#include "server/wire.h"

/// \file
/// Blocking `pdm.wire.v1` client (DESIGN.md §10).
///
/// Two surfaces over one connection:
///
///  * Synchronous calls (`Resolve`, `PostPrice`, `Observe`, ...) mirror the
///    `Broker` method signatures one-to-one: send one frame, wait for its
///    response, reconstruct the `pdm::Status`. A scenario driven through
///    these calls is bit-identical to driving the broker in-process
///    (tests/server_test.cc).
///
///  * Pipelined calls (`QueuePostPrice`/`QueueObserve` + `Flush` +
///    `ReadResponse`) queue many frames before writing, letting the server
///    coalesce the run into batched broker calls; `ReadResponse` decodes
///    responses in server order (which is request order). The load
///    generator and the coalescing tests live on this surface.
///
/// A `Client` is single-threaded by contract — one connection, one request
/// stream. Concurrency is modeled as one Client per thread (the server
/// multiplexes).

namespace pdm::server {

/// One decoded response frame (union-style: the fields that matter depend
/// on `op`; `status` is always meaningful).
struct Response {
  Opcode op = Opcode::kPing;
  uint64_t id = 0;
  Status status;
  broker::Quote quote;                 ///< kPostPrice
  broker::ProductHandle handle;        ///< kResolve
  ValueInterval interval;              ///< kEstimateValue
  std::vector<broker::Quote> quotes;   ///< kPostPrices
  std::vector<StatusCode> codes;       ///< kObserves
  metrics::MetricsDump metrics;        ///< kGetMetrics
};

class Client {
 public:
  Client() = default;
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `host:port` (TCP_NODELAY). Errors: FailedPrecondition.
  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_.valid(); }

  // ------------------------------------------------- synchronous calls

  /// Round-trip liveness probe.
  Status Ping();

  Status Resolve(std::string_view product, broker::ProductHandle* handle);
  Status PostPrice(broker::ProductHandle handle, std::span<const double> features,
                   double reserve, broker::Quote* quote);
  Status Observe(uint64_t ticket, bool accepted);
  Status EstimateValue(broker::ProductHandle handle, std::span<const double> features,
                       ValueInterval* out);

  /// Fetches the server's metric registry as a decoded `pdm.metrics.v1`
  /// dump — the wire-native alternative to scraping the HTTP metrics port.
  Status GetMetrics(metrics::MetricsDump* out);

  /// Wire batch ops (one frame each; mirror the Broker batch semantics:
  /// per-item codes plus first-error Status).
  Status PostPrices(std::span<const broker::HandleRequest> requests,
                    std::span<broker::Quote> quotes);
  Status Observes(std::span<const broker::FeedbackRequest> feedback,
                  std::span<StatusCode> codes = {});

  // -------------------------------------------------- pipelined surface

  /// Queues one request frame without writing; returns its request id.
  uint64_t QueuePostPrice(broker::ProductHandle handle,
                          std::span<const double> features, double reserve);
  uint64_t QueueObserve(uint64_t ticket, bool accepted);
  uint64_t QueuePing();

  /// Writes every queued frame to the socket (one send stream — the server
  /// sees the whole run at once and can coalesce it).
  Status Flush();

  /// Blocking-reads and decodes the next response frame. Responses arrive
  /// in request order. `out->status` carries the op's outcome; the returned
  /// Status reports transport/decode failures only.
  Status ReadResponse(Response* out);

 private:
  uint64_t NextId() { return next_id_++; }
  /// Reads until `pending_` holds one complete frame; yields its payload.
  Status ReadFrame(std::string* payload);

  UniqueFd fd_;
  uint64_t next_id_ = 1;
  std::string queued_;   ///< frames queued and not yet written
  std::string pending_;  ///< bytes read and not yet decoded
};

}  // namespace pdm::server

#endif  // PDM_SERVER_CLIENT_H_
