#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pdm::server {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Parses a dotted-quad host into `*addr`. Hostname resolution is
/// intentionally out of scope (no getaddrinfo: the serving layer binds
/// loopback/interface addresses given as literals).
bool ParseHost(const std::string& host, in_addr* addr) {
  return inet_pton(AF_INET, host.c_str(), addr) == 1;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status ListenTcp(const std::string& host, uint16_t port, UniqueFd* out,
                 uint16_t* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ParseHost(host, &addr.sin_addr)) {
    return Status::InvalidArgument("listen: not an IPv4 literal: '" + host + "'");
  }

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::FailedPrecondition(Errno("socket"));

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return Status::FailedPrecondition(Errno("bind"));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    return Status::FailedPrecondition(Errno("listen"));
  }

  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return Status::FailedPrecondition(Errno("getsockname"));
    }
    *bound_port = ntohs(bound.sin_port);
  }

  *out = std::move(fd);
  return Status::Ok();
}

Status ConnectTcp(const std::string& host, uint16_t port, UniqueFd* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ParseHost(host, &addr.sin_addr)) {
    return Status::InvalidArgument("connect: not an IPv4 literal: '" + host + "'");
  }

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::FailedPrecondition(Errno("socket"));

  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return Status::FailedPrecondition(Errno("connect"));
  }
  SetNoDelay(fd.get());

  *out = std::move(fd);
  return Status::Ok();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::FailedPrecondition(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace pdm::server
