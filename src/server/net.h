#ifndef PDM_SERVER_NET_H_
#define PDM_SERVER_NET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

/// \file
/// Thin POSIX socket helpers shared by TcpServer and Client: an owning fd
/// wrapper plus listen/connect/option plumbing, so the event loop and the
/// client read as protocol logic rather than sockaddr bookkeeping. IPv4
/// only — the serving layer targets loopback and LAN deployments
/// (DESIGN.md §10); nothing here is Windows-portable by design.

namespace pdm::server {

/// Owning file descriptor (closes on destruction, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (port 0 picks an ephemeral port; the
/// bound port is written to `*bound_port`). SO_REUSEADDR is set so restarts
/// do not trip over TIME_WAIT.
Status ListenTcp(const std::string& host, uint16_t port, UniqueFd* out,
                 uint16_t* bound_port);

/// Blocking connect to `host:port` with TCP_NODELAY set (the protocol is
/// request/response; Nagle would serialize pipelined round trips).
Status ConnectTcp(const std::string& host, uint16_t port, UniqueFd* out);

/// O_NONBLOCK toggle for event-loop fds.
Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm on an accepted/connected socket.
void SetNoDelay(int fd);

}  // namespace pdm::server

#endif  // PDM_SERVER_NET_H_
