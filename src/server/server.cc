#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>

#include "common/fault.h"
#include "common/status.h"

namespace pdm::server {
namespace {

using pdm::broker::FeedbackRequest;
using pdm::broker::HandleRequest;
using pdm::broker::ProductHandle;
using pdm::broker::Quote;

/// Fixed request/response header: u8 opcode + u64 request id.
constexpr size_t kHeaderBytes = 1 + 8;

/// Compact the consumed prefix of a read buffer once it crosses this size
/// (compacting on every frame would make buffered pipelining O(n^2)).
constexpr size_t kCompactThreshold = size_t{64} << 10;

uint8_t QuoteFlags(const Quote& q) {
  uint8_t flags = 0;
  if (q.exploratory) flags |= kQuoteExploratory;
  if (q.certain_no_sale) flags |= kQuoteCertainNoSale;
  return flags;
}

/// Single-op error response: header + message string.
void WriteError(std::string* out, Opcode op, uint64_t id, StatusCode code,
                std::string_view message) {
  WireWriter w(out);
  size_t frame = w.BeginFrame();
  w.PutResponseHeader(op, id, code);
  w.PutString(message);
  w.EndFrame(frame);
}

/// Single kPostPrice OK response.
void WriteQuote(std::string* out, uint64_t id, const Quote& q) {
  WireWriter w(out);
  size_t frame = w.BeginFrame();
  w.PutResponseHeader(Opcode::kPostPrice, id, StatusCode::kOk);
  w.PutU64(q.ticket);
  w.PutF64(q.price);
  w.PutU8(QuoteFlags(q));
  w.EndFrame(frame);
}

/// Decoded single price request (the coalescable op). `features` indexes
/// into the caller's scratch, resolved to spans once the scratch is final.
struct PriceFrame {
  uint64_t id = 0;
  ProductHandle handle;
  double reserve = 0.0;
  size_t features_at = 0;
  size_t features_len = 0;
};

/// Decodes the body of one kPostPrice request, appending features to
/// `*scratch`. False on a malformed body.
bool DecodePriceBody(WireReader* r, std::vector<double>* scratch, PriceFrame* out) {
  uint32_t n;
  if (!r->GetU32(&out->handle.index)) return false;
  if (!r->GetU32(&out->handle.generation)) return false;
  if (!r->GetF64(&out->reserve)) return false;
  if (!r->GetU32(&n)) return false;
  if (r->remaining() < size_t{n} * 8) return false;
  out->features_at = scratch->size();
  out->features_len = n;
  for (uint32_t i = 0; i < n; ++i) {
    double v;
    r->GetF64(&v);
    scratch->push_back(v);
  }
  return r->AtEnd();
}

struct ObserveFrame {
  uint64_t id = 0;
  FeedbackRequest feedback;
};

bool DecodeObserveBody(WireReader* r, ObserveFrame* out) {
  uint8_t accepted;
  if (!r->GetU64(&out->feedback.ticket)) return false;
  if (!r->GetU8(&accepted)) return false;
  out->feedback.accepted = accepted != 0;
  return r->AtEnd();
}

}  // namespace

/// One accepted connection: nonblocking socket plus buffered frame I/O.
struct TcpServer::Connection {
  UniqueFd fd;
  std::string in;
  size_t in_offset = 0;  ///< consumed prefix of `in`
  std::string out;
  size_t out_offset = 0;  ///< flushed prefix of `out`
  bool peer_closed = false;
  bool dead = false;
  /// Accepted on the metrics port: speaks HTTP, not pdm.wire.v1.
  bool scrape = false;
  /// Response fully buffered; close once the write buffer drains. Also set
  /// after a framing violation: the final error frame is the last thing the
  /// peer gets, and further input is discarded rather than parsed.
  bool close_after_flush = false;
  /// Last inbound traffic (or accept), for the idle reaper (§14).
  std::chrono::steady_clock::time_point last_activity;

  bool output_pending() const { return out_offset < out.size(); }
};

TcpServer::TcpServer(broker::Broker* broker, const ServerConfig& config)
    : broker_(broker), config_(config) {
  registry_ = config_.metrics;
  if (registry_ == nullptr) {
    // Private fallback: stats() and GetMetrics must always read real cells,
    // so the server never wires against sinks even when the process didn't
    // provide a registry.
    own_registry_ = std::make_unique<metrics::MetricRegistry>();
    registry_ = own_registry_.get();
  }
  metrics::MetricRegistry& gw = *registry_;
  metrics_.connections = gw.GetCounter("pdm_server_connections_total",
                                       "pdm.wire.v1 connections accepted.");
  static constexpr const char* kOpcodeNames[] = {
      "invalid",     "resolve",  "post_price", "observe", "estimate_value",
      "post_prices", "observes", "ping",       "get_metrics"};
  static_assert(std::size(kOpcodeNames) ==
                static_cast<size_t>(Opcode::kGetMetrics) + 1);
  for (size_t op = 0; op < std::size(kOpcodeNames); ++op) {
    metrics_.frames_by_op[op] =
        gw.GetCounter("pdm_server_frames_total", "Request frames served, by opcode.",
                      {{"opcode", kOpcodeNames[op]}});
  }
  metrics_.frames_coalesced = gw.GetCounter(
      "pdm_server_frames_coalesced_total",
      "Frames answered through a coalesced PostPrices/Observes run.");
  metrics_.coalesced_runs =
      gw.GetCounter("pdm_server_coalesced_runs_total",
                    "Pipelined runs coalesced into one batched broker call.");
  metrics_.protocol_errors = gw.GetCounter(
      "pdm_server_protocol_errors_total",
      "Connections dropped for framing violations.");
  metrics_.shed_frames = gw.GetCounter(
      "pdm_server_shed_frames_total",
      "Frames answered with ResourceExhausted by overload shedding.");
  metrics_.idle_reaped = gw.GetCounter(
      "pdm_server_idle_reaped_total",
      "Connections closed by the idle reaper.");
  metrics_.active_connections = gw.GetGauge(
      "pdm_server_active_connections",
      "Connections currently held by the event loop (wire and scrape).");
  metrics_.request_ns = gw.GetHistogram(
      "pdm_server_request_ns",
      "Serving latency per run: decode, broker call(s), response encode "
      "(nanoseconds; one sample per run, coalesced or single).");
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  Status s = ListenTcp(config_.host, config_.port, &listen_fd_, &port_);
  if (!s.ok()) return s;
  s = SetNonBlocking(listen_fd_.get());
  if (!s.ok()) return s;

  if (config_.metrics_port >= 0) {
    s = ListenTcp(config_.host, static_cast<uint16_t>(config_.metrics_port),
                  &metrics_listen_fd_, &metrics_port_);
    if (!s.ok()) return s;
    s = SetNonBlocking(metrics_listen_fd_.get());
    if (!s.ok()) return s;
  }

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    return Status::FailedPrecondition(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_ = UniqueFd(pipefd[0]);
  wake_write_ = UniqueFd(pipefd[1]);
  (void)SetNonBlocking(wake_read_.get());
  (void)SetNonBlocking(wake_write_.get());

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread(&TcpServer::EventLoop, this);
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    char byte = 1;
    if (wake_write_.valid()) {
      [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
    }
  }
  if (loop_.joinable()) loop_.join();
  running_.store(false, std::memory_order_release);
}

ServerStats TcpServer::stats() const {
  // Reads the same registry cells the scrape endpoint renders — there is no
  // second set of counters to drift out of sync.
  ServerStats s;
  s.connections_accepted = static_cast<int64_t>(metrics_.connections.value());
  uint64_t frames = 0;
  for (const metrics::Counter& c : metrics_.frames_by_op) frames += c.value();
  s.frames_served = static_cast<int64_t>(frames);
  s.frames_coalesced = static_cast<int64_t>(metrics_.frames_coalesced.value());
  s.coalesced_runs = static_cast<int64_t>(metrics_.coalesced_runs.value());
  s.protocol_errors = static_cast<int64_t>(metrics_.protocol_errors.value());
  s.shed_frames = static_cast<int64_t>(metrics_.shed_frames.value());
  s.idle_reaped = static_cast<int64_t>(metrics_.idle_reaped.value());
  return s;
}

void TcpServer::EventLoop() {
  std::vector<pollfd> fds;
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline{};

  for (;;) {
    if (!draining && stop_.load(std::memory_order_acquire)) {
      // Drain entry: stop accepting, serve everything already buffered, and
      // give slow peers a bounded window to take their responses.
      draining = true;
      listen_fd_.Reset();
      metrics_listen_fd_.Reset();
      for (auto& conn : connections_) {
        if (conn->dead) continue;
        if (conn->scrape) {
          ServeScrape(conn.get());
          if (!FlushWrites(conn.get())) conn->dead = true;
          continue;
        }
        if (!ServeBufferedFrames(conn.get()) || !FlushWrites(conn.get())) {
          conn->dead = true;
        }
      }
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(config_.drain_timeout_ms);
    }

    // Idle reaper (§14): a wire connection silent past the timeout gets a
    // best-effort error frame, one flush attempt, and dies. Scrapes are
    // exempt (one-shot by construction). Connections already scheduled to
    // close (close_after_flush) are NOT exempt: a peer that triggered a
    // framing violation and then never reads its socket would otherwise pin
    // its fd, buffers, and poll slot forever — silent past the limit, it
    // dies with the error frame undrained.
    if (!draining && config_.idle_timeout_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
      for (auto& conn : connections_) {
        if (conn->dead || conn->scrape) continue;
        if (now - conn->last_activity < limit) continue;
        if (!conn->close_after_flush) {
          WriteError(&conn->out, static_cast<Opcode>(0), 0,
                     StatusCode::kUnavailable, "connection closed: idle timeout");
          (void)FlushWrites(conn.get());
        }
        conn->dead = true;
        metrics_.idle_reaped.Increment();
      }
    }

    // Reap connections that are done: dead, fully flushed while the peer
    // (or the drain) has no more input for us, or an answered scrape.
    const size_t conns_before_reap = connections_.size();
    std::erase_if(connections_, [draining](const std::unique_ptr<Connection>& c) {
      return c->dead || ((c->peer_closed || draining) && !c->output_pending()) ||
             (c->close_after_flush && !c->output_pending());
    });
    metrics_.active_connections.Sub(
        static_cast<double>(conns_before_reap - connections_.size()));

    if (draining &&
        (connections_.empty() || std::chrono::steady_clock::now() >= drain_deadline)) {
      break;
    }

    fds.clear();
    if (!draining) {
      fds.push_back({listen_fd_.get(), POLLIN, 0});
      if (metrics_listen_fd_.valid()) {
        fds.push_back({metrics_listen_fd_.get(), POLLIN, 0});
      }
    }
    fds.push_back({wake_read_.get(), POLLIN, 0});
    const size_t first_conn = fds.size();
    const size_t num_conns = connections_.size();
    for (size_t i = 0; i < num_conns; ++i) {
      Connection* conn = connections_[i].get();
      // A violated connection is write-only: its final error frame drains,
      // further input is never parsed.
      short events = (draining || conn->close_after_flush) ? 0 : POLLIN;
      if (conn->output_pending()) events |= POLLOUT;
      fds.push_back({conn->fd.get(), events, 0});
    }

    int timeout_ms = -1;
    if (!draining && config_.idle_timeout_ms > 0) {
      // Coarse tick so idle connections are reaped even when no fd fires.
      timeout_ms = config_.idle_timeout_ms;
    }
    if (draining) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          drain_deadline - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(std::max<int64_t>(0, left.count()));
    }
    int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poll failure is unrecoverable for the loop
    }

    size_t at = 0;
    if (!draining) {
      if (fds[at].revents & POLLIN) AcceptNew(listen_fd_.get(), /*scrape=*/false);
      ++at;
      if (metrics_listen_fd_.valid()) {
        if (fds[at].revents & POLLIN) {
          AcceptNew(metrics_listen_fd_.get(), /*scrape=*/true);
        }
        ++at;
      }
    }
    if (fds[at].revents & POLLIN) {
      char sink[64];
      while (::read(wake_read_.get(), sink, sizeof sink) > 0) {
      }
    }

    for (size_t i = 0; i < num_conns; ++i) {
      Connection* conn = connections_[i].get();
      short revents = fds[first_conn + i].revents;
      if (revents == 0 || conn->dead) continue;

      if (revents & POLLOUT) {
        if (!FlushWrites(conn)) {
          conn->dead = true;
          continue;
        }
      }
      if (!draining && !conn->close_after_flush &&
          (revents & (POLLIN | POLLHUP | POLLERR))) {
        if (fault::ShouldFail("server.recv_stall")) continue;  // starve a round
        // Read everything available, then serve the buffered frames.
        char chunk[16 << 10];
        for (;;) {
          ssize_t n = ::recv(conn->fd.get(), chunk, sizeof chunk, 0);
          if (n > 0) {
            if (fault::ShouldFail("server.recv_reset")) {
              conn->dead = true;  // simulated mid-frame ECONNRESET
              break;
            }
            conn->in.append(chunk, static_cast<size_t>(n));
            conn->last_activity = std::chrono::steady_clock::now();
            continue;
          }
          if (n == 0) {
            conn->peer_closed = true;  // half-close: still flush responses
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          conn->dead = true;
          break;
        }
        if (conn->dead) continue;
        if (conn->scrape) {
          ServeScrape(conn);
          if (!FlushWrites(conn)) conn->dead = true;
          continue;
        }
        if (!ServeBufferedFrames(conn) || !FlushWrites(conn)) conn->dead = true;
      }
    }
  }

  metrics_.active_connections.Sub(static_cast<double>(connections_.size()));
  connections_.clear();
  listen_fd_.Reset();
  metrics_listen_fd_.Reset();
}

void TcpServer::AcceptNew(int listen_fd, bool scrape) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors: retry on the next poll round
    }
    UniqueFd owned(fd);
    if (fault::ShouldFail("server.accept")) continue;  // drops `owned`
    if (!SetNonBlocking(fd).ok()) continue;  // drops `owned`
    SetNoDelay(fd);
    if (config_.so_sndbuf > 0) {
      int v = config_.so_sndbuf;
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof v);
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(owned);
    conn->scrape = scrape;
    conn->last_activity = std::chrono::steady_clock::now();
    connections_.push_back(std::move(conn));
    metrics_.active_connections.Add(1.0);
    if (!scrape) metrics_.connections.Increment();
  }
}

void TcpServer::ServeScrape(Connection* conn) {
  if (conn->close_after_flush) return;  // already answered
  // Answer once the request header is complete (blank line). The request
  // line is ignored — every path serves the full registry, which is all a
  // Prometheus scraper (or curl) needs.
  if (conn->in.find("\r\n\r\n") == std::string::npos &&
      conn->in.find("\n\n") == std::string::npos) {
    if (conn->peer_closed) conn->dead = true;  // header never completed
    return;
  }
  std::string body;
  registry_->RenderPrometheus(&body);
  conn->out += "HTTP/1.0 200 OK\r\n";
  conn->out += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  conn->out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  conn->out += "Connection: close\r\n\r\n";
  conn->out += body;
  conn->close_after_flush = true;
}

bool TcpServer::ServeBufferedFrames(Connection* conn) {
  // Framing violations end the connection, but with a courtesy: the peer
  // gets a final connection-level error frame (opcode 0, id 0 — no request
  // frame can legitimately carry opcode 0) before close, so a desynced
  // client sees *why* instead of a silent reset. Input past the violation
  // is garbage by definition and is discarded unparsed.
  auto violated = [&](std::string_view reason) {
    metrics_.protocol_errors.Increment();
    WriteError(&conn->out, static_cast<Opcode>(0), 0,
               StatusCode::kInvalidArgument, reason);
    conn->close_after_flush = true;
    conn->in.clear();
    conn->in_offset = 0;
    return true;  // the buffered error frame still needs a flush
  };

  // Split out every complete frame first: coalescing needs to see the whole
  // pipelined run, not one frame at a time.
  std::vector<std::string_view> frames;
  size_t offset = conn->in_offset;
  for (;;) {
    std::string_view payload;
    size_t next;
    FrameResult r = NextFrame(conn->in, offset, &payload, &next);
    if (r == FrameResult::kMalformed) {
      return violated("framing violation: oversized frame length");
    }
    if (r == FrameResult::kNeedMore) break;
    frames.push_back(payload);
    offset = next;
  }

  size_t at = 0;
  while (at < frames.size()) {
    // A frame too short for the fixed header cannot be answered (there is
    // no id to echo) — that is a framing violation.
    if (frames[at].size() < kHeaderBytes) {
      return violated("framing violation: frame shorter than request header");
    }
    // Overload shedding (§14): past either cap, answer ResourceExhausted
    // without touching the broker. The error frame is a few dozen bytes, so
    // shedding shrinks the backlog even as it answers every frame.
    const bool over_backlog =
        config_.max_buffered_bytes != 0 &&
        conn->out.size() - conn->out_offset > config_.max_buffered_bytes;
    const bool over_inflight =
        config_.max_inflight_frames != 0 && at >= config_.max_inflight_frames;
    if (over_backlog || over_inflight) {
      WireReader r(frames[at]);
      uint8_t op = 0;
      uint64_t id = 0;
      r.GetU8(&op);
      r.GetU64(&id);
      WriteError(&conn->out, static_cast<Opcode>(op), id,
                 StatusCode::kResourceExhausted,
                 over_backlog ? "server overloaded: response backlog over cap"
                              : "server overloaded: pipelined frames over cap");
      metrics_.shed_frames.Increment();
      ++at;
      continue;
    }
    const auto run_start = std::chrono::steady_clock::now();
    at += ServeRun(conn, frames, at);
    metrics_.request_ns.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - run_start)
            .count()));
  }

  conn->in_offset = offset;
  if (conn->in_offset == conn->in.size()) {
    conn->in.clear();
    conn->in_offset = 0;
  } else if (conn->in_offset > kCompactThreshold) {
    conn->in.erase(0, conn->in_offset);
    conn->in_offset = 0;
  }
  return true;
}

size_t TcpServer::ServeRun(Connection* conn, const std::vector<std::string_view>& frames,
                           size_t at) {
  const uint8_t op = static_cast<uint8_t>(frames[at][0]);

  // Coalescing: a pipelined run of single-op kPostPrice (kObserve) frames
  // becomes one batched broker call — one session-lock acquisition per run.
  // A frame of another opcode, a short header, or a malformed body ends the
  // run; the run is only taken when at least two frames qualify.
  if (op == static_cast<uint8_t>(Opcode::kPostPrice)) {
    std::vector<double> scratch;
    std::vector<PriceFrame> run;
    size_t taken = at;
    while (taken < frames.size() && frames[taken].size() >= kHeaderBytes &&
           static_cast<uint8_t>(frames[taken][0]) == op) {
      WireReader r(frames[taken]);
      uint8_t opcode;
      PriceFrame pf;
      r.GetU8(&opcode);
      r.GetU64(&pf.id);
      if (!DecodePriceBody(&r, &scratch, &pf)) break;
      run.push_back(pf);
      ++taken;
    }
    if (run.size() >= 2) {
      std::vector<HandleRequest> requests(run.size());
      std::vector<Quote> quotes(run.size());
      for (size_t i = 0; i < run.size(); ++i) {
        requests[i].handle = run[i].handle;
        requests[i].reserve = run[i].reserve;
        requests[i].features = std::span<const double>(
            scratch.data() + run[i].features_at, run[i].features_len);
      }
      (void)broker_->PostPrices(requests, quotes);
      for (size_t i = 0; i < run.size(); ++i) {
        if (quotes[i].status == StatusCode::kOk) {
          WriteQuote(&conn->out, run[i].id, quotes[i]);
        } else {
          WriteError(&conn->out, Opcode::kPostPrice, run[i].id, quotes[i].status,
                     std::string("batched request failed: ") +
                         StatusCodeName(quotes[i].status));
        }
      }
      metrics_.frames_by_op[op].Add(run.size());
      metrics_.frames_coalesced.Add(run.size());
      metrics_.coalesced_runs.Increment();
      return run.size();
    }
  } else if (op == static_cast<uint8_t>(Opcode::kObserve)) {
    std::vector<ObserveFrame> run;
    size_t taken = at;
    while (taken < frames.size() && frames[taken].size() >= kHeaderBytes &&
           static_cast<uint8_t>(frames[taken][0]) == op) {
      WireReader r(frames[taken]);
      uint8_t opcode;
      ObserveFrame of;
      r.GetU8(&opcode);
      r.GetU64(&of.id);
      if (!DecodeObserveBody(&r, &of)) break;
      run.push_back(of);
      ++taken;
    }
    if (run.size() >= 2) {
      std::vector<FeedbackRequest> feedback(run.size());
      std::vector<StatusCode> codes(run.size());
      for (size_t i = 0; i < run.size(); ++i) feedback[i] = run[i].feedback;
      (void)broker_->Observes(feedback, codes);
      for (size_t i = 0; i < run.size(); ++i) {
        if (codes[i] == StatusCode::kOk) {
          WireWriter w(&conn->out);
          size_t frame = w.BeginFrame();
          w.PutResponseHeader(Opcode::kObserve, run[i].id, StatusCode::kOk);
          w.EndFrame(frame);
        } else {
          WriteError(&conn->out, Opcode::kObserve, run[i].id, codes[i],
                     std::string("batched request failed: ") + StatusCodeName(codes[i]));
        }
      }
      metrics_.frames_by_op[op].Add(run.size());
      metrics_.frames_coalesced.Add(run.size());
      metrics_.coalesced_runs.Increment();
      return run.size();
    }
  }

  ServeFrame(conn, frames[at]);
  return 1;
}

void TcpServer::ServeFrame(Connection* conn, std::string_view payload) {
  WireReader r(payload);
  uint8_t op_byte = 0;
  uint64_t id = 0;
  r.GetU8(&op_byte);
  r.GetU64(&id);
  metrics_.frames_by_op[ValidOpcode(op_byte) ? op_byte : 0].Increment();

  if (!ValidOpcode(op_byte)) {
    WriteError(&conn->out, static_cast<Opcode>(op_byte), id,
               StatusCode::kInvalidArgument,
               "unknown opcode " + std::to_string(op_byte));
    return;
  }
  const Opcode op = static_cast<Opcode>(op_byte);
  std::string* out = &conn->out;

  auto malformed = [&] {
    WriteError(out, op, id, StatusCode::kInvalidArgument, "malformed request body");
  };

  switch (op) {
    case Opcode::kPing: {
      WireWriter w(out);
      size_t frame = w.BeginFrame();
      w.PutResponseHeader(op, id, StatusCode::kOk);
      w.EndFrame(frame);
      return;
    }

    case Opcode::kGetMetrics: {
      if (!r.AtEnd()) return malformed();
      WireWriter w(out);
      size_t frame = w.BeginFrame();
      w.PutResponseHeader(op, id, StatusCode::kOk);
      w.PutString(registry_->EncodeDump());
      w.EndFrame(frame);
      return;
    }

    case Opcode::kResolve: {
      std::string_view product;
      if (!r.GetString(&product) || !r.AtEnd()) return malformed();
      ProductHandle handle;
      Status s = broker_->Resolve(product, &handle);
      if (!s.ok()) return WriteError(out, op, id, s.code(), s.message());
      WireWriter w(out);
      size_t frame = w.BeginFrame();
      w.PutResponseHeader(op, id, StatusCode::kOk);
      w.PutU32(handle.index);
      w.PutU32(handle.generation);
      w.EndFrame(frame);
      return;
    }

    case Opcode::kPostPrice: {
      std::vector<double> scratch;
      PriceFrame pf;
      if (!DecodePriceBody(&r, &scratch, &pf)) return malformed();
      Quote quote;
      Status s = broker_->PostPrice(
          pf.handle, std::span<const double>(scratch.data(), pf.features_len),
          pf.reserve, &quote);
      if (!s.ok()) return WriteError(out, op, id, s.code(), s.message());
      WriteQuote(out, id, quote);
      return;
    }

    case Opcode::kObserve: {
      ObserveFrame of;
      if (!DecodeObserveBody(&r, &of)) return malformed();
      Status s = broker_->Observe(of.feedback.ticket, of.feedback.accepted);
      if (!s.ok()) return WriteError(out, op, id, s.code(), s.message());
      WireWriter w(out);
      size_t frame = w.BeginFrame();
      w.PutResponseHeader(op, id, StatusCode::kOk);
      w.EndFrame(frame);
      return;
    }

    case Opcode::kEstimateValue: {
      ProductHandle handle;
      uint32_t n;
      if (!r.GetU32(&handle.index) || !r.GetU32(&handle.generation) ||
          !r.GetU32(&n) || r.remaining() != size_t{n} * 8) {
        return malformed();
      }
      std::vector<double> features(n);
      for (uint32_t i = 0; i < n; ++i) r.GetF64(&features[i]);
      ValueInterval interval;
      Status s = broker_->EstimateValue(handle, features, &interval);
      if (!s.ok()) return WriteError(out, op, id, s.code(), s.message());
      WireWriter w(out);
      size_t frame = w.BeginFrame();
      w.PutResponseHeader(op, id, StatusCode::kOk);
      w.PutF64(interval.lower);
      w.PutF64(interval.upper);
      w.EndFrame(frame);
      return;
    }

    case Opcode::kPostPrices: {
      // Batch responses always carry: message string, u32 count, then per
      // item (u64 ticket, f64 price, u8 flags, u8 status). A body decode
      // failure answers with count 0.
      uint32_t count;
      std::vector<double> scratch;
      std::vector<PriceFrame> items;
      bool ok = r.GetU32(&count);
      if (ok) {
        items.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          PriceFrame pf;
          uint32_t n;
          if (!r.GetU32(&pf.handle.index) || !r.GetU32(&pf.handle.generation) ||
              !r.GetF64(&pf.reserve) || !r.GetU32(&n) ||
              r.remaining() < size_t{n} * 8) {
            ok = false;
            break;
          }
          pf.features_at = scratch.size();
          pf.features_len = n;
          for (uint32_t j = 0; j < n; ++j) {
            double v;
            r.GetF64(&v);
            scratch.push_back(v);
          }
          items.push_back(pf);
        }
        if (ok && !r.AtEnd()) ok = false;
      }
      WireWriter w(out);
      size_t frame = w.BeginFrame();
      if (!ok) {
        w.PutResponseHeader(op, id, StatusCode::kInvalidArgument);
        w.PutString("malformed batch body");
        w.PutU32(0);
        w.EndFrame(frame);
        return;
      }
      std::vector<HandleRequest> requests(items.size());
      std::vector<Quote> quotes(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        requests[i].handle = items[i].handle;
        requests[i].reserve = items[i].reserve;
        requests[i].features = std::span<const double>(
            scratch.data() + items[i].features_at, items[i].features_len);
      }
      Status s = broker_->PostPrices(requests, quotes);
      w.PutResponseHeader(op, id, s.code());
      w.PutString(s.message());
      w.PutU32(static_cast<uint32_t>(quotes.size()));
      for (const Quote& q : quotes) {
        w.PutU64(q.ticket);
        w.PutF64(q.price);
        w.PutU8(QuoteFlags(q));
        w.PutU8(StatusCodeToWire(q.status));
      }
      w.EndFrame(frame);
      return;
    }

    case Opcode::kObserves: {
      // Batch responses: message string, u32 count, then per item u8 status.
      uint32_t count;
      std::vector<FeedbackRequest> feedback;
      bool ok = r.GetU32(&count) && r.remaining() == size_t{count} * 9;
      if (ok) {
        feedback.resize(count);
        for (uint32_t i = 0; i < count; ++i) {
          uint8_t accepted = 0;
          r.GetU64(&feedback[i].ticket);
          r.GetU8(&accepted);
          feedback[i].accepted = accepted != 0;
        }
      }
      WireWriter w(out);
      size_t frame = w.BeginFrame();
      if (!ok) {
        w.PutResponseHeader(op, id, StatusCode::kInvalidArgument);
        w.PutString("malformed batch body");
        w.PutU32(0);
        w.EndFrame(frame);
        return;
      }
      std::vector<StatusCode> codes(feedback.size());
      Status s = broker_->Observes(feedback, codes);
      w.PutResponseHeader(op, id, s.code());
      w.PutString(s.message());
      w.PutU32(static_cast<uint32_t>(codes.size()));
      for (StatusCode code : codes) w.PutU8(StatusCodeToWire(code));
      w.EndFrame(frame);
      return;
    }
  }
}

bool TcpServer::FlushWrites(Connection* conn) {
  while (conn->output_pending()) {
    ssize_t n = ::send(conn->fd.get(), conn->out.data() + conn->out_offset,
                       conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  conn->out.clear();
  conn->out_offset = 0;
  return true;
}

}  // namespace pdm::server
