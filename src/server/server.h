#ifndef PDM_SERVER_SERVER_H_
#define PDM_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "common/status.h"
#include "server/net.h"
#include "server/wire.h"

/// \file
/// The TCP serving front end: a `TcpServer` exposes one `Broker` over the
/// `pdm.wire.v1` framed protocol (DESIGN.md §10).
///
/// Architecture: one event-loop thread multiplexes the listen socket and
/// every accepted connection through `poll`, with nonblocking I/O and
/// per-connection read/write buffers. Requests of one connection are
/// answered strictly in arrival order; different connections interleave
/// freely. There is no per-connection thread — the broker's contention story
/// (snapshot directory, per-session locks) already scales across callers, so
/// the server's job is purely to move frames, and a single loop keeps the
/// serving path allocation-light and trivially TSan-clean.
///
/// Pipelining is rewarded: when a connection's read buffer holds a *run* of
/// consecutive `kPostPrice` (or `kObserve`) frames, the loop coalesces the
/// run into one `Broker::PostPrices` (`Observes`) call — one session-lock
/// acquisition per run instead of one per request — then emits the per-frame
/// responses individually. A client that pipelines N requests gets batch-path
/// throughput without ever speaking the batch opcodes.
///
/// Shutdown drains gracefully: `Stop()` stops accepting, serves every frame
/// already buffered, flushes pending responses, and closes connections —
/// bounded by `ServerConfig::drain_timeout_ms` so a stalled peer cannot wedge
/// shutdown.

namespace pdm::server {

struct ServerConfig {
  /// IPv4 literal to bind.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back through `port()`.
  uint16_t port = 0;
  /// Upper bound on the Stop() drain (flushing responses to slow peers).
  int drain_timeout_ms = 2000;
};

/// Monitoring counters, readable concurrently with the event loop.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t frames_served = 0;
  /// Frames answered through a coalesced PostPrices/Observes run (subset of
  /// frames_served) and the number of such runs (>= 2 frames each).
  int64_t frames_coalesced = 0;
  int64_t coalesced_runs = 0;
  /// Connections dropped for framing violations (oversized/truncated
  /// frames, unknown opcodes decode to error responses, not drops).
  int64_t protocol_errors = 0;

  /// Memory-engine occupancy, sampled from the broker at stats() time
  /// (DESIGN.md §12). Sessions: open = resident + evicted; slab slots:
  /// live are serving an open session, tombstoned were retired by close and
  /// are never reused (ticket-base uniqueness), free is remaining lifetime
  /// capacity. evictions/fault_ins count cumulative cold-tier round trips;
  /// spill_bytes is the current on-disk cold-tier footprint.
  size_t open_sessions = 0;
  size_t resident_sessions = 0;
  size_t evicted_sessions = 0;
  size_t slab_live_slots = 0;
  size_t slab_tombstoned_slots = 0;
  size_t slab_free_slots = 0;
  uint64_t evictions = 0;
  uint64_t fault_ins = 0;
  size_t spill_bytes = 0;
  /// Ticket slots permanently retired at the generation bound, summed over
  /// resident sessions.
  int64_t retired_ticket_slots = 0;
};

class TcpServer {
 public:
  /// `broker` must outlive the server and is shared with any in-process
  /// callers — the wire surface and the C++ surface hit the same sessions.
  TcpServer(broker::Broker* broker, const ServerConfig& config = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the event-loop thread. Errors:
  /// FailedPrecondition (bind/listen failure), InvalidArgument (bad host).
  Status Start();

  /// Graceful drain: stop accepting, serve buffered frames, flush, close.
  /// Idempotent; returns once the loop thread has exited.
  void Stop();

  /// The bound port (valid after Start succeeded).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  struct Connection;

  void EventLoop();
  void AcceptNew();
  /// Serves every complete frame in `conn`'s read buffer; returns false when
  /// the connection must be dropped (framing violation).
  bool ServeBufferedFrames(Connection* conn);
  /// Decodes and answers one frame into `conn`'s write buffer.
  void ServeFrame(Connection* conn, std::string_view payload);
  /// Coalesces a run of identical single-op frames starting at `frames[at]`;
  /// returns the number of frames consumed (>= 1).
  size_t ServeRun(Connection* conn, const std::vector<std::string_view>& frames,
                  size_t at);
  /// Nonblocking flush of `conn`'s write buffer; false on fatal write error.
  bool FlushWrites(Connection* conn);

  broker::Broker* broker_;
  ServerConfig config_;

  UniqueFd listen_fd_;
  UniqueFd wake_read_, wake_write_;  ///< self-pipe: Stop() wakes poll()
  uint16_t port_ = 0;

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> frames_served_{0};
  std::atomic<int64_t> frames_coalesced_{0};
  std::atomic<int64_t> coalesced_runs_{0};
  std::atomic<int64_t> protocol_errors_{0};
};

}  // namespace pdm::server

#endif  // PDM_SERVER_SERVER_H_
