#ifndef PDM_SERVER_SERVER_H_
#define PDM_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "common/status.h"
#include "metrics/metrics.h"
#include "server/net.h"
#include "server/wire.h"

/// \file
/// The TCP serving front end: a `TcpServer` exposes one `Broker` over the
/// `pdm.wire.v1` framed protocol (DESIGN.md §10).
///
/// Architecture: one event-loop thread multiplexes the listen socket and
/// every accepted connection through `poll`, with nonblocking I/O and
/// per-connection read/write buffers. Requests of one connection are
/// answered strictly in arrival order; different connections interleave
/// freely. There is no per-connection thread — the broker's contention story
/// (snapshot directory, per-session locks) already scales across callers, so
/// the server's job is purely to move frames, and a single loop keeps the
/// serving path allocation-light and trivially TSan-clean.
///
/// Pipelining is rewarded: when a connection's read buffer holds a *run* of
/// consecutive `kPostPrice` (or `kObserve`) frames, the loop coalesces the
/// run into one `Broker::PostPrices` (`Observes`) call — one session-lock
/// acquisition per run instead of one per request — then emits the per-frame
/// responses individually. A client that pipelines N requests gets batch-path
/// throughput without ever speaking the batch opcodes.
///
/// Shutdown drains gracefully: `Stop()` stops accepting, serves every frame
/// already buffered, flushes pending responses, and closes connections —
/// bounded by `ServerConfig::drain_timeout_ms` so a stalled peer cannot wedge
/// shutdown.

namespace pdm::server {

struct ServerConfig {
  /// IPv4 literal to bind.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back through `port()`.
  uint16_t port = 0;
  /// Upper bound on the Stop() drain (flushing responses to slow peers).
  int drain_timeout_ms = 2000;
  /// Second listen port serving the Prometheus text-exposition scrape
  /// (`GET /metrics` — any HTTP request gets the full registry). -1 disables
  /// the scrape endpoint, 0 picks an ephemeral port (read it back through
  /// `metrics_port()`).
  int metrics_port = -1;
  /// Registry backing the server's instruments, the scrape endpoint, and
  /// the `GetMetrics` opcode. Share it with the broker's `BrokerConfig::
  /// metrics` so one scrape covers both layers. Null: the server creates a
  /// private registry (server instruments only) — `stats()` and `GetMetrics`
  /// always read real cells, never sinks. Must outlive the server.
  metrics::MetricRegistry* metrics = nullptr;
  /// Overload protection (DESIGN.md §14): once a connection's unflushed
  /// response backlog exceeds this many bytes, its further frames are
  /// *shed* — each is answered with a small ResourceExhausted error frame
  /// instead of being served — until the peer drains its responses. Guards
  /// against a client that pipelines requests without ever reading. 0
  /// disables the cap.
  size_t max_buffered_bytes = size_t{4} << 20;
  /// Cap on complete frames served from one connection per read wakeup;
  /// frames beyond the cap are shed with ResourceExhausted. Bounds the time
  /// one pipelining client can monopolize the event loop. 0 disables.
  size_t max_inflight_frames = 4096;
  /// Idle-connection reaper: a wire connection with no inbound traffic for
  /// this long is sent a best-effort error frame and closed. 0 (default)
  /// never reaps. Scrape connections are exempt (they are one-shot);
  /// connections awaiting a final error-frame flush are not — a violating
  /// peer that never reads dies undrained once silent past the limit.
  int idle_timeout_ms = 0;
  /// Fixed SO_SNDBUF for accepted sockets, in bytes; setting it disables
  /// kernel send-buffer autotuning. 0 (default) keeps the kernel default.
  /// The chaos suite uses it to make write-backlog scenarios deterministic.
  int so_sndbuf = 0;
};

/// Monitoring counters, readable concurrently with the event loop; a
/// registry-backed view (the same cells the scrape endpoint renders).
/// Memory-engine occupancy moved to the `pdm_broker_*` instruments in the
/// shared registry (DESIGN.md §13); slab internals stay on Broker::Stats().
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t frames_served = 0;
  /// Frames answered through a coalesced PostPrices/Observes run (subset of
  /// frames_served) and the number of such runs (>= 2 frames each).
  int64_t frames_coalesced = 0;
  int64_t coalesced_runs = 0;
  /// Connections dropped for framing violations (oversized/truncated
  /// frames, unknown opcodes decode to error responses, not drops). Since
  /// DESIGN.md §14 the violating connection is first sent a final error
  /// frame (opcode 0, id 0) so the peer can distinguish "you desynced" from
  /// a silent reset.
  int64_t protocol_errors = 0;
  /// Frames answered with ResourceExhausted by overload shedding
  /// (`max_buffered_bytes` / `max_inflight_frames`, DESIGN.md §14).
  int64_t shed_frames = 0;
  /// Connections closed by the idle reaper (`idle_timeout_ms`).
  int64_t idle_reaped = 0;
};

class TcpServer {
 public:
  /// `broker` must outlive the server and is shared with any in-process
  /// callers — the wire surface and the C++ surface hit the same sessions.
  TcpServer(broker::Broker* broker, const ServerConfig& config = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the event-loop thread. Errors:
  /// FailedPrecondition (bind/listen failure), InvalidArgument (bad host).
  Status Start();

  /// Graceful drain: stop accepting, serve buffered frames, flush, close.
  /// Idempotent; returns once the loop thread has exited.
  void Stop();

  /// The bound port (valid after Start succeeded).
  uint16_t port() const { return port_; }
  /// The bound scrape port (valid after Start succeeded with
  /// `metrics_port >= 0`; 0 when the endpoint is disabled).
  uint16_t metrics_port() const { return metrics_port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

  /// The registry backing this server's instruments (the configured one, or
  /// the private fallback).
  metrics::MetricRegistry* registry() const { return registry_; }

 private:
  struct Connection;

  void EventLoop();
  void AcceptNew(int listen_fd, bool scrape);
  /// Serves every complete frame in `conn`'s read buffer; returns false when
  /// the connection must be dropped. A framing violation buffers a final
  /// error frame (opcode 0, id 0, InvalidArgument) and schedules close-after-
  /// flush instead of dropping instantly (DESIGN.md §14); frames past the
  /// overload caps are shed with ResourceExhausted error responses.
  bool ServeBufferedFrames(Connection* conn);
  /// Answers a buffered HTTP scrape request once its header is complete;
  /// the response is followed by close (HTTP/1.0, no keep-alive).
  void ServeScrape(Connection* conn);
  /// Decodes and answers one frame into `conn`'s write buffer.
  void ServeFrame(Connection* conn, std::string_view payload);
  /// Coalesces a run of identical single-op frames starting at `frames[at]`;
  /// returns the number of frames consumed (>= 1).
  size_t ServeRun(Connection* conn, const std::vector<std::string_view>& frames,
                  size_t at);
  /// Nonblocking flush of `conn`'s write buffer; false on fatal write error.
  bool FlushWrites(Connection* conn);

  broker::Broker* broker_;
  ServerConfig config_;

  UniqueFd listen_fd_;
  UniqueFd metrics_listen_fd_;
  UniqueFd wake_read_, wake_write_;  ///< self-pipe: Stop() wakes poll()
  uint16_t port_ = 0;
  uint16_t metrics_port_ = 0;

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::vector<std::unique_ptr<Connection>> connections_;

  /// Instrument handles, resolved once in the constructor (DESIGN.md §13).
  /// `frames_by_op[op]` covers opcodes 1..kGetMetrics; index 0 counts
  /// invalid-opcode frames. These cells ARE the stats() surface — the old
  /// per-server atomics were deleted rather than double-written.
  struct Instruments {
    metrics::Counter connections;
    metrics::Counter frames_by_op[static_cast<size_t>(Opcode::kGetMetrics) + 1];
    metrics::Counter frames_coalesced;
    metrics::Counter coalesced_runs;
    metrics::Counter protocol_errors;
    metrics::Counter shed_frames;
    metrics::Counter idle_reaped;
    metrics::Gauge active_connections;
    metrics::Histogram request_ns;
  };

  metrics::MetricRegistry* registry_ = nullptr;
  std::unique_ptr<metrics::MetricRegistry> own_registry_;
  Instruments metrics_;
};

}  // namespace pdm::server

#endif  // PDM_SERVER_SERVER_H_
