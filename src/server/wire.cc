#include "server/wire.h"

namespace pdm::server {

bool ValidOpcode(uint8_t code) {
  return code >= static_cast<uint8_t>(Opcode::kResolve) &&
         code <= static_cast<uint8_t>(Opcode::kGetMetrics);
}

uint8_t StatusCodeToWire(StatusCode code) { return static_cast<uint8_t>(code); }

StatusCode StatusCodeFromWire(uint8_t wire) {
  if (wire > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return StatusCode::kInvalidArgument;
  }
  return static_cast<StatusCode>(wire);
}

FrameResult NextFrame(std::string_view buffer, size_t offset,
                      std::string_view* payload, size_t* next_offset) {
  if (buffer.size() - offset < kFrameHeaderBytes) return FrameResult::kNeedMore;
  uint32_t size;
  std::memcpy(&size, buffer.data() + offset, sizeof size);
  if (size > kMaxFramePayloadBytes) return FrameResult::kMalformed;
  if (buffer.size() - offset - kFrameHeaderBytes < size) return FrameResult::kNeedMore;
  *payload = buffer.substr(offset + kFrameHeaderBytes, size);
  *next_offset = offset + kFrameHeaderBytes + size;
  return FrameResult::kFrame;
}

}  // namespace pdm::server
